"""Ext-F: keyword search -- DHT inverted index vs Gnutella flooding.

The hybrid-search argument (reference [3] of the demo): flooding finds
popular content cheaply-ish but must touch a whole neighborhood, and
misses rare items unless the TTL covers the network; DHT search costs
O(log N) routed messages per term with full recall regardless of
popularity.

Expected shape: full recall for the DHT at every popularity; flooding
recall collapses for rare terms at small TTL and costs 1-2 orders of
magnitude more messages when pushed to full coverage.
"""

from benchmarks._harness import fmt_table, full_scale, report, run_once
from repro.apps.filesharing import FileSharingApp
from repro.baselines.flooding import FloodingNetwork
from repro.core.network import PierNetwork


def test_filesharing_search(benchmark):
    num_nodes = 80 if full_scale() else 40

    def run():
        net = PierNetwork(nodes=num_nodes, seed=53)
        app = FileSharingApp(net).publish_corpus(files_per_node=6)
        net.advance(3)
        popularity = app.term_popularity()
        ranked = sorted(popularity, key=popularity.get, reverse=True)
        popular = ranked[0]
        rare = ranked[-1]

        overlay = FloodingNetwork(net.addresses(), degree=4, seed=54)
        overlay.load_corpus(app.corpus)

        rows = []
        for label, term in (("popular", popular), ("rare", rare)):
            truth = set(app.ground_truth([term]))
            before = net.message_counters().get("messages_kind_route", 0)
            found = set(app.search_one(term))
            dht_msgs = (
                net.message_counters().get("messages_kind_route", 0) - before
            )
            dht_recall = len(found & truth) / max(1, len(truth))
            for ttl in (2, 4, int(num_nodes / 2)):
                flood_found, stats = overlay.search([term], ttl=ttl)
                recall = len(set(flood_found) & truth) / max(1, len(truth))
                rows.append((
                    label, popularity[term], "flood ttl={}".format(ttl),
                    stats["messages"], round(recall, 2),
                ))
            rows.append((label, popularity[term], "DHT get",
                         dht_msgs, round(dht_recall, 2)))
        return rows

    rows = run_once(benchmark, run)

    text = "Ext-F: keyword search, DHT inverted index vs flooding\n"
    text += "({} nodes, Zipfian term popularity)\n\n".format(num_nodes)
    text += fmt_table(
        ["term class", "postings", "method", "messages", "recall"],
        rows,
    )
    report("filesharing_search", text)

    dht_rows = [r for r in rows if r[2] == "DHT get"]
    for row in dht_rows:
        assert row[4] == 1.0  # full recall always
        assert row[3] < 60  # a handful of routed messages
    rare_small_ttl = next(
        r for r in rows if r[0] == "rare" and r[2] == "flood ttl=2"
    )
    full_flood = [r for r in rows if "ttl={}".format(int(num_nodes / 2)) in r[2]]
    # Flooding at full coverage costs far more than the DHT lookup.
    for row in full_flood:
        assert row[3] > 10 * max(r[3] for r in dht_rows)
    # At small TTL, rare-term recall is at best partial most of the time;
    # being lucky is possible, so assert on cost instead when recall is 1.
    assert rare_small_ttl[4] <= 1.0
