"""Ext-A: in-network join strategies (VLDB'03 §4 behaviours).

One equi-join R ⋈ S under three PIER strategies:

* symmetric hash (SHJ): rehash both sides -- baseline, bandwidth heavy;
* Bloom join: pre-filter both sides with exchanged Bloom filters --
  should cut rehash bytes sharply when the join is selective (few R
  keys match S), at the cost of filter round-trips (higher latency);
* fetch-matches (FM): S pre-published in the DHT partitioned on the
  join column -- probe-side gets only, cheapest when R is small.

Expected shape: all three agree on the answer; at low match fraction
Bloom moves the fewest rehash bytes; FM sends O(|R|) lookups
regardless; SHJ always pays full rehash of both sides.
"""

import pytest

from benchmarks._harness import fmt_table, report, run_once
from repro.core.network import PierNetwork

NODES = 48
R_ROWS_PER_NODE = 12
S_ROWS_PER_NODE = 12


def build_net(seed, match_fraction, with_dht_s=False):
    net = PierNetwork(nodes=NODES, seed=seed)
    net.create_local_table("r", [("a", "INT"), ("pad", "STR")])
    net.create_local_table("s", [("b", "INT"), ("pad", "STR")])
    if with_dht_s:
        net.create_dht_table("s_pub", [("b", "INT"), ("pad", "STR")],
                             partition_key="b", ttl=3600)
    pad = "x" * 40
    rng = net.rng.fork("workload")
    n_r = NODES * R_ROWS_PER_NODE
    matching = int(n_r * match_fraction)
    r_keys = list(range(n_r))
    # S keys overlap R on exactly `matching` values.
    s_keys = r_keys[:matching] + [10_000 + i for i in range(n_r - matching)]
    rng.shuffle(r_keys)
    rng.shuffle(s_keys)
    addresses = net.addresses()
    for i, key in enumerate(r_keys):
        net.insert(addresses[i % NODES], "r", [(key, pad)])
    for i, key in enumerate(s_keys):
        net.insert(addresses[i % NODES], "s", [(key, pad)])
        if with_dht_s:
            net.publish(addresses[i % NODES], "s_pub", (key, pad))
    if with_dht_s:
        net.advance(3)
    return net


def run_strategy(net, strategy, table_s="s"):
    before = dict(net.message_counters())
    sql = (
        "SELECT r.a AS a, s.pad AS p FROM r, {} AS s "
        "WHERE r.a = s.b".format(table_s)
    )
    options = None if strategy == "auto" else {"join_strategy": strategy}
    result = net.run_sql(sql, options=options)
    after = net.message_counters()

    def delta(key):
        return after.get(key, 0) - before.get(key, 0)

    return {
        "rows": len(result.rows),
        "messages": delta("messages_sent"),
        # Routed traffic is the join's data movement (tuple rehash / FM
        # gets); total traffic additionally includes overlay upkeep,
        # acks and dissemination, which all strategies share.
        "route_bytes": delta("bytes_kind_route"),
        "bytes": delta("bytes_sent"),
    }


@pytest.mark.parametrize("match_fraction", [0.05, 0.5])
def test_join_strategies(benchmark, match_fraction):
    def run():
        out = []
        expected = int(NODES * R_ROWS_PER_NODE * match_fraction)
        net = build_net(7, match_fraction)
        shj = run_strategy(net, "shj")
        net2 = build_net(7, match_fraction)
        bloom = run_strategy(net2, "bloom")
        net3 = build_net(7, match_fraction, with_dht_s=True)
        fm = run_strategy(net3, "auto", table_s="s_pub")
        for name, stats in (("SHJ", shj), ("Bloom", bloom), ("FM", fm)):
            out.append((name, stats["rows"], stats["messages"],
                        stats["route_bytes"], stats["bytes"]))
        return expected, out

    expected, out = run_once(benchmark, run)

    text = "Ext-A: join strategy comparison (match fraction = {})\n".format(
        match_fraction)
    text += "({} nodes, |R| = |S| = {} rows)\n\n".format(
        NODES, NODES * R_ROWS_PER_NODE)
    text += fmt_table(
        ["strategy", "result rows", "messages", "rehash bytes", "total bytes"],
        out)
    report("join_strategies_match{}".format(match_fraction), text)

    by_name = {name: (rows, msgs, route, total)
               for name, rows, msgs, route, total in out}
    # Same answer everywhere.
    for name in ("SHJ", "Bloom", "FM"):
        assert by_name[name][0] == expected, name
    if match_fraction <= 0.1:
        # Selective join: Bloom must move far fewer rehash bytes.
        assert by_name["Bloom"][2] < 0.6 * by_name["SHJ"][2]
    for name, (rows, msgs, route, total) in by_name.items():
        benchmark.extra_info[name] = {"messages": msgs, "rehash_bytes": route}
