"""Ext-K: region-aware execution -- proximity routing + regional trees.

The wide area is not flat: a PlanetLab-style deployment clusters into
regions (data centers, continents) where an intra-region hop costs
~1-5 ms and a backbone hop costs ~80-150 ms. PIER's overlay and its
aggregation trees are oblivious to that structure, so a standing
grouped aggregate ships every node's partial across the backbone every
epoch. This exhibit sweeps one paned standing group-by over a
4-region testbed under three disciplines on the *same* seeded
topology:

* **flat** -- the region-oblivious baseline: random fingers, single-
  level aggregation trees;
* **prox** -- proximity-biased neighbor selection (same-region
  candidates win finger/successor slots when they do not lengthen the
  ID-space stride materially), so the O(log N) walk does most of its
  hops inside the cheap region;
* **regional** -- proximity routing plus two-level aggregation trees:
  partials rendezvous at a per-region combiner first, and each region
  ships ONE combined partial per group per flush across the backbone
  toward the global owner.

Three claims, all gated: per-epoch answers are identical across the
three paths (the optimization must be invisible in the result);
``regional`` moves >= 3x fewer cross-region exchange bytes per epoch
than ``flat``; and its p95 epoch-completion lag (last partial arrival
behind the epoch boundary, at the query site) is no worse.

A fourth leg cuts one region off the backbone mid-run (a live
partition: nodes keep their state, unlike a crash) and heals it two
epochs later. During the cut the region's increments terminal-deliver
at in-region pseudo-owners whose paned finals retain them
(``PaneWindow.retain_panes``); after the heal those finals keep
flushing, so the query site's per-node replace-and-merge
reconciliation recovers the EXACT answer -- post-heal epochs,
including windows spanning the partition, must match a no-failure
reference run bit for bit.

Run standalone with ``python benchmarks/bench_geo_regions.py``
(``--smoke`` for the CI-sized pass; either writes
``results/geo_regions.json`` for the benchmark-regression gate).
"""

import sys

REGIONS = ("us", "eu", "ap", "sa")
NODES_PER_REGION = 6
EVERY = 10.0
RATIO = 4
LIFETIME = 80.0
SAMPLE_PERIOD = 2.0

SMOKE_NODES_PER_REGION = 3
SMOKE_LIFETIME = 60.0

SQL = (
    "SELECT bucket, SUM(v) AS total, COUNT(*) AS n FROM events "
    "GROUP BY bucket EVERY {e} SECONDS WINDOW {w} SECONDS "
    "LIFETIME {l} SECONDS"
)

VARIANTS = ("flat", "prox", "regional")


def region_map(per_region):
    return {
        "{}{}".format(region, i): region
        for region in REGIONS for i in range(per_region)
    }


def make_config(variant):
    from repro.core.engine import EngineConfig
    from repro.core.network import PierConfig
    from repro.dht.config import DhtConfig

    return PierConfig(
        dht=DhtConfig(proximity_routing=(variant != "flat")),
        engine=EngineConfig(regional_trees=(variant == "regional")),
    )


def build_net(seed, per_region, variant, window):
    from repro.core.network import PierNetwork

    net = PierNetwork(seed=seed, config=make_config(variant),
                      regions=region_map(per_region))
    net.create_stream_table(
        "events", [("bucket", "INT"), ("v", "FLOAT")],
        window=window + EVERY,
    )

    def make_tick(address, i):
        def tick():
            engine = net.node(address).engine
            engine.stream_append("events", (
                int(engine.clock.now // EVERY) % 4, float(i + 1),
            ))
            engine.set_timer(SAMPLE_PERIOD, tick)

        return tick

    for i, address in enumerate(net.addresses()):
        net.node(address).engine.set_timer(0.1, make_tick(address, i))
    return net


def run_leg(seed, per_region, variant, lifetime, disturb=None):
    """One standing query under one discipline; returns epoch answers
    plus backbone-traffic and completion-lag measurements.

    ``disturb`` optionally maps the run's t0 to a schedule of
    (at, callback_name, region) partition events applied mid-run.
    """
    window = RATIO * EVERY
    net = build_net(seed, per_region, variant, window)
    net.advance(window)
    net.reset_counters()

    site = net.any_address()  # first address: region "us"
    results = []
    handle = net.submit_sql(
        SQL.format(e=int(EVERY), w=int(window), l=int(lifetime)),
        node=site, on_epoch=results.append,
    )
    assert handle.plan.standing and handle.plan.pane is not None
    exchange = handle.plan.ops_of_kind("exchange")[0]
    assert exchange.params["mode"] == "tree"

    # Per-epoch completion lag: how far behind its epoch boundary the
    # epoch's aggregation dataflow QUIESCED -- the last delivery of an
    # exchange increment tagged with that epoch, anywhere in the
    # network. The site-side close is a fixed deadline timer, so the
    # observable latency win of locality lives here: a flat tree's
    # partials chain multi-hop backbone walks and per-hop combiner
    # holds, a region-local tree settles after one intra-region hold
    # and a single (often hop-shortcut) backbone send.
    t0 = handle.t0
    arrivals = {}
    inner_deliver = net.net._deliver

    def deliver(src, dst, payload):
        inner = getattr(payload, "payload", None)
        if isinstance(inner, dict) and inner.get("op") in (
                "deliver", "deliver_batch"):
            epoch = inner.get("epoch")
            if epoch is not None:
                arrivals[epoch] = net.now
        inner_deliver(src, dst, payload)

    net.net._deliver = deliver

    if disturb is not None:
        for at, action, region in disturb(t0):
            net.clock.schedule(
                max(0.0, at - net.now), getattr(net, action), region
            )

    net.advance(lifetime + handle.plan.deadline + 5.0)
    counters = net.message_counters()
    epochs = {
        r.epoch: sorted((g, round(t, 6), n) for g, t, n in r.rows)
        for r in results
    }
    # Exchange payloads tag the execution's absolute epoch index;
    # normalize each last-arrival against its own epoch boundary (the
    # first shipped epoch opened at t0, successors every EVERY).
    e0 = min(arrivals) if arrivals else 0
    lags = {
        e: at - (t0 + (e - e0) * EVERY) for e, at in arrivals.items()
    }
    return {
        "epochs": epochs,
        "lags": lags,
        "deadline": handle.plan.deadline,
        "cross_bytes": counters.get("exchange_cross_region_bytes", 0),
        "cross_msgs": counters.get("exchange_cross_region_messages", 0),
        "backbone_bytes": counters.get("cross_region_bytes", 0),
        "partition_drops": counters.get("messages_partitioned", 0),
    }


def percentile(values, q):
    ordered = sorted(values)
    if not ordered:
        return 0.0
    idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[idx]


def run_sweep(seed, per_region, lifetime):
    out = {v: run_leg(seed, per_region, v, lifetime) for v in VARIANTS}

    # Claim 1: exact answer parity, every epoch, every discipline.
    base = out["flat"]["epochs"]
    assert len(base) >= 5
    for variant in ("prox", "regional"):
        got = out[variant]["epochs"]
        assert set(got) == set(base)
        for k, want in base.items():
            assert got[k] == want, (
                "epoch {}: {} {!r} != flat {!r}".format(
                    k, variant, got[k], want)
            )

    epochs = max(1, len(base))
    per_epoch = {
        v: out[v]["cross_bytes"] / epochs for v in VARIANTS
    }
    ratios = {
        "cross_bytes_vs_flat": (per_epoch["flat"]
                                / max(1.0, per_epoch["regional"])),
        "cross_bytes_prox_vs_flat": (per_epoch["flat"]
                                     / max(1.0, per_epoch["prox"])),
        "backbone_bytes_vs_flat": (out["flat"]["backbone_bytes"]
                                   / max(1, out["regional"]["backbone_bytes"])),
    }
    # Claim 2: one partial per region across the backbone -- >= 3x
    # fewer cross-region exchange bytes per epoch than the flat tree.
    assert ratios["cross_bytes_vs_flat"] >= 3.0, (
        "cross-region byte reduction only {:.2f}x".format(
            ratios["cross_bytes_vs_flat"])
    )

    # Claim 3: locality shortens the tail -- the regional path's p95
    # completion lag is no worse than the flat baseline's.
    p95 = {v: percentile(list(out[v]["lags"].values()), 0.95)
           for v in VARIANTS}
    assert p95["regional"] <= p95["flat"], (
        "regional p95 lag {:.3f}s worse than flat {:.3f}s".format(
            p95["regional"], p95["flat"])
    )
    return out, ratios, per_epoch, p95


def run_failure_leg(seed, per_region, lifetime):
    """Partition one region for two epochs mid-run; gate exact recovery.

    The reference is the same seeded regional run without the
    partition. Epochs closing before the cut must match exactly; the
    cut must actually drop traffic; and every epoch whose final flush
    happens after the heal -- including windows that SPAN the
    partition, whose partition-era panes come back from the
    pseudo-owners' retained state -- must match the reference again.
    """
    cut_at = 2.5 * EVERY
    heal_at = 4.5 * EVERY
    region = "eu"  # never the query site's region (site is in "us")

    def disturb(t0):
        return [
            (t0 + cut_at, "partition_region", region),
            (t0 + heal_at, "heal_region", region),
        ]

    reference = run_leg(seed, per_region, "regional", lifetime)
    cut = run_leg(seed, per_region, "regional", lifetime, disturb=disturb)
    assert cut["partition_drops"] > 0, "the partition dropped nothing"
    assert set(cut["epochs"]) == set(reference["epochs"])

    # Epoch k collects until its close at k*EVERY + deadline; only
    # epochs fully closed before the cut are guaranteed untouched.
    deadline = reference["deadline"]
    pre = [
        k for k in sorted(reference["epochs"])
        if k * EVERY + deadline < cut_at
    ]
    assert pre, "no pre-partition epochs to compare"
    for k in pre:
        assert cut["epochs"][k] == reference["epochs"][k], (
            "pre-partition epoch {} diverged".format(k)
        )

    # Recovery: one epoch after the heal the cut region's finals have
    # re-flushed their retained panes; from there on the answers are
    # exact again, spanning windows included.
    recovered = [
        k for k in sorted(reference["epochs"])
        if k * EVERY >= heal_at + EVERY
    ]
    assert recovered, "lifetime too short to observe recovery"
    for k in recovered:
        assert cut["epochs"][k] == reference["epochs"][k], (
            "post-heal epoch {}: {!r} != reference {!r}".format(
                k, cut["epochs"][k], reference["epochs"][k])
        )
    degraded = [
        k for k in sorted(reference["epochs"])
        if k not in pre and k not in recovered
        and cut["epochs"][k] != reference["epochs"][k]
    ]
    return {
        "pre_epochs": len(pre),
        "degraded_epochs": len(degraded),
        "recovered_epochs": len(recovered),
        "partition_drops": cut["partition_drops"],
    }


def exhibit(per_region, lifetime, out, ratios, per_epoch, p95, failure):
    from benchmarks._harness import fmt_table

    nodes = per_region * len(REGIONS)
    text = ("Ext-K: region-aware execution -- proximity routing + "
            "region-local aggregation trees\n"
            "({} nodes in {} regions, epoch {}s, window {}s, lifetime "
            "{}s, sample every {}s)\n\n".format(
                nodes, len(REGIONS), int(EVERY), int(RATIO * EVERY),
                int(lifetime), int(SAMPLE_PERIOD)))
    rows = []
    for variant in VARIANTS:
        leg = out[variant]
        rows.append((
            variant, len(leg["epochs"]), leg["cross_msgs"],
            int(per_epoch[variant]), leg["backbone_bytes"],
            round(p95[variant], 3),
        ))
    text += fmt_table(
        ["path", "epochs", "xregion exch msgs", "xregion exch B/epoch",
         "backbone bytes", "p95 lag (s)"],
        rows,
    )
    text += (
        "\n\nper-epoch results identical across all three paths\n"
        "cross-region exchange bytes/epoch: {:.2f}x lower than flat "
        "({:.2f}x from proximity routing alone)\n"
        "total backbone bytes: {:.2f}x lower than flat\n\n"
        "region partition leg (regional path, '{}' cut for 2 epochs):\n"
        "  {} pre-partition epochs exact, {} degraded during the cut,\n"
        "  {} post-heal epochs exact (spanning windows included), "
        "{} messages dropped at the cut\n".format(
            ratios["cross_bytes_vs_flat"],
            ratios["cross_bytes_prox_vs_flat"],
            ratios["backbone_bytes_vs_flat"],
            "eu", failure["pre_epochs"], failure["degraded_epochs"],
            failure["recovered_epochs"], failure["partition_drops"],
        )
    )
    return text


def run_all(seed, per_region, lifetime):
    out, ratios, per_epoch, p95 = run_sweep(seed, per_region, lifetime)
    failure = run_failure_leg(seed + 1, per_region, lifetime)
    return out, ratios, per_epoch, p95, failure


def metrics_from(ratios, p95, failure):
    return {
        "parity": True,
        "failure_recovers_exact": True,
        "cross_bytes_ratio_vs_flat": round(
            ratios["cross_bytes_vs_flat"], 4),
        "cross_bytes_ratio_prox_vs_flat": round(
            ratios["cross_bytes_prox_vs_flat"], 4),
        "backbone_bytes_ratio_vs_flat": round(
            ratios["backbone_bytes_vs_flat"], 4),
        "p95_lag_flat": round(p95["flat"], 4),
        "p95_lag_regional": round(p95["regional"], 4),
        "recovered_epochs": failure["recovered_epochs"],
    }


def test_geo_regions(benchmark):
    from benchmarks._harness import report, run_once

    def run():
        return run_all(seed=11, per_region=NODES_PER_REGION,
                       lifetime=LIFETIME)

    out, ratios, per_epoch, p95, failure = run_once(benchmark, run)
    report("geo_regions",
           exhibit(NODES_PER_REGION, LIFETIME, out, ratios, per_epoch,
                   p95, failure),
           metrics=metrics_from(ratios, p95, failure),
           scale="full")
    benchmark.extra_info["ratios"] = {
        k: round(v, 3) for k, v in ratios.items()
    }


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="quick 12-node pass (same parity + reduction checks)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        per_region, lifetime = SMOKE_NODES_PER_REGION, SMOKE_LIFETIME
    else:
        per_region, lifetime = NODES_PER_REGION, LIFETIME
    out, ratios, per_epoch, p95, failure = run_all(
        seed=11, per_region=per_region, lifetime=lifetime
    )
    text = exhibit(per_region, lifetime, out, ratios, per_epoch, p95,
                   failure)
    print(text)
    from benchmarks._harness import report, write_metrics

    metrics = metrics_from(ratios, p95, failure)
    if args.smoke:
        write_metrics("geo_regions", metrics, scale="smoke")
    else:
        report("geo_regions", text, metrics=metrics, scale="full")
    print("ok: parity on all paths; cross-region exchange bytes "
          "{:.2f}x lower; p95 lag {:.3f}s vs {:.3f}s flat; partition "
          "leg recovered exactly".format(
              ratios["cross_bytes_vs_flat"], p95["regional"],
              p95["flat"]))
    return 0


if __name__ == "__main__":
    import pathlib

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    sys.exit(main())
