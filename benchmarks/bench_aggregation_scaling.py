"""Ext-B: in-network aggregation vs. alternatives, scaling with N.

The demo's core efficiency claim: aggregates are computed *in* the
network, so the query site receives one (or a few) combined partials
instead of every node's raw rows. Three strategies, same query
(global SUM + COUNT over per-node rows):

* tree      -- PIER's hierarchical aggregation (per-hop combining),
* rehash    -- partials go to the group owner with no mid-route
               combining (ablation: the tree's benefit isolated),
* central   -- every raw row ships to the query site (baseline).

The metric that matters is **fan-in at the query site** (the paper's
bottleneck-link argument): rows and bytes arriving at the coordinator.
Expected shape: O(1) at the site for tree/rehash vs O(N x rows) for
central, with the gap growing linearly in N. Total network bytes go the
*other* way (multi-hop overlay routing moves each tuple several times)
-- an honest cost of the DHT substrate that EXPERIMENTS.md discusses.
"""

from benchmarks._harness import fmt_table, report, run_once
from repro.baselines.centralized import CentralizedAggregation
from repro.core.network import PierNetwork

ROWS_PER_NODE = 10


def build_net(n, seed):
    net = PierNetwork(nodes=n, seed=seed)
    net.create_local_table("m", [("v", "FLOAT")])
    for i, address in enumerate(net.addresses()):
        net.insert(address, "m",
                   [(float(i + j),) for j in range(ROWS_PER_NODE)])
    return net


def run_query(net, site, options=None):
    before_site = net.inbound_bytes(site)
    before_all = dict(net.net.inbound_bytes)
    before_total = net.message_counters().get("bytes_sent", 0)
    result = net.run_sql("SELECT SUM(v) AS s, COUNT(*) AS n FROM m",
                         node=site, options=options)
    # The hotspot: the single busiest inbound link during the query.
    # For centralized collection that is the site; for rehash it is the
    # group owner absorbing every node's partial; the aggregation tree
    # exists to flatten exactly this number.
    hotspot = max(
        net.net.inbound_bytes.get(a, 0) - before_all.get(a, 0)
        for a in net.addresses()
    )
    return result, {
        "site_bytes": net.inbound_bytes(site) - before_site,
        "hotspot_bytes": hotspot,
        "total_bytes": net.message_counters().get("bytes_sent", 0) - before_total,
    }


def test_aggregation_scaling(benchmark):
    sizes = [32, 64, 128]

    def run():
        rows = []
        for n in sizes:
            expected_sum = sum(
                float(i + j) for i in range(n) for j in range(ROWS_PER_NODE)
            )
            net = build_net(n, seed=20 + n)
            site = net.any_address()
            result, tree = run_query(net, site)
            assert result.rows[0] == (expected_sum, n * ROWS_PER_NODE)
            rows_site_tree = len(result.rows)

            net = build_net(n, seed=20 + n)
            site = net.any_address()
            result, rehash = run_query(net, site,
                                       options={"aggregation_tree": False})
            assert result.rows[0] == (expected_sum, n * ROWS_PER_NODE)

            net = build_net(n, seed=20 + n)
            site = net.any_address()
            before_site = net.inbound_bytes(site)
            central_rows, stats = CentralizedAggregation(net).run(
                "m", [], [("SUM", "v"), ("COUNT", None)], node=site,
            )
            central_site = net.inbound_bytes(site) - before_site
            assert central_rows[0] == (expected_sum, n * ROWS_PER_NODE)

            rows.append((
                n,
                tree["site_bytes"], central_site,
                tree["hotspot_bytes"], rehash["hotspot_bytes"],
                rows_site_tree, stats["raw_rows_collected"],
            ))
        return rows

    rows = run_once(benchmark, run)

    text = "Ext-B: aggregation strategies -- fan-in at the bottleneck link\n"
    text += "(global SUM+COUNT over {} rows/node; hotspot = busiest\n".format(
        ROWS_PER_NODE)
    text += " inbound link anywhere during the query)\n\n"
    text += fmt_table(
        ["nodes", "site bytes tree", "site bytes central",
         "hotspot tree", "hotspot rehash",
         "rows@site tree", "rows@site central"],
        rows,
    )
    report("aggregation_scaling", text)

    ratios = []
    for (n, tree_site, central_site, hot_tree, hot_rehash,
         site_rows_tree, site_rows_central) in rows:
        assert site_rows_tree == 1
        assert site_rows_central == n * ROWS_PER_NODE
        # The query site's inbound load: in-network wins and the win
        # grows with N.
        assert tree_site < central_site
        ratios.append(central_site / tree_site)
    assert ratios[-1] > ratios[0]
    # The ablation: per-hop combining flattens the group owner's fan-in
    # relative to plain rehash of all partials (clearest at larger N).
    large = rows[-1]
    assert large[3] < large[4]
