"""Ext-I: 1k near-duplicate standing queries on one subscription spine.

The multi-query workload PIER's monitoring apps imply: many operators
submit *the same* continuous query, each written slightly differently
(different table aliases, flipped comparisons, reordered WHERE
conjuncts, different output column names). The logical-plan phase
canonicalizes all of them to one DAG, so every submission carries the
same ``share_signature`` and the engines run the whole fleet on ONE
shared dataflow spine per node (``core/sharing.py``): one stream-scan
append hook, one StandingExecution, one set of exchange flows -- only
the result operator fans per-epoch rows out to each subscriber.

The sweep submits Q in {1, 100, 1000} near-duplicates at the same sim
instant and measures rows scanned and exchange hops for the whole
fleet; an ``unshared`` leg (``{"shared": False}``) runs the 100-query
fleet as private executions for the per-query parity reference and the
cost-of-not-sharing exhibit. A control query over a *different* window
geometry rides along and must stay off the spine.

Acceptance properties asserted here:

* every query in the shared fleet returns per-epoch results identical
  to its private (unshared) twin -- sharing is invisible to answers;
* at Q=100 the shared fleet's rows scanned and exchange hops are each
  <= 1.5x the single-query run (the fleet costs about one query);
* the unshared fleet pays per-query: strictly more scans and exchange
  hops than the shared fleet at the same Q;
* the different-geometry control never joins the spine and still
  answers.

A second sweep exercises the layer BELOW whole-plan sharing: common
*sub*-plan sharing. Q queries with pairwise-different WHERE predicates
cannot share a spine (their dataflows differ), but they all scan the
same stream table on the same epoch grid, so the engines run ONE
shared prefix stage (scan -> demux) per node and fan each epoch's scan
waves into every query's private tail. The sweep submits Q in
{1, 10, 100} different-predicate queries, measures fleet rows scanned
(bar: the 100-query fleet scans <= 1.5x ONE query's rows), and runs
the same fleet under ``EngineConfig(shared_dataflows=False)`` as the
per-query parity reference -- sharing must be invisible to answers.

Run standalone with ``python benchmarks/bench_multi_query.py``
(``--smoke`` for a quick pass usable next to tier-1).
"""

import math
import sys

from repro.core.engine import EngineConfig
from repro.core.network import PierConfig, PierNetwork

NODES = 12
QS = (1, 100, 1000)
UNSHARED_Q = 100
PREFIX_QS = (1, 10, 100)
SMOKE_PREFIX_QS = (1, 100)
DISTINCT_PREDICATES = 90  # prefix_sql cycles this many thresholds
EVERY = 10.0
WINDOW = 10.0
LIFETIME = 30.0
SAMPLE_PERIOD = 2.0

SMOKE_NODES = 8
SMOKE_QS = (1, 100)

TAIL = "EVERY {} SECONDS WINDOW {} SECONDS LIFETIME {} SECONDS"

# Four surface forms of one query: alias renames, flipped comparisons,
# reordered conjuncts, different output names. The logical phase
# canonicalizes all of them to the same DAG + share signature.
VARIANTS = (
    "SELECT SUM(rate_kbps) AS total_rate, COUNT(*) AS samples "
    "FROM node_stats WHERE rate_kbps > 5 AND rate_kbps < 500 ",
    "SELECT SUM(ns.rate_kbps) AS tr, COUNT(*) AS n "
    "FROM node_stats ns WHERE ns.rate_kbps < 500 AND ns.rate_kbps > 5 ",
    "SELECT SUM(s.rate_kbps) AS sum_rate, COUNT(*) AS cnt "
    "FROM node_stats s WHERE 5 < s.rate_kbps AND s.rate_kbps < 500 ",
    "SELECT SUM(rate_kbps) AS x, COUNT(*) AS y "
    "FROM node_stats WHERE 500 > rate_kbps AND 5 < rate_kbps ",
)

CONTROL_SQL = (
    "SELECT SUM(rate_kbps) AS total_rate, COUNT(*) AS samples "
    "FROM node_stats WHERE rate_kbps > 5 AND rate_kbps < 500 "
    + TAIL.format(int(EVERY), int(2 * WINDOW), int(LIFETIME))
)


def variant_sql(i):
    return VARIANTS[i % len(VARIANTS)] + TAIL.format(
        int(EVERY), int(WINDOW), int(LIFETIME)
    )


def prefix_sql(i):
    """A per-query predicate: same scan + epoch grid, different tail.

    Thresholds land inside the ticker's value range so every query
    filters a different (nonempty) subset -- no two plans canonicalize
    together, yet all share the one scan stage.
    """
    threshold = 8.0 + (i % DISTINCT_PREDICATES)
    return (
        "SELECT SUM(rate_kbps) AS total_rate, COUNT(*) AS samples "
        "FROM node_stats WHERE rate_kbps > {} ".format(threshold)
        + TAIL.format(int(EVERY), int(WINDOW), int(LIFETIME))
    )


def build_net(seed, nodes, shared=True):
    config = PierConfig(engine=EngineConfig(shared_dataflows=shared))
    net = PierNetwork(nodes=nodes, seed=seed, config=config)
    net.create_stream_table(
        "node_stats", [("rate_kbps", "FLOAT")], window=2 * WINDOW
    )
    rng = net.rng.fork("rates")

    def make_ticker(address, base):
        step = [0]

        def tick():
            engine = net.node(address).engine
            step[0] += 1
            engine.stream_append("node_stats", (base + (step[0] % 7),))
            engine.set_timer(SAMPLE_PERIOD, tick)

        return tick

    for address in net.addresses():
        tick = make_ticker(address, 10.0 + 90.0 * rng.random())
        net.node(address).engine.set_timer(0.1, tick)
    return net


def run_fleet(seed, nodes, q, shared):
    """Submit ``q`` near-duplicates at one instant; measure the fleet."""
    net = build_net(seed, nodes)
    net.advance(WINDOW)  # fill the first window
    before = dict(net.message_counters())
    scans_before = sum(n.engine.rows_scanned for n in net.nodes.values())
    site = net.any_address()
    options = None if shared else {"shared": False}
    fleet = []
    for i in range(q):
        results = []
        handle = net.submit_sql(variant_sql(i), node=site,
                                on_epoch=results.append, options=options)
        assert handle.plan.standing
        if shared:
            assert handle.plan.metadata.get("spine"), (
                "near-duplicate {} was not stamped shareable".format(i)
            )
        else:
            assert handle.plan.metadata.get("spine") is None
        fleet.append((handle, results))
    assert len({h.plan.metadata.get("spine") for h, _r in fleet}) == 1, (
        "near-duplicates canonicalized to different signatures"
    )
    net.advance(LIFETIME + fleet[0][0].plan.deadline + 5.0)
    if shared and q > 1:
        # The whole fleet rides one StandingExecution per node.
        for address in net.addresses():
            engine = net.node(address).engine
            spines = [
                rec for rec in engine._spines.values()
                if rec.execution is not None
            ]
            for rec in spines:
                if rec.plan.window == WINDOW:
                    assert len(rec.subscribers) == q, (
                        "{}: spine carries {} of {} subscribers".format(
                            address, len(rec.subscribers), q)
                    )
    after = net.message_counters()
    scans_after = sum(n.engine.rows_scanned for n in net.nodes.values())
    # Tree-edge hop caching: combiner forwards that went direct to the
    # learned terminal owner instead of re-walking the stable route.
    # Closed combiners fold their counters into the engine totals;
    # still-registered ones are read live.
    forwards = shortcuts = 0
    for n in net.nodes.values():
        forwards += n.engine.tree_forwards
        shortcuts += n.engine.tree_hop_shortcuts
        for combiner in n.engine.combiners.values():
            forwards += combiner.forwarded
            shortcuts += combiner.hop_shortcuts
    return {
        "queries": q,
        "tree_forwards": forwards,
        "tree_hop_shortcuts": shortcuts,
        "per_query": [
            {r.epoch: sorted(r.rows) for r in results}
            for _h, results in fleet
        ],
        "messages": after.get("messages_sent", 0) - before.get("messages_sent", 0),
        "exchange_messages": (after.get("exchange_messages", 0)
                              - before.get("exchange_messages", 0)),
        "rows_scanned": scans_after - scans_before,
    }


def run_control(seed, nodes):
    """A different-geometry query next to the fleet: own spine, own
    answers. Unmeasured -- it exists to prove sharing has a boundary."""
    net = build_net(seed, nodes)
    net.advance(WINDOW)
    site = net.any_address()
    fleet_results = []
    fleet_handle = net.submit_sql(variant_sql(0), node=site,
                                  on_epoch=fleet_results.append)
    control_results = []
    control_handle = net.submit_sql(CONTROL_SQL, node=site,
                                    on_epoch=control_results.append)
    assert (control_handle.plan.metadata.get("spine")
            != fleet_handle.plan.metadata.get("spine")), (
        "different-geometry control joined the fleet's spine"
    )
    net.advance(LIFETIME + control_handle.plan.deadline + 5.0)
    return {r.epoch: sorted(r.rows) for r in control_results}


def run_prefix_fleet(seed, nodes, q, shared):
    """Submit ``q`` different-predicate queries at one instant.

    ``shared=False`` runs the identical fleet under
    ``EngineConfig(shared_dataflows=False)`` -- every query fully
    private -- as the parity reference and the cost exhibit.
    """
    net = build_net(seed, nodes, shared=shared)
    net.advance(WINDOW)  # fill the first window
    before = dict(net.message_counters())
    scans_before = sum(n.engine.rows_scanned for n in net.nodes.values())
    site = net.any_address()
    fleet = []
    for i in range(q):
        results = []
        handle = net.submit_sql(prefix_sql(i), node=site,
                                on_epoch=results.append)
        assert handle.plan.standing
        if shared:
            assert handle.plan.metadata.get("prefix"), (
                "query {} was not stamped prefix-shareable".format(i)
            )
        fleet.append((handle, results))
    if shared:
        assert len({h.plan.metadata.get("prefix") for h, _r in fleet}) == 1, (
            "different-predicate fleet split into multiple prefix keys"
        )
        assert (len({h.plan.metadata.get("spine") for h, _r in fleet})
                == min(q, DISTINCT_PREDICATES)), (
            "distinct predicates should NOT canonicalize to one spine"
        )
    # Probe mid-run, while the stage is alive: the whole fleet's scans
    # ride ONE prefix stage (and one scan host) per node.
    net.advance(2 * EVERY + 1.0)
    for address in net.addresses():
        engine = net.node(address).engine
        if shared:
            assert len(engine._prefixes) == 1, (
                "{}: {} prefix stages for one fleet".format(
                    address, len(engine._prefixes))
            )
            prec = next(iter(engine._prefixes.values()))
            assert len(prec.subscribers) == min(q, DISTINCT_PREDICATES), (
                "{}: stage carries {} of {} member spines".format(
                    address, len(prec.subscribers),
                    min(q, DISTINCT_PREDICATES))
            )
            assert engine.shared_scans.host_count("node_stats") == 1
        else:
            assert not engine._prefixes
            assert not engine._spines
    net.advance(LIFETIME + fleet[0][0].plan.deadline + 5.0 - 2 * EVERY - 1.0)
    after = net.message_counters()
    scans_after = sum(n.engine.rows_scanned for n in net.nodes.values())
    return {
        "queries": q,
        "per_query": [
            {r.epoch: sorted(r.rows) for r in results}
            for _h, results in fleet
        ],
        "messages": after.get("messages_sent", 0) - before.get("messages_sent", 0),
        "exchange_messages": (after.get("exchange_messages", 0)
                              - before.get("exchange_messages", 0)),
        "mux_bundles": (after.get("exchange_mux_bundles", 0)
                        - before.get("exchange_mux_bundles", 0)),
        "rows_scanned": scans_after - scans_before,
    }


def run_prefix_sweep(seed, nodes, qs):
    stats = {"shared": {}}
    for q in qs:
        stats["shared"][q] = run_prefix_fleet(seed, nodes, q, shared=True)
    stats["unshared"] = run_prefix_fleet(seed, nodes, max(qs), shared=False)
    return stats


def check_prefix_sweep(stats, qs):
    """Per-query parity vs the sharing-off ablation + the <=1.5x bar."""
    unshared = stats["unshared"]
    reference = unshared["per_query"][0]
    assert len(reference) >= 2, "ablation reference produced too few epochs"
    for q, leg in stats["shared"].items():
        for i, epochs in enumerate(leg["per_query"]):
            twin = unshared["per_query"][i]
            assert set(epochs) == set(twin), (
                "prefix Q={} query {}: epochs {} != ablation twin {}".format(
                    q, i, sorted(epochs), sorted(twin))
            )
            for k in twin:
                assert _rows_match(epochs[k], twin[k]), (
                    "prefix Q={} query {}: epoch {} diverged from the "
                    "sharing-off twin ({!r} vs {!r})".format(
                        q, i, k, epochs[k], twin[k])
                )
    base = stats["shared"][min(qs)]
    big = stats["shared"][max(qs)]
    ratios = {
        "prefix_scan_ratio_100": (big["rows_scanned"]
                                  / max(1, base["rows_scanned"])),
        "prefix_xmsg_ratio_100": (big["exchange_messages"]
                                  / max(1, base["exchange_messages"])),
        "prefix_unshared_scan_x": (unshared["rows_scanned"]
                                   / max(1, big["rows_scanned"])),
    }
    # The headline bar: 100 DIFFERENT queries scan about one query's rows.
    assert ratios["prefix_scan_ratio_100"] <= 1.5, (
        "different-predicate fleet scanned {:.2f}x the single query".format(
            ratios["prefix_scan_ratio_100"])
    )
    assert unshared["rows_scanned"] > big["rows_scanned"], (
        "sharing-off ablation should pay per-query scans"
    )
    if max(qs) > 1:
        assert big["mux_bundles"] > 0, (
            "co-routed fleet exchanges never multiplexed"
        )
    return ratios


def _rows_match(a, b):
    """Row-set equality with float tolerance (merge order may differ
    between the spine and a private execution)."""
    if len(a) != len(b):
        return False
    for row_a, row_b in zip(a, b):
        if len(row_a) != len(row_b):
            return False
        for va, vb in zip(row_a, row_b):
            if isinstance(va, float) or isinstance(vb, float):
                if not math.isclose(va, vb, rel_tol=1e-9, abs_tol=1e-9):
                    return False
            elif va != vb:
                return False
    return True


def run_sweep(seed, nodes, qs):
    stats = {"shared": {}, "unshared": {}}
    for q in qs:
        stats["shared"][q] = run_fleet(seed, nodes, q, shared=True)
    stats["unshared"][UNSHARED_Q] = run_fleet(
        seed, nodes, min(UNSHARED_Q, max(qs)), shared=False
    )
    stats["control_epochs"] = run_control(seed, nodes)
    return stats


def check_sweep(stats, qs):
    """Parity, the <=1.5x sharing bar, and the unshared cost exhibit."""
    shared = stats["shared"]
    unshared = stats["unshared"][UNSHARED_Q]

    # Every query in every shared fleet answers like its private twin.
    reference = unshared["per_query"][0]
    assert len(reference) >= 2, "reference produced too few epochs"
    for q, leg in shared.items():
        for i, epochs in enumerate(leg["per_query"]):
            assert set(epochs) == set(reference), (
                "Q={} query {}: epochs {} != reference {}".format(
                    q, i, sorted(epochs), sorted(reference))
            )
            for k in reference:
                assert _rows_match(epochs[k], reference[k]), (
                    "Q={} query {}: epoch {} diverged from the private "
                    "twin ({!r} vs {!r})".format(
                        q, i, k, epochs[k], reference[k])
                )
    for i, epochs in enumerate(unshared["per_query"]):
        for k in reference:
            assert _rows_match(epochs[k], reference[k]), (
                "unshared query {} disagrees with query 0".format(i)
            )

    # The control stayed off the spine and still answered.
    control = stats["control_epochs"]
    assert control and len(control) >= 2, "control query produced no epochs"
    assert all(rows for rows in control.values())

    base = shared[min(qs)]
    big = shared[100] if 100 in shared else shared[max(qs)]
    ratios = {
        "scan_ratio_100": big["rows_scanned"] / max(1, base["rows_scanned"]),
        "xmsg_ratio_100": (big["exchange_messages"]
                           / max(1, base["exchange_messages"])),
        "unshared_scan_x": (unshared["rows_scanned"]
                            / max(1, big["rows_scanned"])),
        "unshared_xmsg_x": (unshared["exchange_messages"]
                            / max(1, big["exchange_messages"])),
        # Fraction of in-tree combiner forwards that skipped the
        # O(log N) stable-route walk via the learned-owner hop cache.
        "hop_shortcut_frac": (big["tree_hop_shortcuts"]
                              / max(1, big["tree_forwards"])),
    }
    # The headline bar: 100 near-duplicates cost about one query.
    assert ratios["scan_ratio_100"] <= 1.5, (
        "shared fleet scanned {:.2f}x the single query".format(
            ratios["scan_ratio_100"])
    )
    assert ratios["xmsg_ratio_100"] <= 1.5, (
        "shared fleet moved {:.2f}x the exchange hops".format(
            ratios["xmsg_ratio_100"])
    )
    # And not sharing pays per query.
    assert unshared["rows_scanned"] > big["rows_scanned"]
    assert unshared["exchange_messages"] > big["exchange_messages"]
    return ratios


def prefix_exhibit(nodes, qs, stats, ratios):
    from benchmarks._harness import fmt_table

    text = ("Common-subplan sharing: one scan stage under Q "
            "different-predicate queries\n({} nodes, same geometry; every "
            "query its own WHERE threshold, own spine,\n own tail -- only "
            "the scan prefix is common)\n\n".format(nodes))
    rows = []
    for q in qs:
        leg = stats["shared"][q]
        rows.append(("staged/Q={}".format(q), q, leg["messages"],
                     leg["exchange_messages"], leg["mux_bundles"],
                     leg["rows_scanned"]))
    un = stats["unshared"]
    rows.append(("ablation/Q={}".format(un["queries"]), un["queries"],
                 un["messages"], un["exchange_messages"],
                 un["mux_bundles"], un["rows_scanned"]))
    text += fmt_table(
        ["config", "queries", "messages", "exch msgs (hops)",
         "mux bundles", "rows scanned"],
        rows,
    )
    text += (
        "\n\nper-query results: every staged query identical to its "
        "shared_dataflows=False twin\n"
        "{} different predicates vs 1 (staged): rows scanned {:.2f}x "
        "(bar: <= 1.5x), exchange hops {:.2f}x\n"
        "sharing off at Q={}: {:.2f}x the scans of the staged fleet\n"
        .format(
            max(qs), ratios["prefix_scan_ratio_100"],
            ratios["prefix_xmsg_ratio_100"], un["queries"],
            ratios["prefix_unshared_scan_x"])
    )
    return text


def exhibit(nodes, qs, stats, ratios):
    from benchmarks._harness import fmt_table

    text = ("Ext-I: near-duplicate standing queries on one subscription "
            "spine\n({} nodes, epoch {}s, window {}s, lifetime {}s, "
            "sample every {}s;\n {} surface forms cycled per fleet, all "
            "submitted the same instant)\n\n".format(
                nodes, int(EVERY), int(WINDOW), int(LIFETIME),
                int(SAMPLE_PERIOD), len(VARIANTS)))
    rows = []
    for q in qs:
        leg = stats["shared"][q]
        rows.append(("shared/Q={}".format(q), q, leg["messages"],
                     leg["exchange_messages"], leg["rows_scanned"]))
    un = stats["unshared"][UNSHARED_Q]
    rows.append(("unshared/Q={}".format(un["queries"]), un["queries"],
                 un["messages"], un["exchange_messages"],
                 un["rows_scanned"]))
    text += fmt_table(
        ["config", "queries", "messages", "exch msgs (hops)",
         "rows scanned"],
        rows,
    )
    text += (
        "\n\nper-query results: every shared query identical to its "
        "private twin\n"
        "100 near-duplicates vs 1 (shared): rows scanned {:.2f}x, "
        "exchange hops {:.2f}x (bar: <= 1.5x)\n"
        "not sharing at Q={}: {:.2f}x the scans, {:.2f}x the exchange "
        "hops of the shared fleet\n"
        "different-geometry control stayed off the spine and answered "
        "every epoch\n".format(
            ratios["scan_ratio_100"], ratios["xmsg_ratio_100"],
            un["queries"], ratios["unshared_scan_x"],
            ratios["unshared_xmsg_x"])
    )
    big = stats["shared"][100] if 100 in stats["shared"] else (
        stats["shared"][max(qs)])
    text += (
        "tree-edge hop cache (shared fleet): {} of {} combiner forwards "
        "went direct to the learned owner ({:.0%})\n".format(
            big["tree_hop_shortcuts"], big["tree_forwards"],
            ratios["hop_shortcut_frac"])
    )
    return text


def test_multi_query(benchmark):
    from benchmarks._harness import report, run_once

    def run():
        stats = run_sweep(seed=7, nodes=NODES, qs=QS)
        ratios = check_sweep(stats, QS)
        pstats = run_prefix_sweep(seed=7, nodes=NODES, qs=PREFIX_QS)
        ratios.update(check_prefix_sweep(pstats, PREFIX_QS))
        return stats, pstats, ratios

    stats, pstats, ratios = run_once(benchmark, run)
    report("multi_query",
           exhibit(NODES, QS, stats, ratios) + "\n"
           + prefix_exhibit(NODES, PREFIX_QS, pstats, ratios))
    for key, value in ratios.items():
        benchmark.extra_info[key] = round(value, 4)


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="quick 8-node pass over Q in {1, 100} (same checks)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        nodes, qs, pqs = SMOKE_NODES, SMOKE_QS, SMOKE_PREFIX_QS
    else:
        nodes, qs, pqs = NODES, QS, PREFIX_QS
    stats = run_sweep(seed=7, nodes=nodes, qs=qs)
    ratios = check_sweep(stats, qs)
    print(exhibit(nodes, qs, stats, ratios))
    pstats = run_prefix_sweep(seed=7, nodes=nodes, qs=pqs)
    ratios.update(check_prefix_sweep(pstats, pqs))
    print(prefix_exhibit(nodes, pqs, pstats, ratios))
    from benchmarks._harness import write_metrics

    write_metrics("multi_query", {
        "parity": True,
        "scan_ratio_100": round(ratios["scan_ratio_100"], 4),
        "xmsg_ratio_100": round(ratios["xmsg_ratio_100"], 4),
        "unshared_scan_x": round(ratios["unshared_scan_x"], 4),
        "unshared_xmsg_x": round(ratios["unshared_xmsg_x"], 4),
        "hop_shortcut_frac": round(ratios["hop_shortcut_frac"], 4),
        "prefix_parity": True,
        "prefix_scan_ratio_100": round(ratios["prefix_scan_ratio_100"], 4),
        "prefix_xmsg_ratio_100": round(ratios["prefix_xmsg_ratio_100"], 4),
        "prefix_unshared_scan_x": round(ratios["prefix_unshared_scan_x"], 4),
    }, scale="smoke" if args.smoke else "full")
    print("ok: {} fleets share one spine with per-query parity; Q=100 "
          "costs {:.2f}x scans / {:.2f}x hops of Q=1".format(
              len(qs), ratios["scan_ratio_100"], ratios["xmsg_ratio_100"]))
    print("ok: {} different-predicate queries ride one scan stage at "
          "{:.2f}x one query's scans, answers identical to the "
          "sharing-off ablation".format(
              max(pqs), ratios["prefix_scan_ratio_100"]))
    return 0


if __name__ == "__main__":
    import pathlib

    # Run as a script, ``benchmarks`` is not a package on sys.path yet.
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    sys.exit(main())
