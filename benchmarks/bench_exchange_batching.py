"""Ext-F: exchange batching ablation (messages / bytes / latency).

The batching layer holds rehashed rows per routing key for a short
flush window and ships them as one ``deliver_batch`` message, so k
co-keyed rows cost one multi-hop route (plus one hop-ack per hop)
instead of k. This bench quantifies the trade on a rehash join shaped
like the PlanetLab monitoring workload: every host reports a handful of
attributes many samples at a time (so a sender's rows cluster on few
join keys), joined against an attribute-metadata relation.

Sweep: unbatched baseline (``flush_delay = 0``, the original
message-per-row exchange) against two batched configurations. Expected
shape: identical query results row for row, ``exchange_rows`` (tuples
moved) unchanged, total ``messages_sent`` down >= 3x at 100+ nodes,
and a latency price bounded by the flush window (rows wait at the
sender before travelling).

Run standalone with ``python benchmarks/bench_exchange_batching.py``
(``--smoke`` for a 32-node quick pass usable next to tier-1).
"""

import sys

from repro.core.engine import EngineConfig
from repro.core.network import PierConfig, PierNetwork

NODES = 100
ATTR_DOMAIN = 50
ATTRS_PER_NODE = 4
SAMPLES_PER_ATTR = 12

SMOKE_NODES = 32
SMOKE_SAMPLES = 6

SQL = (
    "SELECT r.attr AS attr, r.sample AS sample, r.origin AS origin, "
    "a.label AS label FROM readings AS r, attrs AS a "
    "WHERE r.attr = a.attr_id"
)

CONFIGS = [
    # (label, flush_delay, max_batch_rows)
    ("unbatched", 0.0, 1),
    ("batch<=8", 0.25, 8),
    ("batch<=64", 0.25, 64),
]


def build_net(seed, nodes, samples, engine):
    net = PierNetwork(nodes=nodes, seed=seed, config=PierConfig(engine=engine))
    net.create_local_table(
        "readings", [("attr", "INT"), ("sample", "INT"), ("origin", "STR")]
    )
    net.create_local_table("attrs", [("attr_id", "INT"), ("label", "STR")])
    addresses = net.addresses()
    for attr in range(ATTR_DOMAIN):
        net.insert(addresses[attr % nodes], "attrs",
                   [(attr, "attr-{}".format(attr))])
    rng = net.rng.fork("workload")
    for address in addresses:
        mine = rng.sample(range(ATTR_DOMAIN), ATTRS_PER_NODE)
        rows = [(attr, s, address) for attr in mine for s in range(samples)]
        net.insert(address, "readings", rows)
    return net


def run_config(seed, nodes, samples, flush_delay, max_batch_rows):
    engine = EngineConfig(flush_delay=flush_delay,
                          max_batch_rows=max_batch_rows)
    net = build_net(seed, nodes, samples, engine)
    site = net.any_address()

    # Timestamp result arrivals at the query site: batching's latency
    # price is how much later the last answer-bearing message lands.
    coordinator = net.node(site).coordinator
    arrivals = []
    inner_on_result = coordinator.on_result

    def stamped_on_result(payload):
        arrivals.append(net.now)
        inner_on_result(payload)

    coordinator.on_result = stamped_on_result

    before = dict(net.message_counters())
    t0 = net.now
    result = net.run_sql(SQL, node=site)
    after = net.message_counters()

    def delta(key):
        return after.get(key, 0) - before.get(key, 0)

    return {
        "rows": sorted(result.rows),
        "messages": delta("messages_sent"),
        "bytes": delta("bytes_sent"),
        "exchange_messages": delta("exchange_messages"),
        "exchange_batches": delta("exchange_batches"),
        "exchange_rows": delta("exchange_rows"),
        "exchange_bytes": delta("exchange_bytes"),
        "result_latency": (max(arrivals) - t0) if arrivals else float("nan"),
    }


def run_sweep(seed=11, nodes=NODES, samples=SAMPLES_PER_ATTR):
    """Run every config on the same workload; returns (expected, stats)."""
    expected_rows = nodes * ATTRS_PER_NODE * samples
    stats = []
    for label, flush_delay, max_batch_rows in CONFIGS:
        out = run_config(seed, nodes, samples, flush_delay, max_batch_rows)
        stats.append((label, out))
    return expected_rows, stats


def check_sweep(expected_rows, stats, min_ratio):
    """Assert the acceptance properties; returns the message ratio."""
    baseline = stats[0][1]
    assert len(baseline["rows"]) == expected_rows, (
        "baseline produced {} rows, expected {}".format(
            len(baseline["rows"]), expected_rows
        )
    )
    for label, out in stats[1:]:
        assert out["rows"] == baseline["rows"], (
            "{}: batched results differ from the unbatched baseline".format(label)
        )
        assert out["exchange_rows"] == baseline["exchange_rows"], (
            "{}: batching changed how many tuples moved".format(label)
        )
    best = stats[-1][1]
    ratio = baseline["messages"] / max(1, best["messages"])
    assert ratio >= min_ratio, (
        "messages_sent reduction {:.2f}x is below the {}x floor".format(
            ratio, min_ratio
        )
    )
    return ratio


def exhibit(nodes, samples, expected_rows, stats, ratio):
    from benchmarks._harness import fmt_table

    text = "Ext-F: exchange batching on a rehash join\n"
    text += "({} nodes, {} reading rows + {} attr rows, {} result rows)\n\n".format(
        nodes, nodes * ATTRS_PER_NODE * samples, ATTR_DOMAIN, expected_rows
    )
    table_rows = []
    for label, out in stats:
        table_rows.append((
            label, len(out["rows"]), out["messages"], out["bytes"],
            out["exchange_messages"], out["exchange_rows"],
            out["result_latency"],
        ))
    text += fmt_table(
        ["config", "result rows", "messages", "bytes",
         "exch msgs (hops)", "exch rows", "last row (s)"],
        table_rows,
    )
    text += "\n\nmessages_sent reduction (best batched vs unbatched): {:.2f}x\n".format(
        ratio
    )
    return text


def test_exchange_batching(benchmark):
    from benchmarks._harness import report, run_once

    def run():
        expected_rows, stats = run_sweep()
        ratio = check_sweep(expected_rows, stats, min_ratio=3.0)
        return expected_rows, stats, ratio

    expected_rows, stats, ratio = run_once(benchmark, run)
    report("exchange_batching",
           exhibit(NODES, SAMPLES_PER_ATTR, expected_rows, stats, ratio))
    for label, out in stats:
        benchmark.extra_info[label] = {
            "messages": out["messages"],
            "bytes": out["bytes"],
            "exchange_messages": out["exchange_messages"],
            "result_latency": out["result_latency"],
        }


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="quick 32-node pass (same checks, 2x message floor)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        nodes, samples, min_ratio = SMOKE_NODES, SMOKE_SAMPLES, 2.0
    else:
        nodes, samples, min_ratio = NODES, SAMPLES_PER_ATTR, 3.0
    expected_rows, stats = run_sweep(nodes=nodes, samples=samples)
    ratio = check_sweep(expected_rows, stats, min_ratio)
    print(exhibit(nodes, samples, expected_rows, stats, ratio))
    print("ok: results identical, reduction {:.2f}x >= {}x".format(
        ratio, min_ratio))
    return 0


if __name__ == "__main__":
    import pathlib

    # Run as a script, ``benchmarks`` is not a package on sys.path yet.
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    sys.exit(main())
