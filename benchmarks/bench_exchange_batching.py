"""Ext-F: exchange batching ablation (messages / bytes / latency).

The batching layer holds rehashed rows per routing key for a short
flush window and ships them as one ``deliver_batch`` message, so k
co-keyed rows cost one multi-hop route (plus one hop-ack per hop)
instead of k. This bench quantifies the trade on a rehash join shaped
like the PlanetLab monitoring workload: every host reports a handful of
attributes many samples at a time (so a sender's rows cluster on few
join keys), joined against an attribute-metadata relation.

Sweep: unbatched baseline (``flush_delay = 0``, the original
message-per-row exchange) against two batched configurations. Expected
shape: identical query results row for row, ``exchange_rows`` (tuples
moved) unchanged, total ``messages_sent`` down >= 3x at 100+ nodes,
and a latency price bounded by the flush window (rows wait at the
sender before travelling).

Two further sweeps extend the ablation beyond the rehash join:

* **tree-mode aggregation** -- a grouped SUM/COUNT run through the
  in-network aggregation tree and through plain rehash, batched and
  unbatched: batching must leave the aggregates bit-identical in both
  exchange modes while shrinking hop messages;
* **lossy networks** -- the same aggregation under uniform message
  loss: hop-by-hop acks recover routed (exchange) traffic, and
  per-message dedup ids at the delivery layer (plus same-hop
  retransmit before rerouting) drop the replays those acks used to
  duplicate, so answers must stay near-complete, essentially never
  over-count, and never fabricate groups, with batching no more
  fragile than the per-row wire format.

Run standalone with ``python benchmarks/bench_exchange_batching.py``
(``--smoke`` for a 32-node quick pass usable next to tier-1).
"""

import sys

from repro.core.engine import EngineConfig
from repro.core.network import PierConfig, PierNetwork

NODES = 100
ATTR_DOMAIN = 50
ATTRS_PER_NODE = 4
SAMPLES_PER_ATTR = 12

SMOKE_NODES = 32
SMOKE_SAMPLES = 6

SQL = (
    "SELECT r.attr AS attr, r.sample AS sample, r.origin AS origin, "
    "a.label AS label FROM readings AS r, attrs AS a "
    "WHERE r.attr = a.attr_id"
)

CONFIGS = [
    # (label, flush_delay, max_batch_rows)
    ("unbatched", 0.0, 1),
    ("batch<=8", 0.25, 8),
    ("batch<=64", 0.25, 64),
]


def build_net(seed, nodes, samples, engine):
    net = PierNetwork(nodes=nodes, seed=seed, config=PierConfig(engine=engine))
    net.create_local_table(
        "readings", [("attr", "INT"), ("sample", "INT"), ("origin", "STR")]
    )
    net.create_local_table("attrs", [("attr_id", "INT"), ("label", "STR")])
    addresses = net.addresses()
    for attr in range(ATTR_DOMAIN):
        net.insert(addresses[attr % nodes], "attrs",
                   [(attr, "attr-{}".format(attr))])
    rng = net.rng.fork("workload")
    for address in addresses:
        mine = rng.sample(range(ATTR_DOMAIN), ATTRS_PER_NODE)
        rows = [(attr, s, address) for attr in mine for s in range(samples)]
        net.insert(address, "readings", rows)
    return net


def run_config(seed, nodes, samples, flush_delay, max_batch_rows):
    engine = EngineConfig(flush_delay=flush_delay,
                          max_batch_rows=max_batch_rows)
    net = build_net(seed, nodes, samples, engine)
    site = net.any_address()

    # Timestamp result arrivals at the query site: batching's latency
    # price is how much later the last answer-bearing message lands.
    coordinator = net.node(site).coordinator
    arrivals = []
    inner_on_result = coordinator.on_result

    def stamped_on_result(payload):
        arrivals.append(net.now)
        inner_on_result(payload)

    coordinator.on_result = stamped_on_result

    before = dict(net.message_counters())
    t0 = net.now
    result = net.run_sql(SQL, node=site)
    after = net.message_counters()

    def delta(key):
        return after.get(key, 0) - before.get(key, 0)

    return {
        "rows": sorted(result.rows),
        "messages": delta("messages_sent"),
        "bytes": delta("bytes_sent"),
        "exchange_messages": delta("exchange_messages"),
        "exchange_batches": delta("exchange_batches"),
        "exchange_rows": delta("exchange_rows"),
        "exchange_bytes": delta("exchange_bytes"),
        "result_latency": (max(arrivals) - t0) if arrivals else float("nan"),
    }


def run_sweep(seed=11, nodes=NODES, samples=SAMPLES_PER_ATTR):
    """Run every config on the same workload; returns (expected, stats)."""
    expected_rows = nodes * ATTRS_PER_NODE * samples
    stats = []
    for label, flush_delay, max_batch_rows in CONFIGS:
        out = run_config(seed, nodes, samples, flush_delay, max_batch_rows)
        stats.append((label, out))
    return expected_rows, stats


def check_sweep(expected_rows, stats, min_ratio):
    """Assert the acceptance properties; returns the message ratio."""
    baseline = stats[0][1]
    assert len(baseline["rows"]) == expected_rows, (
        "baseline produced {} rows, expected {}".format(
            len(baseline["rows"]), expected_rows
        )
    )
    for label, out in stats[1:]:
        assert out["rows"] == baseline["rows"], (
            "{}: batched results differ from the unbatched baseline".format(label)
        )
        assert out["exchange_rows"] == baseline["exchange_rows"], (
            "{}: batching changed how many tuples moved".format(label)
        )
    best = stats[-1][1]
    ratio = baseline["messages"] / max(1, best["messages"])
    assert ratio >= min_ratio, (
        "messages_sent reduction {:.2f}x is below the {}x floor".format(
            ratio, min_ratio
        )
    )
    return ratio


# ----------------------------------------------------------------------
# Aggregation sweep: tree-mode vs rehash, clean and lossy
# ----------------------------------------------------------------------
AGG_NODES = 48
AGG_GROUPS = 8
AGG_ROWS_PER_NODE = 12
AGG_SQL = (
    "SELECT g, SUM(v) AS total, COUNT(*) AS n FROM m GROUP BY g"
)
LOSS_RATE = 0.03


def build_agg_net(seed, nodes, flush_delay, loss_rate):
    engine = EngineConfig(flush_delay=flush_delay)
    config = PierConfig(engine=engine, loss_rate=loss_rate)
    net = PierNetwork(nodes=nodes, seed=seed, config=config)
    net.create_local_table("m", [("g", "INT"), ("v", "INT")])
    for i, address in enumerate(net.addresses()):
        rows = [((i + j) % AGG_GROUPS, i + j) for j in range(AGG_ROWS_PER_NODE)]
        net.insert(address, "m", rows)
    return net


def run_agg_config(seed, nodes, tree, flush_delay, loss_rate=0.0):
    net = build_agg_net(seed, nodes, flush_delay, loss_rate)
    before = dict(net.message_counters())
    result = net.run_sql(
        AGG_SQL, options={"aggregation_tree": tree}, extra_time=4.0
    )
    after = net.message_counters()

    def delta(key):
        return after.get(key, 0) - before.get(key, 0)

    return {
        "rows": sorted(result.rows),
        "messages": delta("messages_sent"),
        "exchange_messages": delta("exchange_messages"),
        "exchange_rows": delta("exchange_rows"),
        "lost": delta("messages_lost"),
    }


def run_agg_sweep(seed=13, nodes=AGG_NODES, loss_rate=LOSS_RATE):
    """(label -> stats) for {tree, rehash} x {unbatched, batched} x
    {clean, lossy}."""
    out = {}
    for tree in (True, False):
        mode = "tree" if tree else "rehash"
        for batched in (False, True):
            flush = 0.25 if batched else 0.0
            batch_label = "batched" if batched else "unbatched"
            out["{}/{}".format(mode, batch_label)] = run_agg_config(
                seed, nodes, tree, flush
            )
            out["{}/{}/lossy".format(mode, batch_label)] = run_agg_config(
                seed, nodes, tree, flush, loss_rate
            )
    return out


def check_agg_sweep(stats):
    """Equivalence in clean nets; bounded degradation under loss."""
    reference = stats["rehash/unbatched"]["rows"]
    assert reference, "aggregation produced no groups"
    total_ref = sum(n for _g, _total, n in reference)
    # Clean networks: every mode/batching combination is bit-identical.
    for label in ("rehash/batched", "tree/unbatched", "tree/batched"):
        assert stats[label]["rows"] == reference, (
            "{}: aggregates differ from the rehash/unbatched baseline".format(label)
        )
    # Aggregation ships one (group, states) row per key per node, so
    # there is nothing co-keyed to batch: the batched wire must simply
    # never cost *more* hops than the per-row one.
    for mode in ("rehash", "tree"):
        unbatched = stats["{}/unbatched".format(mode)]
        batched = stats["{}/batched".format(mode)]
        assert batched["exchange_messages"] <= unbatched["exchange_messages"]
    # Lossy networks: no fabricated groups, near-complete counts, and
    # batching no worse than the per-row wire format.
    for mode in ("rehash", "tree"):
        lossy_counts = []
        for batch_label in ("unbatched", "batched"):
            out = stats["{}/{}/lossy".format(mode, batch_label)]
            assert out["lost"] > 0, "loss hook did not drop messages"
            groups_ref = {g for g, _t, _n in reference}
            assert {g for g, _t, _n in out["rows"]} <= groups_ref
            total = sum(n for _g, _t, n in out["rows"])
            # Hop-by-hop acks make routed forwarding at-least-once, but
            # per-message dedup ids at the delivery layer drop the
            # replays, so over-count is bounded to the rare cross-node
            # duplicate (a retry delivered at an heir during ownership
            # ambiguity) -- a few messages, not a few percent. Loss of
            # result-return traffic still under-counts.
            assert 0.75 * total_ref <= total <= 1.02 * total_ref, (
                "{}/{} drifted too far under {}% loss: {}/{}".format(
                    mode, batch_label, LOSS_RATE * 100, total, total_ref
                )
            )
            lossy_counts.append(total)
        # Compare *drift from the truth*, not raw totals: duplication
        # can push the per-row run over the reference, and a batched
        # run closer to the truth must not fail for being smaller.
        drift_unbatched = abs(lossy_counts[0] - total_ref) / total_ref
        drift_batched = abs(lossy_counts[1] - total_ref) / total_ref
        assert drift_batched <= drift_unbatched + 0.15, (
            "{}: batching drifts materially further from the truth "
            "({:.0%} vs {:.0%})".format(mode, drift_batched, drift_unbatched)
        )
    return total_ref


def agg_exhibit(nodes, stats, total_ref):
    from benchmarks._harness import fmt_table

    text = (
        "\n\nAggregation sweep: tree vs rehash, clean and {}% lossy\n"
        "({} nodes, {} rows over {} groups; reference count {})\n\n".format(
            int(LOSS_RATE * 100), nodes, nodes * AGG_ROWS_PER_NODE,
            AGG_GROUPS, total_ref,
        )
    )
    rows = []
    for label in ("rehash/unbatched", "rehash/batched",
                  "tree/unbatched", "tree/batched",
                  "rehash/unbatched/lossy", "rehash/batched/lossy",
                  "tree/unbatched/lossy", "tree/batched/lossy"):
        out = stats[label]
        rows.append((
            label, sum(n for _g, _t, n in out["rows"]),
            out["messages"], out["exchange_messages"],
            out["exchange_rows"], out["lost"],
        ))
    text += fmt_table(
        ["config", "counted rows", "messages", "exch msgs (hops)",
         "exch rows", "lost"],
        rows,
    )
    text += (
        "\n\nnote: grouped partials are one row per key per node, so "
        "batching is structurally\nneutral here (asserted no worse); "
        "the tree rows show in-network combining absorbing\nhops "
        "instead. Hop-by-hop acks make routed forwarding "
        "at-least-once, but exchange\ndelivery is exactly-once per "
        "node: every deliver/deliver_batch carries a dedup id,\n"
        "replays are dropped at the delivery layer, and a silent hop "
        "is retransmitted (same\nid, deduped) before being rerouted. "
        "Lossy counts therefore under-count from lost\nresult traffic "
        "but essentially never over-count (asserted within "
        "[-25%, +2%]) and\nnever fabricate groups.\n"
    )
    return text


def exhibit(nodes, samples, expected_rows, stats, ratio):
    from benchmarks._harness import fmt_table

    text = "Ext-F: exchange batching on a rehash join\n"
    text += "({} nodes, {} reading rows + {} attr rows, {} result rows)\n\n".format(
        nodes, nodes * ATTRS_PER_NODE * samples, ATTR_DOMAIN, expected_rows
    )
    table_rows = []
    for label, out in stats:
        table_rows.append((
            label, len(out["rows"]), out["messages"], out["bytes"],
            out["exchange_messages"], out["exchange_rows"],
            out["result_latency"],
        ))
    text += fmt_table(
        ["config", "result rows", "messages", "bytes",
         "exch msgs (hops)", "exch rows", "last row (s)"],
        table_rows,
    )
    text += "\n\nmessages_sent reduction (best batched vs unbatched): {:.2f}x\n".format(
        ratio
    )
    return text


def test_exchange_batching(benchmark):
    from benchmarks._harness import report, run_once

    def run():
        expected_rows, stats = run_sweep()
        ratio = check_sweep(expected_rows, stats, min_ratio=3.0)
        agg_stats = run_agg_sweep()
        total_ref = check_agg_sweep(agg_stats)
        return expected_rows, stats, ratio, agg_stats, total_ref

    expected_rows, stats, ratio, agg_stats, total_ref = run_once(benchmark, run)
    text = exhibit(NODES, SAMPLES_PER_ATTR, expected_rows, stats, ratio)
    text += agg_exhibit(AGG_NODES, agg_stats, total_ref)
    report("exchange_batching", text)
    for label, out in stats:
        benchmark.extra_info[label] = {
            "messages": out["messages"],
            "bytes": out["bytes"],
            "exchange_messages": out["exchange_messages"],
            "result_latency": out["result_latency"],
        }
    for label, out in agg_stats.items():
        benchmark.extra_info["agg:" + label] = {
            "messages": out["messages"],
            "exchange_messages": out["exchange_messages"],
            "lost": out["lost"],
        }


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="quick 32-node pass (same checks, 2x message floor)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        nodes, samples, min_ratio, agg_nodes = SMOKE_NODES, SMOKE_SAMPLES, 2.0, 24
    else:
        nodes, samples, min_ratio, agg_nodes = (
            NODES, SAMPLES_PER_ATTR, 3.0, AGG_NODES
        )
    expected_rows, stats = run_sweep(nodes=nodes, samples=samples)
    ratio = check_sweep(expected_rows, stats, min_ratio)
    print(exhibit(nodes, samples, expected_rows, stats, ratio))
    agg_stats = run_agg_sweep(nodes=agg_nodes)
    total_ref = check_agg_sweep(agg_stats)
    print(agg_exhibit(agg_nodes, agg_stats, total_ref))
    from benchmarks._harness import write_metrics

    write_metrics("exchange_batching", {
        "parity": True,
        "agg_within_bounds": True,
        "message_reduction": round(ratio, 4),
    }, scale="smoke" if args.smoke else "full")
    print("ok: results identical, reduction {:.2f}x >= {}x; aggregation "
          "sweep (tree + lossy) within bounds".format(ratio, min_ratio))
    return 0


if __name__ == "__main__":
    import pathlib

    # Run as a script, ``benchmarks`` is not a package on sys.path yet.
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    sys.exit(main())
