"""Table 1: the network-wide top ten intrusion-detection rules.

Every node runs Snort locally (synthesized alert tables whose
network-wide totals equal the paper's published counts); PIER computes
the global ranking with one GROUP BY / ORDER BY / LIMIT 10 query,
aggregated in-network. The reproduced table must match the paper's
ranking exactly and the counts verbatim.
"""

from benchmarks._harness import fmt_table, full_scale, report, run_once
from repro.apps.snort import SnortApp
from repro.workloads.planetlab import build_planetlab_network
from repro.workloads.snort_rules import TABLE1_RULES


def test_table1_top10_rules(benchmark):
    num_hosts = 300 if full_scale() else 150

    def run():
        net = build_planetlab_network(num_hosts, seed=2)
        app = SnortApp(net).install()
        result = app.top_rules(10)
        return app, result

    app, result = run_once(benchmark, run)

    rows = [(str(rule), descr, hits) for rule, descr, hits in result.rows]
    text = "Table 1: network-wide top ten intrusion detection rules\n"
    text += "({} hosts; per-node Snort tables; one PIER aggregate query)\n\n".format(
        num_hosts)
    text += fmt_table(["Rule", "Rule Description", "Hits"], rows)
    text += "\n\nPaper's Table 1 for comparison:\n\n"
    text += fmt_table(["Rule", "Rule Description", "Hits"],
                      [(str(r), d, h) for r, d, h in TABLE1_RULES])
    report("table1_top10_intrusions", text)

    assert [(r, d) for r, d, _h in result.rows] == \
        [(r, d) for r, d, _h in TABLE1_RULES]
    assert [h for _r, _d, h in result.rows] == [h for _r, _d, h in TABLE1_RULES]
    benchmark.extra_info["reporters"] = len(result.reporters)
