"""Figure 1: continuous SUM of outbound data rates over responding nodes.

The paper's headline exhibit: PIER on ~300 PlanetLab hosts running a
continuous query that sums each host's outbound data rate, plotted
against time together with the number of responding nodes. The
signature behaviours to reproduce:

* the aggregate tracks the per-node rate processes (it wiggles),
* the responding-node count hovers near the live population and dips
  when hosts churn out, recovering as they return and re-adopt the
  query from the periodic plan refresh,
* a mid-run failure event (we crash 15% of hosts at half time, like a
  site outage) shows up as a sharp dip in both series -- partial
  results, not errors.

Default scale: 120 hosts / 10 simulated minutes (tens of seconds of
wall time). Set PIER_BENCH_SCALE=full for the paper's 300 hosts /
30 minutes.
"""

from benchmarks._harness import fmt_table, full_scale, report, run_once
from repro.apps.monitoring import MonitoringApp
from repro.workloads.planetlab import build_planetlab_network


def test_figure1_continuous_sum(benchmark):
    num_hosts = 300 if full_scale() else 120
    duration = 1800.0 if full_scale() else 600.0
    every = 30.0

    def run():
        net = build_planetlab_network(num_hosts, seed=1)
        app = MonitoringApp(net, sample_period=5.0, window=30.0).install()
        site = net.any_address()
        # Background churn: PlanetLab-like hour-scale sessions.
        net.start_churn(mean_session=3600.0, mean_downtime=180.0,
                        on_join=app.on_join, exclude=[site])
        net.advance(app.window)
        app.start_query(node=site, every=every, lifetime=duration)
        # Mid-run outage: a site-wide failure of ~15% of hosts.
        half = duration / 2
        net.advance(half)
        victims = [a for a in net.live_addresses() if a != site]
        victims = victims[: max(1, int(0.15 * num_hosts))]
        for address in victims:
            net.crash_node(address)
        net.advance(90)
        for address in victims:
            if not net.node(address).alive:
                net.recover_node(address)
                app.on_join(address)
        net.advance(duration - half - 90 + 60)
        return app.series, net

    (series, net) = run_once(benchmark, run)

    rows = [
        (round(t), total, responding)
        for t, total, responding in series
    ]
    text = "Figure 1: continuous SUM(rate_kbps), COUNT over responding nodes\n"
    text += "({} hosts, epoch {}s, churn + mid-run outage at t={}s)\n\n".format(
        num_hosts, int(every), int(duration / 2))
    text += fmt_table(
        ["t (s)", "sum rate (kbps)", "responding nodes"], rows
    )
    report("fig1_continuous_sum", text)

    # Shape assertions, not absolute numbers: the series exists, the
    # aggregate is positive when nodes respond, and the outage dents the
    # responding count which then recovers.
    assert len(series) >= duration / every - 2
    counts = [c for _t, _s, c in series]
    assert max(counts) > 0.8 * num_hosts
    outage_floor = min(counts[len(counts) // 2 - 1: len(counts) // 2 + 3])
    assert outage_floor < max(counts)
    assert counts[-1] > 0.7 * num_hosts  # recovered
    benchmark.extra_info["epochs"] = len(series)
    benchmark.extra_info["max_responding"] = max(counts)
    benchmark.extra_info["min_responding"] = min(counts)
