"""Ext-E: recursive topology mapping (reference [2] of the demo).

Transitive closure over router graphs as a cyclic PIER dataflow:
publish the link relation into the DHT, run WITH RECURSIVE
reachability, verify completeness against networkx ground truth, and
report convergence time (sim) and messages per derived fact.

Expected shape: exact answers on every graph family; time-to-fixpoint
tracks graph *depth* (the ring is worst), not graph size; message cost
scales with the closure size (the number of derived facts), which is
the semi-naive property.
"""

from benchmarks._harness import fmt_table, full_scale, report, run_once
from repro.apps.topology import TopologyApp
from repro.core.network import PierNetwork


def run_graph(kind, n, degree, seed):
    net = PierNetwork(nodes=24, seed=seed)
    app = TopologyApp(net).publish_graph(kind=kind, n=n, seed=seed,
                                         degree=degree)
    truth = app.ground_truth()
    before_msgs = net.message_counters().get("messages_sent", 0)
    t_before = net.now
    handle = net.submit_sql(app.reachability_sql(),
                            options={"recursion_deadline": 90.0})
    net.advance(95)
    result = handle.result(0)
    pairs = {(s, d) for s, d in result.rows}
    elapsed = result.closed_at - t_before
    messages = net.message_counters().get("messages_sent", 0) - before_msgs
    return {
        "edges": app.graph.number_of_edges(),
        "facts": len(pairs),
        "truth": len(truth),
        "exact": pairs == truth,
        "sim_seconds": elapsed,
        "messages": messages,
    }


def test_recursive_topology(benchmark):
    graphs = [
        ("ring", 16, 1),
        ("scale_free", 24, 4),
        ("random", 24, 3),
    ]
    if full_scale():
        graphs.append(("scale_free", 48, 4))

    def run():
        rows = []
        for kind, n, degree in graphs:
            stats = run_graph(kind, n, degree, seed=17)
            rows.append((
                "{}({})".format(kind, n), stats["edges"], stats["facts"],
                stats["truth"], "yes" if stats["exact"] else "NO",
                round(stats["sim_seconds"], 1),
                round(stats["messages"] / max(1, stats["facts"]), 1),
            ))
        return rows

    rows = run_once(benchmark, run)

    text = "Ext-E: recursive reachability over router graphs\n"
    text += "(24-node PIER testbed; link table DHT-partitioned on src)\n\n"
    text += fmt_table(
        ["graph", "edges", "derived facts", "ground truth", "exact",
         "sim s to fixpoint", "msgs/fact"],
        rows,
    )
    report("recursive_topology", text)

    for row in rows:
        assert row[4] == "yes", row[0]
    # The ring (depth N) converges slower than the shallow scale-free
    # graph despite having far fewer edges.
    ring = next(r for r in rows if r[0].startswith("ring"))
    sf = next(r for r in rows if r[0].startswith("scale_free"))
    assert ring[5] > sf[5] * 0.8
