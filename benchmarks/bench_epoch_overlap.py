"""Ext-H: the N-live-epoch ring vs rebuild-per-epoch.

PR 4 retires the rebuild path: a standing execution now keeps an
*epoch ring* of N live epoch states (``QueryPlan.epoch_overlap``, the
ceiling of the plan's flush horizon over its period), so continuous
plans whose flushes span several periods -- and bloom-join plans,
whose per-epoch filter round-trip used to force a rebuild -- run as
one long-lived ``StandingExecution`` per node.

Two sweeps quantify that:

* **overlap sweep** -- the fig1-style continuous SUM/COUNT with the
  flush horizon pinned (~9.1s) and the epoch period swept so the
  horizon/period ratio covers {1, 2, 4, 8}: the planner widens the
  ring accordingly (N = ratio), and at every ratio the standing run
  must produce per-epoch answers identical to rebuild while scanning
  fewer rows (subscription deltas vs full-deque re-scans) and moving
  fewer messages per epoch (owner-cached one-hop exchanges vs fresh
  O(log N) walks);
* **bloom join** -- a continuous Bloom-filtered equi-join run standing
  vs rebuild: identical rows every epoch, with the standing run no
  more expensive in messages.

Run standalone with ``python benchmarks/bench_epoch_overlap.py``
(``--smoke`` for a quick pass usable next to tier-1).
"""

import math
import sys

from repro.core.network import PierConfig, PierNetwork
from repro.core.planner import PlannerTiming

RATIOS = (1, 2, 4, 8)
NODES = 20
SAMPLE_PERIOD = 0.5
RETENTION = 20.0
BASE_EVERY = 10.0  # ratio r runs with period BASE_EVERY / r

SMOKE_RATIOS = (1, 2, 4)
SMOKE_NODES = 12

SQL = (
    "SELECT SUM(rate_kbps) AS total_rate, COUNT(*) AS samples "
    "FROM node_stats EVERY {} SECONDS WINDOW {} SECONDS "
    "LIFETIME {} SECONDS"
)

BLOOM_SQL = (
    "SELECT r.k AS k, r.v AS v, s2.w AS w FROM r, s2 WHERE r.k = s2.k "
    "EVERY 12 SECONDS LIFETIME 36 SECONDS"
)


def _timing():
    """Stretch the rehash transfer so the flush horizon is ~9.1s (the
    tree plan's natural horizon): sweeping the period then sweeps the
    horizon/period ratio without touching the dataflow shape."""
    return PlannerTiming(rehash_xfer=6.0)


def build_net(seed, nodes):
    net = PierNetwork(nodes=nodes, seed=seed,
                      config=PierConfig(timing=_timing()))
    net.create_stream_table(
        "node_stats", [("rate_kbps", "FLOAT")], window=RETENTION
    )
    rng = net.rng.fork("rates")

    def make_ticker(address, base):
        step = [0]

        def tick():
            engine = net.node(address).engine
            step[0] += 1
            engine.stream_append("node_stats", (base + (step[0] % 7),))
            engine.set_timer(SAMPLE_PERIOD, tick)

        return tick

    for address in net.addresses():
        tick = make_ticker(address, 10.0 + 90.0 * rng.random())
        net.node(address).engine.set_timer(0.05, tick)
    return net


def run_overlap_config(seed, nodes, ratio, standing):
    every = BASE_EVERY / ratio
    lifetime = max(6.0 * every, 12.0)
    net = build_net(seed, nodes)
    net.advance(RETENTION)  # fill the retention deque for both paths
    before = dict(net.message_counters())
    scans_before = sum(n.engine.rows_scanned for n in net.nodes.values())
    options = {"aggregation_tree": False}
    if not standing:
        options["standing"] = False
    results = []
    sql = SQL.format(every, every, lifetime)
    handle = net.submit_sql(sql, node=net.any_address(),
                            on_epoch=results.append, options=options)
    assert handle.plan.standing == standing
    if standing:
        assert handle.plan.epoch_overlap == ratio, (
            "ratio {} planned a ring of {}".format(
                ratio, handle.plan.epoch_overlap)
        )
    net.advance(lifetime + handle.plan.deadline + 5.0)
    after = net.message_counters()
    scans_after = sum(n.engine.rows_scanned for n in net.nodes.values())
    epochs = {r.epoch: sorted(r.rows) for r in results}
    return {
        "epochs": epochs,
        "num_epochs": len(epochs),
        "ring": handle.plan.epoch_overlap if standing else 0,
        "messages": after.get("messages_sent", 0) - before.get("messages_sent", 0),
        "rows_scanned": scans_after - scans_before,
    }


def _rows_match(a, b):
    """Row-set equality with float tolerance (merge order differs)."""
    if len(a) != len(b):
        return False
    for row_a, row_b in zip(a, b):
        if len(row_a) != len(row_b):
            return False
        for va, vb in zip(row_a, row_b):
            if isinstance(va, float) or isinstance(vb, float):
                if not math.isclose(va, vb, rel_tol=1e-9, abs_tol=1e-9):
                    return False
            elif va != vb:
                return False
    return True


def run_overlap_sweep(seed, nodes, ratios):
    stats = {}
    for ratio in ratios:
        stats[ratio] = {
            "standing": run_overlap_config(seed, nodes, ratio, True),
            "rebuild": run_overlap_config(seed, nodes, ratio, False),
        }
    return stats


def check_overlap_sweep(stats):
    """Parity everywhere; resource wins, asserted at 4x overlap."""
    ratios_out = {}
    for ratio, pair in stats.items():
        standing, rebuild = pair["standing"], pair["rebuild"]
        assert rebuild["num_epochs"] >= 4, (
            "ratio {}: only {} epochs".format(ratio, rebuild["num_epochs"])
        )
        shared = set(standing["epochs"]) & set(rebuild["epochs"])
        assert len(shared) >= 4, (
            "ratio {}: paths shared only {} epochs".format(ratio, len(shared))
        )
        for k in shared:
            assert _rows_match(standing["epochs"][k], rebuild["epochs"][k]), (
                "ratio {}: epoch {} diverged (rebuild {!r} vs standing "
                "{!r})".format(ratio, k, rebuild["epochs"][k],
                               standing["epochs"][k])
            )
        ratios_out[ratio] = {
            "scan": rebuild["rows_scanned"] / max(1, standing["rows_scanned"]),
            "msgs_per_epoch": (
                (rebuild["messages"] / max(1, rebuild["num_epochs"]))
                / max(1.0, standing["messages"] / max(1, standing["num_epochs"]))
            ),
        }
    for ratio, pair in stats.items():
        if ratio < 4:
            continue
        standing, rebuild = pair["standing"], pair["rebuild"]
        # The acceptance bar: at >=4x overlap the ring must beat
        # rebuild on both axes, not just match it.
        assert standing["rows_scanned"] < rebuild["rows_scanned"], (
            "ratio {}: standing did not scan fewer rows".format(ratio)
        )
        per_epoch_standing = standing["messages"] / max(1, standing["num_epochs"])
        per_epoch_rebuild = rebuild["messages"] / max(1, rebuild["num_epochs"])
        assert per_epoch_standing < per_epoch_rebuild, (
            "ratio {}: standing moved {} msgs/epoch vs rebuild {}".format(
                ratio, per_epoch_standing, per_epoch_rebuild)
        )
    return ratios_out


# ----------------------------------------------------------------------
# Bloom-join leg
# ----------------------------------------------------------------------
def run_bloom_config(seed, nodes, standing):
    net = PierNetwork(nodes=nodes, seed=seed)
    net.create_local_table("r", [("k", "INT"), ("v", "INT")])
    net.create_local_table("s2", [("k", "INT"), ("w", "INT")])
    for i, address in enumerate(net.addresses()):
        net.insert(address, "r", [((i + j) % 8, 10 + j) for j in range(3)])
        net.insert(address, "s2", [((2 * i + j) % 16, 100 + j) for j in range(2)])
    options = {"join_strategy": "bloom"}
    if not standing:
        options["standing"] = False
    before = dict(net.message_counters())
    results = []
    handle = net.submit_sql(BLOOM_SQL, node=net.any_address(),
                            on_epoch=results.append, options=options)
    assert handle.plan.standing == standing
    assert handle.plan.ops_of_kind("bloom_stage")
    net.advance(36.0 + handle.plan.deadline + 5.0)
    after = net.message_counters()
    return {
        "epochs": {r.epoch: sorted(r.rows) for r in results},
        "num_epochs": len(results),
        "messages": after.get("messages_sent", 0) - before.get("messages_sent", 0),
    }


def check_bloom(standing, rebuild):
    assert standing["num_epochs"] >= 3
    assert set(standing["epochs"]) == set(rebuild["epochs"])
    for k in standing["epochs"]:
        assert standing["epochs"][k] == rebuild["epochs"][k], (
            "bloom epoch {}: standing != rebuild".format(k)
        )
        assert standing["epochs"][k], "bloom join produced no rows"
    assert standing["messages"] < rebuild["messages"], (
        "standing bloom moved more messages ({} vs {})".format(
            standing["messages"], rebuild["messages"])
    )
    return rebuild["messages"] / max(1, standing["messages"])


def exhibit(nodes, stats, ratios_out, bloom_standing, bloom_rebuild,
            bloom_ratio):
    from benchmarks._harness import fmt_table

    text = "Ext-H: N-live-epoch ring vs rebuild-per-epoch\n"
    text += ("({} nodes, flush horizon ~9.1s, period swept so "
             "horizon/period = ring width N;\n sample every {}s, "
             "retention {}s)\n\n".format(nodes, SAMPLE_PERIOD,
                                         int(RETENTION)))
    rows = []
    for ratio in sorted(stats):
        for label in ("rebuild", "standing"):
            out = stats[ratio][label]
            rows.append((
                "{}x/{}".format(ratio, label),
                out["ring"] if label == "standing" else "-",
                out["num_epochs"],
                out["messages"],
                round(out["messages"] / max(1, out["num_epochs"])),
                out["rows_scanned"],
            ))
    text += fmt_table(
        ["config", "ring N", "epochs", "messages", "msgs/epoch",
         "rows scanned"],
        rows,
    )
    text += "\n\nper-epoch results: standing identical to rebuild at every ratio\n"
    for ratio in sorted(ratios_out):
        r = ratios_out[ratio]
        text += ("ratio {}x: rows-scanned reduction {:.2f}x, "
                 "msgs/epoch reduction {:.2f}x\n".format(
                     ratio, r["scan"], r["msgs_per_epoch"]))
    text += (
        "\nbloom join (standing vs rebuild): identical rows every epoch, "
        "{:.2f}x fewer messages\n  rebuild {} msgs / standing {} msgs over "
        "{} epochs\n".format(
            bloom_ratio, bloom_rebuild["messages"],
            bloom_standing["messages"], bloom_standing["num_epochs"])
    )
    return text


def run_all(seed, nodes, ratios):
    stats = run_overlap_sweep(seed, nodes, ratios)
    ratios_out = check_overlap_sweep(stats)
    bloom_standing = run_bloom_config(seed, nodes, True)
    bloom_rebuild = run_bloom_config(seed, nodes, False)
    bloom_ratio = check_bloom(bloom_standing, bloom_rebuild)
    return stats, ratios_out, bloom_standing, bloom_rebuild, bloom_ratio


def test_epoch_overlap(benchmark):
    from benchmarks._harness import report, run_once

    def run():
        return run_all(seed=7, nodes=NODES, ratios=RATIOS)

    stats, ratios_out, bloom_s, bloom_r, bloom_ratio = run_once(benchmark, run)
    report("epoch_overlap",
           exhibit(NODES, stats, ratios_out, bloom_s, bloom_r, bloom_ratio))
    for ratio, out in ratios_out.items():
        benchmark.extra_info["ratio_{}".format(ratio)] = out
    benchmark.extra_info["bloom_msg_ratio"] = bloom_ratio


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="quick 12-node pass over ratios {1,2,4} (same checks)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        nodes, ratios = SMOKE_NODES, SMOKE_RATIOS
    else:
        nodes, ratios = NODES, RATIOS
    stats, ratios_out, bloom_s, bloom_r, bloom_ratio = run_all(
        seed=7, nodes=nodes, ratios=ratios
    )
    text = exhibit(nodes, stats, ratios_out, bloom_s, bloom_r, bloom_ratio)
    print(text)
    from benchmarks._harness import write_metrics

    metrics = {"parity": True,
               "bloom_msgs_ratio": round(bloom_ratio, 4)}
    for ratio, r in ratios_out.items():
        metrics["scan_ratio_{}x".format(ratio)] = round(r["scan"], 4)
        metrics["msgs_ratio_{}x".format(ratio)] = round(
            r["msgs_per_epoch"], 4)
    write_metrics("epoch_overlap", metrics,
                  scale="smoke" if args.smoke else "full")
    if not args.smoke:
        from benchmarks._harness import report

        report("epoch_overlap", text)
    worst = max(ratios_out)
    print("ok: parity at every ratio; at {}x overlap rows scanned "
          "{:.2f}x lower and msgs/epoch {:.2f}x lower than rebuild; "
          "bloom standing {:.2f}x fewer messages".format(
              worst, ratios_out[worst]["scan"],
              ratios_out[worst]["msgs_per_epoch"], bloom_ratio))
    return 0


if __name__ == "__main__":
    import pathlib

    # Run as a script, ``benchmarks`` is not a package on sys.path yet.
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    sys.exit(main())
