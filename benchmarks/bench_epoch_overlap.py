"""Ext-H: the N-live-epoch ring vs per-epoch re-submission.

PR 4 retired the rebuild path: a standing execution keeps an *epoch
ring* of N live epoch states (``QueryPlan.epoch_overlap``, the ceiling
of the plan's flush horizon over its period), so continuous plans
whose flushes span several periods -- and bloom-join plans, whose
per-epoch filter round-trip used to force a rebuild -- run as one
long-lived ``StandingExecution`` per node.

Two sweeps quantify that against the polling discipline the rebuild
path emulated (a fresh one-shot query submitted at every epoch
boundary):

* **overlap sweep** -- the fig1-style continuous SUM/COUNT with the
  flush horizon pinned (~9.1s) and the epoch period swept so the
  horizon/period ratio covers {1, 2, 4, 8}: the planner widens the
  ring accordingly (N = ratio), and at every ratio the standing run
  must produce per-epoch answers identical to the polls while
  scanning fewer rows (subscription deltas vs full-deque re-scans)
  and moving fewer messages per epoch (one broadcast and owner-cached
  exchanges vs per-poll re-submission);
* **bloom join** -- a continuous Bloom-filtered equi-join run standing
  vs one-shot polls: identical rows every epoch, with the standing
  run strictly cheaper in messages.

Run standalone with ``python benchmarks/bench_epoch_overlap.py``
(``--smoke`` for a quick pass usable next to tier-1).
"""

import math
import sys

from repro.core.network import PierConfig, PierNetwork
from repro.core.planner import PlannerTiming

RATIOS = (1, 2, 4, 8)
NODES = 20
SAMPLE_PERIOD = 0.5
RETENTION = 20.0
BASE_EVERY = 10.0  # ratio r runs with period BASE_EVERY / r

SMOKE_RATIOS = (1, 2, 4)
SMOKE_NODES = 12

SQL = (
    "SELECT SUM(rate_kbps) AS total_rate, COUNT(*) AS samples "
    "FROM node_stats EVERY {} SECONDS WINDOW {} SECONDS "
    "LIFETIME {} SECONDS"
)

ONESHOT_SQL = (
    "SELECT SUM(rate_kbps) AS total_rate, COUNT(*) AS samples "
    "FROM node_stats WINDOW {} SECONDS"
)

BLOOM_SQL = (
    "SELECT r.k AS k, r.v AS v, s2.w AS w FROM r, s2 WHERE r.k = s2.k "
    "EVERY 12 SECONDS LIFETIME 36 SECONDS"
)

BLOOM_ONESHOT_SQL = (
    "SELECT r.k AS k, r.v AS v, s2.w AS w FROM r, s2 WHERE r.k = s2.k"
)


def _timing():
    """Stretch the rehash transfer so the flush horizon is ~9.1s (the
    tree plan's natural horizon): sweeping the period then sweeps the
    horizon/period ratio without touching the dataflow shape."""
    return PlannerTiming(rehash_xfer=6.0)


def build_net(seed, nodes):
    net = PierNetwork(nodes=nodes, seed=seed,
                      config=PierConfig(timing=_timing()))
    net.create_stream_table(
        "node_stats", [("rate_kbps", "FLOAT")], window=RETENTION
    )
    rng = net.rng.fork("rates")

    def make_ticker(address, base):
        step = [0]

        def tick():
            engine = net.node(address).engine
            step[0] += 1
            engine.stream_append("node_stats", (base + (step[0] % 7),))
            engine.set_timer(SAMPLE_PERIOD, tick)

        return tick

    for address in net.addresses():
        tick = make_ticker(address, 10.0 + 90.0 * rng.random())
        net.node(address).engine.set_timer(0.05, tick)
    return net


def run_overlap_standing(seed, nodes, ratio):
    every = BASE_EVERY / ratio
    lifetime = max(6.0 * every, 12.0)
    net = build_net(seed, nodes)
    net.advance(RETENTION)  # fill the retention deque for both paths
    before = dict(net.message_counters())
    scans_before = sum(n.engine.rows_scanned for n in net.nodes.values())
    results = []
    sql = SQL.format(every, every, lifetime)
    handle = net.submit_sql(sql, node=net.any_address(),
                            on_epoch=results.append,
                            options={"aggregation_tree": False})
    assert handle.plan.standing
    assert handle.plan.epoch_overlap == ratio, (
        "ratio {} planned a ring of {}".format(
            ratio, handle.plan.epoch_overlap)
    )
    net.advance(lifetime + handle.plan.deadline + 5.0)
    after = net.message_counters()
    scans_after = sum(n.engine.rows_scanned for n in net.nodes.values())
    epochs = {r.epoch: sorted(r.rows) for r in results}
    return {
        "epochs": epochs,
        "num_epochs": len(epochs),
        "ring": handle.plan.epoch_overlap,
        "messages": after.get("messages_sent", 0) - before.get("messages_sent", 0),
        "rows_scanned": scans_after - scans_before,
    }


def run_overlap_oneshot(seed, nodes, ratio):
    """Poll with a one-shot windowed query at every epoch boundary."""
    every = BASE_EVERY / ratio
    lifetime = max(6.0 * every, 12.0)
    net = build_net(seed, nodes)
    net.advance(RETENTION)
    before = dict(net.message_counters())
    scans_before = sum(n.engine.rows_scanned for n in net.nodes.values())
    site = net.any_address()
    sql = ONESHOT_SQL.format(every)
    pending = []
    for k in range(1, int(round(lifetime / every)) + 1):
        net.advance(every)
        results = []
        handle = net.submit_sql(sql, node=site, on_epoch=results.append,
                                options={"aggregation_tree": False})
        assert not handle.plan.standing
        pending.append((k, handle, results))
    net.advance(max(h.plan.deadline for _k, h, _r in pending) + 5.0)
    after = net.message_counters()
    scans_after = sum(n.engine.rows_scanned for n in net.nodes.values())
    epochs = {
        k: sorted(results[-1].rows) if results else []
        for k, _h, results in pending
    }
    return {
        "epochs": epochs,
        "num_epochs": len(epochs),
        "ring": 0,
        "messages": after.get("messages_sent", 0) - before.get("messages_sent", 0),
        "rows_scanned": scans_after - scans_before,
    }


def _rows_match(a, b):
    """Row-set equality with float tolerance (merge order differs)."""
    if len(a) != len(b):
        return False
    for row_a, row_b in zip(a, b):
        if len(row_a) != len(row_b):
            return False
        for va, vb in zip(row_a, row_b):
            if isinstance(va, float) or isinstance(vb, float):
                if not math.isclose(va, vb, rel_tol=1e-9, abs_tol=1e-9):
                    return False
            elif va != vb:
                return False
    return True


def run_overlap_sweep(seed, nodes, ratios):
    stats = {}
    for ratio in ratios:
        stats[ratio] = {
            "standing": run_overlap_standing(seed, nodes, ratio),
            "oneshot": run_overlap_oneshot(seed, nodes, ratio),
        }
    return stats


def check_overlap_sweep(stats):
    """Parity everywhere; resource wins, asserted at 4x overlap."""
    ratios_out = {}
    for ratio, pair in stats.items():
        standing, oneshot = pair["standing"], pair["oneshot"]
        assert oneshot["num_epochs"] >= 4, (
            "ratio {}: only {} epochs".format(ratio, oneshot["num_epochs"])
        )
        shared = set(standing["epochs"]) & set(oneshot["epochs"])
        assert len(shared) >= 4, (
            "ratio {}: paths shared only {} epochs".format(ratio, len(shared))
        )
        for k in shared:
            assert _rows_match(standing["epochs"][k], oneshot["epochs"][k]), (
                "ratio {}: epoch {} diverged (oneshot {!r} vs standing "
                "{!r})".format(ratio, k, oneshot["epochs"][k],
                               standing["epochs"][k])
            )
        ratios_out[ratio] = {
            "scan": oneshot["rows_scanned"] / max(1, standing["rows_scanned"]),
            "msgs_per_epoch": (
                (oneshot["messages"] / max(1, oneshot["num_epochs"]))
                / max(1.0, standing["messages"] / max(1, standing["num_epochs"]))
            ),
        }
    for ratio, pair in stats.items():
        if ratio < 4:
            continue
        standing, oneshot = pair["standing"], pair["oneshot"]
        # The acceptance bar: at >=4x overlap the ring must beat
        # per-epoch polling on both axes, not just match it.
        assert standing["rows_scanned"] < oneshot["rows_scanned"], (
            "ratio {}: standing did not scan fewer rows".format(ratio)
        )
        per_epoch_standing = standing["messages"] / max(1, standing["num_epochs"])
        per_epoch_oneshot = oneshot["messages"] / max(1, oneshot["num_epochs"])
        assert per_epoch_standing < per_epoch_oneshot, (
            "ratio {}: standing moved {} msgs/epoch vs oneshot {}".format(
                ratio, per_epoch_standing, per_epoch_oneshot)
        )
    return ratios_out


# ----------------------------------------------------------------------
# Bloom-join leg
# ----------------------------------------------------------------------
def _bloom_net(seed, nodes):
    net = PierNetwork(nodes=nodes, seed=seed)
    net.create_local_table("r", [("k", "INT"), ("v", "INT")])
    net.create_local_table("s2", [("k", "INT"), ("w", "INT")])
    for i, address in enumerate(net.addresses()):
        net.insert(address, "r", [((i + j) % 8, 10 + j) for j in range(3)])
        net.insert(address, "s2", [((2 * i + j) % 16, 100 + j) for j in range(2)])
    return net


def run_bloom_standing(seed, nodes):
    net = _bloom_net(seed, nodes)
    before = dict(net.message_counters())
    results = []
    handle = net.submit_sql(BLOOM_SQL, node=net.any_address(),
                            on_epoch=results.append,
                            options={"join_strategy": "bloom"})
    assert handle.plan.standing
    assert handle.plan.ops_of_kind("bloom_stage")
    net.advance(36.0 + handle.plan.deadline + 5.0)
    after = net.message_counters()
    return {
        "epochs": {r.epoch: sorted(r.rows) for r in results},
        "num_epochs": len(results),
        "messages": after.get("messages_sent", 0) - before.get("messages_sent", 0),
    }


def run_bloom_oneshot(seed, nodes):
    net = _bloom_net(seed, nodes)
    before = dict(net.message_counters())
    site = net.any_address()
    pending = []
    for k in range(1, 4):  # the standing leg's 3 epochs, polled
        net.advance(12.0)
        results = []
        handle = net.submit_sql(BLOOM_ONESHOT_SQL, node=site,
                                on_epoch=results.append,
                                options={"join_strategy": "bloom"})
        assert not handle.plan.standing
        assert handle.plan.ops_of_kind("bloom_stage")
        pending.append((k, handle, results))
    net.advance(max(h.plan.deadline for _k, h, _r in pending) + 5.0)
    after = net.message_counters()
    return {
        "epochs": {
            k: sorted(results[-1].rows) if results else []
            for k, _h, results in pending
        },
        "num_epochs": len(pending),
        "messages": after.get("messages_sent", 0) - before.get("messages_sent", 0),
    }


def check_bloom(standing, oneshot):
    assert standing["num_epochs"] >= 3
    assert set(standing["epochs"]) == set(oneshot["epochs"])
    for k in standing["epochs"]:
        assert standing["epochs"][k] == oneshot["epochs"][k], (
            "bloom epoch {}: standing != oneshot".format(k)
        )
        assert standing["epochs"][k], "bloom join produced no rows"
    assert standing["messages"] < oneshot["messages"], (
        "standing bloom moved more messages ({} vs {})".format(
            standing["messages"], oneshot["messages"])
    )
    return oneshot["messages"] / max(1, standing["messages"])


def exhibit(nodes, stats, ratios_out, bloom_standing, bloom_oneshot,
            bloom_ratio):
    from benchmarks._harness import fmt_table

    text = "Ext-H: N-live-epoch ring vs per-epoch polling\n"
    text += ("({} nodes, flush horizon ~9.1s, period swept so "
             "horizon/period = ring width N;\n sample every {}s, "
             "retention {}s)\n\n".format(nodes, SAMPLE_PERIOD,
                                         int(RETENTION)))
    rows = []
    for ratio in sorted(stats):
        for label in ("oneshot", "standing"):
            out = stats[ratio][label]
            rows.append((
                "{}x/{}".format(ratio, label),
                out["ring"] if label == "standing" else "-",
                out["num_epochs"],
                out["messages"],
                round(out["messages"] / max(1, out["num_epochs"])),
                out["rows_scanned"],
            ))
    text += fmt_table(
        ["config", "ring N", "epochs", "messages", "msgs/epoch",
         "rows scanned"],
        rows,
    )
    text += ("\n\nper-epoch results: standing identical to one-shot polls "
             "at every ratio\n")
    for ratio in sorted(ratios_out):
        r = ratios_out[ratio]
        text += ("ratio {}x: rows-scanned reduction {:.2f}x, "
                 "msgs/epoch reduction {:.2f}x\n".format(
                     ratio, r["scan"], r["msgs_per_epoch"]))
    text += (
        "\nbloom join (standing vs polling): identical rows every epoch, "
        "{:.2f}x fewer messages\n  oneshot {} msgs / standing {} msgs over "
        "{} epochs\n".format(
            bloom_ratio, bloom_oneshot["messages"],
            bloom_standing["messages"], bloom_standing["num_epochs"])
    )
    return text


def run_all(seed, nodes, ratios):
    stats = run_overlap_sweep(seed, nodes, ratios)
    ratios_out = check_overlap_sweep(stats)
    bloom_standing = run_bloom_standing(seed, nodes)
    bloom_oneshot = run_bloom_oneshot(seed, nodes)
    bloom_ratio = check_bloom(bloom_standing, bloom_oneshot)
    return stats, ratios_out, bloom_standing, bloom_oneshot, bloom_ratio


def test_epoch_overlap(benchmark):
    from benchmarks._harness import report, run_once

    def run():
        return run_all(seed=7, nodes=NODES, ratios=RATIOS)

    stats, ratios_out, bloom_s, bloom_o, bloom_ratio = run_once(benchmark, run)
    report("epoch_overlap",
           exhibit(NODES, stats, ratios_out, bloom_s, bloom_o, bloom_ratio))
    for ratio, out in ratios_out.items():
        benchmark.extra_info["ratio_{}".format(ratio)] = out
    benchmark.extra_info["bloom_msg_ratio"] = bloom_ratio


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="quick 12-node pass over ratios {1,2,4} (same checks)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        nodes, ratios = SMOKE_NODES, SMOKE_RATIOS
    else:
        nodes, ratios = NODES, RATIOS
    stats, ratios_out, bloom_s, bloom_o, bloom_ratio = run_all(
        seed=7, nodes=nodes, ratios=ratios
    )
    text = exhibit(nodes, stats, ratios_out, bloom_s, bloom_o, bloom_ratio)
    print(text)
    from benchmarks._harness import write_metrics

    metrics = {"parity": True,
               "bloom_msgs_ratio": round(bloom_ratio, 4)}
    for ratio, r in ratios_out.items():
        metrics["scan_ratio_{}x".format(ratio)] = round(r["scan"], 4)
        metrics["msgs_ratio_{}x".format(ratio)] = round(r["msgs_per_epoch"], 4)
    write_metrics("epoch_overlap", metrics,
                  scale="smoke" if args.smoke else "full")
    print("ok: ring parity holds at every ratio; bloom join standing is "
          "{:.2f}x cheaper in messages".format(bloom_ratio))
    return 0


if __name__ == "__main__":
    import pathlib

    # Run as a script, ``benchmarks`` is not a package on sys.path yet.
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    sys.exit(main())
