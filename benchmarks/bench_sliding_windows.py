"""Ext-H: paned sliding-window aggregation vs from-scratch recomputation.

The fig1 continuous-sum workload with *overlapping* windows
(``WINDOW > EVERY``): every host samples its outbound rate into a
stream table; one standing continuous query aggregates the
network-wide SUM and sample COUNT. Two evaluation disciplines on
identical testbeds, swept over the ``WINDOW/EVERY`` ratio:

* ``scratch`` -- the pre-pane discipline (``paned=False`` ablation):
  the standing scan re-emits the window overlap every epoch and the
  group-by partial re-folds the whole window from raw rows;
* ``paned``   -- scans bucket each row once into a pane of width
  ``gcd(WINDOW, EVERY)``; the group-by partial keeps pane partials and
  slides an invertible running window (merge arriving panes, unmerge
  expired ones), so per-epoch folding is O(EVERY) rows instead of
  O(WINDOW).

A second exhibit covers the *overlapping-epoch* half of the feature: a
tree-aggregation plan whose final flush lands ~8.7s after each 6s
boundary used to force rebuild-per-epoch; it must now run as one
long-lived StandingExecution per node (two live epoch states) with
answers identical to polling the same window with one-shot queries.

Acceptance properties asserted here:

* per-epoch results are identical between paned and from-scratch for
  every swept ratio (and between standing-overlap and one-shot polls);
* at ``WINDOW/EVERY = 4`` the paned path folds >= 2x fewer rows into
  aggregation state per epoch;
* the overlapping-flush plan is planned standing+overlapping and every
  engine runs it as a StandingExecution end to end.

Run standalone with ``python benchmarks/bench_sliding_windows.py``
(``--smoke`` for a quick pass usable next to tier-1).
"""

import math
import sys

from repro.core.dataflow import StandingExecution
from repro.core.network import PierConfig, PierNetwork

NODES = 48
EVERY = 10.0
RATIOS = (1, 2, 4, 8)
LIFETIME = 80.0
SAMPLE_PERIOD = 2.0

SMOKE_NODES = 16
SMOKE_RATIOS = (1, 4)
SMOKE_LIFETIME = 60.0

OVERLAP_NODES = 12
OVERLAP_EVERY = 6.0
OVERLAP_LIFETIME = 48.0

SQL = (
    "SELECT SUM(rate_kbps) AS total_rate, COUNT(*) AS samples "
    "FROM node_stats EVERY {} SECONDS WINDOW {} SECONDS "
    "LIFETIME {} SECONDS"
)


def build_net(seed, nodes, retention):
    net = PierNetwork(nodes=nodes, seed=seed, config=PierConfig())
    net.create_stream_table(
        "node_stats", [("rate_kbps", "FLOAT")], window=retention
    )
    rng = net.rng.fork("rates")

    def make_ticker(address, base):
        step = [0]

        def tick():
            engine = net.node(address).engine
            step[0] += 1
            engine.stream_append("node_stats", (base + (step[0] % 7),))
            engine.set_timer(SAMPLE_PERIOD, tick)

        return tick

    for address in net.addresses():
        tick = make_ticker(address, 10.0 + 90.0 * rng.random())
        net.node(address).engine.set_timer(0.1, tick)
    return net


def run_config(seed, nodes, every, window, lifetime, paned):
    net = build_net(seed, nodes, retention=window + every)
    net.advance(window)  # fill the first window
    scans_before = sum(n.engine.rows_scanned for n in net.nodes.values())
    options = {} if paned else {"paned": False}
    results = []
    sql = SQL.format(int(every), int(window), int(lifetime))
    handle = net.submit_sql(sql, node=net.any_address(),
                            on_epoch=results.append, options=options)
    assert handle.plan.standing
    assert (handle.plan.pane is not None) == (paned and window > every)
    net.advance(lifetime + handle.plan.deadline + 5.0)
    folded = sum(n.engine.rows_aggregated for n in net.nodes.values())
    scanned = (sum(n.engine.rows_scanned for n in net.nodes.values())
               - scans_before)
    epochs = {r.epoch: sorted(r.rows) for r in results}
    return {
        "epochs": epochs,
        "num_epochs": len(results),
        "rows_folded": folded,
        "rows_scanned": scanned,
    }


def run_sweep(seed=7, nodes=NODES, every=EVERY, ratios=RATIOS,
              lifetime=LIFETIME):
    out = {}
    for ratio in ratios:
        window = ratio * every
        for paned in (False, True):
            label = "W/E={}/{}".format(ratio, "paned" if paned else "scratch")
            out[label] = run_config(seed, nodes, every, window, lifetime, paned)
    return out


def _rows_match(a, b):
    """Row-set equality with float tolerance: sliding a window with
    merge/unmerge reassociates float sums, which legitimately perturbs
    them by an ulp relative to a from-scratch refold."""
    if len(a) != len(b):
        return False
    for row_a, row_b in zip(a, b):
        if len(row_a) != len(row_b):
            return False
        for va, vb in zip(row_a, row_b):
            if isinstance(va, float) or isinstance(vb, float):
                if not math.isclose(va, vb, rel_tol=1e-9, abs_tol=1e-9):
                    return False
            elif va != vb:
                return False
    return True


def check_sweep(stats, ratios):
    """Assert per-epoch parity and the fold reduction; returns ratios."""
    fold_ratios = {}
    for ratio in ratios:
        scratch = stats["W/E={}/scratch".format(ratio)]
        paned = stats["W/E={}/paned".format(ratio)]
        assert scratch["num_epochs"] >= 4, "workload produced too few epochs"
        assert set(paned["epochs"]) == set(scratch["epochs"]), (
            "W/E={}: paned produced different epochs".format(ratio)
        )
        for k in scratch["epochs"]:
            assert _rows_match(paned["epochs"][k], scratch["epochs"][k]), (
                "W/E={}: epoch {} results differ (scratch {!r} vs paned "
                "{!r})".format(ratio, k, scratch["epochs"][k],
                               paned["epochs"][k])
            )
        fold_ratios[ratio] = (
            scratch["rows_folded"] / max(1, paned["rows_folded"])
        )
    # The headline acceptance bar: at 4x overlap the paned path must do
    # at least 2x less per-epoch aggregation work.
    if 4 in ratios:
        assert fold_ratios[4] >= 2.0, (
            "W/E=4 fold reduction only {:.2f}x".format(fold_ratios[4])
        )
    return fold_ratios


def run_overlap_check(seed=31, nodes=OVERLAP_NODES, every=OVERLAP_EVERY,
                      lifetime=OVERLAP_LIFETIME):
    """The overlapping-flush plan must run standing, with polling parity."""
    outcomes = {}

    # Standing leg: one long-lived execution, ring width > 1.
    net = build_net(seed, nodes, retention=3 * every)
    net.advance(every)
    results = []
    sql = SQL.format(int(every), int(every), int(lifetime))
    handle = net.submit_sql(sql, node=net.any_address(),
                            on_epoch=results.append)
    assert handle.plan.standing and handle.plan.epoch_overlap > 1, (
        "overlapping-flush plan fell back to one-shot (or lost "
        "its overlap: ring width {})".format(handle.plan.epoch_overlap)
    )
    net.advance(1.5 * every)
    live = [
        n.engine.queries[handle.qid].execution
        for n in net.nodes.values()
        if handle.qid in n.engine.queries
    ]
    assert live, "no engine adopted the standing query"
    assert all(isinstance(e, StandingExecution) for e in live), (
        "engines ran the overlapping plan outside StandingExecution"
    )
    assert all(e is not None and e.overlap for e in live)
    net.advance(lifetime + handle.plan.deadline + 5.0 - 1.5 * every)
    outcomes["standing"] = {r.epoch: sorted(r.rows) for r in results}

    # Polling leg: a fresh one-shot windowed query at every boundary
    # (the discipline the retired rebuild path emulated).
    net = build_net(seed, nodes, retention=3 * every)
    net.advance(every)
    site = net.any_address()
    oneshot_sql = ("SELECT SUM(rate_kbps) AS total_rate, "
                   "COUNT(*) AS samples FROM node_stats "
                   "WINDOW {} SECONDS".format(int(every)))
    pending = []
    for k in range(1, int(lifetime / every) + 1):
        net.advance(every)
        poll_results = []
        poll = net.submit_sql(oneshot_sql, node=site,
                              on_epoch=poll_results.append)
        assert not poll.plan.standing
        pending.append((k, poll, poll_results))
    net.advance(max(p.plan.deadline for _k, p, _r in pending) + 5.0)
    outcomes["oneshot"] = {
        k: sorted(poll_results[-1].rows) if poll_results else []
        for k, _p, poll_results in pending
    }

    shared = set(outcomes["standing"]) & set(outcomes["oneshot"])
    assert len(shared) >= 4
    for k in shared:
        assert _rows_match(outcomes["standing"][k], outcomes["oneshot"][k]), (
            "overlap epoch {}: standing {!r} != oneshot {!r}".format(
                k, outcomes["standing"][k], outcomes["oneshot"][k])
        )
    return len(shared)


def exhibit(nodes, every, ratios, lifetime, stats, fold_ratios,
            overlap_epochs):
    from benchmarks._harness import fmt_table

    text = ("Ext-H: paned sliding-window aggregation vs from-scratch "
            "recomputation\n"
            "({} nodes, epoch {}s, lifetime {}s, sample every {}s; "
            "standing executions)\n\n".format(
                nodes, int(every), int(lifetime), int(SAMPLE_PERIOD)))
    rows = []
    for ratio in ratios:
        for variant in ("scratch", "paned"):
            out = stats["W/E={}/{}".format(ratio, variant)]
            per_epoch = out["rows_folded"] / max(1, out["num_epochs"])
            rows.append((
                "{}x/{}".format(ratio, variant), out["num_epochs"],
                out["rows_scanned"], out["rows_folded"], per_epoch,
            ))
    text += fmt_table(
        ["W/E / path", "epochs", "rows scanned", "rows folded",
         "folded/epoch"],
        rows,
    )
    text += ("\n\nper-epoch results: paned identical to from-scratch at "
             "every ratio\nrows-folded reduction: "
             + ", ".join("{}x overlap -> {:.2f}x".format(r, fold_ratios[r])
                         for r in ratios)
             + "\noverlapping-flush plan (tree aggregation, flush ~8.7s "
               "into a {}s period):\n  planned standing+overlapping, ran "
               "as one StandingExecution per node,\n  {} epochs identical "
               "to per-boundary one-shot polls\n".format(
                   int(OVERLAP_EVERY), overlap_epochs))
    return text


def test_sliding_windows(benchmark):
    from benchmarks._harness import report, run_once

    def run():
        stats = run_sweep()
        fold_ratios = check_sweep(stats, RATIOS)
        overlap_epochs = run_overlap_check()
        return stats, fold_ratios, overlap_epochs

    stats, fold_ratios, overlap_epochs = run_once(benchmark, run)
    report("sliding_windows",
           exhibit(NODES, EVERY, RATIOS, LIFETIME, stats, fold_ratios,
                   overlap_epochs))
    for label, out in stats.items():
        benchmark.extra_info[label] = {
            "rows_folded": out["rows_folded"],
            "rows_scanned": out["rows_scanned"],
            "epochs": out["num_epochs"],
        }


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="quick 16-node pass (same parity + reduction checks)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        nodes, ratios, lifetime = SMOKE_NODES, SMOKE_RATIOS, SMOKE_LIFETIME
    else:
        nodes, ratios, lifetime = NODES, RATIOS, LIFETIME
    stats = run_sweep(nodes=nodes, ratios=ratios, lifetime=lifetime)
    fold_ratios = check_sweep(stats, ratios)
    overlap_epochs = run_overlap_check()
    text = exhibit(nodes, EVERY, ratios, lifetime, stats, fold_ratios,
                   overlap_epochs)
    print(text)
    from benchmarks._harness import write_metrics

    metrics = {"parity": True, "overlap_epochs": overlap_epochs}
    for ratio in ratios:
        metrics["fold_ratio_{}x".format(ratio)] = round(fold_ratios[ratio], 4)
    write_metrics("sliding_windows", metrics,
                  scale="smoke" if args.smoke else "full")
    if not args.smoke:
        from benchmarks._harness import report

        report("sliding_windows", text)
    print("ok: per-epoch parity holds; rows folded "
          + ", ".join("{:.2f}x at {}x".format(fold_ratios[r], r)
                      for r in ratios)
          + "; overlapping-flush plan ran standing")
    return 0


if __name__ == "__main__":
    import pathlib

    # Run as a script, ``benchmarks`` is not a package on sys.path yet.
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    sys.exit(main())
