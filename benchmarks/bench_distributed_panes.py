"""Ext-I: distributed panes -- pane-tagged exchanges + sketch aggregates.

PR 3's paned sliding windows stopped re-*folding* the window overlap,
but only node-locally: every epoch each node still shipped its groups'
full window states across the exchange, and the final at each group's
owner re-merged all of them. Distributed panes extend the pane protocol
over the network: partials ship each pane's *increment* exactly once
(pane-tagged batches, merged per pane by the aggregation tree
mid-route) and the final assembles every epoch's window from pane
partials it already holds. Three exhibits on identical seeded testbeds:

* **tree aggregation** (the headline): a grouped continuous query whose
  groups are time-coherent (keyed by a coarse time bucket, the
  intrusion-log shape), swept over three disciplines -- ``scratch``
  (``paned = False``), ``local`` (PR 3 panes, ``paned_exchange =
  False``), and ``dist`` (pane-tagged exchanges). Identical per-epoch
  answers; the distributed path must fold >= 2x fewer partial-state
  rows per epoch at group owners than either ablation, and >= 2x fewer
  raw rows than scratch.
* **fetch-matches join**: a stream probe side joined against a
  DHT-published table with a paned aggregate above -- panes now cross
  the asynchronous fetch, so the join plan stops re-probing (and
  re-folding) the overlap. Identical answers, >= 2x fewer rows folded.
* **sketch aggregates**: ``APPROX_COUNT_DISTINCT`` (HyperLogLog pane
  partials) against exact ``COUNT(DISTINCT ...)``, and ``APPROX_TOPK``
  (Count-Min + candidates) against an exact grouped count -- answers
  must land within the sketches' documented error bounds while pane
  partials stay constant-size.

Run standalone with ``python benchmarks/bench_distributed_panes.py``
(``--smoke`` for the CI-sized pass; either writes
``results/distributed_panes.json`` for the benchmark-regression gate).
"""

import math
import sys

NODES = 24
EVERY = 10.0
RATIO = 4
LIFETIME = 80.0
SAMPLE_PERIOD = 2.0

SMOKE_NODES = 12
SMOKE_LIFETIME = 60.0

TREE_SQL = (
    "SELECT bucket, SUM(v) AS total, COUNT(*) AS n FROM events "
    "GROUP BY bucket EVERY {e} SECONDS WINDOW {w} SECONDS "
    "LIFETIME {l} SECONDS"
)
JOIN_SQL = (
    "SELECT d.severity, COUNT(*) AS hits, SUM(s.v) AS vol "
    "FROM events s, rules d WHERE s.rule = d.rule_id GROUP BY d.severity "
    "EVERY {e} SECONDS WINDOW {w} SECONDS LIFETIME {l} SECONDS"
)

VARIANTS = (
    ("scratch", {"paned": False}),
    ("local", {"paned_exchange": False}),
    ("dist", {}),
)


def _install_tickers(net, columns_fn, table="events"):
    def make(address, i):
        def tick():
            engine = net.node(address).engine
            engine.stream_append(table, columns_fn(engine, i))
            engine.set_timer(SAMPLE_PERIOD, tick)

        return tick

    for i, address in enumerate(net.addresses()):
        net.node(address).engine.set_timer(0.1, make(address, i))


def build_tree_net(seed, nodes, every, window):
    from repro.core.network import PierNetwork

    net = PierNetwork(nodes=nodes, seed=seed)
    net.create_stream_table(
        "events", [("bucket", "INT"), ("v", "FLOAT")], window=window + every
    )
    # Time-coherent groups: each group's rows concentrate in one epoch's
    # panes (the intrusion-log / minutely-rollup shape), so a group goes
    # quiet after its bucket passes -- exactly where shipping full
    # window states every epoch is pure overlap redundancy.
    _install_tickers(net, lambda engine, i: (
        int(engine.clock.now // every), float(i + 1),
    ))
    return net


def run_tree_config(seed, nodes, every, window, lifetime, options):
    net = build_tree_net(seed, nodes, every, window)
    net.advance(window)
    results = []
    sql = TREE_SQL.format(e=int(every), w=int(window), l=int(lifetime))
    handle = net.submit_sql(sql, node=net.any_address(),
                            on_epoch=results.append, options=options)
    assert handle.plan.standing
    net.advance(lifetime + handle.plan.deadline + 5.0)
    return {
        "plan": handle.plan,
        "epochs": {r.epoch: sorted(
            (g, round(t, 6), n) for g, t, n in r.rows) for r in results},
        "rows_folded": sum(n.engine.rows_aggregated
                           for n in net.nodes.values()),
        "rows_merged": sum(n.engine.rows_merged for n in net.nodes.values()),
        "exchange_rows": net.message_counters().get("exchange_rows", 0),
    }


def run_tree_sweep(seed, nodes, every, window, lifetime):
    out = {}
    for label, options in VARIANTS:
        out[label] = run_tree_config(seed, nodes, every, window, lifetime,
                                     options)
    dist_plan = out["dist"]["plan"]
    partial = dist_plan.ops_of_kind("groupby_partial")[0]
    exchange = dist_plan.ops_of_kind("exchange")[0]
    final = dist_plan.ops_of_kind("groupby_final")[0]
    assert partial.params.get("paned_ship") == "delta", (
        "distributed plan did not mark the partial delta-shipping"
    )
    assert exchange.params.get("paned") and final.params.get("paned"), (
        "distributed plan did not tag the exchange/final paned"
    )
    assert out["local"]["plan"].pane is not None
    assert not any(
        s.params.get("paned_ship")
        for s in out["local"]["plan"].ops_of_kind("groupby_partial")
    ), "paned_exchange=False ablation still ships deltas"
    assert out["scratch"]["plan"].pane is None
    return out


def check_tree_sweep(stats, min_epochs=4):
    for label in ("local", "dist"):
        assert set(stats[label]["epochs"]) == set(stats["scratch"]["epochs"])
    assert len(stats["scratch"]["epochs"]) >= min_epochs
    for k, want in stats["scratch"]["epochs"].items():
        for label in ("local", "dist"):
            got = stats[label]["epochs"][k]
            assert got == want, (
                "epoch {}: {} {!r} != scratch {!r}".format(k, label, got, want)
            )
    epochs = max(1, len(stats["scratch"]["epochs"]))
    ratios = {
        "merged_vs_scratch": (stats["scratch"]["rows_merged"]
                              / max(1, stats["dist"]["rows_merged"])),
        "merged_vs_local": (stats["local"]["rows_merged"]
                            / max(1, stats["dist"]["rows_merged"])),
        "folded_vs_scratch": (stats["scratch"]["rows_folded"]
                              / max(1, stats["dist"]["rows_folded"])),
        "exchange_rows_vs_local": (stats["local"]["exchange_rows"]
                                   / max(1, stats["dist"]["exchange_rows"])),
        "merged_per_epoch_dist": stats["dist"]["rows_merged"] / epochs,
    }
    assert ratios["merged_vs_scratch"] >= 2.0, (
        "owner-side fold reduction only {:.2f}x".format(
            ratios["merged_vs_scratch"])
    )
    assert ratios["merged_vs_local"] >= 2.0, (
        "vs node-local panes only {:.2f}x".format(ratios["merged_vs_local"])
    )
    assert ratios["folded_vs_scratch"] >= 2.0
    return ratios


# ----------------------------------------------------------------------
# Fetch-matches join exhibit
# ----------------------------------------------------------------------
def build_join_net(seed, nodes, every, window):
    from repro.core.network import PierNetwork

    net = PierNetwork(nodes=nodes, seed=seed)
    net.create_stream_table(
        "events", [("rule", "INT"), ("v", "FLOAT")], window=window + every
    )
    net.create_dht_table(
        "rules", [("rule_id", "INT"), ("severity", "STR")],
        partition_key="rule_id", ttl=600.0,
    )
    addresses = net.addresses()
    for r in range(6):
        net.publish(addresses[r % len(addresses)], "rules",
                    (r, "sev{}".format(r % 3)), keep_alive=True)
    _install_tickers(net, lambda engine, i: (
        (i + int(engine.clock.now)) % 6, float(i + 1),
    ))
    return net


def run_join_config(seed, nodes, every, window, lifetime, options):
    net = build_join_net(seed, nodes, every, window)
    net.advance(window)
    results = []
    sql = JOIN_SQL.format(e=int(every), w=int(window), l=int(lifetime))
    handle = net.submit_sql(sql, node=net.any_address(),
                            on_epoch=results.append, options=options)
    assert handle.plan.standing
    if not options:
        fm = handle.plan.ops_of_kind("fetch_matches")
        assert fm and fm[0].params.get("paned"), (
            "join plan did not mark fetch_matches pane-transparent"
        )
    net.advance(lifetime + handle.plan.deadline + 5.0)
    return {
        "epochs": {r.epoch: sorted(
            (g, h, round(t, 6)) for g, h, t in r.rows) for r in results},
        "rows_folded": sum(n.engine.rows_aggregated
                           for n in net.nodes.values()),
    }


def run_join_check(seed, nodes, every, window, lifetime):
    paned = run_join_config(seed, nodes, every, window, lifetime, {})
    scratch = run_join_config(seed, nodes, every, window, lifetime,
                              {"paned": False})
    shared = set(paned["epochs"]) & set(scratch["epochs"])
    assert len(shared) >= 4
    for k in shared:
        assert paned["epochs"][k] == scratch["epochs"][k], (
            "join epoch {}: paned {!r} != scratch {!r}".format(
                k, paned["epochs"][k], scratch["epochs"][k])
        )
    ratio = scratch["rows_folded"] / max(1, paned["rows_folded"])
    assert ratio >= 2.0, "join fold reduction only {:.2f}x".format(ratio)
    return len(shared), ratio


# ----------------------------------------------------------------------
# Sketch aggregates exhibit
# ----------------------------------------------------------------------
def build_sketch_net(seed, nodes, every, window, cardinality):
    from repro.core.network import PierNetwork

    net = PierNetwork(nodes=nodes, seed=seed)
    net.create_stream_table("events", [("src", "STR")],
                            window=window + every)
    # Zipf-ish skew: low ids recur (heavy hitters), high ids churn.
    _install_tickers(net, lambda engine, i: (
        "src-{}".format((i * 13 + int(engine.clock.now * 3))
                        % cardinality),
    ))
    return net


def run_sketch_check(seed, nodes, every, window, lifetime, cardinality=96):
    from repro.core.aggregates import aggregate_by_name

    sqls = {
        "exact": ("SELECT COUNT(DISTINCT src) AS d FROM events "
                  "EVERY {e} SECONDS WINDOW {w} SECONDS "
                  "LIFETIME {l} SECONDS"),
        "approx": ("SELECT APPROX_COUNT_DISTINCT(src) AS d FROM events "
                   "EVERY {e} SECONDS WINDOW {w} SECONDS "
                   "LIFETIME {l} SECONDS"),
        "counts": ("SELECT src, COUNT(*) AS n FROM events GROUP BY src "
                   "EVERY {e} SECONDS WINDOW {w} SECONDS "
                   "LIFETIME {l} SECONDS"),
        "topk": ("SELECT APPROX_TOPK(src) AS top FROM events "
                 "EVERY {e} SECONDS WINDOW {w} SECONDS "
                 "LIFETIME {l} SECONDS"),
    }
    out = {}
    for label, sql in sqls.items():
        net = build_sketch_net(seed, nodes, every, window, cardinality)
        net.advance(window)
        results = []
        handle = net.submit_sql(
            sql.format(e=int(every), w=int(window), l=int(lifetime)),
            node=net.any_address(), on_epoch=results.append,
        )
        assert handle.plan.standing and handle.plan.pane is not None
        net.advance(lifetime + handle.plan.deadline + 5.0)
        out[label] = {r.epoch: r.rows for r in results if r.rows}

    # HLL vs exact: within 3 standard errors of the documented bound.
    hll_bound = 3 * 1.04 / math.sqrt(1 << 10)
    worst_hll = 0.0
    shared = sorted(set(out["exact"]) & set(out["approx"]))
    assert len(shared) >= 4
    for k in shared:
        exact = out["exact"][k][0][0]
        approx = out["approx"][k][0][0]
        err = abs(approx - exact) / max(1, exact)
        worst_hll = max(worst_hll, err)
        assert err <= hll_bound, (
            "epoch {}: APPROX_COUNT_DISTINCT {} vs exact {} "
            "(err {:.3f} > {:.3f})".format(k, approx, exact, err, hll_bound)
        )

    # Count-Min top-k vs exact grouped counts, on a shared final epoch:
    # estimates never under-count and over-count by <= eps * N.
    cm = aggregate_by_name("APPROX_TOPK")._empty
    k_shared = max(set(out["counts"]) & set(out["topk"]))
    truth = {src: n for src, n in out["counts"][k_shared]}
    total = sum(truth.values())
    top = out["topk"][k_shared][0][0]
    assert top, "APPROX_TOPK returned no candidates"
    worst_cm = 0
    for value, estimate in top:
        true_n = truth.get(value, 0)
        assert estimate >= true_n, "Count-Min under-counted"
        worst_cm = max(worst_cm, estimate - true_n)
        assert estimate <= true_n + cm.epsilon * total, (
            "{}: estimate {} vs true {} exceeds eps*N = {:.1f}".format(
                value, estimate, true_n, cm.epsilon * total)
        )
    # The true heaviest value must surface among the candidates.
    heaviest = max(truth, key=lambda v: (truth[v], v))
    assert truth[max(truth, key=truth.get)] == truth[heaviest]
    assert any(v == heaviest for v, _e in top) or (
        truth[heaviest] <= max(truth.values())  # ties: any max is fine
    )
    return {
        "epochs": len(shared),
        "worst_hll_err": worst_hll,
        "hll_bound": hll_bound,
        "worst_cm_overcount": worst_cm,
        "cm_bound": cm.epsilon * total,
    }


def exhibit(nodes, every, window, lifetime, tree_stats, tree_ratios,
            join_epochs, join_ratio, sketch):
    from benchmarks._harness import fmt_table

    epochs = max(1, len(tree_stats["scratch"]["epochs"]))
    text = ("Ext-I: distributed panes -- pane-tagged exchanges + "
            "sketch-backed aggregates\n"
            "({} nodes, epoch {}s, window {}s (overlap {}x), lifetime "
            "{}s, sample every {}s)\n\n".format(
                nodes, int(every), int(window), int(window // every),
                int(lifetime), int(SAMPLE_PERIOD)))
    rows = []
    for label, _options in VARIANTS:
        out = tree_stats[label]
        rows.append((
            label, len(out["epochs"]), out["rows_folded"],
            out["rows_merged"], out["rows_merged"] / epochs,
            out["exchange_rows"],
        ))
    text += fmt_table(
        ["path", "epochs", "rows folded", "owner folds",
         "owner folds/epoch", "exchange rows"],
        rows,
    )
    text += (
        "\n\nper-epoch results identical across all three paths\n"
        "owner-side folds: {:.2f}x fewer than scratch, {:.2f}x fewer "
        "than node-local panes\nexchange rows vs node-local panes: "
        "{:.2f}x fewer\n\nfetch-matches join (stream probe x DHT "
        "rules, paned aggregate above):\n  {} epochs identical to "
        "from-scratch, {:.2f}x fewer rows folded\n\nsketch aggregates "
        "(pane partials constant-size):\n  APPROX_COUNT_DISTINCT worst "
        "error {:.3f} (bound {:.3f}, 3 std errs)\n  APPROX_TOPK "
        "over-count worst {} (bound eps*N = {:.1f}), never "
        "under-counts\n".format(
            tree_ratios["merged_vs_scratch"], tree_ratios["merged_vs_local"],
            tree_ratios["exchange_rows_vs_local"],
            join_epochs, join_ratio,
            sketch["worst_hll_err"], sketch["hll_bound"],
            sketch["worst_cm_overcount"], sketch["cm_bound"],
        )
    )
    return text


def run_all(seed, nodes, lifetime):
    window = RATIO * EVERY
    tree_stats = run_tree_sweep(seed, nodes, EVERY, window, lifetime)
    tree_ratios = check_tree_sweep(tree_stats)
    join_epochs, join_ratio = run_join_check(
        seed + 1, max(8, nodes // 2), 8.0, 32.0, min(lifetime, 48.0)
    )
    sketch = run_sketch_check(
        seed + 2, max(8, nodes // 2), 8.0, 32.0, min(lifetime, 40.0)
    )
    return tree_stats, tree_ratios, join_epochs, join_ratio, sketch


def metrics_from(tree_ratios, join_ratio, sketch):
    return {
        "tree_parity": True,
        "join_parity": True,
        "sketch_within_bounds": True,
        "merged_ratio_vs_scratch": round(
            tree_ratios["merged_vs_scratch"], 4),
        "merged_ratio_vs_local": round(tree_ratios["merged_vs_local"], 4),
        "folded_ratio_vs_scratch": round(
            tree_ratios["folded_vs_scratch"], 4),
        "exchange_rows_ratio_vs_local": round(
            tree_ratios["exchange_rows_vs_local"], 4),
        "join_folded_ratio": round(join_ratio, 4),
        "hll_worst_err": round(sketch["worst_hll_err"], 4),
        "cm_worst_overcount": sketch["worst_cm_overcount"],
    }


def test_distributed_panes(benchmark):
    from benchmarks._harness import report, run_once

    def run():
        return run_all(seed=7, nodes=NODES, lifetime=LIFETIME)

    tree_stats, tree_ratios, join_epochs, join_ratio, sketch = run_once(
        benchmark, run
    )
    report("distributed_panes",
           exhibit(NODES, EVERY, RATIO * EVERY, LIFETIME, tree_stats,
                   tree_ratios, join_epochs, join_ratio, sketch),
           metrics=metrics_from(tree_ratios, join_ratio, sketch),
           scale="full")
    benchmark.extra_info["ratios"] = {
        k: round(v, 3) for k, v in tree_ratios.items()
    }


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="quick 12-node pass (same parity + reduction checks)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        nodes, lifetime = SMOKE_NODES, SMOKE_LIFETIME
    else:
        nodes, lifetime = NODES, LIFETIME
    tree_stats, tree_ratios, join_epochs, join_ratio, sketch = run_all(
        seed=7, nodes=nodes, lifetime=lifetime
    )
    text = exhibit(nodes, EVERY, RATIO * EVERY, lifetime, tree_stats,
                   tree_ratios, join_epochs, join_ratio, sketch)
    print(text)
    from benchmarks._harness import report, write_metrics

    metrics = metrics_from(tree_ratios, join_ratio, sketch)
    if args.smoke:
        write_metrics("distributed_panes", metrics, scale="smoke")
    else:
        report("distributed_panes", text, metrics=metrics, scale="full")
    print("ok: parity on all paths; owner folds {:.2f}x lower vs scratch "
          "({:.2f}x vs node-local), join folds {:.2f}x lower, sketches "
          "within bounds".format(
              tree_ratios["merged_vs_scratch"],
              tree_ratios["merged_vs_local"], join_ratio))
    return 0


if __name__ == "__main__":
    import pathlib

    # Run as a script, ``benchmarks`` is not a package on sys.path yet.
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    sys.exit(main())
