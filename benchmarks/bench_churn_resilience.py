"""Ext-D: soft state under churn -- answer completeness degradation.

The paper's reliability claim is not "no answer is ever lost" but
"the system keeps answering with whoever is present" (Figure 1 plots
*responding* nodes). This bench quantifies that: a continuous COUNT
query runs while churn shortens from PlanetLab-like sessions (1 hour)
to hostile ones (2 minutes); we report the mean and minimum fraction
of live nodes whose samples made it into each epoch's answer.

Expected shape: graceful degradation -- completeness stays near 1.0
for hour-scale sessions and declines, without the query ever failing,
as sessions shrink.
"""

from benchmarks._harness import fmt_table, report, run_once
from repro.core.network import PierNetwork

NODES = 60
DURATION = 420.0
EVERY = 30.0
SAMPLE_PERIOD = 5.0
WINDOW = 20.0


def run_level(mean_session, seed):
    net = PierNetwork(nodes=NODES, seed=seed)
    net.create_stream_table("s", [("v", "FLOAT")], window=2 * WINDOW)

    def make_ticker(address):
        def tick():
            engine = net.node(address).engine
            engine.stream_append("s", (1.0,))
            engine.set_timer(SAMPLE_PERIOD, tick)
        return tick

    def install(address):
        net.node(address).engine.set_timer(0.2, make_ticker(address))

    for address in net.addresses():
        install(address)

    site = net.any_address()
    live_at_epoch = {}
    results = []

    if mean_session is not None:
        net.start_churn(mean_session, mean_session / 8.0,
                        on_join=install, exclude=[site])

    def on_epoch(result):
        results.append(result)

    handle = net.submit_sql(
        "SELECT COUNT(*) AS n FROM s EVERY {} SECONDS WINDOW {} SECONDS "
        "LIFETIME {} SECONDS".format(EVERY, WINDOW, DURATION),
        node=site, on_epoch=on_epoch,
    )
    # Record the live population at each epoch boundary as ground truth.
    k = 1
    t0 = net.now
    while k * EVERY <= DURATION:
        net.advance(max(0.0, t0 + k * EVERY - net.now))
        live_at_epoch[k] = len(net.live_addresses())
        k += 1
    net.advance(handle.plan.deadline + 5)

    per_node = WINDOW / SAMPLE_PERIOD
    fractions = []
    for result in results:
        if not result.rows:
            fractions.append(0.0)
            continue
        count = result.rows[0][0]
        live = live_at_epoch.get(result.epoch, NODES)
        fractions.append(min(1.0, count / (per_node * max(1, live))))
    return fractions


def test_churn_resilience(benchmark):
    levels = [("none", None), ("1 hour", 3600.0), ("10 min", 600.0),
              ("2 min", 120.0)]

    def run():
        rows = []
        for label, mean_session in levels:
            fractions = run_level(mean_session, seed=31)
            mean_f = sum(fractions) / len(fractions)
            rows.append((label, len(fractions), round(mean_f, 3),
                         round(min(fractions), 3)))
        return rows

    rows = run_once(benchmark, run)

    text = "Ext-D: answer completeness vs churn (continuous COUNT query)\n"
    text += "({} nodes, epoch {}s, {}s run; completeness = counted samples /"
    text += " expected from live nodes)\n\n"
    text = text.format(NODES, int(EVERY), int(DURATION))
    text += fmt_table(
        ["mean session", "epochs", "mean completeness", "min completeness"],
        rows,
    )
    report("churn_resilience", text)

    by_label = {label: (mean_f, min_f) for label, _e, mean_f, min_f in rows}
    # No churn: essentially perfect answers.
    assert by_label["none"][0] > 0.99
    # Hour-scale churn (PlanetLab): still near-complete on average.
    assert by_label["1 hour"][0] > 0.9
    # Degradation is graceful and monotone-ish: hostile churn loses more.
    assert by_label["2 min"][0] < by_label["1 hour"][0]
    # The query never stopped answering entirely.
    for label, epochs, _m, _lo in rows:
        assert epochs >= DURATION / EVERY - 1
