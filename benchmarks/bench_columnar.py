"""Ext-J: columnar row batches through the hot path.

Two exhibits, one ablation switch (``EngineConfig.columnar_batches``):

* **operator throughput** -- the scan-shaped spine
  (select -> groupby_partial, fed batches built exactly as the stream
  scan builds them from its pending buffer) processed row-at-a-time
  versus in RowBatch units. The vectorized overrides evaluate
  predicates, projections and group keys as whole columns, so the
  per-row interpreter overhead (one closure call chain per row)
  amortizes across the batch. The two modes must produce *identical*
  aggregate states -- vectorization is an execution detail, never a
  semantics change -- and the batch mode must clear a >= 1.5x
  rows/sec bar;
* **wire bytes** -- a standing stream join on a small simulated
  network (raw rows rehash on the join key every epoch, so a sender's
  co-keyed samples ship as multi-row exchange messages), once with the
  columnar wire shape (per-column value lists) and once with the row
  shape. Uniform-arity batches drop the per-row container framing, so
  exchange bytes per epoch shrink while every epoch's join answer
  stays exactly identical.

Run standalone with ``python benchmarks/bench_columnar.py``
(``--smoke`` for the quick CI pass). The JSON metrics deliberately
exclude raw timings (machine-dependent); the gate records the parity
booleans, the >= 1.5x verdict and the deterministic wire-byte ratio.
"""

import random
import sys
import time

NODES = 8
EVERY = 10.0
WINDOW = 10.0
LIFETIME = 40.0
SAMPLE_PERIOD = 2.0
SAMPLES_PER_TICK = 3
KEY_DOMAIN = 8
REGIONS = 4

THROUGHPUT_ROWS = 200_000
SMOKE_THROUGHPUT_ROWS = 60_000
BATCH_ROWS = 512
SPEEDUP_BAR = 1.5

SQL = (
    "SELECT l.k AS k, l.v AS lv, r.v AS rv FROM lt l, rt r "
    "WHERE l.k = r.k "
    "EVERY {} SECONDS WINDOW {} SECONDS LIFETIME {} SECONDS".format(
        int(EVERY), int(WINDOW), int(LIFETIME)
    )
)


# ----------------------------------------------------------------------
# Exhibit 1: operator throughput, row-at-a-time vs RowBatch
# ----------------------------------------------------------------------
def _build_spine():
    """select -> groupby_partial -> sink, on a stub (network-free) ctx."""
    from repro.core.aggregates import AggSpec
    from repro.core.opgraph import OpSpec
    from repro.core.operators import create_operator
    from repro.db.expressions import BinaryOp, col, lit
    from repro.db.schema import Schema
    from repro.db.types import FLOAT, STR

    schema = Schema.of(("region", STR), ("rate_kbps", FLOAT))

    class StubDht:
        def set_timer(self, delay, callback, *args):
            return object()

        def cancel_timer(self, timer):
            pass

    class StubCtx:
        engine = None
        dht = StubDht()
        plan = None
        query_id = "q"
        epoch = 0
        active_epoch = 0
        t0 = 0.0
        standing = False

    select = create_operator(StubCtx(), OpSpec("sel", "select", {
        "predicate": BinaryOp(">", col("rate_kbps"), lit(5.0)),
        "schema": schema,
    }))
    partial = create_operator(StubCtx(), OpSpec("agg", "groupby_partial", {
        "group_exprs": [col("region")],
        "agg_specs": [AggSpec("SUM", col("rate_kbps"), "total"),
                      AggSpec("COUNT", None, "n")],
        "schema": schema,
    }))

    class Sink:
        consumers = ()

        def __init__(self):
            self.rows = []

        def push(self, row, port=0):
            self.rows.append(row)

        def push_batch(self, batch, port=0):
            self.rows.extend(batch.iter_rows())

        def reset_batch(self):
            pass

    sink = Sink()
    select.wire(partial, 0)
    partial.wire(sink, 0)
    return schema, select, partial, sink


def run_throughput(n_rows):
    from repro.core.batch import RowBatch

    rng = random.Random(5)
    rows = [
        ("region-{}".format(rng.randint(0, REGIONS - 1)),
         rng.random() * 100.0)
        for _ in range(n_rows)
    ]

    schema, select, partial, sink = _build_spine()
    t0 = time.perf_counter()
    push = select.push
    for row in rows:
        push(row)
    row_seconds = time.perf_counter() - t0
    partial.flush()
    row_states = sorted(sink.rows)

    # The batch leg consumes the same rows in the units the stream scan
    # emits: one RowBatch per pending-buffer drain.
    batches = [
        RowBatch.from_rows(rows[i:i + BATCH_ROWS], schema)
        for i in range(0, n_rows, BATCH_ROWS)
    ]
    schema, select, partial, sink = _build_spine()
    t0 = time.perf_counter()
    push_batch = select.push_batch
    for batch in batches:
        push_batch(batch)
    batch_seconds = time.perf_counter() - t0
    partial.flush()
    batch_states = sorted(sink.rows)

    assert batch_states == row_states, (
        "vectorized spine diverged from the row-at-a-time spine"
    )
    return {
        "rows": n_rows,
        "row_seconds": row_seconds,
        "batch_seconds": batch_seconds,
        "row_rows_per_sec": n_rows / row_seconds,
        "batch_rows_per_sec": n_rows / batch_seconds,
        "speedup": row_seconds / batch_seconds,
        "groups": len(row_states),
    }


# ----------------------------------------------------------------------
# Exhibit 2: exchange bytes per epoch, columnar vs row wire shape
# ----------------------------------------------------------------------
def _build_net(seed, nodes, columnar):
    from repro.core.network import PierConfig, PierNetwork

    net = PierNetwork(nodes=nodes, seed=seed, config=PierConfig())
    for address in net.addresses():
        net.node(address).engine.config.columnar_batches = columnar
    net.create_stream_table("lt", [("k", "INT"), ("v", "INT")],
                            window=2 * WINDOW)
    net.create_stream_table("rt", [("k", "INT"), ("v", "INT")],
                            window=2 * WINDOW)

    # Each node samples a handful of keys several rows at a time, like
    # a host reporting a few attributes per period: a sender's rows
    # cluster on few join keys, so the rehash exchange ships multi-row
    # co-keyed batches -- the shape the columnar wire encodes.
    def make_ticker(address, table, keys, base):
        step = [0]

        def tick():
            engine = net.node(address).engine
            step[0] += 1
            for j in range(SAMPLES_PER_TICK):
                k = keys[(step[0] + j) % len(keys)]
                engine.stream_append(table, (k, base + step[0] + j))
            engine.set_timer(SAMPLE_PERIOD, tick)

        return tick

    rng = net.rng.fork("samples")
    for i, address in enumerate(net.addresses()):
        keys = [rng.randrange(KEY_DOMAIN) for _ in range(2)]
        tick = make_ticker(address, "lt", keys, 100 * i)
        net.node(address).engine.set_timer(0.1, tick)
        if i % 2 == 0:
            rkeys = [rng.randrange(KEY_DOMAIN) for _ in range(2)]
            rtick = make_ticker(address, "rt", rkeys, 10_000 + 100 * i)
            net.node(address).engine.set_timer(0.1, rtick)
    return net


def run_wire(seed, nodes, columnar):
    net = _build_net(seed, nodes, columnar)
    net.advance(WINDOW)
    before = dict(net.message_counters())
    results = []
    handle = net.submit_sql(SQL, node=net.any_address(),
                            on_epoch=results.append)
    assert handle.plan.standing
    assert handle.plan.metadata.get("columnar"), (
        "planner did not stamp the pipeline batch-capable"
    )
    net.advance(LIFETIME + handle.plan.deadline + 5.0)
    after = net.message_counters()
    epochs = {r.epoch: sorted(r.rows) for r in results}
    assert len(epochs) >= 3, "standing query produced too few epochs"

    def delta(key):
        return after.get(key, 0) - before.get(key, 0)

    batches_pushed = sum(
        n.engine.batches_pushed for n in net.nodes.values()
    )
    return {
        "epochs": epochs,
        "exchange_bytes": delta("exchange_bytes"),
        "exchange_messages": delta("exchange_messages"),
        "exchange_rows": delta("exchange_rows"),
        "exchange_batches": delta("exchange_batches"),
        "bytes_per_epoch": delta("exchange_bytes") / max(1, len(epochs)),
        "batches_pushed": batches_pushed,
    }


def check_wire(columnar_leg, row_leg):
    # Exact parity: the wire shape must be invisible to every answer.
    assert set(columnar_leg["epochs"]) == set(row_leg["epochs"]), (
        "columnar and row legs answered different epochs"
    )
    for k, rows in row_leg["epochs"].items():
        assert columnar_leg["epochs"][k] == rows, (
            "epoch {}: columnar leg diverged ({!r} vs {!r})".format(
                k, columnar_leg["epochs"][k], rows)
        )
    # Same rows crossed the exchange; only the encoding changed.
    assert columnar_leg["exchange_rows"] == row_leg["exchange_rows"]
    assert columnar_leg["exchange_bytes"] < row_leg["exchange_bytes"], (
        "columnar wire did not reduce exchange bytes"
    )
    assert columnar_leg["batches_pushed"] > 0, (
        "columnar leg never emitted a multi-row batch"
    )
    return row_leg["exchange_bytes"] / max(1, columnar_leg["exchange_bytes"])


def exhibit(throughput, columnar_leg, row_leg, bytes_ratio):
    from benchmarks._harness import fmt_table

    text = (
        "Ext-J: columnar row batches through the hot path\n"
        "(throughput: select -> groupby_partial spine over {:,} rows, "
        "{} regions,\n batch size {}; wire: {}-node standing stream "
        "join, key domain {},\n epoch {}s, lifetime {}s)\n\n".format(
            throughput["rows"], REGIONS, BATCH_ROWS, NODES, KEY_DOMAIN,
            int(EVERY), int(LIFETIME))
    )
    text += fmt_table(
        ["spine mode", "seconds", "rows/sec"],
        [("row-at-a-time", round(throughput["row_seconds"], 3),
          int(throughput["row_rows_per_sec"])),
         ("RowBatch", round(throughput["batch_seconds"], 3),
          int(throughput["batch_rows_per_sec"]))],
    )
    text += (
        "\n\nvectorized speedup: {:.2f}x (bar: >= {}x), aggregate "
        "states identical\n\n".format(throughput["speedup"], SPEEDUP_BAR)
    )
    text += fmt_table(
        ["wire shape", "exch bytes", "bytes/epoch", "exch msgs",
         "exch rows"],
        [("row", row_leg["exchange_bytes"],
          round(row_leg["bytes_per_epoch"], 1),
          row_leg["exchange_messages"], row_leg["exchange_rows"]),
         ("columnar", columnar_leg["exchange_bytes"],
          round(columnar_leg["bytes_per_epoch"], 1),
          columnar_leg["exchange_messages"],
          columnar_leg["exchange_rows"])],
    )
    text += (
        "\n\ncolumnar wire: {:.3f}x fewer exchange bytes per epoch, "
        "every epoch's rows exactly identical\n".format(bytes_ratio)
    )
    return text


def run_all(n_rows):
    throughput = run_throughput(n_rows)
    columnar_leg = run_wire(seed=11, nodes=NODES, columnar=True)
    row_leg = run_wire(seed=11, nodes=NODES, columnar=False)
    bytes_ratio = check_wire(columnar_leg, row_leg)
    return throughput, columnar_leg, row_leg, bytes_ratio


def test_columnar(benchmark):
    from benchmarks._harness import report, run_once

    throughput, columnar_leg, row_leg, bytes_ratio = run_once(
        benchmark, lambda: run_all(SMOKE_THROUGHPUT_ROWS)
    )
    assert throughput["speedup"] >= SPEEDUP_BAR
    report("columnar",
           exhibit(throughput, columnar_leg, row_leg, bytes_ratio))
    benchmark.extra_info["speedup"] = round(throughput["speedup"], 2)
    benchmark.extra_info["wire_bytes_ratio"] = round(bytes_ratio, 4)


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="quick pass: fewer throughput rows (same checks)",
    )
    args = parser.parse_args(argv)
    n_rows = SMOKE_THROUGHPUT_ROWS if args.smoke else THROUGHPUT_ROWS
    throughput, columnar_leg, row_leg, bytes_ratio = run_all(n_rows)
    print(exhibit(throughput, columnar_leg, row_leg, bytes_ratio))
    speedup_ok = throughput["speedup"] >= SPEEDUP_BAR
    assert speedup_ok, (
        "vectorized spine managed only {:.2f}x (bar {}x)".format(
            throughput["speedup"], SPEEDUP_BAR)
    )
    from benchmarks._harness import write_metrics

    # Raw timings are machine-dependent and stay out of the gated
    # metrics; the deterministic byte ratio and the parity/speedup
    # verdicts are what CI pins.
    write_metrics("columnar", {
        "parity": True,
        "wire_parity": True,
        "speedup_ok": bool(speedup_ok),
        "bytes_reduced": True,
        "wire_bytes_ratio": round(bytes_ratio, 4),
    }, scale="smoke" if args.smoke else "full")
    print("ok: batch spine {:.2f}x row spine (identical states); "
          "columnar wire {:.3f}x fewer exchange bytes (identical "
          "answers)".format(throughput["speedup"], bytes_ratio))
    return 0


if __name__ == "__main__":
    import pathlib

    # Run as a script, ``benchmarks`` is not a package on sys.path yet.
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    sys.exit(main())
