"""Ext-C: DHT routing scalability -- the substrate claim.

"Routing proceeds in a multi-hop fashion; each node maintains only a
small set of neighbors" (paper §2). The measurable consequence:

* Chord lookups take O(log N) hops as N grows 16 -> 512,
* CAN (the other scheme the paper cites) takes O(d * N^(1/d)) hops --
  worse asymptotics at d=2, crossing Chord only at small N,
* per-node maintenance traffic stays roughly flat in N (each node
  talks to O(log N) neighbors, not to everyone).
"""

import math

from benchmarks._harness import fmt_table, full_scale, report, run_once
from repro.dht.bootstrap import build_chord_ring
from repro.dht.can import CanNode, build_can_overlay
from repro.dht.chord import ChordNode, storage_key
from repro.dht.config import DhtConfig
from repro.sim.clock import SimClock
from repro.sim.latency import ConstantLatency
from repro.sim.network import Network
from repro.util.rng import SeededRng

PROBES = 200


def chord_mean_hops(n, seed):
    clock = SimClock()
    rng = SeededRng(seed, "chord-scale")
    net = Network(clock, ConstantLatency(0.02), rng.fork("net"))
    nodes = [
        ChordNode(net, "n{}".format(i), DhtConfig(), rng.fork("c{}".format(i)))
        for i in range(n)
    ]
    build_chord_ring(nodes)
    clock.run_for(5)
    maintenance_before = net.counters.get("messages_sent")
    t_before = clock.now
    hops = []
    for i in range(PROBES):
        nodes[i % n].lookup(storage_key("probe", i), lambda o, h: hops.append(h))
    clock.run_for(30)
    maintenance_rate = (
        (net.counters.get("messages_sent") - maintenance_before - len(hops) * 8)
        / (clock.now - t_before) / n
    )
    return sum(hops) / len(hops), len(hops), max(0.0, maintenance_rate)


def can_mean_hops(n, dims, seed):
    clock = SimClock()
    rng = SeededRng(seed, "can-scale")
    net = Network(clock, ConstantLatency(0.02), rng.fork("net"))
    nodes = [CanNode(net, "c{}".format(i), dims=dims) for i in range(n)]
    build_can_overlay(nodes, rng.fork("zones"))
    hops = []
    for i in range(PROBES):
        nodes[i % n].probe(("probe", i), hops.append)
    clock.run_for(60)
    return sum(hops) / len(hops), len(hops)


def test_dht_scaling(benchmark):
    sizes = [16, 32, 64, 128, 256, 512] if full_scale() else [16, 32, 64, 128, 256]

    def run():
        rows = []
        for n in sizes:
            chord_hops, chord_done, upkeep = chord_mean_hops(n, seed=3)
            can2_hops, can2_done = can_mean_hops(n, dims=2, seed=3)
            can4_hops, can4_done = can_mean_hops(n, dims=4, seed=3)
            rows.append((
                n, round(chord_hops, 2), round(can2_hops, 2),
                round(can4_hops, 2), round(math.log2(n), 1),
                round(upkeep, 1), chord_done, can2_done,
            ))
        return rows

    rows = run_once(benchmark, run)

    text = "Ext-C: DHT routing scalability (mean lookup hops)\n"
    text += "({} probes per point; Chord vs CAN d=2 / d=4)\n\n".format(PROBES)
    text += fmt_table(
        ["nodes", "chord hops", "can d=2 hops", "can d=4 hops",
         "log2(N)", "upkeep msg/s/node", "chord ok", "can ok"],
        rows,
    )
    report("dht_scaling", text)

    # Completeness: essentially every probe resolved.
    for row in rows:
        assert row[6] >= PROBES * 0.99
        assert row[7] >= PROBES * 0.99
    # Chord grows logarithmically: hops bounded by log2(N) and the
    # increase from N to 16N is mild.
    for row in rows:
        assert row[1] <= row[4] + 1
    first, last = rows[0], rows[-1]
    assert last[1] / first[1] < math.log2(last[0]) / math.log2(first[0]) + 1.0
    # CAN d=2 grows polynomially: by 256 nodes it is clearly worse
    # than Chord; higher dimensionality closes the gap.
    big = rows[-1]
    assert big[2] > big[1]
    assert big[3] < big[2]
