"""Ext-L: admission control + adaptive load management under load.

Two exhibits in one bench, both about what happens when offered load
approaches (and passes) what the testbed can absorb:

**Elasticity sweep (plan time).** Offered load sweeps 10% -> 100% of a
peak append rate while an HPA-style scaling policy sizes the testbed
from the *observed* arrival rate in the shared stats catalog
(``replicas = clamp(ceil(rate / target_per_node))``, scale events
rebuild the ring). At every step three admission outcomes are gated:

* a cheap grouped count stays admitted *untouched* at every load;
* an exact ``COUNT(DISTINCT ...)`` is admitted exact at low load and
  degraded to the HLL sketch -- with the degradation recorded in
  ``plan.metadata["admission"]`` -- once its cost bound crosses the
  budget (never silently wrong: the answer arrives *labeled*);
* a strict no-ladder gate policy *refuses* the same query at high
  load, and the refusal carries the offending bound.

The peak-load sketched query then actually runs, and its settled
epochs must estimate the known ground-truth distinct count within the
documented HLL error bound (3 sigma + slack).

**Static vs adaptive legs (run time).** At peak load, on a testbed
whose receivers have finite service capacity
(``NetworkConfig.service_time`` > 0, so overload is visible as queueing
delay), a skewed fan-in join runs under the static discipline (fixed
flush windows and batch caps, no backpressure) and the adaptive one
(rate-sized flush windows + owner backpressure). The join rehashes a
high-rate stream on a 90%-skewed key, so each epoch every origin ships
a large burst toward ONE owner: static fragments each burst into
cap-sized messages and the owner's service queue collapses into a
retransmit-amplified meltdown, while the adaptive leg's backpressure
stretch raises the origins' batch caps (few large messages) and keeps
the owner under its service capacity. Gates: the adaptive leg's p95
epoch lag (last exchange delivery behind its epoch boundary) is
>= 1.2x lower, it ships fewer exchange messages, and it loses no
result rows relative to the static leg.

Run standalone with ``python benchmarks/bench_admission_elasticity.py``
(``--smoke`` for the CI-sized pass; either writes
``results/admission_elasticity.json`` for the regression gate).
"""

import math
import sys

EVERY = 5.0

# -- elasticity sweep ---------------------------------------------------
PEAK_TOTAL_RATE = 30.0  # rows/sec across the whole testbed at 100%
LOAD_STEPS = (0.1, 0.25, 0.5, 0.75, 1.0)
SMOKE_LOAD_STEPS = (0.1, 0.5, 1.0)
WARM = 12.0
DISTINCT_CYCLE = 13  # distinct values per source node
ACCURACY_LIFETIME = 45.0

# HPA-style policy: size the ring from observed arrival rate.
TARGET_RATE_PER_NODE = 4.0
MIN_REPLICAS = 2
MAX_REPLICAS = 12

# Budgets in the cost bounder's units/sec (calibrated against the
# printed bounds; the sweep asserts the transitions, so drift in the
# cost model shows up as a failed gate, not a silent shift).
BUDGET_UNITS = 150.0
GATE_UNITS = 60.0

CHEAP_SQL = ("SELECT g, COUNT(*) AS n FROM load GROUP BY g "
             "EVERY 10 SECONDS WINDOW 10 SECONDS LIFETIME 30 SECONDS")
DISTINCT_SQL = ("SELECT COUNT(DISTINCT v) AS d FROM load "
                "EVERY 5 SECONDS WINDOW 15 SECONDS LIFETIME {l} SECONDS")

# -- static vs adaptive legs at peak ------------------------------------
LOAD_NODES = 8
LOAD_TICK = 0.1  # seconds between source ticks on each node
LOAD_ROWS_PER_TICK = 20  # 200 rows/sec per node
SERVICE_TIME = 0.04  # receiver handles 25 msg/s: overload queues
LOAD_LIFETIME = 60.0
SMOKE_LOAD_LIFETIME = 35.0
HOT_SHARE = 9  # 9 of every 10 rows land in group 0
# Owner backpressure sizing for the join legs: the hot group's owner
# sees ~1400 rows/s, far over the threshold, so the xbp factor pegs at
# its cap and the origins' batch caps stretch 8x (64 -> 512-row
# batches). The TTL must outlive the 5s epoch cadence -- stream scans
# deliver in per-epoch bursts, so a shorter TTL would expire between
# bursts and the stretch would never be live at push time.
BP_ROWS_PER_SEC = 60.0
BP_TTL = 12.0
BP_FACTOR = 8.0
# DHT timeouts for BOTH overload legs: queueing delay at the hot owner
# reaches seconds, and the stock sub-second rpc/hop timeouts would
# read that as loss and retransmit -- an amplification loop that turns
# overload into seed-dependent chaos. With patient timeouts the legs
# measure queueing itself, deterministically.
LOAD_RPC_TIMEOUT = 8.0
LOAD_HOP_RETRANSMIT = 6.0
LOAD_LOOKUP_TIMEOUT = 15.0
# A skewed fan-in join: the high-rate ``load`` stream rehashes on its
# 90%-skewed group key toward the join owners while the sparse
# ``probe`` side (one row per key per epoch) keeps the output bounded
# at ~one result row per load row. The hot key's owner is the
# message-rate hotspot the adaptive knobs exist for.
LOAD_SQL = ("SELECT p.mark, l.v FROM probe p, load l WHERE p.tag = l.g "
            "EVERY 5 SECONDS WINDOW 5 SECONDS LIFETIME {l} SECONDS")
# Hot-group splitting leg (gentler source: 10 rows/s/node, 70% skew).
# The sliding WINDOW 6 / EVERY 5 makes the plan PANED at the 1s gcd
# pane, and a paned group-partial edge ships one delta row per
# (pane, group): the hot group appears in all 5 of an epoch's panes
# (over the split threshold of 4) while each cold group's ~0.4 rows/s
# land in only a pane or two. (A tumbling-window plan ships ONE
# partial per group per epoch -- nothing to split.)
SPLIT_SQL = ("SELECT g, COUNT(DISTINCT v) AS d, COUNT(*) AS n "
             "FROM load GROUP BY g EVERY 5 SECONDS WINDOW 6 SECONDS "
             "LIFETIME {l} SECONDS")
SPLIT_LIFETIME = 30.0
SPLIT_HOT_SHARE = 7
SPLIT_THRESHOLD = 4  # panes/epoch carrying the hot group: 5 > 4
SPLIT_SHARDS = 4


def hpa_replicas(observed_rate):
    """clamp(ceil(rate / target-per-node)) -- the HPA core loop."""
    want = int(math.ceil(observed_rate / TARGET_RATE_PER_NODE))
    return max(MIN_REPLICAS, min(MAX_REPLICAS, want))


# ----------------------------------------------------------------------
# Elasticity sweep
# ----------------------------------------------------------------------
def build_sweep_net(seed, replicas, offered_rate):
    """A testbed with ``replicas`` nodes sourcing ``offered_rate``
    rows/sec in total; each node cycles DISTINCT_CYCLE values."""
    from repro.core.admission import AdmissionPolicy
    from repro.core.network import PierConfig, PierNetwork

    policy = AdmissionPolicy(budget_units=BUDGET_UNITS)
    net = PierNetwork(nodes=replicas, seed=seed,
                      config=PierConfig(admission=policy))
    net.create_stream_table(
        "load", [("g", "INT"), ("v", "INT")], window=15.0 + EVERY)
    period = replicas / offered_rate

    def make_tick(address, i):
        def tick():
            engine = net.node(address).engine
            engine.stream_append("load", (
                int(engine.clock.now // 1.0) % 4,
                i * DISTINCT_CYCLE + int(engine.clock.now) % DISTINCT_CYCLE,
            ))
            engine.set_timer(period, tick)

        return tick

    for i, address in enumerate(net.addresses()):
        net.node(address).engine.set_timer(0.1 + 0.01 * i,
                                           make_tick(address, i))
    return net


def admission_step(seed, replicas, fraction, verbose=False):
    """One load step: observe, scale, and take the three decisions."""
    from repro.core.admission import AdmissionError, AdmissionPolicy
    from repro.core.sql import parse_query

    offered = fraction * PEAK_TOTAL_RATE
    net = build_sweep_net(seed, replicas, offered)
    net.advance(WARM)
    observed = net.catalog.stats.arrival_rate("load", now=net.now)
    want = hpa_replicas(observed)
    scaled = want != replicas
    if scaled:
        # Scale event: rebuild the ring at the new size (same offered
        # load, now spread over ``want`` nodes) and re-observe.
        replicas = want
        net = build_sweep_net(seed + 1, replicas, offered)
        net.advance(WARM)
        observed = net.catalog.stats.arrival_rate("load", now=net.now)

    cheap = net.compile_sql(CHEAP_SQL)
    cheap_adm = cheap.metadata["admission"]
    distinct = net.compile_sql(DISTINCT_SQL.format(l=30))
    distinct_adm = distinct.metadata["admission"]

    gate = AdmissionPolicy(budget_units=GATE_UNITS, allow_sketch=False,
                           allow_widen=False, allow_sample=False)
    refused_bound = None
    try:
        gate.admit(parse_query(DISTINCT_SQL.format(l=30)), net.catalog,
                   now=net.now)
    except AdmissionError as exc:
        assert exc.bound is not None and exc.budget == GATE_UNITS
        assert exc.bound.units_per_sec() > GATE_UNITS
        refused_bound = exc.bound.units_per_sec()

    if verbose:
        print("  load {:>4.0%}: observed {:5.1f} rows/s, replicas {}, "
              "distinct bound {:7.1f} -> {}".format(
                  fraction, observed, replicas,
                  distinct_adm["bound"]["units_per_sec"],
                  [d["kind"] for d in distinct_adm["degradations"]]
                  or "exact"))
    return {
        "fraction": fraction,
        "observed_rate": observed,
        "replicas": replicas,
        "scaled": scaled,
        "cheap_degradations": cheap_adm["degradations"],
        "distinct_degradations": distinct_adm["degradations"],
        "distinct_bound": distinct_adm["bound"]["units_per_sec"],
        "refused_bound": refused_bound,
        "net": net,
    }


def run_sweep(seed, steps, verbose=False):
    """Sweep offered load; gate the admission pattern and accuracy."""
    replicas = MIN_REPLICAS
    rows = []
    for fraction in steps:
        step = admission_step(seed, replicas, fraction, verbose=verbose)
        replicas = step["replicas"]
        rows.append(step)

    # HPA: monotone non-decreasing replica path that actually scaled.
    path = [s["replicas"] for s in rows]
    assert path == sorted(path), "replica path not monotone: {}".format(path)
    assert path[-1] > path[0], "the sweep never scaled out"
    scale_events = sum(1 for s in rows if s["scaled"])

    # Admission pattern: the cheap query is never touched; the exact
    # distinct runs exact at the lowest load and sketched at the top.
    assert all(s["cheap_degradations"] == [] for s in rows)
    assert rows[0]["distinct_degradations"] == []
    top = rows[-1]["distinct_degradations"]
    assert [d["kind"] for d in top] == ["sketch"], (
        "peak-load distinct should degrade to the sketch alone, "
        "got {!r}".format(top))
    sketch_err = top[0]["relative_error"]
    degrade_mask = "".join(
        "1" if s["distinct_degradations"] else "0" for s in rows)
    refuse_mask = "".join(
        "1" if s["refused_bound"] is not None else "0" for s in rows)
    assert refuse_mask[0] == "0" and refuse_mask[-1] == "1", (
        "gate policy should admit at 10% and refuse at 100%, "
        "got {}".format(refuse_mask))

    # Accuracy: run the sketched query at peak; settled epochs must
    # estimate the known ground truth within 3 sigma (+2 slack).
    peak = rows[-1]
    net = peak["net"]
    truth = DISTINCT_CYCLE * peak["replicas"]
    results = []
    handle = net.submit_sql(DISTINCT_SQL.format(l=int(ACCURACY_LIFETIME)),
                            on_epoch=results.append)
    admission = handle.plan.metadata["admission"]
    assert admission["approximate"] is True
    net.advance(ACCURACY_LIFETIME + handle.plan.deadline + 5.0)
    settled = [r for r in results if r.epoch >= 3]
    assert settled, "no settled epochs from the accuracy leg"
    tolerance = 3.0 * sketch_err * truth + 2.0
    worst = 0.0
    for r in settled:
        # Every epoch of a degraded query is labeled approximate.
        assert r.approximate == admission["degradations"]
        estimate = r.rows[0][0]
        worst = max(worst, abs(estimate - truth))
        assert abs(estimate - truth) <= tolerance, (
            "epoch {}: sketch estimate {} vs truth {} exceeds "
            "documented bound {:.1f}".format(r.epoch, estimate, truth,
                                             tolerance))
    return {
        "rows": rows,
        "replica_path": path,
        "scale_events": scale_events,
        "degrade_mask": degrade_mask,
        "refuse_mask": refuse_mask,
        "sketch_rel_err": sketch_err,
        "truth": truth,
        "worst_abs_err": worst,
        "settled_epochs": len(settled),
    }


# ----------------------------------------------------------------------
# Static vs adaptive at peak load
# ----------------------------------------------------------------------
def make_load_config(variant, service_time=None):
    from repro.core.engine import EngineConfig
    from repro.core.network import PierConfig
    from repro.dht.config import DhtConfig
    from repro.sim.network import NetworkConfig

    if variant == "adaptive":
        engine = EngineConfig(
            adaptive_flush=True,
            backpressure=True,
            backpressure_rows_per_sec=BP_ROWS_PER_SEC,
            backpressure_ttl=BP_TTL,
            backpressure_factor=BP_FACTOR,
        )
    elif variant == "split":
        engine = EngineConfig(hot_group_threshold=SPLIT_THRESHOLD,
                              hot_group_shards=SPLIT_SHARDS)
    else:
        engine = EngineConfig(adaptive_flush=False, backpressure=False,
                              hot_group_threshold=0)
    if service_time is None:
        service_time = SERVICE_TIME
    return PierConfig(
        engine=engine,
        network=NetworkConfig(service_time=service_time),
        dht=DhtConfig(rpc_timeout=LOAD_RPC_TIMEOUT,
                      hop_retransmit_timeout=LOAD_HOP_RETRANSMIT,
                      lookup_timeout=LOAD_LOOKUP_TIMEOUT),
    )


def build_load_net(seed, variant, service_time=None,
                   rows_per_tick=LOAD_ROWS_PER_TICK, hot_share=HOT_SHARE,
                   probe=False):
    from repro.core.network import PierNetwork

    net = PierNetwork(nodes=LOAD_NODES, seed=seed,
                      config=make_load_config(variant, service_time))
    net.create_stream_table(
        "load", [("g", "INT"), ("v", "INT")], window=2 * EVERY)

    def make_tick(address, i):
        count = [0]

        def tick():
            engine = net.node(address).engine
            for _ in range(rows_per_tick):
                count[0] += 1
                k = count[0]
                g = 0 if k % 10 < hot_share else 1 + k % 7
                engine.stream_append("load", (g, k))
            engine.set_timer(LOAD_TICK, tick)

        return tick

    for i, address in enumerate(net.addresses()):
        net.node(address).engine.set_timer(0.1 + 0.01 * i,
                                           make_tick(address, i))
    if probe:
        # Sparse probe side: one row per join key per epoch, from one
        # node, so the join output mirrors the load stream 1:1.
        net.create_stream_table(
            "probe", [("tag", "INT"), ("mark", "INT")], window=2 * EVERY)
        origin = net.node(net.addresses()[0]).engine

        def probe_tick():
            for tag in range(8):
                origin.stream_append("probe", (tag, int(origin.clock.now)))
            origin.set_timer(EVERY, probe_tick)

        origin.set_timer(0.35, probe_tick)
    return net


def run_load_leg(seed, variant, lifetime):
    """One overloaded standing fan-in join; measure per-epoch lag."""
    net = build_load_net(seed, variant, probe=True)
    net.advance(EVERY)
    net.reset_counters()

    results = []
    handle = net.submit_sql(LOAD_SQL.format(l=int(lifetime)),
                            on_epoch=results.append)
    t0 = handle.t0
    arrivals = {}
    extras = {"xbp": 0, "hot": 0}
    inner_deliver = net.net._deliver

    def deliver(src, dst, payload):
        inner = getattr(payload, "payload", None)
        if isinstance(inner, dict):
            op = inner.get("op")
            if op in ("deliver", "deliver_batch"):
                epoch = inner.get("epoch")
                if epoch is not None:
                    arrivals[epoch] = net.now
                rid = inner.get("rid")
                if isinstance(rid, tuple) and rid and rid[0] == "hot":
                    extras["hot"] += 1
            elif op == "xbp":
                extras["xbp"] += 1
        inner_deliver(src, dst, payload)

    net.net._deliver = deliver
    net.advance(lifetime + handle.plan.deadline + 5.0)
    counters = net.message_counters()

    e0 = min(arrivals) if arrivals else 0
    lags = [at - (t0 + (e - e0) * EVERY) for e, at in arrivals.items()]
    goodput = sum(len(r.rows) for r in results)
    return {
        "lags": lags,
        "epochs": len(results),
        "goodput_rows": goodput,
        "exchange_messages": counters.get("exchange_messages", 0),
        "service_wait": counters.get("service_wait", 0.0),
        "xbp": extras["xbp"],
        "hot": extras["hot"],
    }


def percentile(values, q):
    ordered = sorted(values)
    if not ordered:
        return 0.0
    idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[idx]


def run_load_comparison(seed, lifetime):
    legs = {v: run_load_leg(seed, v, lifetime)
            for v in ("static", "adaptive")}
    p95 = {v: percentile(leg["lags"], 0.95) for v, leg in legs.items()}
    improvement = p95["static"] / max(p95["adaptive"], 1e-9)
    assert improvement >= 1.2, (
        "adaptive p95 epoch lag {:.3f}s is not >=1.2x lower than "
        "static {:.3f}s (ratio {:.2f})".format(
            p95["adaptive"], p95["static"], improvement))
    assert legs["adaptive"]["exchange_messages"] < (
        legs["static"]["exchange_messages"]), "adaptive sent MORE messages"
    assert legs["adaptive"]["goodput_rows"] >= legs["static"]["goodput_rows"], (
        "adaptive lost more result rows than static")
    assert legs["adaptive"]["xbp"] > 0, "backpressure never engaged"
    return legs, p95, improvement


def run_split_parity(seed):
    """Hot-group splitting must engage on the skewed group AND change
    nothing: shards re-merge at the coordinator, so per-epoch answers
    match the unsplit run exactly (no service queue -- this leg gates
    correctness, not latency)."""
    out = {}
    for variant in ("static", "split"):
        net = build_load_net(seed, variant, service_time=0.0,
                             rows_per_tick=1, hot_share=SPLIT_HOT_SHARE)
        net.advance(EVERY)
        results = []
        handle = net.submit_sql(SPLIT_SQL.format(l=int(SPLIT_LIFETIME)),
                                on_epoch=results.append)
        hot = [0]
        inner_deliver = net.net._deliver

        def deliver(src, dst, payload, _hot=hot):
            inner = getattr(payload, "payload", None)
            if isinstance(inner, dict):
                rid = inner.get("rid")
                if isinstance(rid, tuple) and rid and rid[0] == "hot":
                    _hot[0] += 1
            inner_deliver(src, dst, payload)

        net.net._deliver = deliver
        net.advance(SPLIT_LIFETIME + handle.plan.deadline + 5.0)
        out[variant] = {
            "epochs": {r.epoch: sorted(r.rows) for r in results},
            "hot": hot[0],
        }
    assert out["static"]["hot"] == 0
    assert out["split"]["hot"] > 0, "hot-group splitting never engaged"
    assert set(out["split"]["epochs"]) == set(out["static"]["epochs"])
    for k, want in out["static"]["epochs"].items():
        assert out["split"]["epochs"][k] == want, (
            "epoch {}: split {!r} != unsplit {!r}".format(
                k, out["split"]["epochs"][k], want))
    return {"hot_rows": out["split"]["hot"],
            "epochs": len(out["split"]["epochs"])}


# ----------------------------------------------------------------------
# Exhibit + metrics
# ----------------------------------------------------------------------
def exhibit(sweep, legs, p95, improvement, split, lifetime):
    from benchmarks._harness import fmt_table

    text = ("Ext-L: admission control + adaptive load management\n"
            "(peak {:.0f} rows/s sweep; overload legs: {} nodes x "
            "{:.0f} rows/s, service {:.0f} ms/msg, lifetime {}s)\n\n"
            .format(PEAK_TOTAL_RATE, LOAD_NODES,
                    LOAD_ROWS_PER_TICK / LOAD_TICK,
                    SERVICE_TIME * 1e3, int(lifetime)))
    rows = []
    for s in sweep["rows"]:
        rows.append((
            "{:.0%}".format(s["fraction"]), round(s["observed_rate"], 1),
            s["replicas"],
            ",".join(d["kind"] for d in s["distinct_degradations"])
            or "exact",
            ("refused ({:,.0f} u/s)".format(s["refused_bound"])
             if s["refused_bound"] is not None else "admitted"),
        ))
    text += fmt_table(
        ["load", "rows/s", "replicas", "distinct outcome",
         "strict gate"], rows)
    text += (
        "\n\nsketch accuracy at peak: worst |err| {:.1f} of truth {} "
        "(documented rel. error {:.2%}, every epoch labeled "
        "approximate)\n\n".format(
            sweep["worst_abs_err"], sweep["truth"],
            sweep["sketch_rel_err"]))
    rows = []
    for v in ("static", "adaptive"):
        leg = legs[v]
        rows.append((
            v, leg["epochs"], leg["goodput_rows"],
            leg["exchange_messages"], round(leg["service_wait"], 1),
            round(p95[v], 3),
        ))
    text += fmt_table(
        ["leg", "epochs", "result rows", "exch msgs",
         "service wait (s)", "p95 lag (s)"], rows)
    text += ("\n\nadaptive p95 epoch lag {:.2f}x lower than static "
             "({} backpressure signals)\n"
             "hot-group split parity: {} shard rows across {} epochs, "
             "answers identical to the unsplit run\n".format(
                 improvement, legs["adaptive"]["xbp"],
                 split["hot_rows"], split["epochs"]))
    return text


def metrics_from(sweep, legs, p95, improvement, split):
    return {
        "replica_path": "-".join(str(r) for r in sweep["replica_path"]),
        "scale_events": sweep["scale_events"],
        "degrade_mask": sweep["degrade_mask"],
        "refuse_mask": sweep["refuse_mask"],
        "cheap_untouched": True,
        "peak_sketch_only": True,
        "approx_labeled": True,
        "sketch_within_bounds": True,
        "sketch_rel_err": float(sweep["sketch_rel_err"]),
        "settled_epochs": sweep["settled_epochs"],
        "p95_lag_static": round(p95["static"], 4),
        "p95_lag_adaptive": round(p95["adaptive"], 4),
        "lag_improvement": round(improvement, 4),
        "exchange_msg_ratio": round(
            legs["static"]["exchange_messages"]
            / max(1, legs["adaptive"]["exchange_messages"]), 4),
        "adaptive_goodput_ge_static": True,
        "backpressure_engaged": legs["adaptive"]["xbp"] > 0,
        "hot_split_parity": True,
        "hot_split_engaged": split["hot_rows"] > 0,
    }


def run_all(seed, steps, lifetime, verbose=False):
    sweep = run_sweep(seed, steps, verbose=verbose)
    legs, p95, improvement = run_load_comparison(seed + 8, lifetime)
    split = run_split_parity(seed + 13)
    return sweep, legs, p95, improvement, split


def test_admission_elasticity(benchmark):
    from benchmarks._harness import report, run_once

    def run():
        return run_all(seed=23, steps=LOAD_STEPS, lifetime=LOAD_LIFETIME)

    sweep, legs, p95, improvement, split = run_once(benchmark, run)
    report("admission_elasticity",
           exhibit(sweep, legs, p95, improvement, split, LOAD_LIFETIME),
           metrics=metrics_from(sweep, legs, p95, improvement, split),
           scale="full")
    benchmark.extra_info["lag_improvement"] = round(improvement, 3)


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="quick 3-step sweep + shorter overload legs (same gates)",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)
    if args.smoke:
        steps, lifetime = SMOKE_LOAD_STEPS, SMOKE_LOAD_LIFETIME
    else:
        steps, lifetime = LOAD_STEPS, LOAD_LIFETIME
    sweep, legs, p95, improvement, split = run_all(
        seed=23, steps=steps, lifetime=lifetime, verbose=args.verbose)
    text = exhibit(sweep, legs, p95, improvement, split, lifetime)
    print(text)
    from benchmarks._harness import report, write_metrics

    metrics = metrics_from(sweep, legs, p95, improvement, split)
    if args.smoke:
        write_metrics("admission_elasticity", metrics, scale="smoke")
    else:
        report("admission_elasticity", text, metrics=metrics,
               scale="full")
    print("ok: replicas {}, degrade mask {}, refuse mask {}; adaptive "
          "p95 lag {:.3f}s vs static {:.3f}s ({:.2f}x)".format(
              metrics["replica_path"], metrics["degrade_mask"],
              metrics["refuse_mask"], p95["adaptive"], p95["static"],
              improvement))
    return 0


if __name__ == "__main__":
    import pathlib

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    sys.exit(main())
