"""Shared plumbing for the benchmark suite.

Every bench regenerates one exhibit (the paper's Figure 1 / Table 1, or
an extension experiment from DESIGN.md) and must leave a human-readable
artifact behind: :func:`report` prints the exhibit and also writes it to
``benchmarks/results/<name>.txt`` so the output survives pytest's
capture. Benchmarks run the simulation exactly once
(``benchmark.pedantic(rounds=1)``) -- we are timing a reproduction, not
micro-optimizing it -- and stash headline numbers in
``benchmark.extra_info`` so they land in pytest-benchmark's JSON.

Sizes are chosen to finish in tens of seconds; override with the
``PIER_BENCH_SCALE`` environment variable (e.g. ``=full`` for the
paper-scale 300-node, 30-minute Figure 1 run).
"""

import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def full_scale():
    """True when the user asked for paper-scale runs."""
    return os.environ.get("PIER_BENCH_SCALE", "").lower() == "full"


def report(name, text):
    """Print an exhibit and persist it under benchmarks/results/."""
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "{}.txt".format(name)
    path.write_text(text + "\n", encoding="utf-8")
    return path


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def fmt_table(headers, rows):
    """Fixed-width text table."""
    widths = [len(h) for h in headers]
    rendered = [[_fmt(v) for v in row] for row in rows]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(c.rjust(w) if _numeric(c) else c.ljust(w)
                               for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value):
    if isinstance(value, float):
        return "{:,.1f}".format(value)
    if isinstance(value, int):
        return "{:,}".format(value)
    return str(value)


def _numeric(cell):
    return cell.replace(",", "").replace(".", "").replace("-", "").isdigit()
