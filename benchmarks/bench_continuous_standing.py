"""Ext-G: standing continuous execution vs per-epoch re-submission.

The fig1 continuous-sum workload (every host samples its outbound rate
into a stream table; one continuous query aggregates the network-wide
SUM and sample COUNT) run two ways on identical testbeds:

* ``oneshot``  -- the polling discipline the retired rebuild path
  emulated: at every epoch boundary a fresh one-shot windowed query is
  submitted, re-broadcast, re-planned, and re-scans the whole
  retention window under per-query exchange namespaces;
* ``standing`` -- one long-lived ``StandingExecution`` per node: scans
  subscribe to stream appends once and push per-epoch deltas, exchange
  delivery is registered once per query under epoch-free namespaces,
  and epoch boundaries roll operators over via ``advance_epoch``.

Both the in-network aggregation-tree plan and the rehash ablation
(``aggregation_tree=False``) are swept; rehash-mode standing exchanges
additionally cache the learned rendezvous owner, replacing the O(log N)
recursive walk with a single hop per epoch.

Acceptance properties asserted here:

* per-epoch results are identical between the polling and standing
  runs (same seed, same workload, same answers epoch for epoch);
* standing scans examine strictly fewer rows (delta subscription vs
  full-window re-scan);
* standing moves strictly fewer messages in both exchange modes (no
  per-epoch plan broadcast, owner caches, stable tree rendezvous).

Run standalone with ``python benchmarks/bench_continuous_standing.py``
(``--smoke`` for a quick pass usable next to tier-1).
"""

import sys

from repro.core.network import PierConfig, PierNetwork

NODES = 48
EVERY = 10.0
WINDOW = 10.0
LIFETIME = 80.0
SAMPLE_PERIOD = 2.0

SMOKE_NODES = 24
SMOKE_LIFETIME = 40.0

SQL = (
    "SELECT SUM(rate_kbps) AS total_rate, COUNT(*) AS samples "
    "FROM node_stats EVERY {} SECONDS WINDOW {} SECONDS "
    "LIFETIME {} SECONDS"
)

ONESHOT_SQL = (
    "SELECT SUM(rate_kbps) AS total_rate, COUNT(*) AS samples "
    "FROM node_stats WINDOW {} SECONDS"
)


def build_net(seed, nodes):
    net = PierNetwork(nodes=nodes, seed=seed, config=PierConfig())
    # Retention horizon of 2x the query window, like the monitoring app:
    # every one-shot poll re-examines the whole deque.
    net.create_stream_table(
        "node_stats", [("rate_kbps", "FLOAT")], window=2 * WINDOW
    )
    rng = net.rng.fork("rates")

    def make_ticker(address, base):
        step = [0]

        def tick():
            engine = net.node(address).engine
            step[0] += 1
            engine.stream_append("node_stats", (base + (step[0] % 7),))
            engine.set_timer(SAMPLE_PERIOD, tick)

        return tick

    for address in net.addresses():
        tick = make_ticker(address, 10.0 + 90.0 * rng.random())
        net.node(address).engine.set_timer(0.1, tick)
    return net


def _measured(net, fn):
    """Run ``fn(site)`` and return its result plus message/scan deltas."""
    before = dict(net.message_counters())
    scans_before = sum(n.engine.rows_scanned for n in net.nodes.values())
    epochs = fn(net.any_address())
    after = net.message_counters()
    scans_after = sum(n.engine.rows_scanned for n in net.nodes.values())
    return {
        "epochs": epochs,
        "messages": after.get("messages_sent", 0) - before.get("messages_sent", 0),
        "bytes": after.get("bytes_sent", 0) - before.get("bytes_sent", 0),
        "exchange_messages": (after.get("exchange_messages", 0)
                              - before.get("exchange_messages", 0)),
        "rows_scanned": scans_after - scans_before,
        "num_epochs": len(epochs),
    }


def run_standing(seed, nodes, lifetime, tree):
    net = build_net(seed, nodes)
    net.advance(WINDOW)  # fill the first window

    def drive(site):
        results = []
        sql = SQL.format(int(EVERY), int(WINDOW), int(lifetime))
        handle = net.submit_sql(sql, node=site, on_epoch=results.append,
                                options={"aggregation_tree": tree})
        assert handle.plan.standing
        net.advance(lifetime + handle.plan.deadline + 5.0)
        return {r.epoch: sorted(r.rows) for r in results}

    return _measured(net, drive)


def run_oneshot(seed, nodes, lifetime, tree):
    """Poll with a fresh one-shot windowed query at every boundary.

    Each poll is submitted at the instant the standing run's epoch
    closes its window, so both disciplines sample identical data.
    """
    net = build_net(seed, nodes)
    net.advance(WINDOW)

    def drive(site):
        sql = ONESHOT_SQL.format(int(WINDOW))
        pending = []
        for k in range(1, int(lifetime / EVERY) + 1):
            net.advance(EVERY)
            results = []
            handle = net.submit_sql(sql, node=site,
                                    on_epoch=results.append,
                                    options={"aggregation_tree": tree})
            assert not handle.plan.standing
            pending.append((k, handle, results))
        net.advance(max(h.plan.deadline for _k, h, _r in pending) + 5.0)
        return {
            k: sorted(results[-1].rows) if results else []
            for k, _h, results in pending
        }

    return _measured(net, drive)


def run_sweep(seed=7, nodes=NODES, lifetime=LIFETIME):
    out = {}
    for tree in (True, False):
        mode = "tree" if tree else "rehash"
        out["{}/oneshot".format(mode)] = run_oneshot(seed, nodes, lifetime, tree)
        out["{}/standing".format(mode)] = run_standing(seed, nodes, lifetime, tree)
    return out


def _rows_match(a, b):
    """Row-set equality with float tolerance: aggregation merge order
    differs between the two paths (different rendezvous trees), which
    legitimately perturbs float sums by an ulp."""
    import math

    if len(a) != len(b):
        return False
    for row_a, row_b in zip(a, b):
        if len(row_a) != len(row_b):
            return False
        for va, vb in zip(row_a, row_b):
            if isinstance(va, float) or isinstance(vb, float):
                if not math.isclose(va, vb, rel_tol=1e-9, abs_tol=1e-9):
                    return False
            elif va != vb:
                return False
    return True


def check_sweep(stats):
    """Assert parity and the resource reductions; returns ratio dict."""
    ratios = {}
    for mode in ("tree", "rehash"):
        oneshot = stats["{}/oneshot".format(mode)]
        standing = stats["{}/standing".format(mode)]
        assert oneshot["num_epochs"] >= 4, "workload produced too few epochs"
        assert set(standing["epochs"]) == set(oneshot["epochs"]), (
            "{}: standing produced different epochs".format(mode)
        )
        for k in oneshot["epochs"]:
            assert _rows_match(standing["epochs"][k], oneshot["epochs"][k]), (
                "{}: epoch {} results differ (oneshot {!r} vs standing "
                "{!r})".format(mode, k, oneshot["epochs"][k],
                               standing["epochs"][k])
            )
        assert standing["rows_scanned"] < oneshot["rows_scanned"], (
            "{}: standing scans did not reduce rows examined".format(mode)
        )
        assert standing["messages"] < oneshot["messages"], (
            "{}: standing did not reduce messages".format(mode)
        )
        ratios["{}_scan".format(mode)] = (
            oneshot["rows_scanned"] / max(1, standing["rows_scanned"])
        )
        ratios["{}_msgs".format(mode)] = (
            oneshot["messages"] / max(1, standing["messages"])
        )
    return ratios


def exhibit(nodes, lifetime, stats, ratios):
    from benchmarks._harness import fmt_table

    text = "Ext-G: standing execution vs per-epoch polling (fig1 continuous sum)\n"
    text += "({} nodes, epoch {}s, window {}s, lifetime {}s, sample every {}s)\n\n".format(
        nodes, int(EVERY), int(WINDOW), int(lifetime), int(SAMPLE_PERIOD)
    )
    rows = []
    for label in ("tree/oneshot", "tree/standing",
                  "rehash/oneshot", "rehash/standing"):
        out = stats[label]
        rows.append((
            label, out["num_epochs"], out["messages"], out["bytes"],
            out["exchange_messages"], out["rows_scanned"],
        ))
    text += fmt_table(
        ["config", "epochs", "messages", "bytes", "exch msgs (hops)",
         "rows scanned"],
        rows,
    )
    text += (
        "\n\nper-epoch results: standing identical to one-shot polling in "
        "both modes\n"
        "rows-scanned reduction: tree {:.2f}x, rehash {:.2f}x\n"
        "messages_sent reduction: tree {:.2f}x, rehash {:.2f}x "
        "(one broadcast + subscriptions replace per-epoch re-submission)\n".format(
            ratios["tree_scan"], ratios["rehash_scan"],
            ratios["tree_msgs"], ratios["rehash_msgs"],
        )
    )
    return text


def test_continuous_standing(benchmark):
    from benchmarks._harness import report, run_once

    def run():
        stats = run_sweep()
        ratios = check_sweep(stats)
        return stats, ratios

    stats, ratios = run_once(benchmark, run)
    report("continuous_standing", exhibit(NODES, LIFETIME, stats, ratios))
    for label, out in stats.items():
        benchmark.extra_info[label] = {
            "messages": out["messages"],
            "rows_scanned": out["rows_scanned"],
            "epochs": out["num_epochs"],
        }


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="quick 24-node pass (same parity + reduction checks)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        nodes, lifetime = SMOKE_NODES, SMOKE_LIFETIME
    else:
        nodes, lifetime = NODES, LIFETIME
    stats = run_sweep(nodes=nodes, lifetime=lifetime)
    ratios = check_sweep(stats)
    print(exhibit(nodes, lifetime, stats, ratios))
    from benchmarks._harness import write_metrics

    write_metrics("continuous_standing", {
        "parity": True,
        "tree_scan_ratio": round(ratios["tree_scan"], 4),
        "rehash_scan_ratio": round(ratios["rehash_scan"], 4),
        "tree_msgs_ratio": round(ratios["tree_msgs"], 4),
        "rehash_msgs_ratio": round(ratios["rehash_msgs"], 4),
    }, scale="smoke" if args.smoke else "full")
    print("ok: per-epoch parity holds; rows scanned {:.2f}x/{:.2f}x and "
          "messages {:.2f}x/{:.2f}x (tree/rehash)".format(
              ratios["tree_scan"], ratios["rehash_scan"],
              ratios["tree_msgs"], ratios["rehash_msgs"]))
    return 0


if __name__ == "__main__":
    import pathlib

    # Run as a script, ``benchmarks`` is not a package on sys.path yet.
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    sys.exit(main())
