"""Soft-state storage: every item carries a TTL and expires unless renewed.

This is PIER's whole consistency story -- there is no distributed
deletion or repair protocol. Publishers re-``put`` what they want kept
alive; anything orphaned by churn or query teardown simply ages out.

Keys are ``(namespace, resource_id, instance_id)``:

* ``namespace``   -- the relation (or query-temp) name,
* ``resource_id`` -- the value the relation is partitioned on (the DHT
  hashes ``namespace || resource_id`` to place the item),
* ``instance_id`` -- distinguishes multiple tuples sharing a resource id.

Two access structures keep the hot paths cheap at scale:

* a secondary ``(namespace, resource_id)`` index, so ``get`` -- the
  fetch-matches probe path -- touches only that key's instances instead
  of linearly scanning the whole namespace bucket;
* an expiry min-heap, so ``sweep`` pops only what is actually due
  instead of scanning every stored item each period. Heap entries are
  lazy: ``renew`` pushes a later entry rather than re-keying the heap,
  and stale entries are discarded when they surface.
"""

import heapq


class StoredItem:
    __slots__ = ("namespace", "resource_id", "instance_id", "value", "expires_at")

    def __init__(self, namespace, resource_id, instance_id, value, expires_at):
        self.namespace = namespace
        self.resource_id = resource_id
        self.instance_id = instance_id
        self.value = value
        self.expires_at = expires_at

    def key(self):
        return (self.namespace, self.resource_id, self.instance_id)

    def __repr__(self):
        return "StoredItem({}/{}/{} exp={:.1f})".format(
            self.namespace, self.resource_id, self.instance_id, self.expires_at
        )


class SoftStateStore:
    """Per-node item store with lazy + periodic expiry.

    Expiry is enforced two ways: reads filter out stale items on the
    spot (so correctness never depends on sweep timing), and a periodic
    sweep reclaims memory.
    """

    def __init__(self, clock):
        self.clock = clock
        self._items = {}
        self._by_namespace = {}
        self._by_resource = {}  # (namespace, resource_id) -> {key: item}
        self._expiry_heap = []  # (expires_at, seq, key); entries are lazy
        self._heap_seq = 0  # tie-break so keys never get compared
        self._heap_deadline = {}  # key -> latest deadline queued in the heap
        self._new_data_callbacks = {}  # ns -> {token: (callback, expires_at|None)}
        self._next_callback_expiry = None  # earliest TTL'd subscription deadline
        self._next_sub_token = 0

    def __len__(self):
        return len(self._items)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def _index(self, item, key):
        self._items[key] = item
        self._by_namespace.setdefault(item.namespace, {})[key] = item
        self._by_resource.setdefault(
            (item.namespace, item.resource_id), {}
        )[key] = item
        self._push_expiry(item, key)

    def _push_expiry(self, item, key):
        # One *current* entry per key: only the entry matching the
        # recorded deadline is honoured by sweep, so renewing a key
        # every period cannot grow the heap without bound, and a write
        # that shortens the deadline takes effect immediately (the
        # superseded later entry is dropped when it surfaces).
        deadline = self._heap_deadline.get(key)
        if deadline == item.expires_at:
            return
        self._heap_seq += 1
        heapq.heappush(self._expiry_heap, (item.expires_at, self._heap_seq, key))
        self._heap_deadline[key] = item.expires_at

    def _discard(self, key, item):
        """Drop one item from every index (its heap entries expire lazily)."""
        self._items.pop(key, None)
        bucket = self._by_namespace.get(item.namespace)
        if bucket is not None:
            bucket.pop(key, None)
            if not bucket:
                del self._by_namespace[item.namespace]
        rkey = (item.namespace, item.resource_id)
        rbucket = self._by_resource.get(rkey)
        if rbucket is not None:
            rbucket.pop(key, None)
            if not rbucket:
                del self._by_resource[rkey]
        self._heap_deadline.pop(key, None)

    def _adopt(self, item):
        """Index ``item``, firing newData if its key is genuinely new.

        A key whose previous item has already expired counts as new: an
        unswept corpse must not shadow the live replacement, or a
        subscriber would never hear about the re-published row.

        A re-put of a *live* key is folded into the existing
        :class:`StoredItem` in place rather than replacing the object.
        Handoff and standing-scan subscribers hold these items by
        reference (the sweep already relies on that for renewals), so
        the refresh must stay visible through the reference they keep.
        """
        key = item.key()
        existing = self._items.get(key)
        if existing is not None and existing.expires_at > self.clock.now:
            existing.value = item.value
            existing.expires_at = item.expires_at
            self._push_expiry(existing, key)
            return existing
        self._index(item, key)
        self._fire_new_data(item.namespace, item)
        return item

    def put(self, namespace, resource_id, instance_id, value, ttl):
        """Insert or refresh an item; firing any newData subscribers."""
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        item = StoredItem(
            namespace, resource_id, instance_id, value, self.clock.now + ttl
        )
        return self._adopt(item)

    def put_item(self, item):
        """Adopt an already-built item (bulk transfer path) verbatim.

        Fires newData subscribers for genuinely new keys: a row migrated
        here by churn handoff is *new to this node*, and a continuous
        scan subscribed at the new owner must wake for it just as it
        would for a fresh publish. An item whose TTL lapsed in transit
        is dead on arrival and not adopted at all.
        """
        if item.expires_at <= self.clock.now:
            return
        self._adopt(item)

    def renew(self, namespace, resource_id, instance_id, ttl):
        """Extend an item's life; returns False if it no longer exists.

        An already-expired item is reclaimed on the spot rather than
        left for the sweeper: the renew just proved someone is looking
        at this key, so don't let the corpse shadow it.
        """
        key = (namespace, resource_id, instance_id)
        item = self._items.get(key)
        if item is None:
            return False
        if item.expires_at <= self.clock.now:
            self._discard(key, item)
            return False
        item.expires_at = self.clock.now + ttl
        self._push_expiry(item, key)
        return True

    def remove_namespace(self, namespace):
        """Drop a whole namespace (query teardown fast-path).

        Subscriptions go with it: a torn-down query's namespace will
        never see data this node should announce, and keeping the
        callbacks would pin dead executions in memory.
        """
        doomed = list(self._by_namespace.get(namespace, {}).items())
        for key, item in doomed:
            self._discard(key, item)
        self._new_data_callbacks.pop(namespace, None)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def _live(self, item):
        return item.expires_at > self.clock.now

    def get(self, namespace, resource_id):
        """All live items for (namespace, resource_id), any instance."""
        bucket = self._by_resource.get((namespace, resource_id))
        if not bucket:
            return []
        return [item for item in bucket.values() if self._live(item)]

    def lscan(self, namespace):
        """All live items in a namespace stored at this node."""
        bucket = self._by_namespace.get(namespace, {})
        return [item for item in bucket.values() if self._live(item)]

    def items_in_range(self, predicate):
        """Live items whose hashed key satisfies ``predicate`` (handoff)."""
        return [item for item in self._items.values() if self._live(item) and predicate(item)]

    def lscan_all(self):
        """Every live item at this node (graceful-leave handoff)."""
        return [item for item in self._items.values() if self._live(item)]

    def namespaces(self):
        return list(self._by_namespace)

    # ------------------------------------------------------------------
    # Subscriptions and maintenance
    # ------------------------------------------------------------------
    def on_new_data(self, namespace, callback, ttl=None):
        """Register a callback fired when a *new* item lands in ``namespace``.

        With a ``ttl`` the subscription is itself soft state -- the
        sweeper drops it once expired, matching how everything else in
        the store ages out. Without one it lives until the namespace is
        removed (or ``remove_new_data``). Returns a subscription token;
        a long-lived subscriber (a standing continuous scan) passes it
        to :meth:`renew_new_data` each epoch instead of re-subscribing,
        which would duplicate the callback.
        """
        expires_at = None if ttl is None else self.clock.now + ttl
        self._next_sub_token += 1
        token = self._next_sub_token
        self._new_data_callbacks.setdefault(namespace, {})[token] = (
            callback, expires_at
        )
        self._note_sub_expiry(expires_at)
        return token

    def renew_new_data(self, namespace, token, ttl):
        """Extend a TTL'd subscription; returns False if it aged out.

        Like item renewal, an expired subscription is reclaimed on the
        spot rather than resurrected -- the subscriber must re-subscribe
        (and re-seed itself) because arrivals during the gap were lost.
        """
        bucket = self._new_data_callbacks.get(namespace)
        entry = bucket.get(token) if bucket else None
        if entry is None:
            return False
        callback, expires_at = entry
        if expires_at is not None and expires_at <= self.clock.now:
            del bucket[token]
            if not bucket:
                del self._new_data_callbacks[namespace]
            return False
        new_expiry = None if ttl is None else self.clock.now + ttl
        bucket[token] = (callback, new_expiry)
        self._note_sub_expiry(new_expiry)
        return True

    def _note_sub_expiry(self, expires_at):
        if expires_at is not None and (
            self._next_callback_expiry is None
            or expires_at < self._next_callback_expiry
        ):
            self._next_callback_expiry = expires_at

    def remove_new_data(self, namespace, token=None):
        if token is None:
            self._new_data_callbacks.pop(namespace, None)
            return
        bucket = self._new_data_callbacks.get(namespace)
        if bucket is not None:
            bucket.pop(token, None)
            if not bucket:
                del self._new_data_callbacks[namespace]

    def _fire_new_data(self, namespace, item):
        now = self.clock.now
        bucket = self._new_data_callbacks.get(namespace)
        if not bucket:
            return
        for callback, expires_at in list(bucket.values()):
            if expires_at is None or expires_at > now:
                callback(item)

    def sweep(self):
        """Reclaim expired items; returns how many were removed.

        Pops the expiry heap only down to ``now``: cost is proportional
        to what actually expired (plus lazy entries superseded by a
        renew), never to the store's total size. Expired TTL'd
        subscriptions are pruned on the same pass.
        """
        now = self.clock.now
        removed = 0
        heap = self._expiry_heap
        while heap and heap[0][0] <= now:
            expires_at, _seq, key = heapq.heappop(heap)
            if self._heap_deadline.get(key) != expires_at:
                continue  # superseded or discarded; a stale entry
            item = self._items.get(key)
            if item is None:
                self._heap_deadline.pop(key, None)
                continue
            if item.expires_at > now:
                # Still live past its latest queued entry: handoff
                # shares StoredItem objects by reference, so a renew at
                # another owner can move expires_at without touching
                # *this* heap -- re-arm, or this store would never look
                # at the key again.
                self._push_expiry(item, key)
                continue
            self._discard(key, item)
            removed += 1
        self._sweep_callbacks(now)
        return removed

    def _sweep_callbacks(self, now):
        # The common case is no TTL'd subscriptions at all; the earliest
        # deadline lets that case (and any not-yet-due one) skip the
        # scan over every subscribed namespace.
        if self._next_callback_expiry is None or self._next_callback_expiry > now:
            return
        next_expiry = None
        for namespace in list(self._new_data_callbacks):
            entries = {
                token: (cb, exp)
                for token, (cb, exp) in self._new_data_callbacks[namespace].items()
                if exp is None or exp > now
            }
            if entries:
                self._new_data_callbacks[namespace] = entries
                for _cb, exp in entries.values():
                    if exp is not None and (next_expiry is None or exp < next_expiry):
                        next_expiry = exp
            else:
                del self._new_data_callbacks[namespace]
        self._next_callback_expiry = next_expiry

    def clear(self):
        """Drop everything (node crash: soft state does not survive)."""
        self._items.clear()
        self._by_namespace.clear()
        self._by_resource.clear()
        self._expiry_heap = []
        self._heap_deadline.clear()
        self._new_data_callbacks.clear()
        self._next_callback_expiry = None
