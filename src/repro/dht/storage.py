"""Soft-state storage: every item carries a TTL and expires unless renewed.

This is PIER's whole consistency story -- there is no distributed
deletion or repair protocol. Publishers re-``put`` what they want kept
alive; anything orphaned by churn or query teardown simply ages out.

Keys are ``(namespace, resource_id, instance_id)``:

* ``namespace``   -- the relation (or query-temp) name,
* ``resource_id`` -- the value the relation is partitioned on (the DHT
  hashes ``namespace || resource_id`` to place the item),
* ``instance_id`` -- distinguishes multiple tuples sharing a resource id.
"""


class StoredItem:
    __slots__ = ("namespace", "resource_id", "instance_id", "value", "expires_at")

    def __init__(self, namespace, resource_id, instance_id, value, expires_at):
        self.namespace = namespace
        self.resource_id = resource_id
        self.instance_id = instance_id
        self.value = value
        self.expires_at = expires_at

    def key(self):
        return (self.namespace, self.resource_id, self.instance_id)

    def __repr__(self):
        return "StoredItem({}/{}/{} exp={:.1f})".format(
            self.namespace, self.resource_id, self.instance_id, self.expires_at
        )


class SoftStateStore:
    """Per-node item store with lazy + periodic expiry.

    Expiry is enforced two ways: reads filter out stale items on the
    spot (so correctness never depends on sweep timing), and a periodic
    sweep reclaims memory.
    """

    def __init__(self, clock):
        self.clock = clock
        self._items = {}
        self._by_namespace = {}
        self._new_data_callbacks = {}

    def __len__(self):
        return len(self._items)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def put(self, namespace, resource_id, instance_id, value, ttl):
        """Insert or refresh an item; firing any newData subscribers."""
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        item = StoredItem(
            namespace, resource_id, instance_id, value, self.clock.now + ttl
        )
        key = item.key()
        is_new = key not in self._items
        self._items[key] = item
        self._by_namespace.setdefault(namespace, {})[key] = item
        if is_new:
            for callback in self._new_data_callbacks.get(namespace, ()):
                callback(item)
        return item

    def put_item(self, item):
        """Adopt an already-built item (bulk transfer path) verbatim."""
        key = item.key()
        self._items[key] = item
        self._by_namespace.setdefault(item.namespace, {})[key] = item

    def renew(self, namespace, resource_id, instance_id, ttl):
        """Extend an item's life; returns False if it no longer exists."""
        item = self._items.get((namespace, resource_id, instance_id))
        if item is None or item.expires_at <= self.clock.now:
            return False
        item.expires_at = self.clock.now + ttl
        return True

    def remove_namespace(self, namespace):
        """Drop a whole namespace (query teardown fast-path)."""
        for key in self._by_namespace.pop(namespace, {}):
            self._items.pop(key, None)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def _live(self, item):
        return item.expires_at > self.clock.now

    def get(self, namespace, resource_id):
        """All live items for (namespace, resource_id), any instance."""
        bucket = self._by_namespace.get(namespace, {})
        return [
            item
            for key, item in bucket.items()
            if key[1] == resource_id and self._live(item)
        ]

    def lscan(self, namespace):
        """All live items in a namespace stored at this node."""
        bucket = self._by_namespace.get(namespace, {})
        return [item for item in bucket.values() if self._live(item)]

    def items_in_range(self, predicate):
        """Live items whose hashed key satisfies ``predicate`` (handoff)."""
        return [item for item in self._items.values() if self._live(item) and predicate(item)]

    def lscan_all(self):
        """Every live item at this node (graceful-leave handoff)."""
        return [item for item in self._items.values() if self._live(item)]

    def namespaces(self):
        return list(self._by_namespace)

    # ------------------------------------------------------------------
    # Subscriptions and maintenance
    # ------------------------------------------------------------------
    def on_new_data(self, namespace, callback):
        """Register a callback fired when a *new* item lands in ``namespace``."""
        self._new_data_callbacks.setdefault(namespace, []).append(callback)

    def remove_new_data(self, namespace):
        self._new_data_callbacks.pop(namespace, None)

    def sweep(self):
        """Reclaim expired items; returns how many were removed."""
        now = self.clock.now
        dead = [k for k, item in self._items.items() if item.expires_at <= now]
        for key in dead:
            item = self._items.pop(key)
            bucket = self._by_namespace.get(item.namespace)
            if bucket is not None:
                bucket.pop(key, None)
                if not bucket:
                    del self._by_namespace[item.namespace]
        return len(dead)

    def clear(self):
        """Drop everything (node crash: soft state does not survive)."""
        self._items.clear()
        self._by_namespace.clear()
