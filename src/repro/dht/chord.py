"""Chord: the primary overlay under PIER.

Implements the full protocol from Stoica et al. (SIGCOMM 2001), the DHT
the demo paper cites as its canonical substrate, hardened with the
Bamboo-style techniques of the paper's churn reference [6] (Rhea et al.,
USENIX 2004): *periodic* rather than reactive recovery, timeout-driven
failure suspicion, and hop-by-hop acknowledgment of routed messages with
re-forwarding around suspected-dead hops.

Feature inventory:

* recursive multi-hop lookups via finger tables (O(log N) hops),
* successor lists for resilience to node failure,
* periodic stabilize / fix-fingers / check-predecessor,
* key handoff on join and (optionally) graceful leave,
* soft-state storage of application items (``put/get/renew/lscan``),
* key-routed application messages with per-hop *upcalls* -- the hook
  PIER's hierarchical aggregation uses to combine partial aggregates on
  their way up the routing tree,
* finger-table broadcast for query dissemination, with ack/repair so a
  dead finger's delegated range is re-routed to its live owner.

A :class:`ChordNode` is a :class:`~repro.sim.node.SimNode`: it fails by
crashing (losing all soft state) and recovers by re-joining through a
bootstrap address.
"""

from repro.dht import messages as msg
from repro.dht.rpc import RpcNode
from repro.dht.storage import SoftStateStore
from repro.sim.node import SimNode
from repro.sim.processes import PeriodicProcess
from repro.util.ids import ID_BITS, distance_cw, in_interval, node_id_for, sha1_id
from repro.util.stats import RunningStat


class NodeRef:
    """An (id, address) pair -- how nodes refer to each other."""

    __slots__ = ("id", "address")

    def __init__(self, node_id, address):
        self.id = node_id
        self.address = address

    def __eq__(self, other):
        return isinstance(other, NodeRef) and self.id == other.id

    def __hash__(self):
        return hash(self.id)

    def wire_size(self):
        return 28

    def __repr__(self):
        return "NodeRef({:08x}.., {!r})".format(self.id >> (ID_BITS - 32), self.address)


def storage_key(namespace, resource_id):
    """Where an item lives on the ring: hash of namespace + resource id."""
    return sha1_id((namespace, resource_id))


class ChordNode(SimNode, RpcNode):
    """One Chord participant with PIER's storage API grafted on."""

    def __init__(self, network, address, config, rng, trace=None):
        super().__init__(network, address)
        self._init_rpc(config.rpc_timeout)
        self.config = config
        self.rng = rng
        self.trace = trace
        self.id = node_id_for(address)
        self.ref = NodeRef(self.id, address)

        self.successors = [self.ref]  # successor list; [0] is the successor
        self.predecessor = None
        self.fingers = [None] * ID_BITS
        self._next_finger = 0

        self.store = SoftStateStore(self.clock)
        self.lookup_hops = RunningStat()

        self._pending_lookups = {}
        self._pending_gets = {}
        self._pending_bcast_acks = {}
        self._pending_hop_acks = {}
        self._suspects = {}  # address -> suspicion expiry (sim time)
        self._next_req = 0
        self._next_mid = 0
        self._seen_mids = {}  # delivery id -> forget-at (replay dedup)
        self._intercepts = {}
        self._delivery_handlers = {}
        self._default_delivery = None
        self._storage_probe_handlers = []
        self._broadcast_handlers = []
        self._direct_handlers = []
        self._seen_broadcasts = set()
        self._bootstrap_address = None

        self._stabilizer = PeriodicProcess(
            self.clock, config.stabilize_period, self._stabilize, jitter_rng=rng
        )
        self._finger_fixer = PeriodicProcess(
            self.clock, config.fix_fingers_period, self._fix_fingers, jitter_rng=rng
        )
        self._pred_checker = PeriodicProcess(
            self.clock, config.check_predecessor_period, self._check_predecessor,
            jitter_rng=rng,
        )
        self._sweeper = PeriodicProcess(
            self.clock, config.storage_sweep_period, self._sweep_soft_state,
            jitter_rng=rng,
        )
        self._install_rpc_handlers()

    def _fresh_req(self):
        self._next_req += 1
        return self._next_req

    def fresh_mid(self):
        """A node-unique delivery id for exactly-once exchange delivery.

        Stamped into ``deliver``/``deliver_batch`` payloads at the
        origin (exchanges, tree combiners); the id survives every
        re-forward of the same message, so a terminal that has already
        consumed it can drop the replay.
        """
        self._next_mid += 1
        return (self.address, self._next_mid)

    def accept_delivery_once(self, mid):
        """True exactly once per delivery id within the dedup TTL.

        Hop-by-hop acked forwarding is at-least-once: a delivered hop
        whose ack is lost re-forwards the same message, and a cached-
        owner send that times out falls back to key routing. Consuming
        the id at the point of delivery (or in-network absorption)
        makes exchange delivery exactly-once *per node* -- the only
        duplicates left are cross-node ones during ownership ambiguity,
        which soft state already tolerates.
        """
        if mid is None:
            return True
        if mid in self._seen_mids:
            return False
        self._seen_mids[mid] = self.clock.now + self.config.delivery_dedup_ttl
        return True

    def _sweep_soft_state(self):
        self.store.sweep()
        now = self.clock.now
        for mid in [m for m, t in self._seen_mids.items() if t <= now]:
            del self._seen_mids[mid]

    # ------------------------------------------------------------------
    # Ring membership
    # ------------------------------------------------------------------
    @property
    def successor(self):
        return self.successors[0]

    def create_ring(self):
        """Become the first node of a new ring."""
        self.successors = [self.ref]
        self.predecessor = self.ref
        self._start_maintenance()

    def join(self, bootstrap_address):
        """Join the ring known to ``bootstrap_address`` via the protocol."""
        self._bootstrap_address = bootstrap_address
        self.predecessor = None

        def joined(owner, hops):
            if owner is None:
                # Bootstrap unreachable; retry after a backoff.
                self.set_timer(self.config.rpc_timeout, self.join, bootstrap_address)
                return
            self.successors = [owner] if owner != self.ref else [self.ref]
            self._start_maintenance()
            self._stabilize()

        self._lookup_via(bootstrap_address, self.id, joined)

    def leave(self):
        """Graceful departure: hand keys to the successor, then stop."""
        if self.successor != self.ref:
            items = self.store.lscan_all()
            if items or self._seen_mids:
                # Keys AND consumed delivery ids move together: the
                # successor inherits the range, so it must also inherit
                # the dedup memory, or a retransmission raced against
                # this departure double-delivers at the heir.
                self.send(
                    self.successor.address,
                    msg.StoreItems(items, mids=dict(self._seen_mids)),
                )
            if self.predecessor is not None and self.predecessor != self.ref:
                self.send(
                    self.predecessor.address,
                    msg.RpcRequest(-1, self.address, {
                        "kind": "successor_leaving",
                        "successors": list(self.successors[1:]) or list(self.successors),
                    }),
                )
        self.crash()

    def crash(self):
        self._stop_maintenance()
        self.cancel_all_rpcs()
        self.store.clear()
        self._pending_lookups.clear()
        self._pending_gets.clear()
        self._pending_bcast_acks.clear()
        self._pending_hop_acks.clear()
        self._suspects.clear()
        self._seen_broadcasts.clear()
        self._seen_mids.clear()
        # Delivery handlers and intercepts point into executions that
        # just died with the engine; a recovered node must not feed
        # rows to those zombies, it must fall back to the engine's
        # default (buffering) delivery until a plan is re-adopted.
        self._delivery_handlers.clear()
        self._intercepts.clear()
        super().crash()

    def recover(self, bootstrap_address=None):
        """Rejoin after a crash. Soft state is gone; same id, fresh store."""
        super().recover()
        self.successors = [self.ref]
        self.predecessor = None
        self.fingers = [None] * ID_BITS
        target = bootstrap_address or self._bootstrap_address
        if target is None or target == self.address:
            self.create_ring()
        else:
            self.join(target)

    def _start_maintenance(self):
        self._stabilizer.start()
        self._finger_fixer.start()
        self._pred_checker.start()
        self._sweeper.start()

    def _stop_maintenance(self):
        self._stabilizer.stop()
        self._finger_fixer.stop()
        self._pred_checker.stop()
        self._sweeper.stop()

    # ------------------------------------------------------------------
    # Failure suspicion (timeout-driven, no oracle)
    # ------------------------------------------------------------------
    def _suspect(self, address):
        self._suspects[address] = self.clock.now + self.config.suspect_ttl

    def _is_suspect(self, address):
        expiry = self._suspects.get(address)
        if expiry is None:
            return False
        if expiry <= self.clock.now:
            del self._suspects[address]
            return False
        return True

    def _absolve(self, address):
        self._suspects.pop(address, None)

    # ------------------------------------------------------------------
    # Region awareness (proximity neighbor selection)
    # ------------------------------------------------------------------
    def _region_of(self, address):
        """Region label of a peer, via the topology's region directory.

        The simulator's latency model doubles as the proximity service
        a deployed overlay would consult (Vivaldi coordinates, a region
        config); an unlabelled topology answers None for everyone and
        every proximity preference below degrades to the flat ring.
        """
        region_of = getattr(self.network.latency, "region_of", None)
        return region_of(address) if region_of is not None else None

    def _proximity_on(self):
        return self.config.proximity_routing and self.region is not None

    def region_rendezvous(self, key, region=None):
        """The region's deterministic meeting point for ``key``.

        The first region member clockwise of ``key`` (skipping locally
        suspected peers), so every member of a region independently
        picks the same in-region combiner for a routing key -- the
        region-local level of a two-level aggregation tree. Returns
        None when the topology has no region directory.
        """
        region = region if region is not None else self.region
        if region is None:
            return None
        members = getattr(self.network.latency, "members", None)
        if members is None:
            return None
        best = None
        best_distance = None
        for address in members(region):
            if address != self.address and self._is_suspect(address):
                continue
            node_id = node_id_for(address)
            d = distance_cw(key, node_id)
            if best_distance is None or d < best_distance:
                best = NodeRef(node_id, address)
                best_distance = d
        return best

    # ------------------------------------------------------------------
    # Next-hop selection
    # ------------------------------------------------------------------
    def owns(self, key):
        """True if this node is responsible for ``key``.

        A node owns the keys in ``(predecessor, self]``. With no known
        predecessor we claim ownership only when we are our own
        successor (single-node ring); otherwise routing decides.
        """
        if self.predecessor is None:
            return self.successor == self.ref
        return in_interval(key, self.predecessor.id, self.id, inclusive_hi=True)

    def _candidates(self):
        yield from self.fingers
        yield from self.successors

    def closest_preceding(self, target, exclude=()):
        """Best next hop toward ``target``: closest known predecessor of it.

        Skips suspects and anything in ``exclude`` (hops already tried
        for this message). Falls back to the first usable successor.

        Under ``proximity_routing`` a same-region candidate within 2x
        of the best candidate's remaining distance wins the hop: every
        in-interval candidate still makes strict progress (its distance
        to the target is less than ours), so termination is untouched
        and the stretch is bounded, but hops stay on rack-scale links
        until the key's own region is reached.
        """
        best = None
        best_distance = None
        local = None
        local_distance = None
        proximity = self._proximity_on()
        for candidate in self._candidates():
            if candidate is None or candidate == self.ref:
                continue
            if candidate.address in exclude or self._is_suspect(candidate.address):
                continue
            if in_interval(candidate.id, self.id, target):
                d = distance_cw(candidate.id, target)
                if best_distance is None or d < best_distance:
                    best = candidate
                    best_distance = d
                if proximity and self._region_of(candidate.address) == self.region:
                    if local_distance is None or d < local_distance:
                        local = candidate
                        local_distance = d
        if best is not None:
            if (local is not None and local != best
                    and local_distance <= 2 * best_distance):
                return local
            return best
        # Successor-list fallback -- but never overshoot the target:
        # forwarding *past* the key makes messages lap the ring while
        # an ownership gap heals. If no live entry precedes the target,
        # this node is the closest live predecessor and must act.
        for fallback in self.successors:
            if fallback == self.ref:
                continue
            if fallback.address in exclude or self._is_suspect(fallback.address):
                continue
            if in_interval(fallback.id, self.id, target):
                return fallback
        return None

    # ------------------------------------------------------------------
    # Hop-by-hop acked forwarding (shared by lookups and routes)
    # ------------------------------------------------------------------
    @staticmethod
    def _dup_sensitive(message):
        """Does duplicating this message at two nodes corrupt state?

        Exchange deliveries are: a copy consumed at the owner *and* at
        an heir double-counts rows, and only the dedup id lets a
        receiver drop a replay. Lookups are answers, puts/renews are
        idempotent, gets are reads -- duplicating those is harmless, so
        they keep the fastest possible failure recovery.
        """
        payload = getattr(message, "payload", None)
        return isinstance(payload, dict) and payload.get("mid") is not None

    def _send_hop(self, nxt, message, target, tried, retried=False):
        """Forward ``message`` to ``nxt``, expecting a receipt ack.

        On silence, a dup-sensitive message (see :meth:`_dup_sensitive`)
        is first *retransmitted* once to the same hop: a lost ack is as
        likely as a lost message, and a retransmit carries the same
        delivery id, so the receiver's dedup absorbs the duplicate --
        where rerouting straight away would deliver a second copy at a
        *different* node (an heir), which no node-local dedup can
        catch. A second silence (or the first, for idempotent traffic
        and hops already under suspicion) makes ``nxt`` a suspect and
        re-forwards the message around it (Bamboo's recursive-routing
        recovery).
        """
        req = self._fresh_req()
        message.hop_ack = (self.address, req)

        def not_acked():
            if self._pending_hop_acks.pop(req, None) is None:
                return
            if (not retried and self._dup_sensitive(message)
                    and not self._is_suspect(nxt.address)):
                self._send_hop(nxt, message, target, tried, retried=True)
                return
            self._suspect(nxt.address)
            self._advance(message, target, tried | {nxt.address})

        wait = (self.config.hop_retransmit_timeout if retried
                else self.config.rpc_timeout)
        timer = self.set_timer(wait, not_acked)
        self._pending_hop_acks[req] = timer
        message.hops += 1
        self.send(nxt.address, message)

    def _advance(self, message, target, tried):
        """Terminal-check then forward ``message`` toward ``target``."""
        if getattr(message, "force_terminal", False):
            self._terminal(message)
            return
        if self.owns(target) or self.successor == self.ref:
            self._terminal(message)
            return
        if in_interval(target, self.id, self.successor.id, inclusive_hi=True):
            if not (self._is_suspect(self.successor.address)
                    or self.successor.address in tried):
                self._send_hop(self.successor, message, target, tried)
                return
            # The key's owner appears dead. The next live successor-list
            # entry inherits its range once stabilization completes, so
            # deliver there now (flagged terminal -- the heir does not
            # yet believe it owns the range). Delivery at any heir is
            # approximate by contract, so proximity routing may prefer
            # a region-local heir over the strict list order and keep
            # the reroute off the backbone.
            heirs = [
                heir for heir in self.successors[1:]
                if heir != self.ref and heir.address not in tried
                and not self._is_suspect(heir.address)
            ]
            if self._proximity_on():
                heirs.sort(
                    key=lambda h: self._region_of(h.address) != self.region
                )
            if heirs:
                message.force_terminal = True
                self._send_hop(heirs[0], message, target, tried)
            else:
                self._terminal(message)
            return
        nxt = self.closest_preceding(target, exclude=tried)
        if nxt is None:
            # Every live candidate was tried: we are the closest live
            # node to the key, so act as its owner (Bamboo's recovery
            # behaviour). Stabilization will install the true owner
            # shortly; in the meantime an approximate delivery beats a
            # dropped one -- soft state tolerates the former.
            self._terminal(message)
            return
        self._send_hop(nxt, message, target, tried)

    def _terminal(self, message):
        if message.kind == "lookup":
            # The owner of the target answers with itself.
            self.send(
                message.origin.address,
                msg.LookupDone(message.req_id, self.ref, message.hops),
            )
        else:
            self._route_arrived(message)

    def _ack_hop(self, message):
        if message.hop_ack is not None:
            ack_to, req = message.hop_ack
            message.hop_ack = None
            self.send_direct(ack_to, {"op": "hop_ack", "req": req})

    # ------------------------------------------------------------------
    # Lookup (find the owner of a key)
    # ------------------------------------------------------------------
    def lookup(self, key, on_done):
        """Find the owner of ``key``; ``on_done(owner_ref, hops)``.

        ``owner_ref`` is None if every retry timed out (network
        partition, or the ring collapsed under us).
        """
        self._lookup_attempt(key, on_done, self.config.lookup_retries)

    def _lookup_attempt(self, key, on_done, retries_left):
        if self.owns(key) or self.successor == self.ref:
            self.lookup_hops.add(0)
            on_done(self.ref, 0)
            return
        if in_interval(key, self.id, self.successor.id, inclusive_hi=True):
            self.lookup_hops.add(1)
            on_done(self.successor, 1)
            return
        req_id = self._fresh_req()

        def timed_out():
            if req_id not in self._pending_lookups:
                return
            del self._pending_lookups[req_id]
            if retries_left > 0:
                self._lookup_attempt(key, on_done, retries_left - 1)
            else:
                on_done(None, -1)

        timer = self.set_timer(self.config.lookup_timeout, timed_out)
        self._pending_lookups[req_id] = (on_done, timer)
        self._advance(msg.Lookup(key, self.ref, req_id), key, frozenset())

    def _lookup_via(self, bootstrap_address, key, on_done):
        """Lookup routed through an arbitrary node (used while joining)."""
        req_id = self._fresh_req()

        def timed_out():
            if req_id in self._pending_lookups:
                del self._pending_lookups[req_id]
                on_done(None, -1)

        timer = self.set_timer(self.config.lookup_timeout, timed_out)
        self._pending_lookups[req_id] = (on_done, timer)
        self.send(bootstrap_address, msg.Lookup(key, self.ref, req_id, hops=1))

    def _handle_lookup(self, message):
        self._ack_hop(message)
        self._advance(message, message.target, frozenset())

    def _handle_lookup_done(self, message):
        entry = self._pending_lookups.pop(message.req_id, None)
        if entry is None:
            return
        on_done, timer = entry
        self.cancel_timer(timer)
        self.lookup_hops.add(message.hops)
        if self.trace is not None:
            self.trace.record("lookup_done", node=self.address, hops=message.hops)
        on_done(message.owner, message.hops)

    # ------------------------------------------------------------------
    # Key-routed application messages (with upcalls)
    # ------------------------------------------------------------------
    def route(self, key, payload, upcall=None):
        """Route ``payload`` toward the owner of ``key``.

        If ``upcall`` names a registered intercept, the intercept runs at
        every *subsequent* hop (not at the origin) and may absorb or
        transform the message -- PIER's in-network combining hook.
        """
        message = msg.Route(key, payload, self.ref, hops=0, upcall=upcall)
        self._advance(message, key, frozenset())

    def route_via(self, owner, key, payload, _retried=False):
        """Ship a key-routed payload straight to a previously learned owner.

        Standing continuous queries route the same epoch-free exchange
        keys every epoch; once the terminal node is known, one direct
        hop replaces the O(log N) recursive walk. The send is still
        hop-acked, with the same dup-aware recovery as routed hops: on
        silence a dup-sensitive payload is retransmitted once to the
        owner (same delivery id, so a live owner whose ack was lost
        dedups the copy instead of an heir double-counting it); only a
        second silence suspects the owner and falls back to normal key
        routing around it, so a stale cache costs a timeout rather than
        lost -- or duplicated -- rows.
        """
        message = msg.Route(key, payload, self.ref, hops=0)
        message.force_terminal = True  # deliver at the cached owner
        req = self._fresh_req()
        message.hop_ack = (self.address, req)

        def not_acked():
            if self._pending_hop_acks.pop(req, None) is None:
                return
            if (not _retried and self._dup_sensitive(message)
                    and not self._is_suspect(owner.address)):
                self.route_via(owner, key, payload, _retried=True)
                return
            self._suspect(owner.address)
            message.force_terminal = False
            message.hop_ack = None
            self._advance(message, key, frozenset({owner.address}))

        wait = (self.config.hop_retransmit_timeout if _retried
                else self.config.rpc_timeout)
        timer = self.set_timer(wait, not_acked)
        self._pending_hop_acks[req] = timer
        message.hops += 1
        self.send(owner.address, message)

    def route_through(self, via, key, payload, upcall=None):
        """Key-route ``payload`` with an explicit first hop at ``via``.

        The regional-tree send: the first hop goes to the region's
        rendezvous (see :meth:`region_rendezvous`) where the upcall
        intercept absorbs the partial into the region-local combiner;
        whatever the combiner later forwards resumes normal key routing
        toward the global owner. Unlike :meth:`route_via` the message
        is NOT flagged terminal -- the via node runs the ordinary
        per-hop upcall path, so absorption (not delivery) happens
        there. If the via is silent the hop machinery suspects it and
        re-routes toward the key as usual, so a dead rendezvous costs a
        timeout, never rows.
        """
        message = msg.Route(key, payload, self.ref, hops=0, upcall=upcall)
        if via == self.ref or via.address == self.address:
            # We are the rendezvous: take the intercept path locally,
            # exactly as if the message had just arrived here.
            self._handle_route(message)
            return
        self._send_hop(via, message, key, frozenset())

    def is_suspect(self, address):
        """Expose failure suspicion (owner caches skip suspected nodes)."""
        return self._is_suspect(address)

    def forward_route(self, message):
        """Continue routing a message an upcall previously absorbed."""
        self._advance(message, message.key, frozenset())

    def _handle_route(self, message):
        self._ack_hop(message)
        if message.upcall is not None:
            handler = self._intercepts.get(message.upcall)
            if handler is not None:
                at_owner = (
                    message.force_terminal
                    or self.owns(message.key)
                    or self.successor == self.ref
                )
                keep_going = handler(self, message, at_owner)
                if not keep_going:
                    return
        self._advance(message, message.key, frozenset())

    def _route_arrived(self, message):
        payload = message.payload
        op = payload.get("op")
        if op == "put":
            self.store.put(
                payload["ns"], payload["rid"], payload["iid"],
                payload["value"], payload["ttl"],
            )
        elif op == "renew":
            self.store.renew(
                payload["ns"], payload["rid"], payload["iid"], payload["ttl"]
            )
        elif op == "get":
            items = self.store.get(payload["ns"], payload["rid"])
            self.send(
                payload["reply_to"],
                msg.Direct({
                    "op": "get_reply",
                    "req": payload["req"],
                    "values": [(i.instance_id, i.value) for i in items],
                }),
            )
            self._note_storage_probe(payload["ns"])
        elif op == "deliver" or op == "deliver_batch":
            self._deliver_arrived(payload, message)
        elif op == "deliver_mux":
            # A multiplexed bundle: several co-routed exchange payloads
            # (different queries sharing one prefix stage) shipped as a
            # single message to a common owner. The bundle has its own
            # delivery id; each part keeps its own too, so a replayed
            # bundle drops whole and a part re-sent solo later still
            # dedups.
            if not self.accept_delivery_once(payload.get("mid")):
                return
            for part in payload["parts"]:
                self._deliver_arrived(part, message)
        elif op == "bcast_repair":
            repaired = msg.Broadcast(
                payload["payload"], payload["limit"], message.origin,
                payload["depth"],
            )
            if self._deliver_broadcast(repaired):
                self._relay_broadcast(payload["payload"], payload["limit"],
                                      payload["depth"])
        else:  # pragma: no cover - future ops
            raise ValueError("unknown route op {!r}".format(op))

    def _deliver_arrived(self, payload, message):
        if not self.accept_delivery_once(payload.get("mid")):
            # Replay of a delivery this node already consumed (a
            # re-forward after a lost hop ack): drop it here, before
            # it can double-count in an execution or the engine's
            # unclaimed-row buffer.
            return
        if (
            payload.get("learn")
            and message.origin != self.ref
            and (self.owns(message.key) or self.successor == self.ref)
        ):
            # The origin asked who terminates this key (a standing
            # exchange warming its owner cache): answer once, then
            # it can skip the recursive walk until the hint expires.
            # Only the *owner* answers -- an heir that absorbed this
            # delivery while the owner is suspected must not get
            # cached, or batches would go direct to a non-owner for
            # the whole cache TTL. The origin simply keeps walking
            # until a true owner replies.
            self.send_direct(message.origin.address, {
                "op": "xowner", "ns": payload["ns"],
                "rid": payload.get("rid"), "ref": self.ref,
                # Region label rides along so the learner can expire
                # cross-region owners faster than local ones.
                "region": self.region,
            })
        elif (
            message.force_terminal
            and message.origin != self.ref
            and payload.get("rid") is not None
            and not self.owns(message.key)
        ):
            # A cache-directed (or heir) delivery landed on a node
            # that no longer owns the key -- ownership moved, e.g. a
            # joiner took over the range while the sender's owner
            # cache was warm. Deliver anyway (approximate delivery
            # beats a drop) but tell the origin to forget the entry
            # so its next batch re-walks the ring and re-learns.
            self.send_direct(message.origin.address, {
                "op": "xowner_stale", "ns": payload["ns"],
                "rid": payload["rid"],
            })
        handler = self._delivery_handlers.get(payload["ns"])
        if handler is not None:
            handler(payload, message)
        elif self._default_delivery is not None:
            # No subscriber yet (plan still disseminating): let the
            # engine buffer the row(s) instead of dropping them.
            self._default_delivery(payload, message)

    def register_intercept(self, name, handler):
        """``handler(node, route_msg, at_owner) -> bool`` (True = forward)."""
        self._intercepts[name] = handler

    def unregister_intercept(self, name):
        self._intercepts.pop(name, None)

    def on_storage_probe(self, handler):
        """``handler(namespace)`` runs when a storage probe (a routed
        ``get``, or a local ``lscan``) references a query-temporary
        namespace (``q|...``). The engine uses it to notice evidence of
        a continuous query it has no plan for and fetch the plan from
        the query site instead of waiting out a refresh period."""
        self._storage_probe_handlers.append(handler)

    def _note_storage_probe(self, namespace):
        if not namespace.startswith("q|"):
            return
        for handler in self._storage_probe_handlers:
            handler(namespace)

    def register_delivery(self, namespace, handler):
        """Receive ``deliver`` payloads routed to keys this node owns."""
        self._delivery_handlers[namespace] = handler

    def unregister_delivery(self, namespace):
        self._delivery_handlers.pop(namespace, None)

    def set_default_delivery(self, handler):
        """Fallback for ``deliver`` payloads with no registered namespace."""
        self._default_delivery = handler

    # ------------------------------------------------------------------
    # Broadcast (query dissemination)
    # ------------------------------------------------------------------
    def on_broadcast(self, handler):
        """``handler(payload, origin_ref, depth)`` runs once per broadcast."""
        self._broadcast_handlers.append(handler)

    def broadcast(self, payload):
        """Disseminate ``payload`` to every reachable node, O(log N) depth.

        Classic finger-table broadcast: each node covers ``(self, limit)``
        and delegates disjoint sub-ranges to its fingers, so each live
        node receives the message exactly once in a stable overlay.

        Dead fingers would silently sever their whole delegated range, so
        every child delivery is acked; an unacked range is *repaired* by
        key-routing the broadcast to the range's live owner, who resumes
        the relay. Under heavy churn some nodes may still be missed --
        which is exactly why the paper's Figure 1 plots the aggregate
        over "responding nodes" rather than all nodes.
        """
        self._deliver_broadcast(msg.Broadcast(payload, self.id, self.ref, 0))
        self._relay_broadcast(payload, self.id, 0)

    def _relay_broadcast(self, payload, limit, depth):
        targets = self._distinct_fingers()
        for i, finger in enumerate(targets):
            if not in_interval(finger.id, self.id, limit):
                continue
            child_limit = limit
            if i + 1 < len(targets) and in_interval(targets[i + 1].id, finger.id, limit):
                child_limit = targets[i + 1].id
            self._send_broadcast_child(payload, finger, child_limit, depth)

    def _send_broadcast_child(self, payload, child, child_limit, depth):
        req = self._fresh_req()

        def not_acked():
            if self._pending_bcast_acks.pop(req, None) is None:
                return
            self._suspect(child.address)
            # Child silent: hand its range to whoever now owns its id.
            self.route(child.id, {
                "op": "bcast_repair",
                "payload": payload,
                "limit": child_limit,
                "depth": depth + 1,
            })

        timer = self.set_timer(2 * self.config.rpc_timeout, not_acked)
        self._pending_bcast_acks[req] = timer
        self.send(
            child.address,
            msg.Broadcast(payload, child_limit, self.ref, depth + 1,
                          ack_to=self.address, req=req),
        )

    def _distinct_fingers(self):
        """Finger + successor entries, deduped, ascending from self."""
        seen = {}
        for ref in list(self.successors) + [f for f in self.fingers if f]:
            if ref != self.ref and not self._is_suspect(ref.address):
                seen[ref.id] = ref
        return sorted(seen.values(), key=lambda r: distance_cw(self.id, r.id))

    def _handle_broadcast(self, message):
        if message.ack_to is not None:
            self.send_direct(message.ack_to, {"op": "bcast_ack", "req": message.req})
        if self._deliver_broadcast(message):
            self._relay_broadcast(message.payload, message.limit, message.depth)

    def _deliver_broadcast(self, message):
        """Deliver locally; returns False for an already-seen duplicate."""
        token = message.payload.get("token") if isinstance(message.payload, dict) else None
        if token is not None:
            if token in self._seen_broadcasts:
                return False
            self._seen_broadcasts.add(token)
        if self.trace is not None:
            self.trace.record("broadcast_deliver", node=self.address, depth=message.depth)
        for handler in self._broadcast_handlers:
            handler(message.payload, message.origin, message.depth)
        return True

    # ------------------------------------------------------------------
    # PIER storage API
    # ------------------------------------------------------------------
    def put(self, namespace, resource_id, instance_id, value, ttl=None):
        """Publish an item into the DHT (routed to the key's owner)."""
        ttl = ttl if ttl is not None else self.config.default_ttl
        key = storage_key(namespace, resource_id)
        self.route(key, {
            "op": "put", "ns": namespace, "rid": resource_id,
            "iid": instance_id, "value": value, "ttl": ttl,
        })

    def renew(self, namespace, resource_id, instance_id, ttl=None):
        ttl = ttl if ttl is not None else self.config.default_ttl
        key = storage_key(namespace, resource_id)
        self.route(key, {
            "op": "renew", "ns": namespace, "rid": resource_id,
            "iid": instance_id, "ttl": ttl,
        })

    def get(self, namespace, resource_id, on_done, timeout=None):
        """Fetch all instances under (namespace, resource_id).

        ``on_done(values)`` receives ``[(instance_id, value), ...]``;
        an empty list on timeout (indistinguishable, by design, from
        "nothing stored" -- soft state has no negative acks).
        """
        req = self._fresh_req()
        timeout = timeout if timeout is not None else self.config.lookup_timeout

        def timed_out():
            entry = self._pending_gets.pop(req, None)
            if entry is not None:
                entry[0]([])

        timer = self.set_timer(timeout, timed_out)
        self._pending_gets[req] = (on_done, timer)
        key = storage_key(namespace, resource_id)
        self.route(key, {
            "op": "get", "ns": namespace, "rid": resource_id,
            "reply_to": self.address, "req": req,
        })

    def lscan(self, namespace):
        """Locally stored live items of a namespace (PIER's scan access)."""
        self._note_storage_probe(namespace)
        return self.store.lscan(namespace)

    def new_data(self, namespace, callback, ttl=None):
        """Subscribe to arrivals in a namespace stored at this node.

        ``ttl`` makes the subscription soft state: the store's sweeper
        drops it once expired, so a subscriber that dies with an epoch
        can never leak its callback. Returns the subscription token for
        :meth:`renew_new_data`.
        """
        return self.store.on_new_data(namespace, callback, ttl)

    def renew_new_data(self, namespace, token, ttl):
        """Extend a TTL'd subscription (standing scans renew per epoch)."""
        return self.store.renew_new_data(namespace, token, ttl)

    def remove_new_data(self, namespace, token=None):
        self.store.remove_new_data(namespace, token)

    def send_direct(self, dst_address, payload):
        """Point-to-point app message (PIER uses this for result return)."""
        self.send(dst_address, msg.Direct(payload))

    def on_direct(self, handler):
        self._direct_handlers.append(handler)

    # ------------------------------------------------------------------
    # Maintenance protocol
    # ------------------------------------------------------------------
    def _install_rpc_handlers(self):
        self.rpc_handler("get_neighbors", self._rpc_get_neighbors)
        self.rpc_handler("notify", self._rpc_notify)
        self.rpc_handler("ping", self._rpc_ping)
        self.rpc_handler("successor_leaving", self._rpc_successor_leaving)

    def _rpc_get_neighbors(self, src, request, respond):
        respond({
            "predecessor": self.predecessor,
            "successors": list(self.successors),
        })

    def _rpc_notify(self, src, request, respond):
        # No liveness oracle here: a dead predecessor is evicted by
        # check_predecessor's ping timeout, after which any notifier is
        # accepted. This keeps failure detection purely timeout-driven.
        candidate = request["node"]
        accepted = False
        if self.predecessor is None or in_interval(
            candidate.id, self.predecessor.id, self.id
        ):
            self.predecessor = candidate
            accepted = True
        if accepted:
            self._handoff_keys_to(candidate)
        respond({"accepted": accepted})

    def _rpc_ping(self, src, request, respond):
        respond({"alive": True})

    def _rpc_successor_leaving(self, src, request, respond):
        replacements = [r for r in request["successors"] if r != self.ref]
        if replacements:
            self.successors = replacements[: self.config.successor_list_length]
        respond({"ok": True})

    def _handoff_keys_to(self, new_pred):
        """Transfer items a new predecessor now owns: keys outside (new_pred, self]."""
        def belongs_elsewhere(item):
            key = storage_key(item.namespace, item.resource_id)
            return not in_interval(key, new_pred.id, self.id, inclusive_hi=True)

        items = self.store.items_in_range(belongs_elsewhere)
        if items or self._seen_mids:
            # Delivery ids are not range-partitioned (the mid names the
            # sender, not the key), so the new owner gets the whole set;
            # dedup is idempotent and the TTL sweeps the excess.
            self.send(
                new_pred.address,
                msg.StoreItems(items, mids=dict(self._seen_mids)),
            )

    def _stabilize(self):
        succ = self.successor
        if succ == self.ref:
            if self.predecessor is not None and self.predecessor != self.ref:
                self.successors = [self.predecessor]
            return

        def on_reply(reply):
            self._absolve(succ.address)
            pred = reply["predecessor"]
            if pred is not None and pred != self.ref and in_interval(
                pred.id, self.id, succ.id
            ) and not self._is_suspect(pred.address):
                self.successors.insert(0, pred)
            fresh = [self.successor]
            for ref in reply["successors"]:
                if ref not in fresh and ref != self.ref:
                    fresh.append(ref)
                if len(fresh) >= self.config.successor_list_length:
                    break
            self.successors = fresh
            self._notify_successor()

        def on_timeout():
            self._suspect(succ.address)
            # Successor is gone: fail over to the next live entry.
            if len(self.successors) > 1:
                self.successors.pop(0)
            else:
                self.successors = [self.ref]

        self.rpc(succ.address, {"kind": "get_neighbors"}, on_reply, on_timeout)

    def _notify_successor(self):
        if self.successor == self.ref:
            return
        self.rpc(
            self.successor.address,
            {"kind": "notify", "node": self.ref},
            on_reply=lambda reply: None,
            on_timeout=lambda: None,
        )

    def _fix_fingers(self):
        for _ in range(self.config.fingers_per_round):
            index = self._next_finger
            self._next_finger = (self._next_finger + 1) % ID_BITS
            start = (self.id + (1 << index)) % (1 << ID_BITS)

            def set_finger(owner, hops, index=index, start=start):
                if owner is not None:
                    self.fingers[index] = self._proximity_finger(
                        index, start, owner
                    )

            self.lookup(start, set_finger)

    def _proximity_finger(self, index, start, canonical):
        """Proximity neighbor selection for one finger slot.

        Any node in ``[start, start + 2^index)`` is a valid entry for
        slot ``index`` -- greedy routing still at least halves the
        remaining distance, keeping lookups O(log N) -- so when the
        canonical successor of ``start`` is in another region, prefer a
        known same-region node from inside the slot's span (Gummadi et
        al.'s PNS, the standard latency-stretch fix for Chord).
        """
        if not self._proximity_on():
            return canonical
        if self._region_of(canonical.address) == self.region:
            return canonical
        span = 1 << index
        best = canonical
        best_distance = None
        seen = set()
        for candidate in self._candidates():
            if candidate is None or candidate == self.ref:
                continue
            if candidate.address in seen:
                continue
            seen.add(candidate.address)
            if self._is_suspect(candidate.address):
                continue
            if self._region_of(candidate.address) != self.region:
                continue
            d = distance_cw(start, candidate.id)
            if d < span and (best_distance is None or d < best_distance):
                best = candidate
                best_distance = d
        return best

    def _check_predecessor(self):
        if self.predecessor is None or self.predecessor == self.ref:
            return
        pred = self.predecessor

        def on_timeout():
            self._suspect(pred.address)
            if self.predecessor == pred:
                self.predecessor = None

        self.rpc(
            pred.address,
            {"kind": "ping"},
            on_reply=lambda reply: self._absolve(pred.address),
            on_timeout=on_timeout,
        )

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def handle_message(self, src, payload):
        self._absolve(src)  # hearing from a node proves it is alive
        if self.handle_rpc_message(src, payload):
            return
        kind = payload.kind
        if kind == "lookup":
            self._handle_lookup(payload)
        elif kind == "lookup_done":
            self._handle_lookup_done(payload)
        elif kind == "route":
            self._handle_route(payload)
        elif kind == "broadcast":
            self._handle_broadcast(payload)
        elif kind == "store_items":
            for item in payload.items:
                self.store.put_item(item)
            for mid, forget_at in getattr(payload, "mids", {}).items():
                # Merge keeping the later deadline: if both sides saw
                # the mid, the fresher sighting wins.
                if forget_at > self._seen_mids.get(mid, 0.0):
                    self._seen_mids[mid] = forget_at
        elif kind == "direct":
            self._handle_direct(payload, src)
        else:  # pragma: no cover - defensive
            raise ValueError("unhandled message kind {!r}".format(kind))

    def _handle_direct(self, message, src):
        inner = message.payload
        op = inner.get("op") if isinstance(inner, dict) else None
        if op == "hop_ack":
            timer = self._pending_hop_acks.pop(inner["req"], None)
            if timer is not None:
                self.cancel_timer(timer)
            return
        if op == "bcast_ack":
            timer = self._pending_bcast_acks.pop(inner["req"], None)
            if timer is not None:
                self.cancel_timer(timer)
            return
        if op == "get_reply":
            entry = self._pending_gets.pop(inner["req"], None)
            if entry is not None:
                on_done, timer = entry
                self.cancel_timer(timer)
                on_done(inner["values"])
            return
        for handler in self._direct_handlers:
            handler(inner, src)
