"""A Content-Addressable Network (CAN) overlay.

The demo paper cites CAN (Ratnasamy et al., SIGCOMM 2001) as one of the
DHT schemes under PIER -- the original PIER prototype in fact ran on
CAN before moving to Bamboo. We implement the d-dimensional torus with
zone splitting on join and greedy coordinate routing, and use it in the
overlay-comparison benchmark: CAN's O(d * N^(1/d)) hop count against
Chord's O(log N).

Keys map to points by hashing into each dimension independently; a key
is owned by whichever node's zone contains its point.
"""

from repro.sim.node import SimNode
from repro.util.ids import sha1_id
from repro.util.stats import RunningStat


class Zone:
    """An axis-aligned box in the unit d-torus: lo[i] <= x < hi[i]."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo, hi):
        self.lo = list(lo)
        self.hi = list(hi)

    @property
    def dims(self):
        return len(self.lo)

    def contains(self, point):
        return all(self.lo[i] <= point[i] < self.hi[i] for i in range(self.dims))

    def volume(self):
        v = 1.0
        for i in range(self.dims):
            v *= self.hi[i] - self.lo[i]
        return v

    def split(self, dim):
        """Halve along ``dim``; returns (lower_half, upper_half)."""
        mid = (self.lo[dim] + self.hi[dim]) / 2.0
        lower = Zone(self.lo, self.hi)
        upper = Zone(self.lo, self.hi)
        lower.hi[dim] = mid
        upper.lo[dim] = mid
        return lower, upper

    def widest_dim(self):
        widths = [self.hi[i] - self.lo[i] for i in range(self.dims)]
        return widths.index(max(widths))

    def center(self):
        return [(self.lo[i] + self.hi[i]) / 2.0 for i in range(self.dims)]

    def distance_to(self, point):
        """Euclidean distance from ``point`` to this box on the torus."""
        total = 0.0
        for i in range(self.dims):
            if self.lo[i] <= point[i] < self.hi[i]:
                continue
            # Straight-line gap and the two wrap-around gaps.
            gap = min(
                abs(point[i] - self.lo[i]),
                abs(point[i] - self.hi[i]),
                abs(point[i] + 1.0 - self.hi[i]),
                abs(self.lo[i] + 1.0 - point[i]),
            )
            total += gap * gap
        return total**0.5

    def abuts(self, other):
        """True if the zones share a (d-1)-dimensional face on the torus."""
        touching_dims = 0
        for i in range(self.dims):
            touches = (
                self.hi[i] == other.lo[i]
                or other.hi[i] == self.lo[i]
                or (self.hi[i] == 1.0 and other.lo[i] == 0.0)
                or (other.hi[i] == 1.0 and self.lo[i] == 0.0)
            )
            overlaps = self.lo[i] < other.hi[i] and other.lo[i] < self.hi[i]
            wrap_overlap = (
                (self.lo[i] == 0.0 and other.hi[i] == 1.0)
                or (other.lo[i] == 0.0 and self.hi[i] == 1.0)
            )
            if touches and not overlaps:
                touching_dims += 1
            elif not (overlaps or wrap_overlap):
                return False
        return touching_dims == 1

    def __repr__(self):
        spans = ", ".join(
            "[{:.3f},{:.3f})".format(lo, hi) for lo, hi in zip(self.lo, self.hi)
        )
        return "Zone({})".format(spans)


def key_point(key, dims):
    """Deterministically hash a key to a point in the unit d-torus."""
    point = []
    for i in range(dims):
        h = sha1_id(("can", i, key))
        point.append((h % (1 << 53)) / float(1 << 53))
    return point


class CanMessage:
    kind = "can_route"
    category = "app"
    __slots__ = ("point", "payload", "origin", "hops")

    def __init__(self, point, payload, origin, hops=0):
        self.point = point
        self.payload = payload
        self.origin = origin
        self.hops = hops

    def wire_size(self):
        from repro.util.serde import wire_size

        return 8 * len(self.point) + 24 + wire_size(self.payload)


class CanNode(SimNode):
    """One CAN participant: a zone, its neighbors, greedy routing."""

    def __init__(self, network, address, dims=2):
        super().__init__(network, address)
        self.dims = dims
        self.zone = None
        self.neighbors = {}  # address -> Zone
        self.storage = {}  # (namespace, resource_id) -> list of values
        self.route_hops = RunningStat()
        self._pending = {}
        self._next_req = 0

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route(self, key, payload):
        point = key_point(key, self.dims)
        self._forward(CanMessage(point, payload, self.address))

    def _forward(self, message):
        if self.zone is not None and self.zone.contains(message.point):
            self._arrived(message)
            return
        best_addr = None
        best_distance = None
        for address, zone in self.neighbors.items():
            d = zone.distance_to(message.point)
            if best_distance is None or d < best_distance:
                best_addr = address
                best_distance = d
        if best_addr is None:
            return  # isolated node; message is lost (like a dead ring)
        message.hops += 1
        self.send(best_addr, message)

    def _arrived(self, message):
        payload = message.payload
        op = payload.get("op")
        if op == "put":
            bucket = self.storage.setdefault((payload["ns"], payload["rid"]), [])
            bucket.append(payload["value"])
        elif op == "get":
            values = self.storage.get((payload["ns"], payload["rid"]), [])
            self.send(
                payload["reply_to"],
                {"op": "can_get_reply", "req": payload["req"], "values": list(values)},
            )
        elif op == "probe":
            self.send(
                payload["reply_to"],
                {"op": "can_probe_reply", "req": payload["req"], "hops": message.hops},
            )

    def handle_message(self, src, payload):
        if isinstance(payload, CanMessage):
            self._forward(payload)
            return
        op = payload.get("op")
        if op in ("can_get_reply", "can_probe_reply"):
            entry = self._pending.pop(payload["req"], None)
            if entry is not None:
                if op == "can_get_reply":
                    entry(payload["values"])
                else:
                    self.route_hops.add(payload["hops"])
                    entry(payload["hops"])

    # ------------------------------------------------------------------
    # Storage + measurement API
    # ------------------------------------------------------------------
    def put(self, namespace, resource_id, value):
        self.route((namespace, resource_id), {
            "op": "put", "ns": namespace, "rid": resource_id, "value": value,
        })

    def get(self, namespace, resource_id, on_done):
        req = self._next_req
        self._next_req += 1
        self._pending[req] = on_done
        self.route((namespace, resource_id), {
            "op": "get", "ns": namespace, "rid": resource_id,
            "reply_to": self.address, "req": req,
        })

    def probe(self, key, on_done):
        """Measure routing hops to the owner of ``key``."""
        req = self._next_req
        self._next_req += 1
        self._pending[req] = on_done
        self.route(key, {"op": "probe", "reply_to": self.address, "req": req})


def build_can_overlay(nodes, rng):
    """Construct a CAN by replaying the join protocol's zone splits.

    Node 0 owns the whole torus; each subsequent node picks a random
    point, the current owner's zone is split along its widest dimension,
    and neighbor sets are patched incrementally -- the same state the
    distributed join protocol converges to.
    """
    if not nodes:
        return
    dims = nodes[0].dims
    first = nodes[0]
    first.zone = Zone([0.0] * dims, [1.0] * dims)
    first.neighbors = {}
    placed = [first]
    for joiner in nodes[1:]:
        point = [rng.random() for _ in range(dims)]
        owner = next(n for n in placed if n.zone.contains(point))
        lower, upper = owner.zone.split(owner.zone.widest_dim())
        if lower.contains(point):
            joiner.zone, owner.zone = lower, upper
        else:
            joiner.zone, owner.zone = upper, lower
        _patch_neighbors(owner, joiner, placed)
        placed.append(joiner)


def _patch_neighbors(owner, joiner, placed):
    """Recompute adjacency for the two halves of a freshly split zone."""
    candidates = list(owner.neighbors)
    joiner.neighbors = {}
    new_owner_neighbors = {}
    for address in candidates:
        other = next(n for n in placed if n.address == address)
        if other.zone.abuts(owner.zone):
            new_owner_neighbors[address] = other.zone
        if other.zone.abuts(joiner.zone):
            joiner.neighbors[address] = other.zone
        # The old neighbor also re-evaluates its own view.
        other.neighbors.pop(owner.address, None)
        if owner.zone.abuts(other.zone):
            other.neighbors[owner.address] = owner.zone
        if joiner.zone.abuts(other.zone):
            other.neighbors[joiner.address] = joiner.zone
    owner.neighbors = new_owner_neighbors
    if owner.zone.abuts(joiner.zone):
        owner.neighbors[joiner.address] = joiner.zone
        joiner.neighbors[owner.address] = owner.zone
