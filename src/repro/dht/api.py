"""The PIER-facing DHT API.

PIER's published interface to its DHT layer is small and this facade
mirrors it method-for-method (VLDB 2003, section 2):

=============  =====================================================
``put``        publish an item, placed by hash(namespace, resourceId)
``get``        fetch all instances for (namespace, resourceId)
``renew``      extend an item's TTL (soft-state keep-alive)
``lscan``      iterate the items of a namespace stored *at this node*
``new_data``   subscribe to arrivals in a namespace at this node
``route``      deliver an application payload to a key's owner, with
               optional per-hop upcalls (in-network combining)
``broadcast``  disseminate a payload to every reachable node
``direct``     point-to-point message (result return to query site)
=============  =====================================================

Exchange traffic rides ``route`` with ``deliver`` (one row) or
``deliver_batch`` (many co-keyed rows in one message) payloads; the
registered delivery handler receives either shape.

The facade keeps the query engine honest: ``repro.core`` imports only
this class, never the overlay internals, so swapping Chord for CAN (or
a future overlay) cannot leak into the engine.
"""


class DhtApi:
    """Per-node facade over a :class:`~repro.dht.chord.ChordNode`."""

    def __init__(self, overlay_node):
        self._node = overlay_node

    @property
    def address(self):
        return self._node.address

    @property
    def node_id(self):
        return self._node.id

    @property
    def clock(self):
        return self._node.clock

    @property
    def alive(self):
        return self._node.alive

    @property
    def region(self):
        """Region label from the topology, or None on a flat ring."""
        return getattr(self._node, "region", None)

    # ------------------------------------------------------------------
    # Storage
    # ------------------------------------------------------------------
    def put(self, namespace, resource_id, instance_id, value, ttl=None):
        """Publish ``value`` into the DHT under the triple key."""
        self._node.put(namespace, resource_id, instance_id, value, ttl)

    def get(self, namespace, resource_id, on_done, timeout=None):
        """Fetch all instances; ``on_done([(instance_id, value), ...])``."""
        self._node.get(namespace, resource_id, on_done, timeout)

    def renew(self, namespace, resource_id, instance_id, ttl=None):
        self._node.renew(namespace, resource_id, instance_id, ttl)

    def lscan(self, namespace):
        """Locally stored live items (list of StoredItem)."""
        return self._node.lscan(namespace)

    def new_data(self, namespace, callback, ttl=None):
        """Subscribe to arrivals; with ``ttl`` the subscription itself
        is soft state and ages out like everything else stored here.
        Returns a token for :meth:`renew_new_data` -- standing scans
        renew their subscription once per epoch instead of re-scanning.
        """
        return self._node.new_data(namespace, callback, ttl)

    def renew_new_data(self, namespace, token, ttl):
        """Extend a TTL'd subscription; False once it has aged out."""
        return self._node.renew_new_data(namespace, token, ttl)

    def remove_new_data(self, namespace, token=None):
        self._node.remove_new_data(namespace, token)

    # ------------------------------------------------------------------
    # Communication
    # ------------------------------------------------------------------
    def route(self, key, payload, upcall=None):
        self._node.route(key, payload, upcall)

    def fresh_mid(self):
        """A node-unique delivery id (exactly-once exchange delivery)."""
        return self._node.fresh_mid()

    def route_via(self, owner, key, payload):
        """One-hop delivery to a cached owner, with routed fallback."""
        self._node.route_via(owner, key, payload)

    def route_through(self, via, key, payload, upcall=None):
        """Key-route with an explicit first hop (regional rendezvous)."""
        self._node.route_through(via, key, payload, upcall)

    def region_rendezvous(self, key, region=None):
        """This region's deterministic combiner for ``key`` (or None)."""
        return self._node.region_rendezvous(key, region)

    def is_suspect(self, address):
        return self._node.is_suspect(address)

    def register_delivery(self, namespace, handler):
        self._node.register_delivery(namespace, handler)

    def unregister_delivery(self, namespace):
        self._node.unregister_delivery(namespace)

    def set_default_delivery(self, handler):
        self._node.set_default_delivery(handler)

    def on_storage_probe(self, handler):
        """``handler(namespace)`` on get/lscan probes of q|... namespaces."""
        self._node.on_storage_probe(handler)

    def register_intercept(self, name, handler):
        self._node.register_intercept(name, handler)

    def unregister_intercept(self, name):
        self._node.unregister_intercept(name)

    def broadcast(self, payload):
        self._node.broadcast(payload)

    def on_broadcast(self, handler):
        self._node.on_broadcast(handler)

    def direct(self, dst_address, payload):
        self._node.send_direct(dst_address, payload)

    def on_direct(self, handler):
        self._node.on_direct(handler)

    def set_timer(self, delay, callback, *args):
        """Expose node-scoped timers (auto-cancelled on crash)."""
        return self._node.set_timer(delay, callback, *args)

    def cancel_timer(self, event):
        self._node.cancel_timer(event)
