"""Ring construction.

Two ways to stand up a Chord overlay:

* :func:`join_chord_ring` -- the real protocol: nodes join one at a time
  through a bootstrap node and the ring converges via stabilization.
  Used by correctness tests and churn experiments (a recovering node
  always rejoins this way).
* :func:`build_chord_ring` -- an oracle: sorts the ids and installs
  exact successors, predecessors and fingers directly. Used to stand up
  300-1000 node benchmark rings instantly; the periodic protocol then
  *maintains* the ring, so steady-state behaviour is identical.
"""

from repro.util.ids import ID_BITS, distance_cw, in_interval


def build_chord_ring(nodes, start_maintenance=True):
    """Wire ``nodes`` (list of ChordNode) into a perfect ring in place."""
    if not nodes:
        return
    ordered = sorted(nodes, key=lambda n: n.id)
    n = len(ordered)
    refs = [node.ref for node in ordered]
    for i, node in enumerate(ordered):
        succ_list = [refs[(i + j) % n] for j in range(1, node.config.successor_list_length + 1)]
        if n == 1:
            succ_list = [node.ref]
        node.successors = succ_list
        node.predecessor = refs[(i - 1) % n]
        node.fingers = _exact_fingers(node, refs, i)
        # Everyone can rejoin through the lowest-id node after a crash.
        node._bootstrap_address = ordered[0].address if n > 1 else None
    if start_maintenance:
        for node in ordered:
            node._start_maintenance()


def _exact_fingers(node, sorted_refs, index):
    """finger[k] = successor(node.id + 2^k), via binary search on the ring.

    With ``proximity_routing`` on a region-labelled topology, the slot
    instead takes the first *same-region* node inside its valid span
    ``[start, start + 2^k)`` when one exists (proximity neighbor
    selection) -- the same preference the periodic fix-fingers applies,
    so oracle-built rings start in the steady state maintenance
    converges to.
    """
    fingers = [None] * ID_BITS
    n = len(sorted_refs)
    if n == 1:
        return fingers
    ids = [r.id for r in sorted_refs]
    import bisect

    proximity = (getattr(node.config, "proximity_routing", False)
                 and getattr(node, "region", None) is not None)
    for k in range(ID_BITS):
        start = (node.id + (1 << k)) % (1 << ID_BITS)
        pos = bisect.bisect_left(ids, start) % n
        chosen = sorted_refs[pos]
        if proximity and node._region_of(chosen.address) != node.region:
            span = 1 << k
            for step in range(1, n):
                ref = sorted_refs[(pos + step) % n]
                if distance_cw(start, ref.id) >= span:
                    break
                if (ref != node.ref
                        and node._region_of(ref.address) == node.region):
                    chosen = ref
                    break
        fingers[k] = chosen
    return fingers


def join_chord_ring(nodes, clock, settle_rounds=None):
    """Join nodes one at a time via the protocol, settling in between.

    Returns the simulated time consumed. ``settle_rounds`` controls how
    many stabilization periods to run after each join (default 3, enough
    for successor/predecessor pointers to converge; fingers keep
    improving in the background).
    """
    if not nodes:
        return 0.0
    start = clock.now
    first = nodes[0]
    first.create_ring()
    clock.run_for(first.config.stabilize_period)
    rounds = settle_rounds if settle_rounds is not None else 3
    for node in nodes[1:]:
        node.join(first.address)
        clock.run_for(rounds * node.config.stabilize_period)
    return clock.now - start


def ring_is_consistent(nodes):
    """Check every live node's successor pointer against ground truth.

    A diagnostic for tests: True when the successor graph of live nodes
    forms the single cycle that sorted ids dictate.
    """
    live = sorted((n for n in nodes if n.alive), key=lambda n: n.id)
    if not live:
        return True
    n = len(live)
    for i, node in enumerate(live):
        expected = live[(i + 1) % n]
        if n == 1:
            expected = node
        if node.successor != expected.ref:
            return False
    return True


def owner_of(nodes, key):
    """Ground-truth owner of ``key`` among live nodes (test oracle)."""
    live = sorted((n for n in nodes if n.alive), key=lambda n: n.id)
    if not live:
        return None
    for node in live:
        prev = live[live.index(node) - 1]
        if in_interval(key, prev.id, node.id, inclusive_hi=True):
            return node
    return live[0]
