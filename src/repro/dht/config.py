"""Tunables for the DHT layer.

Defaults are scaled to the simulator's wide-area latency model (one-way
delays of 2-150 ms): RPC timeouts comfortably above the worst RTT,
maintenance periods matching Bamboo's defaults from the churn paper the
demo cites (periodic, not reactive, recovery).
"""


class DhtConfig:
    def __init__(
        self,
        stabilize_period=5.0,
        fix_fingers_period=10.0,
        check_predecessor_period=7.0,
        successor_list_length=4,
        fingers_per_round=8,
        # The latency model's worst one-way delay is ~0.2 s, so 0.8 s is
        # >2x the worst RTT: fast enough that routing around a freshly
        # dead hop costs well under a second per discovery.
        rpc_timeout=0.8,
        lookup_timeout=3.0,
        lookup_retries=2,
        storage_sweep_period=5.0,
        default_ttl=120.0,
        suspect_ttl=30.0,
        graceful_leave=False,
        # How long a received exchange-delivery id is remembered to
        # drop replays (hop-by-hop acks make routed forwarding
        # at-least-once; a delivered message whose ack was lost is
        # re-forwarded). Must comfortably outlive the longest
        # retry chain: lookup_timeout x retries plus routing slack.
        delivery_dedup_ttl=30.0,
        # How long a retransmitted (same-hop, same delivery id) exchange
        # message waits for its ack before the hop is suspected and the
        # message rerouted. One worst-case RTT: a live hop whose ack was
        # lost answers the retransmit within that; a dead hop never
        # will, so keeping this short caps the extra discovery latency
        # the retransmit adds over immediate rerouting.
        hop_retransmit_timeout=0.4,
        # Proximity neighbor selection: when the topology labels nodes
        # with regions, prefer same-region peers for finger slots, for
        # next hops within a 2x-distance band, and for reroute heirs.
        # Off by default -- the flat ring stays the baseline.
        proximity_routing=False,
    ):
        if successor_list_length < 1:
            raise ValueError("successor list must hold at least one entry")
        self.stabilize_period = stabilize_period
        self.fix_fingers_period = fix_fingers_period
        self.check_predecessor_period = check_predecessor_period
        self.successor_list_length = successor_list_length
        self.fingers_per_round = fingers_per_round
        self.rpc_timeout = rpc_timeout
        self.lookup_timeout = lookup_timeout
        self.lookup_retries = lookup_retries
        self.storage_sweep_period = storage_sweep_period
        self.default_ttl = default_ttl
        self.suspect_ttl = suspect_ttl
        self.graceful_leave = graceful_leave
        self.delivery_dedup_ttl = delivery_dedup_ttl
        self.hop_retransmit_timeout = hop_retransmit_timeout
        self.proximity_routing = proximity_routing
