"""Message types exchanged by DHT nodes.

Each message has a ``kind`` used for dispatch and a ``category``
(``maintenance`` / ``app``) used by the experiment counters to separate
overlay upkeep traffic from query traffic -- the DHT-scaling bench
reports both.

Messages are passed by reference inside the simulator; they must be
treated as immutable after send (the one exception, documented inline,
is the route payload replaced by combining upcalls, which happens only
after the message has been delivered to its current hop).
"""


class Message:
    kind = "abstract"
    category = "app"

    def wire_size(self):
        """Default size model: category + kind headers only."""
        return 16


class RpcRequest(Message):
    kind = "rpc_req"
    category = "maintenance"
    __slots__ = ("req_id", "reply_to", "inner")

    def __init__(self, req_id, reply_to, inner):
        self.req_id = req_id
        self.reply_to = reply_to
        self.inner = inner

    def wire_size(self):
        from repro.util.serde import wire_size

        return 24 + wire_size(self.inner)


class RpcReply(Message):
    kind = "rpc_rep"
    category = "maintenance"
    __slots__ = ("req_id", "inner")

    def __init__(self, req_id, inner):
        self.req_id = req_id
        self.inner = inner

    def wire_size(self):
        from repro.util.serde import wire_size

        return 16 + wire_size(self.inner)


class Lookup(Message):
    """Recursive lookup for the owner of ``target`` (an id, not a node)."""

    kind = "lookup"
    category = "app"
    __slots__ = ("target", "origin", "req_id", "hops", "hop_ack",
                 "force_terminal")

    def __init__(self, target, origin, req_id, hops=0):
        self.target = target
        self.origin = origin
        self.req_id = req_id
        self.hops = hops
        self.hop_ack = None  # (address, req) expecting a receipt ack
        self.force_terminal = False  # deliver at next hop (range heir)

    def wire_size(self):
        return 20 + 16 + 8  # id + origin + counters


class LookupDone(Message):
    kind = "lookup_done"
    category = "app"
    __slots__ = ("req_id", "owner", "hops")

    def __init__(self, req_id, owner, hops):
        self.req_id = req_id
        self.owner = owner
        self.hops = hops

    def wire_size(self):
        return 44


class Route(Message):
    """Key-routed application message, the workhorse of PIER traffic.

    ``payload`` is an application-level dict (storage op, exchange
    tuple batch, aggregation partial). ``upcall`` optionally names an
    intercept handler invoked at every hop -- this is how hierarchical
    aggregation combines partials mid-route.
    """

    kind = "route"
    category = "app"
    __slots__ = ("key", "payload", "origin", "hops", "upcall", "hop_ack",
                 "force_terminal")

    def __init__(self, key, payload, origin, hops=0, upcall=None):
        self.key = key
        self.payload = payload
        self.origin = origin
        self.hops = hops
        self.upcall = upcall
        self.hop_ack = None  # (address, req) expecting a receipt ack
        self.force_terminal = False  # deliver at next hop (range heir)

    def wire_size(self):
        from repro.util.serde import wire_size

        return 20 + 16 + 8 + wire_size(self.payload)


class Broadcast(Message):
    """Finger-table broadcast (query dissemination).

    ``limit`` bounds the id range this copy is responsible for covering;
    the sender partitions its fingers' ranges so every live node receives
    exactly one copy in a stable overlay.
    """

    kind = "broadcast"
    category = "app"
    __slots__ = ("payload", "limit", "origin", "depth", "ack_to", "req")

    def __init__(self, payload, limit, origin, depth=0, ack_to=None, req=None):
        self.payload = payload
        self.limit = limit
        self.origin = origin
        self.depth = depth
        self.ack_to = ack_to  # address expecting a delivery ack
        self.req = req  # correlation id for that ack

    def wire_size(self):
        from repro.util.serde import wire_size

        return 20 + 16 + 4 + wire_size(self.payload)


class StoreItems(Message):
    """Bulk key transfer (join handoff or graceful leave).

    ``mids`` rides along with the keys: the sender's consumed delivery
    ids (with their forget-at deadlines). The heir takes over dedup
    duty together with the range, so an in-flight retransmission of a
    delivery the departed owner already consumed is dropped at the
    successor instead of double-counted.
    """

    kind = "store_items"
    category = "maintenance"
    __slots__ = ("items", "mids")

    def __init__(self, items, mids=None):
        self.items = items
        self.mids = mids or {}

    def wire_size(self):
        from repro.util.serde import wire_size

        return (8 + sum(wire_size(i.value) + 28 for i in self.items)
                + 24 * len(self.mids))


class Direct(Message):
    """Point-to-point application message (result return to query site)."""

    kind = "direct"
    category = "app"
    __slots__ = ("payload",)

    def __init__(self, payload):
        self.payload = payload

    def wire_size(self):
        from repro.util.serde import wire_size

        return 8 + wire_size(self.payload)
