"""Request/reply plumbing over the simulated (unreliable) network.

The simulator's transport is fire-and-forget, like UDP; everything that
needs an answer -- stabilization probes, pings, get() -- goes through
:class:`RpcNode`, which correlates replies by request id and converts
silence into a timeout callback. Failure *detection* in the overlay is
exactly these timeouts; there is no oracle.
"""

from repro.dht.messages import RpcReply, RpcRequest


class RpcNode:
    """Mixin over :class:`~repro.sim.node.SimNode` adding RPC support.

    Subclasses register handlers with :meth:`rpc_handler`; a handler
    receives ``(src, request, respond)`` and calls ``respond(payload)``
    zero or one times.
    """

    def _init_rpc(self, rpc_timeout):
        self._rpc_timeout = rpc_timeout
        self._next_req_id = 0
        self._pending_rpcs = {}
        self._rpc_handlers = {}

    def rpc_handler(self, kind, handler):
        self._rpc_handlers[kind] = handler

    def rpc(self, dst, inner, on_reply, on_timeout=None, timeout=None):
        """Send ``inner`` to ``dst``; exactly one of the callbacks fires."""
        req_id = self._next_req_id
        self._next_req_id += 1
        if timeout is None:
            timeout = self._rpc_timeout

        def timed_out():
            entry = self._pending_rpcs.pop(req_id, None)
            if entry is not None and on_timeout is not None:
                on_timeout()

        timer = self.set_timer(timeout, timed_out)
        self._pending_rpcs[req_id] = (on_reply, timer)
        self.send(dst, RpcRequest(req_id, self.address, inner))

    def handle_rpc_message(self, src, payload):
        """Returns True if ``payload`` was an RPC envelope it consumed."""
        if payload.kind == "rpc_req":
            handler = self._rpc_handlers.get(payload.inner.get("kind"))
            if handler is None:
                return True  # unknown request: drop, caller times out

            def respond(reply_payload):
                self.send(payload.reply_to, RpcReply(payload.req_id, reply_payload))

            handler(src, payload.inner, respond)
            return True
        if payload.kind == "rpc_rep":
            entry = self._pending_rpcs.pop(payload.req_id, None)
            if entry is not None:
                on_reply, timer = entry
                self.cancel_timer(timer)
                on_reply(payload.inner)
            return True
        return False

    def cancel_all_rpcs(self):
        """Drop in-flight RPCs without firing timeouts (crash path)."""
        for _on_reply, timer in self._pending_rpcs.values():
            timer.cancel()
        self._pending_rpcs.clear()
