"""Distributed Hash Table substrate.

PIER treats the DHT as its communication *and* temporary-storage layer.
This package provides:

* :mod:`repro.dht.chord` -- the primary overlay (Chord rings: successor
  lists, finger tables, recursive multi-hop routing, stabilization).
* :mod:`repro.dht.can` -- a d-dimensional CAN overlay, the alternative
  scheme the paper cites, used in the DHT-scaling comparison bench.
* :mod:`repro.dht.storage` -- soft-state storage (TTL + renewal), the
  mechanism that lets PIER survive churn without distributed deletion.
* :mod:`repro.dht.broadcast` -- O(log N)-depth query dissemination over
  finger tables.
* :mod:`repro.dht.api` -- the PIER-facing facade: ``put / get / lscan /
  newData / renew / route``, mirroring the API of the original system.
* :mod:`repro.dht.bootstrap` -- ring construction, either via the real
  join protocol or via an oracle (for large benchmark rings).
"""

from repro.dht.api import DhtApi
from repro.dht.bootstrap import build_chord_ring, join_chord_ring
from repro.dht.can import CanNode, build_can_overlay
from repro.dht.chord import ChordNode, NodeRef
from repro.dht.config import DhtConfig
from repro.dht.storage import SoftStateStore, StoredItem

__all__ = [
    "CanNode",
    "ChordNode",
    "DhtApi",
    "DhtConfig",
    "NodeRef",
    "SoftStateStore",
    "StoredItem",
    "build_can_overlay",
    "build_chord_ring",
    "join_chord_ring",
]
