"""Baselines PIER is compared against.

* :mod:`centralized` -- ship every raw row to the query site and
  aggregate there: the pre-PIER way to monitor a testbed, and the
  bandwidth bogeyman in-network aggregation exists to beat.
* :mod:`flooding` -- Gnutella-style TTL-limited query flooding: the
  pre-DHT way to search a file-sharing network, the foil in the hybrid
  search paper the demo cites.
"""

from repro.baselines.centralized import CentralizedAggregation
from repro.baselines.flooding import FloodingNetwork

__all__ = ["CentralizedAggregation", "FloodingNetwork"]
