"""Gnutella-style flooding search: the pre-DHT baseline.

An unstructured overlay (random graph of fixed degree) where a keyword
query floods outward with a TTL; every node holding a matching file
replies directly to the origin. Messages grow with the whole
neighborhood (O(degree^TTL), capped at N), recall depends on the TTL
reaching the data -- the two axes the hybrid-search comparison plots
against the DHT's O(log N) lookups with full recall.

Runs on its own simulated network (same latency model family) so it
can be driven with the identical corpus used by
:class:`repro.apps.filesharing.FileSharingApp`.
"""

from repro.sim.clock import SimClock
from repro.sim.latency import GeoLatency
from repro.sim.network import Network
from repro.sim.node import SimNode
from repro.util.rng import SeededRng


class FloodNode(SimNode):
    def __init__(self, network, address):
        super().__init__(network, address)
        self.neighbors = []
        self.files = {}  # file_id -> set of terms
        self._seen = set()
        self.overlay = None  # set by FloodingNetwork

    def handle_message(self, src, payload):
        kind = payload["kind"]
        if kind == "flood_query":
            self._handle_query(payload)
        elif kind == "flood_hit":
            self.overlay.record_hits(payload)

    def _handle_query(self, payload):
        qid = payload["qid"]
        if qid in self._seen:
            return
        self._seen.add(qid)
        terms = payload["terms"]
        matches = [
            fid for fid, fterms in self.files.items()
            if all(t in fterms for t in terms)
        ]
        if matches:
            self.send(payload["origin"], {
                "kind": "flood_hit", "qid": qid,
                "node": self.address, "files": matches,
            })
        if payload["ttl"] > 0:
            fwd = dict(payload)
            fwd["ttl"] = payload["ttl"] - 1
            for neighbor in self.neighbors:
                if neighbor != payload.get("via"):
                    copy = dict(fwd)
                    copy["via"] = self.address
                    self.send(neighbor, copy)


class FloodingNetwork:
    """An unstructured search overlay over the same corpus."""

    def __init__(self, addresses, degree=4, seed=0, latency_scale=0.15):
        self.rng = SeededRng(seed, "flood")
        self.clock = SimClock()
        self.latency = GeoLatency(self.rng.fork("lat"), scale=latency_scale)
        self.net = Network(self.clock, self.latency, self.rng.fork("net"))
        self.nodes = {}
        self._qid = 0
        self._hits = {}  # qid -> {"files": set, "first_at": t or None}
        for address in addresses:
            self.latency.place_random(address)
            node = FloodNode(self.net, address)
            node.overlay = self
            self.nodes[address] = node
        self._wire_random_graph(degree)

    def _wire_random_graph(self, degree):
        # Ring backbone guarantees connectivity (Gnutella bootstrap
        # lists had the same effect); random extra links give the
        # small-world shortcuts real overlays exhibit.
        addresses = list(self.nodes)
        n = len(addresses)
        for i, address in enumerate(addresses):
            self.nodes[address].neighbors = [addresses[(i + 1) % n]]
        for address in addresses:
            node = self.nodes[address]
            others = [a for a in addresses if a != address]
            want = max(0, min(degree, len(others)) - len(node.neighbors))
            for pick in self.rng.sample(others, min(want + 2, len(others))):
                if pick not in node.neighbors and len(node.neighbors) < degree:
                    node.neighbors.append(pick)
        # Make adjacency symmetric so queries can travel both ways.
        for address, node in self.nodes.items():
            for neighbor in node.neighbors:
                back = self.nodes[neighbor]
                if address not in back.neighbors:
                    back.neighbors.append(address)

    def load_corpus(self, corpus):
        """``corpus``: file_id -> (owner_address, [terms]) -- the same
        structure FileSharingApp builds."""
        for file_id, (owner, terms) in corpus.items():
            node = self.nodes.get(owner)
            if node is not None:
                node.files[file_id] = set(terms)

    def search(self, terms, origin=None, ttl=4, wait=8.0):
        """Flood a query; returns (files_found, stats)."""
        origin = origin if origin is not None else next(iter(self.nodes))
        self._qid += 1
        qid = self._qid
        self._hits[qid] = {"files": set(), "first_at": None, "t0": self.clock.now}
        before = self.net.counters.get("messages_sent")
        payload = {
            "kind": "flood_query", "qid": qid, "terms": list(terms),
            "ttl": ttl, "origin": origin, "via": None,
        }
        self.nodes[origin].handle_message(origin, payload)
        self.clock.run_for(wait)
        record = self._hits.pop(qid)
        stats = {
            "messages": self.net.counters.get("messages_sent") - before,
            "first_hit_latency": (
                None if record["first_at"] is None
                else record["first_at"] - record["t0"]
            ),
        }
        return sorted(record["files"]), stats

    def record_hits(self, payload):
        record = self._hits.get(payload["qid"])
        if record is None:
            return
        if not record["files"] and payload["files"]:
            record["first_at"] = self.clock.now
        record["files"].update(payload["files"])
