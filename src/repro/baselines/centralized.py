"""Centralized aggregation baseline: collect raw rows, aggregate at home.

Runs on the same PIER testbed and transport (so message/byte counters
are comparable) but uses the engine only to ship every node's raw rows
to the query site, where plain Python computes the aggregate. The
contrast with the in-network aggregation tree -- bytes arriving at the
coordinator, total messages, per-node fan-in -- is what the
Ext-B bench reports.
"""

from repro.core.aggregates import aggregate_by_name
from repro.core.planner import LogicalQuery, plan_query
from repro.db.expressions import ColumnRef


class CentralizedAggregation:
    def __init__(self, net):
        self.net = net

    def run(self, table, group_columns, aggregates, node=None, where=None):
        """Collect raw rows and aggregate at the query site.

        ``aggregates`` is a list of (func_name, column_or_None). Returns
        (rows, stats) where rows mirror the distributed query's output
        (group columns then aggregate values) and stats captures the
        network cost of the collection.
        """
        columns = list(group_columns)
        for _func, column in aggregates:
            if column is not None and column not in columns:
                columns.append(column)
        select_items = [(ColumnRef(c), c) for c in columns]
        logical = LogicalQuery([(table, None)], select_items, where=where)
        plan = plan_query(logical, self.net.catalog, self.net.config.timing)

        before = dict(self.net.message_counters())
        result = self.net.run_plan(plan, node=node)
        after = self.net.message_counters()

        rows = self._aggregate(result.rows, columns, group_columns, aggregates)
        stats = {
            "raw_rows_collected": len(result.rows),
            "reporters": len(result.reporters),
            "messages": after.get("messages_sent", 0) - before.get("messages_sent", 0),
            "bytes": after.get("bytes_sent", 0) - before.get("bytes_sent", 0),
        }
        return rows, stats

    def _aggregate(self, raw_rows, columns, group_columns, aggregates):
        index = {c: i for i, c in enumerate(columns)}
        groups = {}
        for row in raw_rows:
            gvals = tuple(row[index[c]] for c in group_columns)
            states = groups.get(gvals)
            if states is None:
                states = [aggregate_by_name(f if col is not None else "COUNT(*)").init()
                          for f, col in aggregates]
                groups[gvals] = states
            for i, (func, col) in enumerate(aggregates):
                agg = aggregate_by_name(func if col is not None else "COUNT(*)")
                value = row[index[col]] if col is not None else None
                states[i] = agg.add(states[i], value)
        out = []
        for gvals, states in sorted(groups.items(), key=lambda kv: repr(kv[0])):
            finals = tuple(
                aggregate_by_name(f if col is not None else "COUNT(*)").final(s)
                for (f, col), s in zip(aggregates, states)
            )
            out.append(gvals + finals)
        return out
