"""Churn: nodes joining and leaving while queries run.

PlanetLab nodes reboot, lose connectivity and return; the paper's
Figure 1 explicitly plots the aggregate over the *responding* subset.
:class:`ChurnProcess` drives that dynamism: each managed node alternates
exponentially-distributed UP sessions and DOWN periods, invoking
caller-supplied ``on_leave`` / ``on_join`` hooks (which crash/rejoin the
DHT node and its PIER engine).
"""


class ChurnConfig:
    """Session-time parameters.

    ``mean_session`` is the expected UP time, ``mean_downtime`` the
    expected DOWN time, both in seconds. A 2004 PlanetLab-like profile
    is hours-long sessions; DHT stress tests use minutes.
    """

    def __init__(self, mean_session=3600.0, mean_downtime=300.0):
        if mean_session <= 0 or mean_downtime <= 0:
            raise ValueError("mean session and downtime must be positive")
        self.mean_session = mean_session
        self.mean_downtime = mean_downtime


class ChurnProcess:
    """Alternating-renewal churn over a set of node addresses."""

    def __init__(self, clock, config, rng, on_leave, on_join):
        self.clock = clock
        self.config = config
        self._rng = rng
        self.on_leave = on_leave
        self.on_join = on_join
        # Insertion-ordered (dict, not set): start() pairs each managed
        # address with an RNG draw, so iteration order must not depend
        # on the process's string-hash seed or the "same seed" would
        # yield a different churn schedule in every process.
        self._managed = {}
        self._events = {}
        self._running = False
        self.leaves = 0
        self.joins = 0

    def manage(self, address):
        """Put ``address`` under churn control (it starts UP)."""
        self._managed[address] = True
        if self._running:
            self._schedule_leave(address)

    def start(self):
        self._running = True
        for address in self._managed:
            self._schedule_leave(address)

    def stop(self):
        self._running = False
        for event in self._events.values():
            event.cancel()
        self._events.clear()

    def _schedule_leave(self, address):
        delay = self._rng.expovariate(1.0 / self.config.mean_session)
        self._events[address] = self.clock.schedule(delay, self._leave, address)

    def _schedule_join(self, address):
        delay = self._rng.expovariate(1.0 / self.config.mean_downtime)
        self._events[address] = self.clock.schedule(delay, self._join, address)

    def _leave(self, address):
        if not self._running:
            return
        self.leaves += 1
        self.on_leave(address)
        self._schedule_join(address)

    def _join(self, address):
        if not self._running:
            return
        self.joins += 1
        self.on_join(address)
        self._schedule_leave(address)
