"""Discrete-event network simulator.

This is the substitute for PlanetLab: a deterministic, single-threaded
event simulator with a wide-area latency model, message loss and churn.
The DHT and query engine run unmodified on top of it; every network
effect the paper's demo exhibits (multi-hop routing, partial results
under churn, in-network combining) is preserved because the simulator
models *messages*, not wall-clock packets.
"""

from repro.sim.churn import ChurnConfig, ChurnProcess
from repro.sim.clock import SimClock
from repro.sim.events import Event
from repro.sim.latency import (
    ConstantLatency,
    GeoLatency,
    LatencyModel,
    UniformLatency,
)
from repro.sim.network import Network, NetworkConfig
from repro.sim.node import SimNode
from repro.sim.processes import PeriodicProcess
from repro.sim.trace import TraceRecorder

__all__ = [
    "ChurnConfig",
    "ChurnProcess",
    "ConstantLatency",
    "Event",
    "GeoLatency",
    "LatencyModel",
    "Network",
    "NetworkConfig",
    "PeriodicProcess",
    "SimClock",
    "SimNode",
    "TraceRecorder",
    "UniformLatency",
]
