"""Wide-area latency models.

PlanetLab spans five continents; pairwise RTTs in 2004 ranged from ~1 ms
(same site) to ~300 ms (trans-Pacific). :class:`GeoLatency` reproduces
that structure by placing sites on a 2-D plane whose Euclidean distance
maps to one-way delay, plus lognormal jitter. The simpler models exist
for unit tests and for experiments where latency is not the variable
under study.
"""


class LatencyModel:
    """Interface: one-way delay in seconds for a (src, dst) pair."""

    def delay(self, src, dst):
        raise NotImplementedError


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``seconds`` -- useful in unit tests."""

    def __init__(self, seconds=0.01):
        if seconds < 0:
            raise ValueError("latency cannot be negative")
        self.seconds = seconds

    def delay(self, src, dst):
        return self.seconds


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from ``[lo, hi]`` per message."""

    def __init__(self, lo, hi, rng):
        if not 0 <= lo <= hi:
            raise ValueError("need 0 <= lo <= hi")
        self.lo = lo
        self.hi = hi
        self._rng = rng

    def delay(self, src, dst):
        return self._rng.uniform(self.lo, self.hi)


class GeoLatency(LatencyModel):
    """Coordinate-based wide-area delay.

    Each address is assigned a point in a unit square (set via
    :meth:`place`); one-way delay is ``base + scale * distance`` with
    multiplicative lognormal jitter. With ``scale=0.15`` the worst-case
    one-way delay is ~110 ms, matching intercontinental PlanetLab paths.
    """

    def __init__(self, rng, base=0.002, scale=0.15, jitter_sigma=0.2):
        self._rng = rng
        self.base = base
        self.scale = scale
        self.jitter_sigma = jitter_sigma
        self._coords = {}

    def place(self, address, x, y):
        """Pin ``address`` at coordinates ``(x, y)`` in the unit square."""
        self._coords[address] = (x, y)

    def place_random(self, address):
        self.place(address, self._rng.random(), self._rng.random())

    def coordinates(self, address):
        return self._coords.get(address)

    def delay(self, src, dst):
        a = self._coords.get(src)
        b = self._coords.get(dst)
        if a is None or b is None:
            # Unplaced nodes still communicate; give them a median path.
            distance = 0.5
        else:
            distance = ((a[0] - b[0]) ** 2 + (a[1] - b[1]) ** 2) ** 0.5
        jitter = self._rng.lognormvariate(0.0, self.jitter_sigma)
        return (self.base + self.scale * distance) * jitter


class RegionalLatency(LatencyModel):
    """Region-labelled wide-area delay.

    Nodes are assigned to named regions (data centers / continents);
    an intra-region pair sees a rack-scale path (~1-5 ms one-way) while
    a cross-region pair pays a backbone link (~80-150 ms one-way) whose
    base is drawn once per unordered region pair, so the same two
    regions always share the same backbone distance. Multiplicative
    lognormal jitter sits on top of both, as in :class:`GeoLatency`.

    This is the topology model the region-aware execution stack
    (proximity routing, per-region aggregation trees) is measured on:
    the region label is also what ``SimNode`` and the overlay read via
    :meth:`region_of`, standing in for the proximity/coordinate service
    a real deployment would consult.
    """

    def __init__(self, rng, regions=None, intra=(0.001, 0.005),
                 cross=(0.080, 0.150), jitter_sigma=0.2):
        self._rng = rng
        self.intra = intra
        self.cross = cross
        self.jitter_sigma = jitter_sigma
        self._regions = {}  # address -> region label
        self._pair_base = {}  # frozenset({ra, rb}) -> backbone base delay
        self._intra_base = {}  # region -> local base delay
        if regions:
            for address, region in regions.items():
                self.assign(address, region)

    def assign(self, address, region):
        """Label ``address`` as living in ``region``."""
        self._regions[address] = region

    def region_of(self, address):
        return self._regions.get(address)

    def regions(self):
        """Sorted list of distinct region labels."""
        return sorted(set(self._regions.values()))

    def members(self, region):
        """Addresses assigned to ``region``, in assignment order."""
        return [a for a, r in self._regions.items() if r == region]

    def _base(self, ra, rb):
        if ra == rb:
            base = self._intra_base.get(ra)
            if base is None:
                base = self._intra_base[ra] = self._rng.uniform(*self.intra)
            return base
        pair = frozenset((ra, rb))
        base = self._pair_base.get(pair)
        if base is None:
            base = self._pair_base[pair] = self._rng.uniform(*self.cross)
        return base

    def delay(self, src, dst):
        ra = self._regions.get(src)
        rb = self._regions.get(dst)
        if ra is None or rb is None:
            # Unlabelled nodes get a median backbone path.
            base = sum(self.cross) / 2.0
        else:
            base = self._base(ra, rb)
        return base * self._rng.lognormvariate(0.0, self.jitter_sigma)
