"""Periodic background processes (stabilization, metric publication)."""


class PeriodicProcess:
    """Calls ``callback`` every ``period`` seconds until stopped.

    The first firing happens after ``initial_delay`` (default: one full
    period, optionally jittered so that 300 nodes' stabilizers do not
    fire in lockstep -- synchronized maintenance is both unrealistic and
    a simulator hot-spot).
    """

    def __init__(self, clock, period, callback, initial_delay=None, jitter_rng=None):
        if period <= 0:
            raise ValueError("period must be positive")
        self.clock = clock
        self.period = period
        self.callback = callback
        self._running = False
        self._event = None
        self._jitter_rng = jitter_rng
        if initial_delay is None:
            initial_delay = period
        self._initial_delay = initial_delay

    def start(self):
        if self._running:
            return
        self._running = True
        delay = self._initial_delay
        if self._jitter_rng is not None:
            delay *= self._jitter_rng.uniform(0.5, 1.5)
        self._event = self.clock.schedule(delay, self._tick)

    def stop(self):
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    @property
    def running(self):
        return self._running

    def _tick(self):
        if not self._running:
            return
        self.callback()
        if self._running:  # callback may have stopped us
            self._event = self.clock.schedule(self.period, self._tick)
