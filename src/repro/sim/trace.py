"""Structured event tracing for debugging and assertions in tests.

Components emit ``record(kind, **fields)``; tests then assert on the
sequence ("a lookup visited <= log2(N) hops", "the aggregation tree
combined before forwarding"). Disabled recorders are no-ops so tracing
can stay compiled into hot paths.
"""


class TraceRecorder:
    """An append-only, filterable log of simulation events."""

    def __init__(self, clock, enabled=True, max_entries=None):
        self.clock = clock
        self.enabled = enabled
        self.max_entries = max_entries
        self.entries = []

    def record(self, kind, **fields):
        if not self.enabled:
            return
        if self.max_entries is not None and len(self.entries) >= self.max_entries:
            return
        entry = {"t": self.clock.now, "kind": kind}
        entry.update(fields)
        self.entries.append(entry)

    def of_kind(self, kind):
        return [e for e in self.entries if e["kind"] == kind]

    def count(self, kind):
        return sum(1 for e in self.entries if e["kind"] == kind)

    def clear(self):
        self.entries.clear()

    def __len__(self):
        return len(self.entries)
