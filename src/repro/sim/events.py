"""Event records for the simulator's priority queue."""

import functools


@functools.total_ordering
class Event:
    """A scheduled callback.

    Events order by ``(time, seq)``; the sequence number makes ties
    deterministic (FIFO among events scheduled for the same instant),
    which in turn makes whole experiments reproducible from a seed.

    Cancellation is lazy: :meth:`cancel` marks the event and the clock
    skips it when popped, which is O(1) instead of an O(n) heap removal.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time, seq, callback, args):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self):
        self.cancelled = True
        # Drop references so cancelled events pinned in the heap do not
        # keep large payloads (query state, tuples) alive.
        self.callback = None
        self.args = ()

    def fire(self):
        if not self.cancelled:
            self.callback(*self.args)

    def __eq__(self, other):
        return (self.time, self.seq) == (other.time, other.seq)

    def __hash__(self):
        # seq is globally unique per clock, so this is stable even
        # though ``cancelled`` mutates.
        return self.seq

    def __lt__(self, other):
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self):
        state = "cancelled" if self.cancelled else "pending"
        return "Event(t={:.6f}, seq={}, {})".format(self.time, self.seq, state)
