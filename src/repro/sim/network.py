"""The simulated network: message delivery, loss, and node liveness.

Every inter-node interaction in the system -- DHT routing, query
dissemination, rehash traffic, result return -- goes through
:meth:`Network.send`, so the per-experiment message and byte counters
collected here are complete.
"""

from repro.sim.latency import ConstantLatency
from repro.util.errors import SimulationError
from repro.util.serde import wire_size
from repro.util.stats import Counter


class NetworkConfig:
    """Tunables for message transport.

    ``service_time`` models receive-side processing capacity: each
    node handles one message per ``service_time`` seconds, so messages
    converging on one destination queue behind each other and delivery
    lag grows with offered load instead of staying a pure propagation
    delay. 0 (the default) keeps the classic infinitely-fast receiver
    -- the load-management benchmarks turn it on to make overload
    *visible* as tail latency.
    """

    def __init__(self, loss_rate=0.0, count_bytes=True, service_time=0.0):
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.loss_rate = loss_rate
        self.count_bytes = count_bytes
        self.service_time = service_time


class Network:
    """Registry of nodes plus the transport between them."""

    def __init__(self, clock, latency=None, rng=None, config=None):
        self.clock = clock
        self.latency = latency if latency is not None else ConstantLatency()
        self._rng = rng
        self.config = config if config is not None else NetworkConfig()
        self._nodes = {}
        self._partitioned = set()  # regions currently cut off the backbone
        self.counters = Counter()
        # Per-destination inbound accounting: the "fan-in at the query
        # site" metric the in-network-aggregation claim is about.
        self.inbound_bytes = {}
        self.inbound_messages = {}
        # Per-destination service queue (config.service_time > 0):
        # when each receiver is busy-until.
        self._busy_until = {}

    # ------------------------------------------------------------------
    # Node registry
    # ------------------------------------------------------------------
    def register(self, node):
        if node.address in self._nodes:
            raise SimulationError("address {!r} already registered".format(node.address))
        self._nodes[node.address] = node

    def deregister(self, address):
        self._nodes.pop(address, None)

    def node(self, address):
        return self._nodes.get(address)

    def addresses(self):
        return list(self._nodes)

    def live_addresses(self):
        return [a for a, n in self._nodes.items() if n.alive]

    def is_alive(self, address):
        node = self._nodes.get(address)
        return node is not None and node.alive

    def __len__(self):
        return len(self._nodes)

    # ------------------------------------------------------------------
    # Region partitions
    # ------------------------------------------------------------------
    def partition_region(self, region):
        """Cut ``region`` off the backbone: every message between the
        region and the rest of the topology is dropped while the
        partition holds. Intra-region traffic (and traffic among the
        other regions) is untouched -- nodes stay alive with all their
        state, unlike a crash. Requires a region-labelled latency model.
        """
        self._partitioned.add(region)

    def heal_region(self, region):
        """Reconnect a partitioned region to the backbone."""
        self._partitioned.discard(region)

    def _severed(self, ra, rb):
        """Is the (ra, rb) link cut by a live partition?"""
        if not self._partitioned or ra == rb:
            return False
        return ra in self._partitioned or rb in self._partitioned

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def send(self, src, dst, payload):
        """Deliver ``payload`` from ``src`` to ``dst`` after a latency delay.

        Messages to dead or unknown nodes are silently dropped, exactly
        like UDP to a crashed host: the sender learns nothing unless a
        higher layer (the DHT's RPC timeouts) notices.
        """
        self.counters.add("messages_sent")
        kind = getattr(payload, "kind", None)
        if kind is None and isinstance(payload, dict):
            kind = payload.get("kind", "dict")
        if self.config.count_bytes:
            size = wire_size(payload)
            self.counters.add("bytes_sent", size)
            if kind is not None:
                self.counters.add("messages_kind_{}".format(kind))
                self.counters.add("bytes_kind_{}".format(kind), size)
        else:
            size = None
        cross = False
        severed = False
        region_of = getattr(self.latency, "region_of", None)
        if region_of is not None:
            ra, rb = region_of(src), region_of(dst)
            if ra is not None and rb is not None and ra != rb:
                cross = True
                self.counters.add("cross_region_messages")
                if size is not None:
                    self.counters.add("cross_region_bytes", size)
            severed = self._severed(ra, rb)
        if kind == "route":
            self._count_exchange_hop(payload, size, cross)
        if severed:
            # A live region partition: the message crosses a cut link
            # and vanishes, exactly like loss -- the sender learns
            # nothing until an RPC timeout fires.
            self.counters.add("messages_partitioned")
            return
        if self.config.loss_rate > 0 and self._rng is not None:
            if self._rng.random() < self.config.loss_rate:
                self.counters.add("messages_lost")
                return
        delay = self.latency.delay(src, dst)
        service = self.config.service_time
        if service > 0.0:
            # Queue behind the destination's in-flight work: the
            # message is handled when the receiver frees up, one
            # service_time after whichever is later -- its arrival or
            # the previous message's completion.
            now = self.clock.now
            arrival = now + delay
            start = max(arrival, self._busy_until.get(dst, 0.0))
            done = start + service
            self._busy_until[dst] = done
            self.counters.add("service_wait", start - arrival)
            delay = done - now
        self.clock.schedule(delay, self._deliver, src, dst, payload)

    def _count_exchange_hop(self, message, size, cross=False):
        """Per-hop accounting of exchange traffic (batched vs not).

        ``exchange_rows`` counts tuple *send attempts*, hop by hop
        (under loss a retransmitted hop counts again), so in a lossless
        run batched and unbatched runs of one workload agree on it
        while ``exchange_messages`` (and the hop acks it drags along)
        shrink with batching -- the ratio is the amortization the
        batching layer buys. Message/row counts are kept even when byte
        accounting is off (``size`` is None then). ``cross`` marks a
        hop whose endpoints live in different regions -- the backbone
        share of the exchange traffic regional trees aim to shrink.
        """
        inner = getattr(message, "payload", None)
        if not isinstance(inner, dict):
            return
        op = inner.get("op")
        if op == "deliver":
            self.counters.add("exchange_messages")
            self.counters.add("exchange_rows")
        elif op == "deliver_batch":
            self.counters.add("exchange_messages")
            self.counters.add("exchange_batches")
            cols = inner.get("cols")
            if cols is not None:
                # Columnar wire shape: row count is any column's length.
                self.counters.add("exchange_rows",
                                  len(cols[0]) if cols else 0)
            else:
                self.counters.add("exchange_rows", len(inner["rows"]))
        elif op == "deliver_mux":
            # One wire message carries several co-routed queries'
            # exchange payloads (prefix-shared fleets): the message
            # amortizes, the row attempts still count per part.
            self.counters.add("exchange_messages")
            self.counters.add("exchange_mux_bundles")
            for part in inner.get("parts", ()):
                cols = part.get("cols")
                if cols is not None:
                    self.counters.add("exchange_rows",
                                      len(cols[0]) if cols else 0)
                elif "rows" in part:
                    self.counters.add("exchange_rows", len(part["rows"]))
                else:
                    self.counters.add("exchange_rows")
        else:
            return
        if cross:
            self.counters.add("exchange_cross_region_messages")
        if size is not None:
            self.counters.add("exchange_bytes", size)
            if cross:
                self.counters.add("exchange_cross_region_bytes", size)

    def _deliver(self, src, dst, payload):
        node = self._nodes.get(dst)
        if node is None or not node.alive:
            self.counters.add("messages_to_dead_node")
            return
        self.counters.add("messages_delivered")
        if self.config.count_bytes:
            self.inbound_bytes[dst] = (
                self.inbound_bytes.get(dst, 0) + wire_size(payload)
            )
            self.inbound_messages[dst] = self.inbound_messages.get(dst, 0) + 1
        node.handle_message(src, payload)

    def broadcast_local(self, src, payload):
        """Deliver ``payload`` to every live node (test/bench helper only).

        Real PIER never does this -- dissemination rides the overlay --
        but baselines (flooding) and test fixtures use it.
        """
        for address in self.live_addresses():
            if address != src:
                self.send(src, address, payload)
