"""The simulation clock: a heap-based discrete-event scheduler.

Time is a float in *seconds* of simulated time. The clock only advances
when :meth:`run_until` / :meth:`run` pops events; there is no real-time
component anywhere, so a 30-minute PlanetLab experiment completes in
however long its events take to process.
"""

import heapq

from repro.sim.events import Event
from repro.util.errors import SimulationError


class SimClock:
    """Single-threaded discrete-event scheduler."""

    def __init__(self):
        self._now = 0.0
        self._heap = []
        self._seq = 0
        self._events_fired = 0

    @property
    def now(self):
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending(self):
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)

    @property
    def events_fired(self):
        return self._events_fired

    def schedule(self, delay, callback, *args):
        """Run ``callback(*args)`` after ``delay`` seconds of sim time."""
        if delay < 0:
            raise SimulationError("cannot schedule {}s in the past".format(delay))
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time, callback, *args):
        """Run ``callback(*args)`` at absolute sim time ``time``."""
        if time < self._now:
            raise SimulationError(
                "cannot schedule at t={} before now={}".format(time, self._now)
            )
        event = Event(time, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def run_until(self, time):
        """Fire every event with timestamp <= ``time``, then set now=time."""
        if time < self._now:
            raise SimulationError(
                "cannot run backwards to t={} from now={}".format(time, self._now)
            )
        while self._heap and self._heap[0].time <= time:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_fired += 1
            event.fire()
        self._now = time

    def run_for(self, duration):
        """Advance the clock by ``duration`` seconds."""
        self.run_until(self._now + duration)

    def run(self, max_events=None):
        """Drain the queue entirely (or up to ``max_events`` firings)."""
        fired = 0
        while self._heap:
            if max_events is not None and fired >= max_events:
                break
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_fired += 1
            event.fire()
            fired += 1
        return fired

    def __repr__(self):
        return "SimClock(now={:.3f}, pending={})".format(self._now, self.pending)
