"""Base class for simulated nodes.

A node owns an address, a liveness flag and a set of timers. Subclasses
(DHT nodes, PIER engines) override :meth:`handle_message`. Crashing a
node cancels its timers and silences delivery, matching a fail-stop
model; a node that rejoins does so with fresh state (PIER keeps only
soft state, so this is exactly the paper's recovery story).
"""


class SimNode:
    """A network endpoint with timers and fail-stop semantics."""

    def __init__(self, network, address):
        self.network = network
        self.clock = network.clock
        self.address = address
        # Region label from the latency model, when the topology has
        # one (RegionalLatency); the stand-in for the proximity service
        # a deployment would consult.
        region_of = getattr(network.latency, "region_of", None)
        self.region = region_of(address) if region_of is not None else None
        self.alive = True
        self._timers = set()
        network.register(self)

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(self, dst, payload):
        if self.alive:
            self.network.send(self.address, dst, payload)

    def handle_message(self, src, payload):
        raise NotImplementedError("subclasses handle their own messages")

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def set_timer(self, delay, callback, *args):
        """Schedule a callback that auto-cancels if this node crashes."""
        event = None

        def fire():
            self._timers.discard(event)
            if self.alive:
                callback(*args)

        event = self.clock.schedule(delay, fire)
        self._timers.add(event)
        return event

    def cancel_timer(self, event):
        event.cancel()
        self._timers.discard(event)

    # ------------------------------------------------------------------
    # Liveness
    # ------------------------------------------------------------------
    def crash(self):
        """Fail-stop: drop all timers and stop receiving messages."""
        self.alive = False
        for event in self._timers:
            event.cancel()
        self._timers.clear()

    def recover(self):
        """Mark the node live again; subclasses re-run their join logic."""
        self.alive = True

    def __repr__(self):
        state = "up" if self.alive else "down"
        return "{}(address={!r}, {})".format(type(self).__name__, self.address, state)
