"""The (globally replicated) catalog.

PIER assumes every node knows every relation's schema -- there is no
distributed catalog protocol; schemas travel out-of-band. We model
that by giving every engine a reference to one shared Catalog object,
which is exactly the information a real deployment would bake into its
application release.

A table is one of three source kinds:

* ``local``  -- each node owns private rows (e.g. its own Snort alerts);
  a query scans every node's fragment via dissemination.
* ``dht``    -- rows are published into the DHT, partitioned by
  hash(table, partition_key); a query scans each node's *stored*
  fragment via lscan, and point lookups on the partition key become
  cheap ``get`` calls (the Fetch-Matches join relies on this).
* ``stream`` -- like local, but rows carry timestamps and age out of a
  window; continuous queries read only the current window.
"""

from repro.util.errors import CatalogError

SOURCE_KINDS = ("local", "dht", "stream")


class TableDef:
    """Metadata for one relation."""

    def __init__(self, name, schema, source="local", partition_key=None,
                 ttl=None, window=None):
        if source not in SOURCE_KINDS:
            raise CatalogError("unknown source kind {!r}".format(source))
        if source == "dht" and partition_key is None:
            raise CatalogError("dht table {!r} needs a partition_key".format(name))
        if partition_key is not None and not schema.has_column(partition_key):
            raise CatalogError(
                "partition key {!r} not in schema of {!r}".format(partition_key, name)
            )
        self.name = name
        self.schema = schema
        self.source = source
        self.partition_key = partition_key
        self.ttl = ttl  # soft-state TTL for dht tables
        self.window = window  # seconds of history kept for stream tables

    def __repr__(self):
        return "TableDef({!r}, {}, source={})".format(
            self.name, self.schema.names, self.source
        )


class Catalog:
    """Name -> TableDef registry shared by all engines."""

    def __init__(self):
        self._tables = {}

    def define(self, table_def):
        if table_def.name in self._tables:
            raise CatalogError("table {!r} already defined".format(table_def.name))
        self._tables[table_def.name] = table_def
        return table_def

    def lookup(self, name):
        table = self._tables.get(name)
        if table is None:
            raise CatalogError("unknown table {!r}".format(name))
        return table

    def has_table(self, name):
        return name in self._tables

    def drop(self, name):
        if name not in self._tables:
            raise CatalogError("unknown table {!r}".format(name))
        del self._tables[name]

    def table_names(self):
        return sorted(self._tables)

    def __len__(self):
        return len(self._tables)
