"""Relational substrate: types, schemas, expressions, catalog, tables.

PIER is "a generic dataflow engine ... outfitted with a set of
relational query processing operators"; this package holds the
relational half of that sentence. Rows are plain Python tuples for
speed; a :class:`~repro.db.schema.Schema` maps column names to
positions, and expressions compile to closures over row tuples.
"""

from repro.db.catalog import Catalog, TableDef
from repro.db.expressions import (
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    Literal,
    UnaryOp,
    col,
    lit,
)
from repro.db.schema import Column, Schema
from repro.db.table import LocalTable
from repro.db.types import ANY, BOOL, FLOAT, INT, STR, ColumnType
from repro.db.window import TimeWindow

__all__ = [
    "ANY",
    "BOOL",
    "BinaryOp",
    "Catalog",
    "Column",
    "ColumnRef",
    "ColumnType",
    "Expr",
    "FLOAT",
    "FuncCall",
    "INT",
    "STR",
    "LocalTable",
    "Literal",
    "Schema",
    "TableDef",
    "TimeWindow",
    "UnaryOp",
    "col",
    "lit",
]
