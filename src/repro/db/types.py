"""Column types.

A deliberately small type system: the four scalar types PIER's demo
queries use, plus ANY for pass-through columns (e.g. DHT payloads).
Types *coerce* on insert (so a generator can hand an int to a FLOAT
column) and *validate* in tests.
"""

from repro.util.errors import CatalogError


class ColumnType:
    """A named scalar type with coercion rules."""

    def __init__(self, name, python_types, coerce_fn=None):
        self.name = name
        self.python_types = python_types
        self._coerce_fn = coerce_fn

    def validate(self, value):
        return value is None or isinstance(value, self.python_types)

    def coerce(self, value):
        """Convert ``value`` into this type; raise CatalogError if impossible."""
        if value is None or isinstance(value, self.python_types):
            # bool is an int subclass; keep INT columns honest.
            if self is INT and isinstance(value, bool):
                return int(value)
            return value
        if self._coerce_fn is not None:
            try:
                return self._coerce_fn(value)
            except (TypeError, ValueError) as exc:
                raise CatalogError(
                    "cannot coerce {!r} to {}".format(value, self.name)
                ) from exc
        raise CatalogError("cannot coerce {!r} to {}".format(value, self.name))

    def __repr__(self):
        return self.name


INT = ColumnType("INT", (int,), int)
FLOAT = ColumnType("FLOAT", (float, int), float)
STR = ColumnType("STR", (str,), str)
BOOL = ColumnType("BOOL", (bool,), bool)
ANY = ColumnType("ANY", (object,))


_BY_NAME = {t.name: t for t in (INT, FLOAT, STR, BOOL, ANY)}


def type_by_name(name):
    """Resolve a type from its SQL-ish name (case-insensitive)."""
    upper = name.upper()
    aliases = {
        "INTEGER": "INT", "BIGINT": "INT",
        "DOUBLE": "FLOAT", "REAL": "FLOAT",
        "TEXT": "STR", "VARCHAR": "STR", "STRING": "STR",
        "BOOLEAN": "BOOL",
    }
    upper = aliases.get(upper, upper)
    if upper not in _BY_NAME:
        raise CatalogError("unknown column type {!r}".format(name))
    return _BY_NAME[upper]
