"""Node-local table fragments.

Fragments support two read disciplines: one-shot scans (``scan`` /
``scan_window``) and *append subscriptions* (``on_append``), which
standing continuous queries use so a scan operator hears about each new
row exactly once instead of re-reading the whole fragment every epoch.
Hooks receive ``(timestamp, row)`` -- for local tables the timestamp is
None (their rows have no time axis).
"""

from repro.util.errors import CatalogError


class AppendHooks:
    """Mixin: per-fragment append subscriptions.

    ``on_append(callback)`` registers ``callback(timestamp, row)`` and
    returns the callback as a removal token for ``remove_append_hook``;
    a standing scan unsubscribes when its execution closes so fragments
    never pin dead query state.
    """

    _hooks = ()

    def on_append(self, callback):
        if not self._hooks:
            self._hooks = []
        self._hooks.append(callback)
        return callback

    def remove_append_hook(self, token):
        if self._hooks and token in self._hooks:
            self._hooks.remove(token)

    def _fire_append(self, timestamp, row):
        for callback in self._hooks:
            callback(timestamp, row)


class LocalTable(AppendHooks):
    """The rows one node contributes to a ``local`` relation.

    Inserts accept dicts or positional sequences and coerce through the
    schema. Scans return the row list (callers must not mutate it).
    """

    def __init__(self, table_def):
        self.table_def = table_def
        self.schema = table_def.schema
        self._rows = []
        self._hooks = []

    def insert(self, row):
        if isinstance(row, dict):
            coerced = self.schema.row_from_dict(row)
        else:
            coerced = self.schema.coerce_row(row)
        self._rows.append(coerced)
        self._fire_append(None, coerced)
        return coerced

    def insert_many(self, rows):
        for row in rows:
            self.insert(row)

    def delete_where(self, predicate_fn):
        """Remove rows where ``predicate_fn(row)`` is truthy; returns count."""
        before = len(self._rows)
        self._rows = [r for r in self._rows if not predicate_fn(r)]
        return before - len(self._rows)

    def replace_all(self, rows):
        """Swap in a fresh row set (per-epoch metric refresh)."""
        self._rows = [
            self.schema.row_from_dict(r) if isinstance(r, dict)
            else self.schema.coerce_row(r)
            for r in rows
        ]

    def scan(self):
        return self._rows

    def clear(self):
        self._rows = []

    def __len__(self):
        return len(self._rows)

    def __repr__(self):
        return "LocalTable({!r}, {} rows)".format(self.table_def.name, len(self._rows))


def make_fragment(table_def):
    """Build the right fragment container for a table's source kind."""
    from repro.db.window import TimeWindow

    if table_def.source == "stream":
        if table_def.window is None:
            raise CatalogError(
                "stream table {!r} needs a window".format(table_def.name)
            )
        return TimeWindow(table_def)
    return LocalTable(table_def)
