"""Sliding time windows for stream tables, and the pane math under them.

Continuous queries in PIER's SQL dialect read a window of recent rows
each epoch (``... WINDOW 60 SECONDS EVERY 30 SECONDS``). A TimeWindow
is the node-local buffer behind that: append-only with timestamps,
range scans by time, and eager eviction of anything older than the
table's configured horizon.

When ``WINDOW > EVERY`` adjacent windows overlap, and re-aggregating
the overlap every epoch is the dominant per-epoch cost. The classic
fix is *panes*: slice time into buckets of width ``gcd(WINDOW,
EVERY)`` so every window is an exact union of panes and each epoch
only introduces ``EVERY / pane`` new ones. The module-level helpers
here define that arithmetic once, shared by the standing scan (which
buckets its per-epoch delta) and the pane-aware stateful operators
(which decide which panes a given epoch's window covers):

* :func:`pane_width` -- the pane size for a (window, every) pair, or
  ``None`` when the two are not commensurable;
* :func:`pane_index` -- which pane a timestamp falls into, with panes
  aligned to the query's submission time so window edges land exactly
  on pane edges;
* :func:`window_pane_range` -- the half-open pane-index range
  ``[lo, hi)`` that epoch ``k``'s window covers.
"""

import math
from collections import deque

from repro.db.table import AppendHooks

_PANE_RESOLUTION = 1000  # pane math at millisecond resolution


def pane_width(window, every):
    """Pane size (seconds) for a window/period pair, or ``None``.

    The pane is ``gcd(window, every)`` computed at millisecond
    resolution, so both the window and the period are exact pane
    multiples and every epoch's window edge coincides with a pane
    edge. Returns ``None`` when either duration is missing,
    non-positive, or not representable on the millisecond grid (then
    paned aggregation is not applicable and callers fall back to
    from-scratch window evaluation).
    """
    if not window or not every:
        return None
    w = round(window * _PANE_RESOLUTION)
    e = round(every * _PANE_RESOLUTION)
    if w <= 0 or e <= 0:
        return None
    if (abs(w - window * _PANE_RESOLUTION) > 1e-6
            or abs(e - every * _PANE_RESOLUTION) > 1e-6):
        return None
    return math.gcd(w, e) / _PANE_RESOLUTION


def pane_index(timestamp, origin, width):
    """Index of the pane containing ``timestamp``.

    Panes tile time relative to ``origin`` (the query's t0): pane ``p``
    covers the half-open interval ``(origin + p*width, origin +
    (p+1)*width]`` -- right-closed to match the window convention
    ``(t_k - WINDOW, t_k]``, so a row stamped exactly on an epoch
    boundary belongs to the epoch that ends there. Indices may be
    negative for history older than the query.
    """
    return math.ceil(round((timestamp - origin) / width, 9)) - 1


def window_pane_range(epoch, panes_per_every, panes_per_window):
    """Half-open pane range ``[lo, hi)`` covered by epoch ``k``'s window.

    Epoch ``k`` closes at ``t0 + k*EVERY`` and reads ``(t_k - WINDOW,
    t_k]``; in pane units that is the ``panes_per_window`` panes ending
    just before index ``k * panes_per_every``.
    """
    hi = epoch * panes_per_every
    return hi - panes_per_window, hi


class TimeWindow(AppendHooks):
    """Timestamped row buffer with a fixed retention horizon."""

    def __init__(self, table_def):
        self.table_def = table_def
        self.schema = table_def.schema
        self.horizon = table_def.window
        self._rows = deque()  # (timestamp, row), timestamps non-decreasing
        self._hooks = []

    def append(self, timestamp, row):
        if isinstance(row, dict):
            coerced = self.schema.row_from_dict(row)
        else:
            coerced = self.schema.coerce_row(row)
        if self._rows and timestamp < self._rows[-1][0]:
            # Out-of-order arrival: tolerate it, but keep scan ordering
            # approximate rather than re-sorting the deque.
            timestamp = self._rows[-1][0]
        self._rows.append((timestamp, coerced))
        self._fire_append(timestamp, coerced)
        return coerced

    def evict_older_than(self, cutoff):
        """Drop rows with timestamp < cutoff; returns how many."""
        dropped = 0
        while self._rows and self._rows[0][0] < cutoff:
            self._rows.popleft()
            dropped += 1
        return dropped

    def scan_window(self, lo, hi):
        """Rows with timestamp in (lo, hi] -- one epoch's input."""
        return [row for ts, row in self._rows if lo < ts <= hi]

    def scan(self):
        """All retained rows (the full current window)."""
        return [row for _ts, row in self._rows]

    def items(self):
        """Retained ``(timestamp, row)`` pairs (standing-scan seeding)."""
        return list(self._rows)

    def latest(self):
        return self._rows[-1] if self._rows else None

    def __len__(self):
        return len(self._rows)

    def __repr__(self):
        return "TimeWindow({!r}, {} rows, horizon={})".format(
            self.table_def.name, len(self._rows), self.horizon
        )
