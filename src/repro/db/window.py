"""Sliding time windows for stream tables.

Continuous queries in PIER's SQL dialect read a window of recent rows
each epoch (``... WINDOW 60 SECONDS EVERY 30 SECONDS``). A TimeWindow
is the node-local buffer behind that: append-only with timestamps,
range scans by time, and eager eviction of anything older than the
table's configured horizon.
"""

from collections import deque

from repro.db.table import AppendHooks


class TimeWindow(AppendHooks):
    """Timestamped row buffer with a fixed retention horizon."""

    def __init__(self, table_def):
        self.table_def = table_def
        self.schema = table_def.schema
        self.horizon = table_def.window
        self._rows = deque()  # (timestamp, row), timestamps non-decreasing
        self._hooks = []

    def append(self, timestamp, row):
        if isinstance(row, dict):
            coerced = self.schema.row_from_dict(row)
        else:
            coerced = self.schema.coerce_row(row)
        if self._rows and timestamp < self._rows[-1][0]:
            # Out-of-order arrival: tolerate it, but keep scan ordering
            # approximate rather than re-sorting the deque.
            timestamp = self._rows[-1][0]
        self._rows.append((timestamp, coerced))
        self._fire_append(timestamp, coerced)
        return coerced

    def evict_older_than(self, cutoff):
        """Drop rows with timestamp < cutoff; returns how many."""
        dropped = 0
        while self._rows and self._rows[0][0] < cutoff:
            self._rows.popleft()
            dropped += 1
        return dropped

    def scan_window(self, lo, hi):
        """Rows with timestamp in (lo, hi] -- one epoch's input."""
        return [row for ts, row in self._rows if lo < ts <= hi]

    def scan(self):
        """All retained rows (the full current window)."""
        return [row for _ts, row in self._rows]

    def items(self):
        """Retained ``(timestamp, row)`` pairs (standing-scan seeding)."""
        return list(self._rows)

    def latest(self):
        return self._rows[-1] if self._rows else None

    def __len__(self):
        return len(self._rows)

    def __repr__(self):
        return "TimeWindow({!r}, {} rows, horizon={})".format(
            self.table_def.name, len(self._rows), self.horizon
        )
