"""Schemas: ordered, named, typed column lists.

Column names may be qualified (``"stats.rate"``); resolution accepts an
unqualified name whenever it is unambiguous, which is what lets the
same expression tree run before and after a join concatenates schemas.
"""

from repro.db.types import ANY
from repro.util.errors import CatalogError


class Column:
    __slots__ = ("name", "type")

    def __init__(self, name, column_type=ANY):
        self.name = name
        self.type = column_type

    def __repr__(self):
        return "{} {}".format(self.name, self.type.name)


class Schema:
    """An immutable ordered list of columns with name lookup."""

    def __init__(self, columns):
        self.columns = list(columns)
        self._index = {}
        for i, column in enumerate(self.columns):
            if column.name in self._index:
                raise CatalogError("duplicate column {!r}".format(column.name))
            self._index[column.name] = i

    @classmethod
    def of(cls, *name_type_pairs):
        """Shorthand: ``Schema.of(("a", INT), ("b", STR))``."""
        return cls(Column(name, t) for name, t in name_type_pairs)

    def __len__(self):
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    @property
    def names(self):
        return [c.name for c in self.columns]

    def index_of(self, name):
        """Resolve a (possibly unqualified) column name to its position."""
        if name in self._index:
            return self._index[name]
        # Unqualified reference to a qualified column: match by suffix.
        matches = [
            i for n, i in self._index.items()
            if "." in n and n.rsplit(".", 1)[1] == name
        ]
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            raise CatalogError("ambiguous column {!r}".format(name))
        raise CatalogError("unknown column {!r}".format(name))

    def has_column(self, name):
        try:
            self.index_of(name)
            return True
        except CatalogError:
            return False

    def column(self, name):
        return self.columns[self.index_of(name)]

    def qualify(self, qualifier):
        """A copy with every column renamed to ``qualifier.column``."""
        return Schema(
            Column("{}.{}".format(qualifier, c.name.rsplit(".", 1)[-1]), c.type)
            for c in self.columns
        )

    def concat(self, other):
        """Schema of a join output: this schema's columns then ``other``'s."""
        return Schema(list(self.columns) + list(other.columns))

    def project(self, names):
        return Schema(self.columns[self.index_of(n)] for n in names)

    def coerce_row(self, values):
        """Coerce an iterable of values into a row tuple for this schema."""
        values = tuple(values)
        if len(values) != len(self.columns):
            raise CatalogError(
                "row has {} values, schema {!r} needs {}".format(
                    len(values), self.names, len(self.columns)
                )
            )
        return tuple(c.type.coerce(v) for c, v in zip(self.columns, values))

    def row_from_dict(self, mapping):
        """Build a row tuple from a {column: value} mapping."""
        missing = [c.name for c in self.columns if c.name not in mapping]
        if missing:
            raise CatalogError("row missing columns {}".format(missing))
        return self.coerce_row(mapping[c.name] for c in self.columns)

    def row_to_dict(self, row):
        return {c.name: v for c, v in zip(self.columns, row)}

    def __eq__(self, other):
        return isinstance(other, Schema) and [
            (c.name, c.type.name) for c in self.columns
        ] == [(c.name, c.type.name) for c in other.columns]

    def __repr__(self):
        return "Schema({})".format(", ".join(map(repr, self.columns)))
