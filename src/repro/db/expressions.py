"""Scalar expression trees, compiled to closures over row tuples.

Expressions appear in SELECT lists, WHERE/HAVING predicates and join
conditions. ``expr.compile(schema)`` resolves column names to positions
once and returns a plain function of the row, so per-tuple evaluation
does no name lookups -- the standard interpreted-engine compromise.

SQL three-valued logic is simplified to Python semantics with one
carve-out: any comparison or arithmetic against None yields None, and
None is falsy in predicates, which matches the observable behaviour of
SQL WHERE for the queries PIER runs.

Vectorized operators use ``expr.compile_batch(schema)`` instead: the
returned function takes a :class:`repro.core.batch.RowBatch` and
yields one *value list* (one entry per row), computed with column
loops. Every override must be value-identical to mapping the row
closure over the batch -- including the None carve-out -- and the base
class guarantees it by defaulting to exactly that mapping.
"""

from repro.util.errors import PlanError


class Expr:
    """Base class. Subclasses implement compile/column_refs/display."""

    def compile(self, schema):
        raise NotImplementedError

    def compile_batch(self, schema):
        """Compile to a batch evaluator: RowBatch -> list of values.

        The fallback maps the row closure over the batch, so every
        expression kind works on batches; hot kinds override with
        column loops.
        """
        fn = self.compile(schema)
        return lambda batch: [fn(row) for row in batch.iter_rows()]

    def column_refs(self):
        """All column names this expression reads (for pushdown analysis)."""
        return set()

    def display(self):
        raise NotImplementedError

    def __repr__(self):
        return "Expr({})".format(self.display())


class ColumnRef(Expr):
    def __init__(self, name):
        self.name = name

    def compile(self, schema):
        index = schema.index_of(self.name)
        return lambda row: row[index]

    def compile_batch(self, schema):
        index = schema.index_of(self.name)
        # The batch's own column list, shared: callers must not mutate.
        return lambda batch: batch.column(index)

    def column_refs(self):
        return {self.name}

    def display(self):
        return self.name


class Literal(Expr):
    def __init__(self, value):
        self.value = value

    def compile(self, schema):
        value = self.value
        return lambda row: value

    def compile_batch(self, schema):
        value = self.value
        return lambda batch: [value] * len(batch)

    def display(self):
        if isinstance(self.value, str):
            return "'{}'".format(self.value)
        return repr(self.value)


def _null_safe(fn):
    def wrapped(a, b):
        if a is None or b is None:
            return None
        return fn(a, b)

    return wrapped


_BINARY_FNS = {
    "+": _null_safe(lambda a, b: a + b),
    "-": _null_safe(lambda a, b: a - b),
    "*": _null_safe(lambda a, b: a * b),
    "/": _null_safe(lambda a, b: a / b if b != 0 else None),
    "%": _null_safe(lambda a, b: a % b if b != 0 else None),
    "=": _null_safe(lambda a, b: a == b),
    "!=": _null_safe(lambda a, b: a != b),
    "<": _null_safe(lambda a, b: a < b),
    "<=": _null_safe(lambda a, b: a <= b),
    ">": _null_safe(lambda a, b: a > b),
    ">=": _null_safe(lambda a, b: a >= b),
    "AND": lambda a, b: bool(a) and bool(b),
    "OR": lambda a, b: bool(a) or bool(b),
}


class BinaryOp(Expr):
    def __init__(self, op, left, right):
        op = op.upper() if op.upper() in ("AND", "OR") else op
        if op not in _BINARY_FNS:
            raise PlanError("unknown binary operator {!r}".format(op))
        self.op = op
        self.left = left
        self.right = right

    def compile(self, schema):
        fn = _BINARY_FNS[self.op]
        left = self.left.compile(schema)
        right = self.right.compile(schema)
        return lambda row: fn(left(row), right(row))

    def compile_batch(self, schema):
        fn = _BINARY_FNS[self.op]
        left = self.left.compile_batch(schema)
        right = self.right.compile_batch(schema)
        return lambda batch: list(map(fn, left(batch), right(batch)))

    def column_refs(self):
        return self.left.column_refs() | self.right.column_refs()

    def display(self):
        return "({} {} {})".format(self.left.display(), self.op, self.right.display())


class UnaryOp(Expr):
    def __init__(self, op, operand):
        op = op.upper()
        if op not in ("NOT", "-"):
            raise PlanError("unknown unary operator {!r}".format(op))
        self.op = op
        self.operand = operand

    def compile(self, schema):
        operand = self.operand.compile(schema)
        if self.op == "NOT":
            return lambda row: not operand(row)
        return lambda row: None if operand(row) is None else -operand(row)

    def compile_batch(self, schema):
        operand = self.operand.compile_batch(schema)
        if self.op == "NOT":
            return lambda batch: [not v for v in operand(batch)]
        return lambda batch: [
            None if v is None else -v for v in operand(batch)
        ]

    def column_refs(self):
        return self.operand.column_refs()

    def display(self):
        return "({} {})".format(self.op, self.operand.display())


_SCALAR_FNS = {
    "ABS": abs,
    "LOWER": lambda s: None if s is None else s.lower(),
    "UPPER": lambda s: None if s is None else s.upper(),
    "LENGTH": lambda s: None if s is None else len(s),
    "ROUND": round,
    "COALESCE": lambda *args: next((a for a in args if a is not None), None),
}


class FuncCall(Expr):
    def __init__(self, name, args):
        name = name.upper()
        if name not in _SCALAR_FNS:
            raise PlanError("unknown scalar function {!r}".format(name))
        self.name = name
        self.args = list(args)

    def compile(self, schema):
        fn = _SCALAR_FNS[self.name]
        compiled = [a.compile(schema) for a in self.args]
        return lambda row: fn(*(c(row) for c in compiled))

    def compile_batch(self, schema):
        if not self.args:
            return super().compile_batch(schema)
        fn = _SCALAR_FNS[self.name]
        compiled = [a.compile_batch(schema) for a in self.args]
        return lambda batch: list(
            map(fn, *(c(batch) for c in compiled))
        )

    def column_refs(self):
        refs = set()
        for arg in self.args:
            refs |= arg.column_refs()
        return refs

    def display(self):
        return "{}({})".format(self.name, ", ".join(a.display() for a in self.args))


def col(name):
    """Shorthand constructor for the algebraic ("boxes and arrows") API."""
    return ColumnRef(name)


def lit(value):
    return Literal(value)


def conjuncts(expr):
    """Split a predicate into its top-level AND-ed conjuncts."""
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return conjuncts(expr.left) + conjuncts(expr.right)
    return [expr]


def equi_join_pairs(expr, left_schema, right_schema):
    """Extract equi-join column pairs from a predicate.

    Returns ``(pairs, residual)`` where pairs is a list of
    ``(left_column, right_column)`` and residual is the AND of the
    remaining conjuncts (or None). The planner uses this to pick the
    rehash keys for a DHT join.
    """
    pairs = []
    residual = []
    for conj in conjuncts(expr):
        matched = False
        if (
            isinstance(conj, BinaryOp)
            and conj.op == "="
            and isinstance(conj.left, ColumnRef)
            and isinstance(conj.right, ColumnRef)
        ):
            lhs, rhs = conj.left.name, conj.right.name
            if left_schema.has_column(lhs) and right_schema.has_column(rhs):
                pairs.append((lhs, rhs))
                matched = True
            elif left_schema.has_column(rhs) and right_schema.has_column(lhs):
                pairs.append((rhs, lhs))
                matched = True
        if not matched:
            residual.append(conj)
    residual_expr = None
    for conj in residual:
        residual_expr = conj if residual_expr is None else BinaryOp("AND", residual_expr, conj)
    return pairs, residual_expr
