"""Shared utilities: ring arithmetic, Bloom filters, Zipf sampling, RNG, stats.

These are the leaf dependencies of every other subpackage; nothing in
``repro.util`` imports from elsewhere in the project.
"""

from repro.util.bloom import BloomFilter
from repro.util.errors import (
    CatalogError,
    DhtError,
    PierError,
    PlanError,
    SimulationError,
    SqlError,
)
from repro.util.ids import (
    ID_BITS,
    ID_SPACE,
    distance_cw,
    in_interval,
    node_id_for,
    sha1_id,
)
from repro.util.rng import SeededRng
from repro.util.stats import Counter, Histogram, RunningStat
from repro.util.zipf import ZipfSampler

__all__ = [
    "BloomFilter",
    "CatalogError",
    "Counter",
    "DhtError",
    "Histogram",
    "ID_BITS",
    "ID_SPACE",
    "PierError",
    "PlanError",
    "RunningStat",
    "SeededRng",
    "SimulationError",
    "SqlError",
    "ZipfSampler",
    "distance_cw",
    "in_interval",
    "node_id_for",
    "sha1_id",
]
