"""Exception hierarchy for the PIER reproduction.

All library errors derive from :class:`PierError` so callers can catch one
base class. Subsystems raise their own subclass; nothing in the library
raises a bare ``Exception``.
"""


class PierError(Exception):
    """Base class for every error raised by the repro library."""


class SimulationError(PierError):
    """The discrete-event simulator was used incorrectly.

    Examples: scheduling an event in the past, or running a network whose
    clock has already been stopped.
    """


class DhtError(PierError):
    """A DHT-level failure: routing to a dead overlay, bad namespace, etc."""


class CatalogError(PierError):
    """Schema/catalog misuse: unknown table, duplicate table, bad column."""


class SqlError(PierError):
    """The SQL frontend rejected a query (lex, parse, or analysis error).

    Carries an optional source position so callers can point at the
    offending token.
    """

    def __init__(self, message, position=None):
        if position is not None:
            message = "{} (at position {})".format(message, position)
        super().__init__(message)
        self.position = position


class PlanError(PierError):
    """The planner could not translate a (valid) query into a dataflow."""
