"""Deterministic random-number plumbing.

Every stochastic component (latency model, churn process, workload
generator) draws from a :class:`SeededRng` derived from a single
experiment seed, so a run is reproducible bit-for-bit from that seed.

Streams are independent: ``SeededRng(seed).fork("churn")`` and
``fork("latency")`` never share state, so adding draws to one component
does not perturb another -- essential when comparing a baseline and a
treatment under "the same" workload.
"""

import random

from repro.util.ids import sha1_id


class SeededRng:
    """A named, forkable wrapper around :class:`random.Random`."""

    def __init__(self, seed, name="root"):
        self.seed = seed
        self.name = name
        self._random = random.Random(sha1_id("{}/{}".format(seed, name)))

    def fork(self, name):
        """Create an independent child stream identified by ``name``."""
        return SeededRng(self.seed, "{}/{}".format(self.name, name))

    # Thin delegation; keeps call sites short and lets tests patch one spot.
    def random(self):
        return self._random.random()

    def uniform(self, a, b):
        return self._random.uniform(a, b)

    def randint(self, a, b):
        return self._random.randint(a, b)

    def randrange(self, n):
        return self._random.randrange(n)

    def choice(self, seq):
        return self._random.choice(seq)

    def sample(self, population, k):
        return self._random.sample(population, k)

    def shuffle(self, seq):
        self._random.shuffle(seq)

    def expovariate(self, rate):
        return self._random.expovariate(rate)

    def gauss(self, mu, sigma):
        return self._random.gauss(mu, sigma)

    def lognormvariate(self, mu, sigma):
        return self._random.lognormvariate(mu, sigma)

    def paretovariate(self, alpha):
        return self._random.paretovariate(alpha)

    def __repr__(self):
        return "SeededRng(seed={!r}, name={!r})".format(self.seed, self.name)
