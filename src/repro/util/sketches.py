"""Mergeable sketch summaries: Count-Min and HyperLogLog.

Exact distributed aggregation of COUNT DISTINCT and top-k frequency
queries ships the underlying value sets around (PIER did the same --
see :class:`~repro.core.aggregates.CountDistinct`), so partial-state
size grows with the data. Sketches bound it: a Count-Min sketch answers
frequency (and thus heavy-hitter) queries in ``depth x width`` counters
with one-sided error ``+/- eps * N`` (``eps = e / width``) at
confidence ``1 - delta`` (``delta = e ** -depth``); a HyperLogLog
estimates distinct counts in ``2 ** p`` single-byte registers with
relative standard error ``~1.04 / sqrt(2 ** p)``.

Both are *algebraic* in the sense aggregation trees need: ``merge`` of
two sketches over disjoint (or overlapping, for HLL) inputs equals the
sketch of the combined input, and merging is associative and
commutative, so per-hop combining and pane partials both work.
Count-Min is additionally *linear* -- counters subtract -- so
``unmerge`` can retire a pane from a sliding window exactly.
HyperLogLog registers are maxima and have no inverse; paned windows
re-merge its live pane partials instead (O(panes) constant-size merges
per epoch, which is the point: the exact set-based fallback re-merges
O(distinct values)).

Instances are behaviourally immutable, like every aggregate state in
this codebase: ``add`` and ``merge`` return new sketches and never
mutate their receiver, so a partial that was already emitted (the sim
ships object references, not serialized copies) can never be corrupted
by later folds. Hashing is SHA-1 via :func:`repro.util.ids.sha1_id`,
so sketches are deterministic across nodes and runs -- two nodes
sketching the same values produce identical registers, which the
property tests rely on.
"""

import math

from repro.util.ids import sha1_id


class CountMinSketch:
    """A ``depth x width`` counter matrix for approximate frequencies.

    ``estimate(x)`` never under-counts; it over-counts by at most
    ``(e / width) * total`` with probability ``>= 1 - e ** -depth``.
    """

    __slots__ = ("depth", "width", "rows", "total")

    def __init__(self, depth=4, width=256, rows=None, total=0):
        if depth <= 0 or width <= 0:
            raise ValueError("depth and width must be positive")
        self.depth = depth
        self.width = width
        self.rows = rows if rows is not None else ((0,) * width,) * depth
        self.total = total  # sum of all added counts (error-bound N)

    @classmethod
    def for_error(cls, epsilon, delta=0.01):
        """Size a sketch for ``+/- epsilon * N`` at confidence 1-delta."""
        width = max(8, math.ceil(math.e / epsilon))
        depth = max(1, math.ceil(math.log(1.0 / delta)))
        return cls(depth=depth, width=width)

    def _columns(self, item):
        digest = sha1_id(("cm", item))
        for d in range(self.depth):
            yield (digest >> (32 * d)) % self.width

    def add(self, item, count=1):
        """A new sketch with ``count`` occurrences of ``item`` folded in."""
        rows = []
        for row, col in zip(self.rows, self._columns(item)):
            updated = list(row)
            updated[col] += count
            rows.append(tuple(updated))
        return CountMinSketch(self.depth, self.width, tuple(rows),
                              self.total + count)

    def estimate(self, item):
        """Estimated frequency of ``item`` (never below the truth)."""
        return min(row[col] for row, col in zip(self.rows, self._columns(item)))

    def merge(self, other):
        """Counter-wise sum: the sketch of the combined input."""
        self._check_geometry(other)
        rows = tuple(
            tuple(a + b for a, b in zip(mine, theirs))
            for mine, theirs in zip(self.rows, other.rows)
        )
        return CountMinSketch(self.depth, self.width, rows,
                              self.total + other.total)

    def unmerge(self, other):
        """Counter-wise difference: retire a previously merged part.

        Linearity makes this exact -- ``merge(s, p).unmerge(p)`` has
        the same counters as ``s`` -- which is what gives sketch-backed
        sliding windows an invertible path.
        """
        self._check_geometry(other)
        rows = tuple(
            tuple(a - b for a, b in zip(mine, theirs))
            for mine, theirs in zip(self.rows, other.rows)
        )
        return CountMinSketch(self.depth, self.width, rows,
                              self.total - other.total)

    def _check_geometry(self, other):
        if (self.depth, self.width) != (other.depth, other.width):
            raise ValueError("cannot combine Count-Min sketches of "
                             "different geometry")

    @property
    def epsilon(self):
        """Per-estimate error factor: estimates are within eps * total."""
        return math.e / self.width

    def wire_size(self):
        """Counters as 4-byte ints plus a small header."""
        return 16 + 4 * self.depth * self.width

    def __len__(self):
        return self.total

    def __repr__(self):
        return "CountMinSketch(depth={}, width={}, total={})".format(
            self.depth, self.width, self.total
        )


class HyperLogLog:
    """Distinct-count estimator over ``2 ** p`` one-byte registers."""

    __slots__ = ("p", "registers")

    def __init__(self, p=10, registers=None):
        if not 4 <= p <= 16:
            raise ValueError("precision p must be in [4, 16]")
        self.p = p
        self.registers = (registers if registers is not None
                          else bytes(1 << p))

    def add(self, item):
        """A new HLL with ``item`` observed (idempotent per value)."""
        digest = sha1_id(("hll", item))
        index = digest & ((1 << self.p) - 1)
        # Rank of the remaining bits: position of the first set bit.
        rest = (digest >> self.p) & ((1 << 64) - 1)
        rank = 1 if rest == 0 else 65 - rest.bit_length()
        if self.registers[index] >= rank:
            return self
        updated = bytearray(self.registers)
        updated[index] = rank
        return HyperLogLog(self.p, bytes(updated))

    def merge(self, other):
        """Register-wise max: the HLL of the union of both inputs."""
        if self.p != other.p:
            raise ValueError("cannot merge HLLs of different precision")
        regs = bytes(max(a, b) for a, b in zip(self.registers, other.registers))
        return HyperLogLog(self.p, regs)

    def estimate(self):
        """Bias-corrected cardinality estimate (Flajolet et al. 2007)."""
        m = 1 << self.p
        total = 0.0
        zeros = 0
        for r in self.registers:
            total += 2.0 ** -r
            if r == 0:
                zeros += 1
        alpha = 0.7213 / (1.0 + 1.079 / m)
        raw = alpha * m * m / total
        if raw <= 2.5 * m and zeros:
            return m * math.log(m / zeros)  # linear counting, small range
        return raw

    @property
    def relative_error(self):
        """Standard relative error of :meth:`estimate`."""
        return 1.04 / math.sqrt(1 << self.p)

    def wire_size(self):
        return 8 + (1 << self.p)

    def __repr__(self):
        occupied = sum(1 for r in self.registers if r)
        return "HyperLogLog(p={}, occupied={})".format(self.p, occupied)
