"""Small statistics helpers used by the benchmark harnesses.

Benchmarks report hop counts, message counts and latencies; these
accumulators avoid materializing full sample lists where a running
summary suffices (Welford for mean/variance, fixed-width histogram for
distributions).
"""

import math


class RunningStat:
    """Welford's online mean/variance with min/max tracking."""

    def __init__(self):
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value):
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self):
        return self._mean if self.count else 0.0

    @property
    def variance(self):
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stdev(self):
        return math.sqrt(self.variance)

    def summary(self):
        return {
            "count": self.count,
            "mean": self.mean,
            "stdev": self.stdev,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
        }

    def __repr__(self):
        return "RunningStat(count={}, mean={:.4g}, stdev={:.4g})".format(
            self.count, self.mean, self.stdev
        )


class Counter:
    """A named bag of monotonically increasing counters.

    The simulator and DHT use one of these per experiment to report
    message/byte totals without threading dozens of integers through
    call signatures.
    """

    def __init__(self):
        self._counts = {}

    def add(self, name, amount=1):
        self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name):
        return self._counts.get(name, 0)

    def as_dict(self):
        return dict(self._counts)

    def __repr__(self):
        return "Counter({})".format(self._counts)


class Histogram:
    """Fixed-bin histogram over ``[lo, hi)`` with overflow/underflow bins."""

    def __init__(self, lo, hi, num_bins):
        if hi <= lo:
            raise ValueError("hi must exceed lo")
        if num_bins <= 0:
            raise ValueError("num_bins must be positive")
        self.lo = lo
        self.hi = hi
        self.num_bins = num_bins
        self._width = (hi - lo) / num_bins
        self.bins = [0] * num_bins
        self.underflow = 0
        self.overflow = 0
        self.stat = RunningStat()

    def add(self, value):
        self.stat.add(value)
        if value < self.lo:
            self.underflow += 1
        elif value >= self.hi:
            self.overflow += 1
        else:
            self.bins[int((value - self.lo) / self._width)] += 1

    def percentile(self, q):
        """Approximate percentile from bin midpoints (q in [0, 100])."""
        if not 0 <= q <= 100:
            raise ValueError("q must be in [0, 100]")
        total = self.stat.count
        if total == 0:
            return None
        target = q / 100 * total
        seen = self.underflow
        if seen >= target and self.underflow:
            return self.lo
        for i, count in enumerate(self.bins):
            seen += count
            if seen >= target:
                return self.lo + (i + 0.5) * self._width
        return self.hi
