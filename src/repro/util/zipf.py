"""Zipf-distributed sampling for skewed workloads.

Table 1 of the paper shows a heavy-tailed distribution of intrusion-rule
hits (465,770 for rank 1 down to 7,277 for rank 10); file-sharing term
popularity is likewise Zipfian. This module provides an exact inverse-CDF
sampler over a finite rank set, which is all the workload generators
need.
"""

import bisect
import itertools


class ZipfSampler:
    """Sample ranks ``1..n`` with probability proportional to ``1/rank^s``."""

    def __init__(self, n, exponent, rng):
        if n <= 0:
            raise ValueError("n must be positive")
        if exponent < 0:
            raise ValueError("exponent must be non-negative")
        self.n = n
        self.exponent = exponent
        self._rng = rng
        weights = [1.0 / (rank**exponent) for rank in range(1, n + 1)]
        total = sum(weights)
        self._cdf = list(itertools.accumulate(w / total for w in weights))
        # Guard against float round-off leaving the last bucket shy of 1.0.
        self._cdf[-1] = 1.0
        self._weights = [w / total for w in weights]

    def sample(self):
        """Draw one rank in ``1..n`` (rank 1 is the most popular)."""
        return bisect.bisect_left(self._cdf, self._rng.random()) + 1

    def sample_many(self, k):
        return [self.sample() for _ in range(k)]

    def probability(self, rank):
        """Exact probability mass of ``rank``."""
        if not 1 <= rank <= self.n:
            raise ValueError("rank out of range")
        return self._weights[rank - 1]

    def expected_counts(self, total):
        """Expected hit counts per rank given ``total`` draws.

        Used to calibrate the Snort workload against Table 1's counts.
        """
        return [total * w for w in self._weights]
