"""Bloom filters, used by PIER's Bloom-join and by hybrid search.

A Bloom join ships a compact filter of one relation's join keys to the
other relation's sites so that non-matching tuples are dropped *before*
the expensive rehash -- the classic distributed-join bandwidth saver.

The implementation is a bit array backed by a single Python int (cheap,
and union is one ``|``). Hash functions are double-hashing over SHA-1,
the standard Kirsch-Mitzenmacher construction.
"""

import math

from repro.util.ids import sha1_id


class BloomFilter:
    """A fixed-size Bloom filter over arbitrary hashable items."""

    def __init__(self, num_bits, num_hashes):
        if num_bits <= 0:
            raise ValueError("num_bits must be positive")
        if num_hashes <= 0:
            raise ValueError("num_hashes must be positive")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self._bits = 0
        self._count = 0

    @classmethod
    def for_capacity(cls, capacity, false_positive_rate=0.01):
        """Size a filter for ``capacity`` items at a target FP rate."""
        capacity = max(1, capacity)
        ln2 = math.log(2)
        num_bits = max(8, int(-capacity * math.log(false_positive_rate) / (ln2 * ln2)))
        num_hashes = max(1, round((num_bits / capacity) * ln2))
        return cls(num_bits, num_hashes)

    def _positions(self, item):
        digest = sha1_id(("bloom", item))
        h1 = digest & 0xFFFFFFFFFFFFFFFF
        # The double-hashing stride must be coprime with num_bits or the
        # probes cycle through only num_bits/gcd slots (an odd stride is
        # only enough when num_bits is a power of two). Nudge the stride
        # to the next coprime value; for any geometry this terminates
        # quickly (some value in [h2, h2 + a few] is always coprime).
        h2 = ((digest >> 64) & 0xFFFFFFFFFFFFFFFF) % self.num_bits or 1
        while math.gcd(h2, self.num_bits) != 1:
            h2 += 1
        for i in range(self.num_hashes):
            yield (h1 + i * h2) % self.num_bits

    def add(self, item):
        for pos in self._positions(item):
            self._bits |= 1 << pos
        self._count += 1

    def __contains__(self, item):
        return all(self._bits >> pos & 1 for pos in self._positions(item))

    def union(self, other):
        """Merge another filter of identical geometry into this one."""
        if (self.num_bits, self.num_hashes) != (other.num_bits, other.num_hashes):
            raise ValueError("cannot union Bloom filters of different geometry")
        merged = BloomFilter(self.num_bits, self.num_hashes)
        merged._bits = self._bits | other._bits
        merged._count = self._count + other._count
        return merged

    def fill_ratio(self):
        """Fraction of bits set -- a health check for sizing."""
        return bin(self._bits).count("1") / self.num_bits

    def size_bytes(self):
        """Wire size if serialized as a packed bit array."""
        return (self.num_bits + 7) // 8

    def wire_size(self):
        """Honest byte accounting for the simulator's transport."""
        return 12 + self.size_bytes()

    def __len__(self):
        return self._count

    def __repr__(self):
        return "BloomFilter(bits={}, hashes={}, items={})".format(
            self.num_bits, self.num_hashes, self._count
        )
