"""Identifier-space arithmetic for the DHT ring.

PIER's DHTs (Chord, Bamboo) use a circular 160-bit SHA-1 identifier
space. Node ids and data keys live on the same ring; a key is stored at
its *successor* -- the first node clockwise from the key.

All functions here work on plain Python ints in ``[0, ID_SPACE)``.
Python's arbitrary-precision ints make 160-bit arithmetic exact, so we
keep the paper's full-width id space instead of truncating.
"""

import hashlib

ID_BITS = 160
ID_SPACE = 1 << ID_BITS


def sha1_id(data):
    """Hash arbitrary data onto the ring.

    Accepts ``bytes`` or ``str``; anything else is hashed via its
    ``repr`` so that heterogeneous tuple keys (ints, floats, tuples)
    still map deterministically.
    """
    if isinstance(data, bytes):
        raw = data
    elif isinstance(data, str):
        raw = data.encode("utf-8")
    else:
        raw = repr(data).encode("utf-8")
    return int.from_bytes(hashlib.sha1(raw).digest(), "big")


def node_id_for(address):
    """Derive a node's ring id from its (simulated) network address."""
    return sha1_id("node:{}".format(address))


def distance_cw(a, b):
    """Clockwise distance from ``a`` to ``b`` on the ring (0 when equal)."""
    return (b - a) % ID_SPACE


def in_interval(x, lo, hi, inclusive_hi=False):
    """True if ``x`` lies in the clockwise-open interval ``(lo, hi)``.

    Ring intervals wrap: ``in_interval(5, 250, 10)`` is true on a 256-id
    ring. When ``lo == hi`` the interval is the whole ring minus the
    endpoint (the usual Chord convention), so every ``x != lo`` is inside
    and ``x == lo`` is inside only if ``inclusive_hi``.
    """
    x %= ID_SPACE
    lo %= ID_SPACE
    hi %= ID_SPACE
    if lo == hi:
        return inclusive_hi or x != lo
    if lo < hi:
        inside = lo < x < hi
    else:
        inside = x > lo or x < hi
    if inclusive_hi and x == hi:
        return True
    return inside
