"""Wire-size accounting for simulated messages.

The simulator does not serialize objects for transport (message payloads
are passed by reference for speed), but experiments that report *bytes
moved* -- the centralized-vs-in-network aggregation bench, the Bloom-join
bench -- need a faithful size model. ``wire_size`` estimates the encoded
size of a payload the way PIER's Java serializer would: fixed-width
scalars, length-prefixed strings, recursive containers.
"""


def wire_size(value):
    """Estimated serialized size of ``value`` in bytes."""
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return 4 + len(value.encode("utf-8"))
    if isinstance(value, bytes):
        return 4 + len(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        return 4 + sum(wire_size(v) for v in value)
    if isinstance(value, dict):
        return 4 + sum(wire_size(k) + wire_size(v) for k, v in value.items())
    size_hint = getattr(value, "wire_size", None)
    if callable(size_hint):
        return size_hint()
    # Fall back to the repr; better to over-estimate than to silently
    # count an unknown object as free.
    return 4 + len(repr(value).encode("utf-8"))
