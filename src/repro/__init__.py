"""repro: a reproduction of PIER, the Internet-scale query processor.

From *Querying at Internet Scale* (Chun, Hellerstein, Huebsch, Jeffery,
Loo, Mardanbeigi, Roscoe, Rhea, Shenker, Stoica -- SIGMOD 2004 demo)
and the companion design paper *Querying the Internet with PIER*
(VLDB 2003).

Quick start::

    from repro import PierNetwork

    net = PierNetwork(nodes=32, seed=1)
    net.create_local_table("t", [("k", "INT"), ("v", "FLOAT")])
    net.insert("node0", "t", [(1, 2.5), (2, 4.0)])
    print(net.run_sql("SELECT SUM(v) AS total FROM t").rows)

See :class:`repro.core.network.PierNetwork` for the full facade, and
``examples/`` for the paper's demo scenarios (PlanetLab monitoring,
intrusion-detection top-10, file-sharing search, topology mapping).
"""

from repro.core.coordinator import EpochResult, QueryHandle
from repro.core.network import PierConfig, PierNetwork

__version__ = "1.0.0"

__all__ = ["EpochResult", "PierConfig", "PierNetwork", "QueryHandle", "__version__"]
