"""Aggregate functions with decomposable partial states.

In-network aggregation needs every aggregate in the classic
init/add/merge/final form (Gray et al.'s algebraic aggregates): nodes
accumulate local partials, the aggregation tree *merges* partials at
every hop, and only the root runs *final*. AVG therefore carries
(sum, count), never a ratio.
"""

from repro.util.errors import PlanError


class Aggregate:
    """One aggregate function in decomposable form."""

    name = "abstract"

    def init(self):
        raise NotImplementedError

    def add(self, state, value):
        raise NotImplementedError

    def merge(self, left, right):
        raise NotImplementedError

    def final(self, state):
        return state


class CountStar(Aggregate):
    name = "COUNT(*)"

    def init(self):
        return 0

    def add(self, state, value):
        return state + 1

    def merge(self, left, right):
        return left + right


class Count(Aggregate):
    """COUNT(expr): counts non-null values."""

    name = "COUNT"

    def init(self):
        return 0

    def add(self, state, value):
        return state + (0 if value is None else 1)

    def merge(self, left, right):
        return left + right


class Sum(Aggregate):
    name = "SUM"

    def init(self):
        return None  # SUM of no rows is NULL, per SQL

    def add(self, state, value):
        if value is None:
            return state
        return value if state is None else state + value

    def merge(self, left, right):
        if left is None:
            return right
        if right is None:
            return left
        return left + right


class Min(Aggregate):
    name = "MIN"

    def init(self):
        return None

    def add(self, state, value):
        if value is None:
            return state
        return value if state is None else min(state, value)

    merge = add


class Max(Aggregate):
    name = "MAX"

    def init(self):
        return None

    def add(self, state, value):
        if value is None:
            return state
        return value if state is None else max(state, value)

    merge = add


class CountDistinct(Aggregate):
    """COUNT(DISTINCT expr): partial state is the value set itself.

    Unlike the other aggregates this one is not constant-size -- the
    tree combiner merges sets, so intermediate messages carry the
    distinct values seen so far. That is exactly how PIER had to do it
    too: distinct-counting is not algebraically compressible without
    sketches, which the original also did not ship.
    """

    name = "COUNT_DISTINCT"

    def init(self):
        return frozenset()

    def add(self, state, value):
        if value is None:
            return state
        return state | {value}

    def merge(self, left, right):
        return left | right

    def final(self, state):
        return len(state)


class Avg(Aggregate):
    """AVG via a (sum, count) partial -- merge-safe, unlike a ratio."""

    name = "AVG"

    def init(self):
        return (0, 0)

    def add(self, state, value):
        if value is None:
            return state
        return (state[0] + value, state[1] + 1)

    def merge(self, left, right):
        return (left[0] + right[0], left[1] + right[1])

    def final(self, state):
        total, count = state
        return total / count if count else None


_REGISTRY = {
    "COUNT(*)": CountStar(),
    "COUNT": Count(),
    "COUNT_DISTINCT": CountDistinct(),
    "SUM": Sum(),
    "MIN": Min(),
    "MAX": Max(),
    "AVG": Avg(),
}


def aggregate_by_name(name):
    agg = _REGISTRY.get(name.upper())
    if agg is None:
        raise PlanError("unknown aggregate {!r}".format(name))
    return agg


class AggSpec:
    """One aggregate column in a GROUP BY: function + input + output name.

    ``arg`` is an expression over the input schema, or None for
    COUNT(*). These specs live inside plan params and are shared by the
    partial and final operators of the same aggregate.
    """

    def __init__(self, func_name, arg, output_name):
        self.func_name = func_name.upper()
        self.agg = aggregate_by_name(
            "COUNT(*)" if self.func_name == "COUNT" and arg is None else self.func_name
        )
        self.arg = arg
        self.output_name = output_name

    def compile_arg(self, schema):
        if self.arg is None:
            return lambda row: None
        return self.arg.compile(schema)

    def __repr__(self):
        arg = "*" if self.arg is None else self.arg.display()
        return "{}({}) AS {}".format(self.func_name, arg, self.output_name)
