"""Aggregate functions with decomposable partial states.

In-network aggregation needs every aggregate in the classic
init/add/merge/final form (Gray et al.'s algebraic aggregates): nodes
accumulate local partials, the aggregation tree *merges* partials at
every hop, and only the root runs *final*. AVG therefore carries
(sum, count), never a ratio.

Paned sliding-window aggregation adds a second axis to the protocol:
when a continuous query's window overlaps its epoch period
(``WINDOW > EVERY``), per-epoch deltas are folded into *panes* of width
``gcd(WINDOW, EVERY)`` and each epoch's answer is assembled from pane
partials instead of from raw rows. Aggregates that are *invertible*
(``invertible = True``) additionally support :meth:`Aggregate.unmerge`,
which subtracts a pane's partial back out of a running window state --
so advancing the window costs O(panes changed) merges instead of
re-merging the whole window. Non-invertible aggregates (MIN, MAX,
COUNT DISTINCT) fall back to re-merging the window's live panes, which
is still O(panes) per epoch rather than O(rows).
"""

from repro.util.errors import PlanError
from repro.util.sketches import CountMinSketch, HyperLogLog


class Aggregate:
    """One aggregate function in decomposable form.

    Subclasses implement the algebraic protocol: ``init`` produces an
    empty partial state, ``add`` folds one input value into a state,
    ``merge`` combines two states, and ``final`` turns a state into the
    answer. States must be immutable values (numbers, tuples,
    frozensets) so partials can be shipped, held, and snapshotted
    without defensive copying. Invertible aggregates set
    ``invertible = True`` and implement :meth:`unmerge`.
    """

    name = "abstract"

    #: Whether :meth:`unmerge` can subtract a previously merged state
    #: back out. Only invertible aggregates get the O(1)-per-pane
    #: sliding-window path; the rest re-merge live panes.
    invertible = False

    def init(self):
        """Return the empty partial state (the fold's identity)."""
        raise NotImplementedError

    def add(self, state, value):
        """Fold one input value into ``state``; returns the new state."""
        raise NotImplementedError

    def merge(self, left, right):
        """Combine two partial states into one."""
        raise NotImplementedError

    def unmerge(self, state, part):
        """Remove a previously merged ``part`` from ``state``.

        Only meaningful when ``invertible``; the paned window keeps the
        raw pane partial around exactly so it can be handed back here
        when the pane slides out of the window. ``unmerge(merge(s, p),
        p)`` must equal ``s`` (up to float rounding).
        """
        raise PlanError("{} is not invertible".format(self.name))

    def add_many(self, state, values):
        """Fold a column of values into ``state`` (vectorized ``add``).

        The default loops ``add`` in order, so overrides must stay
        *exactly* equal to that loop -- including float accumulation
        order -- not merely mathematically equivalent. Only counting
        aggregates (whose fold is integer addition) override it.
        """
        add = self.add
        for value in values:
            state = add(state, value)
        return state

    def final(self, state):
        """Finish a state into the user-visible value (identity here)."""
        return state


class CountStar(Aggregate):
    """COUNT(*): counts rows; the only aggregate that ignores its input."""

    name = "COUNT(*)"
    invertible = True

    def init(self):
        return 0

    def add(self, state, value):
        return state + 1

    def add_many(self, state, values):
        return state + len(values)

    def merge(self, left, right):
        return left + right

    def unmerge(self, state, part):
        return state - part


class Count(Aggregate):
    """COUNT(expr): counts non-null values."""

    name = "COUNT"
    invertible = True

    def init(self):
        return 0

    def add(self, state, value):
        return state + (0 if value is None else 1)

    def add_many(self, state, values):
        return state + sum(1 for v in values if v is not None)

    def merge(self, left, right):
        return left + right

    def unmerge(self, state, part):
        return state - part


class Sum(Aggregate):
    """SUM(expr): null-preserving sum (SUM over no rows is NULL).

    A ``None`` state means "no non-null input yet"; unmerging an
    all-null pane therefore leaves the state untouched, and a pane with
    real values can only be unmerged from a state that once absorbed it
    (so the state is never ``None`` when ``part`` is not).
    """

    name = "SUM"
    invertible = True

    def init(self):
        return None  # SUM of no rows is NULL, per SQL

    def add(self, state, value):
        if value is None:
            return state
        return value if state is None else state + value

    def merge(self, left, right):
        if left is None:
            return right
        if right is None:
            return left
        return left + right

    def unmerge(self, state, part):
        if part is None:
            return state
        return state - part


class Min(Aggregate):
    """MIN(expr): not invertible -- removing the minimum would need the
    runner-up, which a scalar state cannot carry. The paned window
    re-merges live panes instead."""

    name = "MIN"

    def init(self):
        return None

    def add(self, state, value):
        if value is None:
            return state
        return value if state is None else min(state, value)

    merge = add


class Max(Aggregate):
    """MAX(expr): see :class:`Min` -- merge-only, pane-re-merge fallback."""

    name = "MAX"

    def init(self):
        return None

    def add(self, state, value):
        if value is None:
            return state
        return value if state is None else max(state, value)

    merge = add


class CountDistinct(Aggregate):
    """COUNT(DISTINCT expr): partial state is the value set itself.

    Unlike the other aggregates this one is not constant-size -- the
    tree combiner merges sets, so intermediate messages carry the
    distinct values seen so far. That is exactly how PIER had to do it
    too: distinct-counting is not algebraically compressible without
    sketches, which the original also did not ship. Set union has no
    inverse (an element may be present in several panes), so it is not
    invertible either.
    """

    name = "COUNT_DISTINCT"

    def init(self):
        return frozenset()

    def add(self, state, value):
        if value is None:
            return state
        return state | {value}

    def merge(self, left, right):
        return left | right

    def final(self, state):
        return len(state)


class ApproxCountDistinct(Aggregate):
    """COUNT(DISTINCT expr) via HyperLogLog: constant-size partials.

    The exact :class:`CountDistinct` ships the value set itself, so
    partial states (and every in-network merge) grow with the data.
    This one folds values into a ``2 ** p``-register HLL instead:
    states are a few hundred bytes regardless of cardinality, merge is
    register-wise max (associative, commutative, idempotent), and the
    answer is within ``~1.04 / sqrt(2 ** p)`` relative standard error.
    Registers are maxima, so there is no inverse -- paned windows
    re-merge live pane partials, which stays O(panes) *constant-size*
    merges where the exact fallback re-merges whole value sets.
    """

    name = "APPROX_COUNT_DISTINCT"

    def __init__(self, precision=10):
        self._empty = HyperLogLog(precision)

    def init(self):
        return self._empty

    def add(self, state, value):
        if value is None:
            return state
        return state.add(value)

    def merge(self, left, right):
        return left.merge(right)

    def final(self, state):
        return int(round(state.estimate()))


class ApproxTopK(Aggregate):
    """Heavy hitters via Count-Min: ``k`` most frequent values + counts.

    State is ``(sketch, candidates)``: a Count-Min sketch of every
    value's frequency plus a bounded candidate set (the classic
    sketch-and-heap construction, kept at ``8 * k`` values by estimated
    count so merges stay constant-size). ``final`` returns a tuple of
    ``(value, estimated_count)`` pairs, best first. Estimates never
    under-count and over-count by at most ``epsilon * N``
    (``epsilon = e / width``) with high probability, so any value whose
    true count clears the k-th count by ``2 * epsilon * N`` is
    guaranteed to appear.

    Count-Min is *linear*, so the aggregate is invertible: unmerging a
    retiring pane subtracts its sketch counters exactly
    (``CountMinSketch.unmerge``), and candidates whose estimate drops
    to zero -- values that lived only in the retired pane -- are
    dropped before re-trimming. A stale candidate kept alive by
    hash-collision noise still obeys the one-sided error bound (its
    estimate is at most ``epsilon * N`` over its true count of zero),
    so sliding windows keep the documented APPROX_TOPK guarantees
    while paying O(panes changed) sketch work instead of re-merging
    the whole window.
    """

    name = "APPROX_TOPK"
    invertible = True

    def __init__(self, k=10, depth=4, width=256):
        self.k = k
        self._cap = 8 * k
        self._empty = CountMinSketch(depth=depth, width=width)

    def init(self):
        return (self._empty, frozenset())

    def add(self, state, value):
        if value is None:
            return state
        sketch, candidates = state
        sketch = sketch.add(value)
        return (sketch, self._trim(sketch, candidates | {value}))

    def merge(self, left, right):
        sketch = left[0].merge(right[0])
        return (sketch, self._trim(sketch, left[1] | right[1]))

    def unmerge(self, state, part):
        """Subtract a retiring pane: exact on counters, one-sided on
        candidates (mirrors the SUM/COUNT pane protocol)."""
        sketch = state[0].unmerge(part[0])
        survivors = frozenset(
            v for v in state[1] if sketch.estimate(v) > 0
        )
        return (sketch, self._trim(sketch, survivors))

    def _trim(self, sketch, candidates):
        if len(candidates) <= self._cap:
            return candidates
        ranked = sorted(candidates,
                        key=lambda v: (-sketch.estimate(v), str(v)))
        return frozenset(ranked[: self._cap])

    def final(self, state):
        sketch, candidates = state
        ranked = sorted(candidates,
                        key=lambda v: (-sketch.estimate(v), str(v)))
        return tuple((v, sketch.estimate(v)) for v in ranked[: self.k])


class Avg(Aggregate):
    """AVG via a (sum, count) partial -- merge-safe, unlike a ratio."""

    name = "AVG"
    invertible = True

    def init(self):
        return (0, 0)

    def add(self, state, value):
        if value is None:
            return state
        return (state[0] + value, state[1] + 1)

    def merge(self, left, right):
        return (left[0] + right[0], left[1] + right[1])

    def unmerge(self, state, part):
        return (state[0] - part[0], state[1] - part[1])

    def final(self, state):
        total, count = state
        return total / count if count else None


_REGISTRY = {
    "COUNT(*)": CountStar(),
    "COUNT": Count(),
    "COUNT_DISTINCT": CountDistinct(),
    "SUM": Sum(),
    "MIN": Min(),
    "MAX": Max(),
    "AVG": Avg(),
    "APPROX_COUNT_DISTINCT": ApproxCountDistinct(),
    "APPROX_TOPK": ApproxTopK(),
}


def aggregate_by_name(name):
    """Look up a shared :class:`Aggregate` instance by SQL name."""
    agg = _REGISTRY.get(name.upper())
    if agg is None:
        raise PlanError("unknown aggregate {!r}".format(name))
    return agg


#: Aggregates that accept trailing integer SQL arguments, with their
#: constructor and maximum parameter count. ``APPROX_TOPK(x, k, depth,
#: width)`` and ``APPROX_COUNT_DISTINCT(x, precision)``; omitted
#: parameters keep the constructor defaults.
_PARAMETRIC = {
    "APPROX_COUNT_DISTINCT": (ApproxCountDistinct, 1),
    "APPROX_TOPK": (ApproxTopK, 3),
}


def make_aggregate(name, params=()):
    """Instantiate an aggregate, applying SQL-level parameters.

    Without parameters this returns the shared registry singleton;
    with them it constructs a dedicated instance (parameterized
    aggregates are stateless objects holding only their geometry, so
    per-spec instances are cheap). Raises :class:`PlanError` for
    parameters on a non-parametric aggregate, too many parameters, or
    values that are not positive integers.
    """
    name = name.upper()
    if not params:
        return aggregate_by_name(name)
    entry = _PARAMETRIC.get(name)
    if entry is None:
        aggregate_by_name(name)  # surface unknown-aggregate first
        raise PlanError("{} takes no parameters".format(name))
    cls, max_params = entry
    if len(params) > max_params:
        raise PlanError(
            "{} takes at most {} parameter(s), got {}".format(
                name, max_params, len(params)
            )
        )
    for value in params:
        if isinstance(value, bool) or not isinstance(value, int) or value <= 0:
            raise PlanError(
                "{} parameters must be positive integers, got {!r}".format(
                    name, value
                )
            )
    try:
        return cls(*params)
    except ValueError as exc:
        raise PlanError("{}: {}".format(name, exc))


class AggSpec:
    """One aggregate column in a GROUP BY: function + input + output name.

    ``arg`` is an expression over the input schema, or None for
    COUNT(*). ``params`` are SQL-level integer arguments for sketch
    geometry (see :func:`make_aggregate`). These specs live inside plan
    params and are shared by the partial and final operators of the
    same aggregate.
    """

    def __init__(self, func_name, arg, output_name, params=()):
        self.func_name = func_name.upper()
        self.params = tuple(params)
        self.agg = make_aggregate(
            "COUNT(*)" if self.func_name == "COUNT" and arg is None
            else self.func_name,
            self.params,
        )
        self.arg = arg
        self.output_name = output_name

    def compile_arg(self, schema):
        """Compile ``arg`` against ``schema`` into a row -> value callable
        (a constant ``None`` extractor for COUNT(*))."""
        if self.arg is None:
            return lambda row: None
        return self.arg.compile(schema)

    def compile_arg_batch(self, schema):
        """Batch form of :meth:`compile_arg`: RowBatch -> value list."""
        if self.arg is None:
            return lambda batch: [None] * len(batch)
        return self.arg.compile_batch(schema)

    def __repr__(self):
        arg = "*" if self.arg is None else self.arg.display()
        return "{}({}) AS {}".format(self.func_name, arg, self.output_name)
