"""Runtime statistics catalog: what admission control plans against.

The schema catalog (:mod:`repro.db.catalog`) says what tables *are*;
this module tracks what they *do*: per-table arrival rates and row
sizes observed from the live append stream, plus per-query-shape group
cardinalities fed back from closed epochs. The planner's cost bounder
(:func:`repro.core.planner.bound_query_cost`) reads these to estimate
a query's per-epoch rows scanned, exchange bytes, and owner fold work
before a single row moves, and the admission policy
(:mod:`repro.core.admission`) decides from that bound.

One :class:`StatsCatalog` serves the whole testbed: it hangs off the
shared schema :class:`~repro.db.catalog.Catalog` (``catalog.stats``,
attached by ``PierNetwork``), so every engine's ``stream_append`` and
the coordinator's epoch-close feedback update the same view the
planner reads. All methods take ``now`` explicitly -- the catalog
holds no clock, which keeps it trivially unit-testable.

Rates are bucketed EWMAs: appends accumulate in a fixed-width bucket,
and each rollover folds ``count / bucket_width`` into the running rate
with weight ``alpha``. A half-full current bucket never skews the
estimate downward because it is only folded once it closes; before the
first rollover the partial bucket itself is the (best-effort)
estimate. :meth:`seed` lets tests and cold-start deployments declare
rates up front -- admission decisions are only as good as the stats,
and a fresh catalog admits everything (no rate means a zero bound).
"""


class _BucketedRate:
    """EWMA of an event rate, observed through fixed-width buckets."""

    __slots__ = ("bucket", "alpha", "rate", "_count", "_t0", "_seeded")

    def __init__(self, bucket=5.0, alpha=0.5):
        self.bucket = bucket
        self.alpha = alpha
        self.rate = 0.0  # events/sec, EWMA over closed buckets
        self._count = 0.0
        self._t0 = None
        self._seeded = False

    def seed(self, rate):
        self.rate = float(rate)
        self._seeded = True

    def note(self, n, now):
        if self._t0 is None:
            self._t0 = now
        elif now - self._t0 >= self.bucket:
            self._roll(now)
        self._count += n

    def _roll(self, now):
        # Fold every *elapsed* bucket: a long silent gap contributes
        # zero-rate buckets, so the estimate decays instead of pinning
        # at the last busy bucket's rate.
        while now - self._t0 >= self.bucket:
            observed = self._count / self.bucket
            if self._seeded or self.rate > 0.0:
                self.rate += self.alpha * (observed - self.rate)
            else:
                self.rate = observed
            self._seeded = True
            self._count = 0.0
            self._t0 += self.bucket

    def value(self, now=None):
        if now is not None and self._t0 is not None:
            if now - self._t0 >= self.bucket:
                self._roll(now)
            elif not self._seeded and now > self._t0 and self._count:
                # Cold start, mid-bucket: the partial bucket is all we
                # have; use it rather than claiming a zero rate.
                return self._count / (now - self._t0)
        return self.rate


class TableStats:
    """Observed behaviour of one table's append stream."""

    __slots__ = ("rate", "row_bytes", "rows_seen")

    def __init__(self, bucket=5.0, alpha=0.5):
        self.rate = _BucketedRate(bucket=bucket, alpha=alpha)
        self.row_bytes = 0.0  # EWMA of serialized row size
        self.rows_seen = 0

    def note_append(self, nbytes, now):
        self.rate.note(1, now)
        self.rows_seen += 1
        if self.row_bytes == 0.0:
            self.row_bytes = float(nbytes)
        else:
            self.row_bytes += 0.2 * (nbytes - self.row_bytes)


class StatsCatalog:
    """Shared arrival-rate / cardinality view for planning and admission.

    ``note_append`` is the hot-path hook (every ``stream_append`` on
    every engine lands here); ``note_group_count`` is the feedback
    loop (the coordinator reports each closed aggregate epoch's group
    count under the plan's ``stats_key``).
    """

    def __init__(self, bucket=5.0, alpha=0.5):
        self._bucket = bucket
        self._alpha = alpha
        self._tables = {}  # table name -> TableStats
        self._groups = {}  # stats key -> EWMA group cardinality

    # -- ingestion ------------------------------------------------------
    def note_append(self, table, nbytes, now):
        stats = self._tables.get(table)
        if stats is None:
            stats = self._tables[table] = TableStats(
                bucket=self._bucket, alpha=self._alpha
            )
        stats.note_append(nbytes, now)

    def note_group_count(self, stats_key, n):
        prev = self._groups.get(stats_key)
        if prev is None:
            self._groups[stats_key] = float(n)
        else:
            self._groups[stats_key] = prev + 0.5 * (n - prev)

    # -- seeding (cold start / tests) ----------------------------------
    def seed(self, table, rate=None, row_bytes=None):
        stats = self._tables.get(table)
        if stats is None:
            stats = self._tables[table] = TableStats(
                bucket=self._bucket, alpha=self._alpha
            )
        if rate is not None:
            stats.rate.seed(rate)
        if row_bytes is not None:
            stats.row_bytes = float(row_bytes)

    def seed_groups(self, stats_key, n):
        self._groups[stats_key] = float(n)

    # -- planner-facing reads ------------------------------------------
    def arrival_rate(self, table, now=None):
        """Observed appends/sec for ``table`` (0.0 when never seen)."""
        stats = self._tables.get(table)
        return stats.rate.value(now) if stats is not None else 0.0

    def avg_row_bytes(self, table, default=48.0):
        stats = self._tables.get(table)
        if stats is None or stats.row_bytes == 0.0:
            return default
        return stats.row_bytes

    def group_cardinality(self, stats_key, default=None):
        value = self._groups.get(stats_key)
        return value if value is not None else default

    def tables(self):
        return list(self._tables)

    def __repr__(self):
        return "StatsCatalog({} tables, {} group keys)".format(
            len(self._tables), len(self._groups)
        )
