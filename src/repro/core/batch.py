"""Columnar row batches: the unit flowing between hot-path operators.

Rows everywhere else in the engine are positional tuples resolved
against a :class:`repro.db.schema.Schema`. A :class:`RowBatch` is a
group of such rows carried *together*, with a dual representation:

* **rows** -- a list of positional tuples (what scans buffer, what the
  wire's row shape decodes to);
* **columns** -- one Python list per attribute (what vectorized
  operators loop over, and what the columnar wire shape serializes).

Either side is materialized lazily from the other on first access, so
a batch built from a scan's pending buffer costs nothing until a
vectorized operator asks for columns, and a column-built batch (a
vectorized Project's output) costs nothing until a row-at-a-time
consumer iterates it. Batches are *immutable by convention*: operators
never mutate a batch they received, and derived batches (``take``,
``project``) share column lists with their source where possible.

The row-dict adapter seam lives here too (``from_dicts`` /
``to_dicts``), delegating to the schema's positional adapters -- the
boundary where external dict-shaped rows enter or leave the columnar
hot path.
"""


class RowBatch:
    """A schema-tagged group of rows with lazy rows<->columns duality.

    ``schema`` is optional: mid-pipeline batches (a Project's output)
    may carry ``None`` when no consumer needs name resolution --
    operators compile their expressions against the planner's schema at
    build time, not against the batch.
    """

    __slots__ = ("schema", "_rows", "_columns")

    def __init__(self, rows=None, columns=None, schema=None):
        if rows is None and columns is None:
            raise ValueError("RowBatch needs rows or columns")
        self.schema = schema
        self._rows = rows
        self._columns = columns

    @classmethod
    def from_rows(cls, rows, schema=None):
        """Wrap a list of positional tuples (the list is taken over)."""
        return cls(rows=list(rows), schema=schema)

    @classmethod
    def from_columns(cls, columns, schema=None):
        """Wrap per-column lists (equal length; the lists are taken over)."""
        return cls(columns=list(columns), schema=schema)

    @classmethod
    def from_dicts(cls, dicts, schema):
        """Adapter in: dict-shaped rows -> positional batch via schema."""
        return cls(rows=[schema.row_from_dict(d) for d in dicts],
                   schema=schema)

    def to_dicts(self, schema=None):
        """Adapter out: positional rows -> dicts via schema."""
        schema = schema if schema is not None else self.schema
        if schema is None:
            raise ValueError("RowBatch.to_dicts needs a schema")
        return [schema.row_to_dict(row) for row in self.rows()]

    def __len__(self):
        if self._rows is not None:
            return len(self._rows)
        columns = self._columns
        return len(columns[0]) if columns else 0

    def rows(self):
        """The batch as a list of positional tuples (materialized once)."""
        if self._rows is None:
            self._rows = list(zip(*self._columns))
        return self._rows

    def iter_rows(self):
        """Iterate positional tuples (the row-at-a-time adapter)."""
        return iter(self.rows())

    def columns(self):
        """The batch as per-column lists (materialized once).

        A batch of zero rows transposes to one empty list per schema
        attribute when a schema is attached (callers indexing columns
        by position stay safe), and to no columns otherwise.
        """
        if self._columns is None:
            if self._rows:
                self._columns = [list(col) for col in zip(*self._rows)]
            elif self.schema is not None:
                self._columns = [[] for _ in self.schema.names]
            else:
                self._columns = []
        return self._columns

    def column(self, index):
        """One column as a list (shared, do not mutate)."""
        return self.columns()[index]

    def take(self, mask):
        """Rows where ``mask`` is truthy, as a new batch.

        Truthiness -- not ``is True`` -- so a predicate column holding
        ``None`` (SQL three-valued logic) filters exactly like the
        row-at-a-time ``if predicate(row)`` test. Returns ``self`` when
        everything passes (the common all-match fast path).
        """
        if self._columns is not None and self._rows is None:
            kept = None
            columns = self._columns
            n = len(columns[0]) if columns else 0
            hits = [i for i, m in enumerate(mask) if m]
            if len(hits) == n:
                return self
            kept = [[col[i] for i in hits] for col in columns]
            return RowBatch(columns=kept, schema=self.schema)
        rows = self.rows()
        kept = [row for row, m in zip(rows, mask) if m]
        if len(kept) == len(rows):
            return self
        return RowBatch(rows=kept, schema=self.schema)

    def project(self, cols):
        """A new batch of the named (or positional) columns, in order.

        ``cols`` may be attribute names (resolved through the schema)
        or integer positions. Column lists are shared with the source
        batch, not copied.
        """
        schema = self.schema
        indices = [
            c if isinstance(c, int) else schema.index_of(c) for c in cols
        ]
        out_schema = None
        if schema is not None and all(not isinstance(c, int) for c in cols):
            out_schema = schema.project(list(cols))
        columns = self.columns()
        return RowBatch(columns=[columns[i] for i in indices],
                        schema=out_schema)

    def __repr__(self):
        shape = "?" if self._rows is None and self._columns is None else (
            "{}x{}".format(len(self), len(self.columns()))
            if self._columns is not None
            else "{} rows".format(len(self))
        )
        return "RowBatch({})".format(shape)


def columnar_wire(rows):
    """Per-column lists for ``rows`` if they are wire-columnar, else None.

    The columnar wire shape only applies to uniform positional tuples
    (every row the same arity >= 1): scans' data rows and group-by
    ``(gvals, states)`` pairs both qualify. Anything ragged falls back
    to the row shape.
    """
    if not rows:
        return None
    first = rows[0]
    if not isinstance(first, tuple):
        return None
    arity = len(first)
    if arity == 0:
        return None
    for row in rows:
        if not isinstance(row, tuple) or len(row) != arity:
            return None
    return [list(col) for col in zip(*rows)]
