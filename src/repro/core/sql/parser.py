"""Recursive-descent SQL parser producing LogicalQuery objects.

Expression precedence, loosest first:
OR < AND < NOT < comparison < additive < multiplicative < unary minus.
"""

from repro.core.logical import AggCall, LogicalQuery, RecursiveSpec
from repro.core.sql.lexer import tokenize
from repro.db.expressions import (
    BinaryOp,
    ColumnRef,
    FuncCall,
    Literal,
    UnaryOp,
)
from repro.util.errors import SqlError

AGGREGATE_NAMES = {"COUNT", "SUM", "MIN", "MAX", "AVG",
                   "APPROX_COUNT_DISTINCT", "APPROX_TOPK"}


def parse_query(text, options=None):
    """Parse SQL text into a LogicalQuery (see module docstring)."""
    parser = _Parser(tokenize(text))
    query = parser.parse_statement()
    parser.expect_eof()
    if options:
        query.options.update(options)
    return query


class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    def peek(self):
        return self.tokens[self.pos]

    def advance(self):
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def at_keyword(self, *words):
        token = self.peek()
        return token.kind == "keyword" and token.value in words

    def accept_keyword(self, *words):
        if self.at_keyword(*words):
            return self.advance().value
        return None

    def expect_keyword(self, word):
        token = self.advance()
        if token.kind != "keyword" or token.value != word:
            raise SqlError(
                "expected {} but found {!r}".format(word, token.value),
                position=token.pos,
            )
        return token

    def at_symbol(self, *symbols):
        token = self.peek()
        return token.kind == "symbol" and token.value in symbols

    def accept_symbol(self, *symbols):
        if self.at_symbol(*symbols):
            return self.advance().value
        return None

    def expect_symbol(self, symbol):
        token = self.advance()
        if token.kind != "symbol" or token.value != symbol:
            raise SqlError(
                "expected {!r} but found {!r}".format(symbol, token.value),
                position=token.pos,
            )
        return token

    def expect_ident(self):
        token = self.advance()
        if token.kind != "ident":
            raise SqlError(
                "expected identifier but found {!r}".format(token.value),
                position=token.pos,
            )
        return token.value

    def expect_number(self):
        token = self.advance()
        if token.kind != "number":
            raise SqlError(
                "expected number but found {!r}".format(token.value),
                position=token.pos,
            )
        return token.value

    def expect_eof(self):
        token = self.peek()
        if token.kind != "eof":
            raise SqlError(
                "unexpected trailing input {!r}".format(token.value),
                position=token.pos,
            )

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def parse_statement(self):
        if self.accept_keyword("WITH"):
            self.expect_keyword("RECURSIVE")
            name = self.expect_ident()
            self.expect_keyword("AS")
            self.expect_symbol("(")
            base = self.parse_select()
            self.expect_keyword("UNION")
            step = self.parse_select()
            self.expect_symbol(")")
            outer = self.parse_select()
            self._parse_continuous(outer)
            outer.recursive = RecursiveSpec(name, base, step)
            return outer
        query = self.parse_select()
        self._parse_continuous(query)
        return query

    def parse_select(self):
        self.expect_keyword("SELECT")
        select_items = self._parse_select_list()
        self.expect_keyword("FROM")
        tables = self._parse_table_refs()
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expr()
        group_by = []
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by = self._parse_expr_list()
        having = None
        if self.accept_keyword("HAVING"):
            having = self.parse_expr()
        order_by = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by = self._parse_order_list()
        limit = None
        if self.accept_keyword("LIMIT"):
            limit = self.expect_number()
            if not isinstance(limit, int):
                raise SqlError("LIMIT must be an integer")
        return LogicalQuery(
            tables, select_items, where=where, group_by=group_by,
            having=having, order_by=order_by, limit=limit,
        )

    def _parse_continuous(self, query):
        if self.accept_keyword("EVERY"):
            query.every = float(self.expect_number())
            self.expect_keyword("SECONDS")
        if self.accept_keyword("WINDOW"):
            query.window = float(self.expect_number())
            self.expect_keyword("SECONDS")
        if self.accept_keyword("LIFETIME"):
            query.lifetime = float(self.expect_number())
            self.expect_keyword("SECONDS")

    # ------------------------------------------------------------------
    # Clause pieces
    # ------------------------------------------------------------------
    def _parse_select_list(self):
        items = []
        while True:
            item = self._parse_select_item(len(items))
            items.append(item)
            if not self.accept_symbol(","):
                break
        return items

    def _parse_select_item(self, index):
        token = self.peek()
        if token.kind == "symbol" and token.value == "*":
            raise SqlError(
                "bare SELECT * is not supported; name the columns "
                "(schemas are globally known, so this costs one line)",
                position=token.pos,
            )
        item = self._parse_select_expr()
        name = None
        if self.accept_keyword("AS"):
            name = self.expect_ident()
        elif self.peek().kind == "ident":
            name = self.advance().value
        if name is None:
            if isinstance(item, ColumnRef):
                name = item.name.rsplit(".", 1)[-1]
            elif isinstance(item, AggCall):
                name = item.display()
            else:
                name = "col{}".format(index)
        return (item, name)

    def _parse_select_expr(self):
        """An expression or an aggregate call at the top level."""
        token = self.peek()
        if token.kind == "ident" and token.value.upper() in AGGREGATE_NAMES:
            next_token = self.tokens[self.pos + 1]
            if next_token.kind == "symbol" and next_token.value == "(":
                func = self.advance().value.upper()
                self.expect_symbol("(")
                if self.accept_symbol("*"):
                    self.expect_symbol(")")
                    return AggCall(func, None)
                if self.accept_keyword("DISTINCT"):
                    if func != "COUNT":
                        raise SqlError(
                            "DISTINCT is only supported inside COUNT()"
                        )
                    arg = self.parse_expr()
                    self.expect_symbol(")")
                    return AggCall("COUNT_DISTINCT", arg)
                arg = self.parse_expr()
                # Trailing integer literals parameterize sketch
                # geometry: APPROX_TOPK(x, k[, depth[, width]]),
                # APPROX_COUNT_DISTINCT(x, precision). The planner
                # rejects parameters on non-parametric aggregates.
                params = []
                while self.accept_symbol(","):
                    token = self.peek()
                    value = self.expect_number()
                    if not isinstance(value, int):
                        raise SqlError(
                            "aggregate parameters must be integer literals",
                            position=token.pos,
                        )
                    params.append(value)
                self.expect_symbol(")")
                return AggCall(func, arg, tuple(params))
        return self.parse_expr()

    def _parse_table_refs(self):
        tables = []
        while True:
            name = self.expect_ident()
            alias = None
            if self.accept_keyword("AS"):
                alias = self.expect_ident()
            elif self.peek().kind == "ident":
                alias = self.advance().value
            tables.append((name, alias))
            if not self.accept_symbol(","):
                break
        return tables

    def _parse_expr_list(self):
        exprs = [self.parse_expr()]
        while self.accept_symbol(","):
            exprs.append(self.parse_expr())
        return exprs

    def _parse_order_list(self):
        items = []
        while True:
            expr = self.parse_expr()
            desc = False
            if self.accept_keyword("DESC"):
                desc = True
            else:
                self.accept_keyword("ASC")
            items.append((expr, desc))
            if not self.accept_symbol(","):
                break
        return items

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def parse_expr(self):
        return self._parse_or()

    def _parse_or(self):
        left = self._parse_and()
        while self.accept_keyword("OR"):
            left = BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self):
        left = self._parse_not()
        while self.accept_keyword("AND"):
            left = BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self):
        if self.accept_keyword("NOT"):
            return UnaryOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self):
        left = self._parse_additive()
        op = self.accept_symbol("=", "!=", "<", "<=", ">", ">=")
        if op is not None:
            return BinaryOp(op, left, self._parse_additive())
        return left

    def _parse_additive(self):
        left = self._parse_multiplicative()
        while True:
            op = self.accept_symbol("+", "-")
            if op is None:
                return left
            left = BinaryOp(op, left, self._parse_multiplicative())

    def _parse_multiplicative(self):
        left = self._parse_unary()
        while True:
            op = self.accept_symbol("*", "/", "%")
            if op is None:
                return left
            left = BinaryOp(op, left, self._parse_unary())

    def _parse_unary(self):
        if self.accept_symbol("-"):
            return UnaryOp("-", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self):
        token = self.advance()
        if token.kind == "number":
            return Literal(token.value)
        if token.kind == "string":
            return Literal(token.value)
        if token.kind == "keyword" and token.value == "TRUE":
            return Literal(True)
        if token.kind == "keyword" and token.value == "FALSE":
            return Literal(False)
        if token.kind == "keyword" and token.value == "NULL":
            return Literal(None)
        if token.kind == "symbol" and token.value == "(":
            inner = self.parse_expr()
            self.expect_symbol(")")
            return inner
        if token.kind == "ident":
            # Function call?
            if self.at_symbol("("):
                self.expect_symbol("(")
                args = []
                if not self.at_symbol(")"):
                    args = self._parse_expr_list()
                self.expect_symbol(")")
                return FuncCall(token.value, args)
            # Qualified column?
            name = token.value
            if self.accept_symbol("."):
                name = "{}.{}".format(name, self.expect_ident())
            return ColumnRef(name)
        raise SqlError(
            "unexpected token {!r}".format(token.value), position=token.pos
        )
