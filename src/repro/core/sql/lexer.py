"""Hand-rolled SQL lexer.

Produces a flat token list; the parser indexes into it. Tokens carry
their source position so errors can point at the offending character.
"""

from repro.util.errors import SqlError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
    "AS", "AND", "OR", "NOT", "ASC", "DESC", "UNION", "WITH", "RECURSIVE",
    "EVERY", "WINDOW", "LIFETIME", "SECONDS", "TRUE", "FALSE", "NULL",
    "DISTINCT",
}

SYMBOLS = ("<=", ">=", "!=", "<>", "(", ")", ",", ".", "*", "=", "<", ">",
           "+", "-", "/", "%")


class Token:
    __slots__ = ("kind", "value", "pos")

    def __init__(self, kind, value, pos):
        self.kind = kind  # "keyword" | "ident" | "number" | "string" | "symbol" | "eof"
        self.value = value
        self.pos = pos

    def __repr__(self):
        return "Token({}, {!r})".format(self.kind, self.value)


def tokenize(text):
    tokens = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and text[i:i + 2] == "--":  # line comment
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch == "'":
            j = i + 1
            parts = []
            while True:
                if j >= n:
                    raise SqlError("unterminated string literal", position=i)
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":  # escaped quote
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(text[j])
                j += 1
            tokens.append(Token("string", "".join(parts), i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # A dot not followed by a digit is a qualifier, not a decimal.
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            literal = text[i:j]
            value = float(literal) if "." in literal else int(literal)
            tokens.append(Token("number", value, i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            if word.upper() in KEYWORDS:
                tokens.append(Token("keyword", word.upper(), i))
            else:
                tokens.append(Token("ident", word, i))
            i = j
            continue
        matched = False
        for symbol in SYMBOLS:
            if text.startswith(symbol, i):
                value = "!=" if symbol == "<>" else symbol
                tokens.append(Token("symbol", value, i))
                i += len(symbol)
                matched = True
                break
        if not matched:
            raise SqlError("unexpected character {!r}".format(ch), position=i)
    tokens.append(Token("eof", None, n))
    return tokens
