"""SQL frontend.

PIER's declarative interface: a SQL subset with continuous-query
extensions. :func:`parse_query` turns text into a
:class:`~repro.core.planner.LogicalQuery`; the planner does the rest.

Supported surface::

    [WITH RECURSIVE name AS ( SELECT ... UNION SELECT ... )]
    SELECT expr [AS name], ... | aggregates (COUNT/SUM/MIN/MAX/AVG)
    FROM table [AS alias] [, table [AS alias] ...]
    [WHERE predicate]
    [GROUP BY expr, ...]
    [HAVING predicate]
    [ORDER BY expr [ASC|DESC], ...]
    [LIMIT n]
    [EVERY n SECONDS [WINDOW n SECONDS] [LIFETIME n SECONDS]]

The continuous clauses are this dialect's rendering of PIER's
continuous-query variants of SQL: EVERY sets the epoch period, WINDOW
how much stream history each epoch reads, LIFETIME how long engines
keep the query alive (soft state -- it expires unless re-announced).
"""

from repro.core.sql.parser import parse_query

__all__ = ["parse_query"]
