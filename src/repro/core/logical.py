"""The logical plan: a normalized operator DAG built before any
physical decision.

Planning happens in two explicit phases. The SQL frontend (or the
algebraic API) produces a :class:`LogicalQuery`; :func:`build_logical_plan`
resolves it against the catalog into a :class:`LogicalPlan` -- a small
DAG of :class:`LogicalOp` nodes (scan / filter / join / aggregate /
project / topk / output) whose expressions are kept in *canonical
form*. Only then does ``planner.plan_query`` lower the DAG into the
physical :class:`~repro.core.opgraph.QueryPlan`, picking join
strategies, exchange modes and flush deadlines.

Canonicalization exists so that *near-duplicate* queries -- the same
query written with different table aliases, flipped comparisons,
reordered conjuncts or different output column names -- normalize to
the *same* DAG. Each node carries a structural ``signature()`` (a
short digest over its kind, canonical parts and child signatures), and
``LogicalPlan.share_signature()`` folds the root signature together
with the epoch geometry (EVERY/WINDOW) and the semantically relevant
query options. Two standing queries with equal share signatures
compute identical per-epoch in-network state, so the engine can run
them on one shared dataflow spine and demultiplex only at result
delivery (see ``core/sharing.py``).

Canonicalization is deliberately conservative: it applies only
semantics-preserving rewrites (alias positionalization, ``a > b`` ->
``b < a``, operand ordering for ``=``/``!=``, flattening + sorting of
AND/OR conjunct lists). It does NOT reorder arithmetic (``+``/``*``
over floats is not associative) and it does not try to prove deeper
equivalences; a missed sharing opportunity costs duplicated work, a
false positive would corrupt answers.
"""

import hashlib

from repro.db.expressions import (
    BinaryOp,
    ColumnRef,
    FuncCall,
    Literal,
    UnaryOp,
    conjuncts as _conjuncts,
    equi_join_pairs,
)
from repro.util.errors import PlanError


class AggCall:
    """An aggregate in a SELECT list: ``SUM(expr)`` / ``COUNT(*)``.

    ``params`` are trailing integer arguments that parameterize sketch
    geometry, e.g. ``APPROX_TOPK(addr, 5, 4, 1024)`` (k, depth, width)
    or ``APPROX_COUNT_DISTINCT(addr, 12)`` (HLL precision). Exact
    aggregates take no parameters.
    """

    def __init__(self, func_name, arg, params=()):
        self.func_name = func_name.upper()
        self.arg = arg  # Expr or None for COUNT(*)
        self.params = tuple(params)

    def display(self):
        arg = "*" if self.arg is None else self.arg.display()
        if self.params:
            arg = ", ".join([arg] + [str(p) for p in self.params])
        return "{}({})".format(self.func_name, arg)

    def __repr__(self):
        return "AggCall({})".format(self.display())


class LogicalQuery:
    """A resolved query, independent of surface syntax."""

    def __init__(self, tables, select_items, where=None, group_by=None,
                 having=None, order_by=None, limit=None, every=None,
                 window=None, lifetime=None, options=None, recursive=None):
        self.tables = tables  # [(table_name, alias)]
        self.select_items = select_items  # [(Expr | AggCall, output_name)]
        self.where = where
        self.group_by = group_by if group_by is not None else []
        self.having = having
        self.order_by = order_by if order_by is not None else []  # [(Expr, desc)]
        self.limit = limit
        self.every = every
        self.window = window
        self.lifetime = lifetime
        self.options = options if options is not None else {}
        self.recursive = recursive  # RecursiveSpec or None


class RecursiveSpec:
    """``WITH RECURSIVE name AS (base UNION step)`` components."""

    def __init__(self, name, base, step):
        self.name = name
        self.base = base  # LogicalQuery (single table, no aggregates)
        self.step = step  # LogicalQuery (join of `name` with one table)


class LogicalOp:
    """One node of the logical DAG.

    ``parts`` are the node's canonical-form strings (predicates, join
    keys, aggregate calls ...); together with the child signatures they
    define ``signature()``. ``attrs`` carries the resolved objects the
    physical lowering needs (Expr trees, schemas, table defs) -- they
    never participate in the signature.
    """

    __slots__ = ("kind", "parts", "inputs", "attrs", "schema", "_sig")

    def __init__(self, kind, parts=(), inputs=(), attrs=None, schema=None):
        self.kind = kind
        self.parts = [str(p) for p in parts]
        self.inputs = list(inputs)
        self.attrs = attrs if attrs is not None else {}
        self.schema = schema
        self._sig = None

    def signature(self):
        if self._sig is None:
            h = hashlib.sha1()
            h.update(self.kind.encode("utf-8"))
            h.update(b"\x1f")
            h.update("\x1f".join(self.parts).encode("utf-8"))
            h.update(b"\x1e")
            h.update("\x1e".join(
                child.signature() for child in self.inputs
            ).encode("utf-8"))
            self._sig = h.hexdigest()[:16]
        return self._sig

    def __repr__(self):
        return "LogicalOp({}, parts={!r})".format(self.kind, self.parts)


class LogicalPlan:
    """The normalized DAG plus the query it came from.

    ``nodes`` is a deterministic topological order (inputs before
    consumers); ``root`` is the final ``output`` node. The physical
    lowering iterates ``nodes`` in order, so equal logical plans lower
    to op graphs with identical op ids and flush offsets on every node
    of the cluster -- a prerequisite for sharing a dataflow spine.
    """

    def __init__(self, query, nodes, root):
        self.query = query
        self.nodes = nodes
        self.root = root

    def consumers(self):
        """Map each node to the list of nodes that read it."""
        out = {}
        for node in self.nodes:
            for child in node.inputs:
                out.setdefault(child, []).append(node)
        return out

    def share_signature(self):
        """Digest identifying the *shareable body* of a standing query.

        Covers the full canonical DAG (including finishing-only parts:
        HAVING / ORDER BY / LIMIT ride in the ``output`` node -- sharing
        stays conservative) plus the epoch geometry and every query
        option except the ``shared`` knob itself. Output column names
        and LIFETIME are deliberately excluded: neither affects the
        in-network batches, and per-subscriber lifetimes are handled at
        the spine's fan-out edge.
        """
        h = hashlib.sha1()
        h.update(self.root.signature().encode("utf-8"))
        h.update("|{}|{}".format(self.query.every, self.query.window)
                 .encode("utf-8"))
        options = sorted(
            (k, v) for k, v in self.query.options.items() if k != "shared"
        )
        h.update(repr(options).encode("utf-8"))
        return h.hexdigest()[:16]

    def scan_nodes(self):
        return [n for n in self.nodes if n.kind == "scan"]

    def prefix_signature(self):
        """Digest identifying the *shareable prefix* of a standing query.

        Where :meth:`share_signature` covers the whole canonical DAG (so
        only identical bodies share), the prefix signature covers only
        the part every single-table standing query has in common: the
        scan over one stream table, plus the epoch geometry and the
        non-``shared`` query options. Queries with *different*
        predicates/groups but the same (table, EVERY, WINDOW) get the
        same prefix signature, so the engine can run one shared
        scan-stage per node and demux rows into each query's private
        tail (see ``core/sharing.py``). Returns None for plans with no
        single shareable scan (joins, recursive plans).
        """
        scans = self.scan_nodes()
        if len(scans) != 1:
            return None
        h = hashlib.sha1()
        h.update(b"prefix:")
        h.update(scans[0].signature().encode("utf-8"))
        h.update("|{}|{}".format(self.query.every, self.query.window)
                 .encode("utf-8"))
        options = sorted(
            (k, v) for k, v in self.query.options.items() if k != "shared"
        )
        h.update(repr(options).encode("utf-8"))
        return h.hexdigest()[:16]

    def prefix_chain(self):
        """Per-node signature chain from the scan upward (diagnostics).

        The chain lists, bottom-up, the signature of each node on the
        unary spine starting at the single scan; it stops at the first
        node with more than one consumer or more than one input. Used
        by tests/docs to show *where* two plans diverge.
        """
        scans = self.scan_nodes()
        if len(scans) != 1:
            return []
        consumers = self.consumers()
        chain = []
        node = scans[0]
        while node is not None:
            chain.append((node.kind, node.signature()))
            nexts = consumers.get(node, [])
            if len(nexts) != 1 or len(nexts[0].inputs) != 1:
                break
            node = nexts[0]
        return chain


# ----------------------------------------------------------------------
# Canonical expression forms
# ----------------------------------------------------------------------
class Canonicalizer:
    """Render expressions in alias-independent canonical form.

    Table qualifiers map to positional markers (``t0``, ``t1`` ... by
    FROM order), so ``SELECT s.v FROM ticks s`` and ``SELECT t.v FROM
    ticks t`` canonicalize identically. A bare column is qualified onto
    ``t0`` only in single-table queries; in joins it is left as written
    (resolving it would need schema search, and ambiguity there is a
    correctness risk -- conservatism over sharing).
    """

    def __init__(self, tables):
        self.markers = {}
        for i, (table_name, alias) in enumerate(tables):
            self.markers[alias or table_name] = "t{}".format(i)
        self.single = len(tables) == 1

    def column(self, name):
        if "." in name:
            qualifier, column = name.split(".", 1)
            marker = self.markers.get(qualifier)
            if marker is not None:
                return "{}.{}".format(marker, column)
            return name
        if self.single:
            return "t0.{}".format(name)
        return name

    def expr(self, e):
        if e is None:
            return ""
        if isinstance(e, ColumnRef):
            return self.column(e.name)
        if isinstance(e, Literal):
            return e.display()
        if isinstance(e, UnaryOp):
            return "({} {})".format(e.op, self.expr(e.operand))
        if isinstance(e, FuncCall):
            return "{}({})".format(
                e.name, ", ".join(self.expr(a) for a in e.args)
            )
        if isinstance(e, BinaryOp):
            return self._binary(e)
        return e.display()

    def _binary(self, e):
        op = e.op
        if op in ("AND", "OR"):
            terms = sorted(self.expr(t) for t in _flatten(e, op))
            return "({})".format((" {} ".format(op)).join(terms))
        left, right = e.left, e.right
        # Direction-normalize inequalities; order-normalize symmetric ops.
        if op == ">":
            op, left, right = "<", right, left
        elif op == ">=":
            op, left, right = "<=", right, left
        ls, rs = self.expr(left), self.expr(right)
        if op in ("=", "!=") and rs < ls:
            ls, rs = rs, ls
        return "({} {} {})".format(ls, op, rs)

    def agg(self, call):
        arg = "*" if call.arg is None else self.expr(call.arg)
        return "{}({}|{})".format(
            call.func_name, arg, ",".join(str(p) for p in call.params)
        )

    def order_key(self, key):
        expr, desc = key
        return "{} {}".format(self.expr(expr), "DESC" if desc else "ASC")


def _flatten(e, op):
    if isinstance(e, BinaryOp) and e.op == op:
        return _flatten(e.left, op) + _flatten(e.right, op)
    return [e]


# ----------------------------------------------------------------------
# WHERE-clause plumbing (shared with the physical planner)
# ----------------------------------------------------------------------
def split_where(where):
    return [] if where is None else _conjuncts(where)


def partition_conjuncts(conjunct_list, schema):
    """(AND of conjuncts fully resolvable in schema, the remainder)."""
    mine, rest = [], []
    for conj in conjunct_list:
        if all(schema.has_column(ref) for ref in conj.column_refs()):
            mine.append(conj)
        else:
            rest.append(conj)
    return and_all(mine), rest


def extract_join_pairs(conjunct_list, left_schema, right_schema):
    pred = and_all(conjunct_list)
    if pred is None:
        return [], []
    pairs, residual = equi_join_pairs(pred, left_schema, right_schema)
    return pairs, split_where(residual)


def join_residuals(conjunct_list, out_schema):
    """Split leftovers into (applicable at this join, still deferred)."""
    applicable, deferred = [], []
    for conj in conjunct_list:
        if all(out_schema.has_column(ref) for ref in conj.column_refs()):
            applicable.append(conj)
        else:
            deferred.append(conj)
    return applicable, deferred


def and_all(conjunct_list):
    result = None
    for conj in conjunct_list:
        result = conj if result is None else BinaryOp("AND", result, conj)
    return result


# ----------------------------------------------------------------------
# Building the DAG
# ----------------------------------------------------------------------
def build_logical_plan(lq, catalog):
    """Resolve a LogicalQuery against the catalog into a LogicalPlan.

    Performs everything that does not require a physical decision:
    name resolution, predicate pushdown, left-deep join ordering with
    equi-join key extraction, aggregate/project shape checks. Raises
    :class:`~repro.util.errors.CatalogError` for unknown tables and
    :class:`~repro.util.errors.PlanError` for shape errors (cartesian
    products, aggregates outside aggregation context, ...).
    """
    if not lq.tables:
        raise PlanError("query needs at least one table")
    canon = Canonicalizer(lq.tables)
    nodes = []

    def add(node):
        nodes.append(node)
        return node

    conjunct_list = split_where(lq.where)

    # Access path per table, with pushed-down single-table predicates.
    legs = []
    for table_name, alias in lq.tables:
        table_def = catalog.lookup(table_name)
        schema = table_def.schema.qualify(alias or table_name)
        node = add(LogicalOp(
            "scan", parts=[table_name],
            attrs={"table": table_name, "alias": alias,
                   "table_def": table_def},
            schema=schema,
        ))
        mine, conjunct_list = partition_conjuncts(conjunct_list, schema)
        if mine is not None:
            node = add(LogicalOp(
                "filter", parts=[canon.expr(mine)],
                inputs=[node], attrs={"predicate": mine}, schema=schema,
            ))
        legs.append((node, table_def))

    # Left-deep joins over the FROM order, keyed on equi-join conjuncts.
    node, _table_def = legs[0]
    for right_node, right_def in legs[1:]:
        left_schema = node.schema
        right_schema = right_node.schema
        pairs, conjunct_list = extract_join_pairs(
            conjunct_list, left_schema, right_schema
        )
        if not pairs:
            raise PlanError(
                "no equi-join predicate between {} and {} (cartesian "
                "products are not supported at Internet scale)".format(
                    left_schema.names, right_schema.names
                )
            )
        out_schema = left_schema.concat(right_schema)
        applicable, conjunct_list = join_residuals(conjunct_list, out_schema)
        residual = and_all(applicable)
        pair_parts = sorted(
            "{}={}".format(canon.column(left), canon.column(right))
            for left, right in pairs
        )
        node = add(LogicalOp(
            "join",
            parts=["&".join(pair_parts), canon.expr(residual)],
            inputs=[node, right_node],
            attrs={"pairs": pairs, "residual": residual,
                   "right_def": right_def, "left_schema": left_schema,
                   "right_schema": right_schema},
            schema=out_schema,
        ))

    # Anything left in the WHERE applies after all joins.
    residual = and_all(conjunct_list)
    if residual is not None:
        node = add(LogicalOp(
            "filter", parts=[canon.expr(residual)],
            inputs=[node], attrs={"predicate": residual}, schema=node.schema,
        ))

    # Aggregate XOR project. Group-by and aggregate lists stay
    # positional in the canonical parts: downstream (gvals, states)
    # rows are positional tuples, so column order is semantic.
    has_aggs = any(isinstance(item, AggCall)
                   for item, _name in lq.select_items)
    if has_aggs or lq.group_by:
        agg_calls = [item for item, _name in lq.select_items
                     if isinstance(item, AggCall)]
        if not agg_calls:
            raise PlanError(
                "GROUP BY without aggregates is just DISTINCT; use it"
            )
        node = add(LogicalOp(
            "aggregate",
            parts=["|".join(canon.expr(g) for g in lq.group_by),
                   "|".join(canon.agg(call) for call in agg_calls)],
            inputs=[node],
            attrs={"group_by": list(lq.group_by), "agg_calls": agg_calls},
            schema=node.schema,
        ))
    else:
        exprs = []
        for item, _name in lq.select_items:
            if isinstance(item, AggCall):
                raise PlanError("aggregate outside aggregation context")
            exprs.append(item)
        node = add(LogicalOp(
            "project",
            parts=["|".join(canon.expr(e) for e in exprs)],
            inputs=[node], attrs={"exprs": exprs}, schema=node.schema,
        ))

    if lq.order_by and lq.limit is not None and not (has_aggs or lq.group_by):
        node = add(LogicalOp(
            "topk",
            parts=["|".join(canon.order_key(k) for k in lq.order_by),
                   str(lq.limit)],
            inputs=[node], attrs={}, schema=node.schema,
        ))

    # The output node carries the finishing-only clauses so the share
    # signature covers them (conservative: queries that differ only in
    # HAVING / ORDER BY / LIMIT could share their in-network body, but
    # proving that is not worth the risk). Output *names* are excluded.
    root = add(LogicalOp(
        "output",
        parts=["|".join(canon.order_key(k) for k in lq.order_by),
               str(lq.limit),
               canon.expr(lq.having)],
        inputs=[node], attrs={}, schema=node.schema,
    ))
    return LogicalPlan(lq, nodes, root)
