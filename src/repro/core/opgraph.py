"""Operator graphs: PIER's "boxes and arrows" interface.

A :class:`QueryPlan` is a *description* -- serializable, immutable, and
identical on every node -- of a dataflow graph. The engine instantiates
it locally per epoch. Plans support trees, DAGs (an op may feed several
consumers) and, for recursive queries, cycles (a distinct op feeding an
exchange that eventually feeds it again).

Execution timing is part of the plan: PIER is a soft-state system, so
stateful operators flush on *deadlines* rather than waiting for a
distributed end-of-stream (which a 10,000-node network cannot agree
on). ``flush_offsets`` maps op ids to seconds-after-epoch-start, and
``deadline`` is when the query site stops listening. The planner spaces
offsets by network stage so a flush's output has time to traverse the
exchange that follows it.
"""

from repro.util.errors import PlanError


class OpSpec:
    """One box: an operator id, kind, parameters, and input edges.

    ``inputs`` lists upstream op ids in port order (a join's port 0 is
    its left input). Parameters are kind-specific and may hold schemas
    and compiled-later expression trees; they must never be mutated
    after the plan is built.
    """

    def __init__(self, op_id, kind, params=None, inputs=()):
        self.op_id = op_id
        self.kind = kind
        self.params = params if params is not None else {}
        self.inputs = list(inputs)

    def __repr__(self):
        return "OpSpec({!r}, {!r}, inputs={})".format(self.op_id, self.kind, self.inputs)


class QueryPlan:
    """A complete, disseminable query description."""

    def __init__(self, specs, root_id, mode="oneshot", every=None, window=None,
                 lifetime=None, flush_offsets=None, deadline=10.0,
                 finishing=None, metadata=None, standing=False,
                 epoch_overlap=1, pane=None):
        self.specs = {spec.op_id: spec for spec in specs}
        if len(self.specs) != len(specs):
            raise PlanError("duplicate op ids in plan")
        if root_id not in self.specs:
            raise PlanError("root op {!r} not in plan".format(root_id))
        if mode not in ("oneshot", "continuous", "recursive"):
            raise PlanError("unknown plan mode {!r}".format(mode))
        if mode == "continuous" and not every:
            raise PlanError("continuous plans need an epoch period")
        self.root_id = root_id
        self.mode = mode
        self.every = every  # epoch period (s) for continuous queries
        self.window = window  # how much stream history an epoch reads (s)
        self.lifetime = lifetime  # soft-state: engines stop after this (s)
        self.flush_offsets = flush_offsets if flush_offsets is not None else {}
        self.deadline = deadline  # query site closes an epoch at t0+deadline
        # Finishing runs at the query site over collected rows:
        # {"order_by": [(expr, desc)], "limit": n} -- the final global
        # sort/cut that in-network operators can only approximate.
        self.finishing = finishing if finishing is not None else {}
        self.metadata = metadata if metadata is not None else {}
        # Standing plans run one long-lived execution per node whose
        # operators roll over via the open/seal epoch lifecycle instead
        # of being torn down and rebuilt. ``epoch_overlap`` is the
        # epoch ring width N: how many epoch states a standing
        # execution keeps live at once (the planner derives it as the
        # ceiling of the worst flush horizon over the period, transfer
        # margin included; 1 means epochs never overlap). ``pane`` is
        # the pane geometry ({"width", "every", "window"} -- width in
        # seconds, the others in panes) when the plan uses paned
        # sliding-window aggregation (WINDOW > EVERY over a pane-aware
        # operator chain); the same geometry rides on the marked op
        # specs. The planner decides all three.
        if standing and mode != "continuous":
            raise PlanError("only continuous plans can be standing")
        if isinstance(epoch_overlap, bool):  # legacy two-live-epoch flag
            epoch_overlap = 2 if epoch_overlap else 1
        epoch_overlap = int(epoch_overlap)
        if epoch_overlap < 1:
            raise PlanError("epoch_overlap must be >= 1 live epoch")
        if epoch_overlap > 1 and not standing:
            raise PlanError("epoch_overlap requires a standing plan")
        self.standing = standing
        self.epoch_overlap = epoch_overlap
        self.pane = pane
        self._validate()

    def _validate(self):
        for spec in self.specs.values():
            for input_id in spec.inputs:
                if input_id not in self.specs:
                    raise PlanError(
                        "op {!r} reads unknown input {!r}".format(spec.op_id, input_id)
                    )

    def consumers_of(self, op_id):
        """Downstream edges: list of (consumer_op_id, port)."""
        out = []
        for spec in self.specs.values():
            for port, input_id in enumerate(spec.inputs):
                if input_id == op_id:
                    out.append((spec.op_id, port))
        return out

    def sources(self):
        """Ops with no inputs (scans)."""
        return [s for s in self.specs.values() if not s.inputs]

    def ops_of_kind(self, kind):
        return [s for s in self.specs.values() if s.kind == kind]

    def describe(self):
        """Human-readable plan listing (for logs and EXPLAIN-style tests)."""
        lines = []
        for op_id in sorted(self.specs):
            spec = self.specs[op_id]
            inputs = " <- {}".format(spec.inputs) if spec.inputs else ""
            flush = ""
            if op_id in self.flush_offsets:
                flush = " flush@{:.1f}s".format(self.flush_offsets[op_id])
            tag = " [standing]" if spec.params.get("standing") else ""
            if spec.params.get("paned"):
                tag += " [paned]"
            lines.append("{}: {}{}{}{}".format(
                op_id, spec.kind, tag, inputs, flush))
        standing = ""
        if self.standing:
            standing = (
                " (standing, {} live epochs)".format(self.epoch_overlap)
                if self.epoch_overlap > 1 else " (standing)"
            )
        lines.append("root: {} mode: {}{} deadline: {:.1f}s".format(
            self.root_id, self.mode, standing, self.deadline))
        return "\n".join(lines)

    def __repr__(self):
        return "QueryPlan({} ops, mode={}, root={!r})".format(
            len(self.specs), self.mode, self.root_id
        )
