"""Admission control: refuse or degrade queries whose cost bound explodes.

PIQL-style success tolerance for standing queries. Before a
LogicalQuery is planned, :class:`AdmissionPolicy` asks the planner's
cost bounder (:func:`repro.core.planner.bound_query_cost`) what the
query would cost per second against current catalog stats. Queries
within the configured budget are admitted untouched. Over-budget
queries walk a degradation ladder, cheapest honest answer first:

1. **sketch swap** -- ``COUNT(DISTINCT x)`` becomes
   ``APPROX_COUNT_DISTINCT(x)``: the per-group value set (whose wire
   size grows with distinct values) becomes a constant-size HLL with a
   documented ~1.04/sqrt(2^precision) relative error;
2. **widen EVERY** -- doubling the epoch period (up to
   ``max_every_factor``) amortizes the per-epoch group-fold and
   exchange terms; the answer stays exact, just less frequent;
3. **sample** -- scans keep only a deterministic hash-sampled fraction
   of rows (``options["sample_rate"]``, floored at
   ``min_sample_rate``), trading answer fidelity for load. Applied
   last because its error, unlike the sketch's, carries no bound.

Every applied step is recorded in the decision (and stamped into
``plan.metadata["admission"]`` by the network layer) so the answer is
*labeled* approximate -- a degraded query is never silently wrong. A
query still over budget after the full ladder raises
:class:`AdmissionError` with the offending bound, which is the
refusal the caller can surface.

The ladder mutates the LogicalQuery *before* signatures are taken, so
a degraded query's share/prefix signatures reflect what actually runs
(a sampled query never shares a spine with its unsampled twin).
"""

from repro.core.planner import bound_query_cost
from repro.util.errors import PierError


class AdmissionError(PierError):
    """The query's cost bound exceeds the budget even fully degraded."""

    def __init__(self, message, bound=None, budget=None):
        super().__init__(message)
        self.bound = bound
        self.budget = budget


class AdmissionDecision:
    """What admission did to one query."""

    __slots__ = ("admitted", "degradations", "bound", "budget")

    def __init__(self, admitted, degradations, bound, budget):
        self.admitted = admitted
        self.degradations = degradations  # [{kind, ...label fields}]
        self.bound = bound  # CostBound after degradation (or None)
        self.budget = budget

    @property
    def approximate(self):
        """True when any applied degradation changes answer values
        (widening EVERY keeps answers exact, only less frequent)."""
        return any(
            d["kind"] in ("sketch", "sample") for d in self.degradations
        )

    def as_dict(self):
        out = {
            "budget": self.budget,
            "degradations": list(self.degradations),
            "approximate": self.approximate,
        }
        if self.bound is not None:
            out["bound"] = self.bound.as_dict()
        return out


class AdmissionPolicy:
    """Budgeted admission with the sketch -> widen -> sample ladder.

    ``budget_units`` is the per-query ceiling in the cost bounder's
    scalar units/sec (None disables the policy entirely). The three
    ``allow_*`` switches gate ladder rungs; a policy with all three off
    is a pure admit-or-refuse gate.
    """

    def __init__(self, budget_units=None, allow_sketch=True,
                 allow_widen=True, allow_sample=True,
                 max_every_factor=4.0, min_sample_rate=0.05,
                 sketch_precision=None):
        self.budget_units = budget_units
        self.allow_sketch = allow_sketch
        self.allow_widen = allow_widen
        self.allow_sample = allow_sample
        self.max_every_factor = max_every_factor
        self.min_sample_rate = min_sample_rate
        self.sketch_precision = sketch_precision

    def admit(self, lq, catalog, now=None):
        """Admit ``lq`` (mutating it down the ladder when over budget).

        Returns an :class:`AdmissionDecision`; raises
        :class:`AdmissionError` when the fully degraded bound still
        exceeds the budget.
        """
        budget = self.budget_units
        bound = bound_query_cost(lq, catalog, now)
        if budget is None or bound is None:
            return AdmissionDecision(True, [], bound, budget)
        if bound.units_per_sec() <= budget:
            return AdmissionDecision(True, [], bound, budget)

        degradations = []
        if self.allow_sketch and self._swap_sketches(lq, degradations):
            bound = bound_query_cost(lq, catalog, now)
            if bound.units_per_sec() <= budget:
                return AdmissionDecision(True, degradations, bound, budget)
        if self.allow_widen:
            bound = self._widen_every(lq, catalog, now, budget, degradations)
            if bound.units_per_sec() <= budget:
                return AdmissionDecision(True, degradations, bound, budget)
        if self.allow_sample:
            bound = self._sample(lq, catalog, now, budget, degradations)
            if bound.units_per_sec() <= budget:
                return AdmissionDecision(True, degradations, bound, budget)
        raise AdmissionError(
            "query cost bound {:.1f} units/s exceeds budget {:.1f} "
            "even after degradation ({})".format(
                bound.units_per_sec(), budget,
                ", ".join(d["kind"] for d in degradations) or "none applicable",
            ),
            bound=bound, budget=budget,
        )

    # -- ladder rungs ---------------------------------------------------
    def _swap_sketches(self, lq, degradations):
        swapped = False
        for item, name in lq.select_items:
            if getattr(item, "func_name", None) == "COUNT_DISTINCT":
                item.func_name = "APPROX_COUNT_DISTINCT"
                if self.sketch_precision is not None:
                    item.params = (self.sketch_precision,)
                precision = item.params[0] if item.params else 10
                degradations.append({
                    "kind": "sketch",
                    "column": name,
                    "aggregate": "APPROX_COUNT_DISTINCT",
                    # HLL standard error; see aggregates.ApproxCountDistinct.
                    "relative_error": round(1.04 / (2 ** precision) ** 0.5, 4),
                })
                swapped = True
        return swapped

    def _widen_every(self, lq, catalog, now, budget, degradations):
        original = lq.every
        factor = 1.0
        bound = bound_query_cost(lq, catalog, now)
        while (bound.units_per_sec() > budget
               and factor * 2.0 <= self.max_every_factor + 1e-9):
            factor *= 2.0
            lq.every = original * factor
            widened = bound_query_cost(lq, catalog, now)
            if widened.units_per_sec() >= bound.units_per_sec() - 1e-9:
                # Scan-rate-bound query: widening buys nothing; undo.
                lq.every = original * (factor / 2.0)
                factor /= 2.0
                break
            bound = widened
        if factor > 1.0:
            degradations.append({
                "kind": "widen_every",
                "factor": factor,
                "every": lq.every,
            })
        return bound

    def _sample(self, lq, catalog, now, budget, degradations):
        bound = bound_query_cost(lq, catalog, now)
        over = bound.units_per_sec() / budget
        rate = max(self.min_sample_rate, min(1.0, 1.0 / over))
        # The scan-examination term is unsampled (every arriving row is
        # still hashed), so shrink the rate until the whole bound fits
        # or the floor stops us.
        while rate >= self.min_sample_rate:
            lq.options["sample_rate"] = rate
            bound = bound_query_cost(lq, catalog, now)
            if bound.units_per_sec() <= budget or rate == self.min_sample_rate:
                break
            rate = max(self.min_sample_rate, rate / 2.0)
        degradations.append({
            "kind": "sample",
            "rate": lq.options["sample_rate"],
        })
        return bound
