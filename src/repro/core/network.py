"""PierNetwork: the public facade.

One object stands up the whole reproduction: simulation clock, wide-
area latency model, Chord overlay, and a PIER engine per node. Queries
go in as SQL (or pre-built plans); results come back as
:class:`~repro.core.coordinator.EpochResult` objects.

Typical use::

    net = PierNetwork(nodes=64, seed=7)
    net.create_local_table("snort", [("rule_id", "INT"), ("hits", "INT")])
    net.insert("node3", "snort", [(1322, 17), (1444, 2)])
    result = net.run_sql(
        "SELECT rule_id, SUM(hits) AS hits FROM snort "
        "GROUP BY rule_id ORDER BY hits DESC LIMIT 10"
    )
    for row in result.rows:
        print(row)

The clock only advances inside :meth:`advance` / :meth:`run_sql`, so
callers interleave data changes, churn and queries deterministically.
"""

from repro.core.catalog import StatsCatalog
from repro.core.coordinator import Coordinator
from repro.core.engine import EngineConfig, PierEngine
from repro.core.planner import PlannerTiming, plan_query
from repro.core.sql import parse_query
from repro.db.catalog import Catalog, TableDef
from repro.db.schema import Column, Schema
from repro.db.types import type_by_name
from repro.dht.api import DhtApi
from repro.dht.bootstrap import build_chord_ring, join_chord_ring
from repro.dht.chord import ChordNode
from repro.dht.config import DhtConfig
from repro.sim.churn import ChurnConfig, ChurnProcess
from repro.sim.clock import SimClock
from repro.sim.latency import GeoLatency, RegionalLatency
from repro.sim.network import Network, NetworkConfig
from repro.sim.trace import TraceRecorder
from repro.util.errors import PierError
from repro.util.rng import SeededRng


class PierConfig:
    """Knobs for a PierNetwork testbed."""

    def __init__(self, dht=None, engine=None, timing=None, network=None,
                 bootstrap="oracle", latency_scale=0.15, loss_rate=0.0,
                 trace=False, admission=None):
        self.dht = dht if dht is not None else DhtConfig()
        self.engine = engine if engine is not None else EngineConfig()
        self.timing = timing if timing is not None else PlannerTiming()
        self.network = network if network is not None else NetworkConfig(loss_rate)
        if bootstrap not in ("oracle", "protocol"):
            raise PierError("bootstrap must be 'oracle' or 'protocol'")
        self.bootstrap = bootstrap
        self.latency_scale = latency_scale
        self.trace = trace
        # An AdmissionPolicy (core.admission), or None to admit all.
        self.admission = admission


class PierNode:
    """One simulated host: its overlay node and its query engine."""

    def __init__(self, chord, engine, coordinator):
        self.chord = chord
        self.engine = engine
        self.coordinator = coordinator
        self.address = chord.address

    @property
    def alive(self):
        return self.chord.alive


class PierNetwork:
    def __init__(self, nodes=64, seed=0, config=None, addresses=None,
                 placements=None, regions=None):
        """Build a testbed of ``nodes`` hosts (or explicit ``addresses``).

        ``placements`` optionally maps address -> (x, y) site coordinates
        in the unit square (the PlanetLab workload uses this to cluster
        hosts into continental sites); unlisted hosts are placed randomly.

        ``regions`` maps address -> region label and switches the
        testbed to :class:`RegionalLatency` (rack-scale paths inside a
        region, backbone paths between regions); it supplies the node
        set, so ``addresses``/``placements`` are ignored when given.
        """
        self.config = config if config is not None else PierConfig()
        self.rng = SeededRng(seed)
        self.clock = SimClock()
        if regions:
            self.latency = RegionalLatency(
                self.rng.fork("latency"), regions=regions
            )
            addresses = list(regions)
        else:
            self.latency = GeoLatency(
                self.rng.fork("latency"), scale=self.config.latency_scale
            )
        self.net = Network(
            self.clock, self.latency, self.rng.fork("net"), self.config.network
        )
        self.trace = TraceRecorder(self.clock, enabled=self.config.trace)
        self.catalog = Catalog()
        # Runtime stats ride on the shared schema catalog: every
        # engine's stream_append and the coordinators' epoch-close
        # feedback update the same view the planner's cost bounder and
        # the admission policy read.
        self.catalog.stats = StatsCatalog()
        self.nodes = {}
        self._churn = None

        if addresses is None:
            addresses = ["node{}".format(i) for i in range(nodes)]
        for address in addresses:
            if regions:
                pass  # region labels were assigned to the latency model
            elif placements and address in placements:
                x, y = placements[address]
                self.latency.place(address, x, y)
            else:
                self.latency.place_random(address)
            self._make_node(address)

        chord_nodes = [n.chord for n in self.nodes.values()]
        if self.config.bootstrap == "oracle":
            build_chord_ring(chord_nodes)
            self.clock.run_for(1.0)  # let first maintenance jitter settle
        else:
            join_chord_ring(chord_nodes, self.clock)

    def _make_node(self, address):
        chord = ChordNode(
            self.net, address, self.config.dht,
            self.rng.fork("chord/{}".format(address)),
            trace=self.trace if self.config.trace else None,
        )
        api = DhtApi(chord)
        engine = PierEngine(
            api, self.catalog, self.config.engine,
            self.rng.fork("engine/{}".format(address)),
        )
        coordinator = Coordinator(engine)
        node = PierNode(chord, engine, coordinator)
        self.nodes[address] = node
        return node

    # ------------------------------------------------------------------
    # Topology access
    # ------------------------------------------------------------------
    def node(self, address):
        node = self.nodes.get(address)
        if node is None:
            raise PierError("unknown node {!r}".format(address))
        return node

    def addresses(self):
        return list(self.nodes)

    def live_addresses(self):
        return [a for a, n in self.nodes.items() if n.alive]

    def any_address(self):
        return next(iter(self.nodes))

    def __len__(self):
        return len(self.nodes)

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    @property
    def now(self):
        return self.clock.now

    def advance(self, seconds):
        """Run the simulation forward by ``seconds``."""
        self.clock.run_for(seconds)

    # ------------------------------------------------------------------
    # Schema + data
    # ------------------------------------------------------------------
    def _build_schema(self, columns):
        return Schema(
            Column(name, type_by_name(t) if isinstance(t, str) else t)
            for name, t in columns
        )

    def create_local_table(self, name, columns):
        """A relation whose rows live where they are produced."""
        return self.catalog.define(
            TableDef(name, self._build_schema(columns), source="local")
        )

    def create_stream_table(self, name, columns, window):
        """A timestamped relation read through per-epoch windows."""
        return self.catalog.define(TableDef(
            name, self._build_schema(columns), source="stream", window=window,
        ))

    def create_dht_table(self, name, columns, partition_key, ttl=None):
        """A relation published into the DHT, hashed on ``partition_key``."""
        return self.catalog.define(TableDef(
            name, self._build_schema(columns), source="dht",
            partition_key=partition_key, ttl=ttl,
        ))

    def insert(self, address, table, rows):
        """Add rows to ``address``'s local fragment of a local table."""
        self.node(address).engine.local_insert(table, rows)

    def append_stream(self, address, table, row, timestamp=None):
        self.node(address).engine.stream_append(table, row, timestamp)

    def publish(self, address, table, row, ttl=None, keep_alive=False):
        """Publish a row into a DHT table from ``address``.

        ``keep_alive`` makes it maintained soft state: the publisher
        re-puts it every ttl/3, so it outlives crashes of the *storing*
        node (but not of the publisher -- there is no other copy).
        """
        return self.node(address).engine.publish(table, row, ttl, keep_alive)

    def stop_publishing(self, address, table, instance_id):
        self.node(address).engine.stop_publishing(table, instance_id)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def compile_sql(self, sql, options=None):
        """Parse, admit, and plan without running.

        When the config carries an admission policy, the logical query
        walks the degradation ladder *before* planning (so signatures
        reflect what runs) and the decision is stamped into
        ``plan.metadata["admission"]`` -- degraded answers surface as
        labeled-approximate results, and over-budget queries raise
        :class:`~repro.core.admission.AdmissionError` here, before any
        dissemination.
        """
        logical = parse_query(sql, options)
        decision = None
        policy = getattr(self.config, "admission", None)
        if policy is not None:
            decision = policy.admit(logical, self.catalog, now=self.now)
        plan = plan_query(logical, self.catalog, self.config.timing)
        if decision is not None:
            plan.metadata["admission"] = decision.as_dict()
        return plan

    def explain_sql(self, sql, options=None):
        """Human-readable physical plan (ops, edges, flush deadlines)."""
        return self.compile_sql(sql, options).describe()

    def submit_sql(self, sql, node=None, on_epoch=None, options=None):
        """Disseminate a query; returns its QueryHandle immediately.

        The caller drives the clock (``advance``) and reads
        ``handle.results`` -- the pattern for continuous queries.
        """
        plan = self.compile_sql(sql, options)
        return self.submit_plan(plan, node=node, on_epoch=on_epoch)

    def submit_plan(self, plan, node=None, on_epoch=None):
        address = node if node is not None else self.any_address()
        return self.node(address).coordinator.submit(plan, on_epoch)

    def run_sql(self, sql, node=None, options=None, extra_time=2.0):
        """Submit a one-shot query and advance time until it completes."""
        handle = self.submit_sql(sql, node=node, options=options)
        if handle.plan.mode == "continuous":
            raise PierError("use submit_sql + advance for continuous queries")
        self.advance(handle.plan.deadline + extra_time)
        result = handle.result(0)
        if result is None:
            raise PierError("query {!r} produced no result".format(handle.qid))
        return result

    def run_plan(self, plan, node=None, extra_time=2.0):
        handle = self.submit_plan(plan, node=node)
        self.advance(plan.deadline + extra_time)
        result = handle.result(0)
        if result is None:
            raise PierError("query {!r} produced no result".format(handle.qid))
        return result

    # ------------------------------------------------------------------
    # Failures and churn
    # ------------------------------------------------------------------
    def crash_node(self, address):
        node = self.node(address)
        node.engine.on_crash()
        node.chord.crash()

    def recover_node(self, address, bootstrap=None):
        node = self.node(address)
        if bootstrap is None:
            live = [a for a in self.live_addresses() if a != address]
            bootstrap = live[0] if live else None
        node.chord.recover(bootstrap)

    def partition_region(self, region):
        """Cut a region's backbone links (nodes stay alive with state)."""
        self.net.partition_region(region)

    def heal_region(self, region):
        """Reconnect a partitioned region."""
        self.net.heal_region(region)

    def region_of(self, address):
        region_of = getattr(self.latency, "region_of", None)
        return region_of(address) if region_of is not None else None

    def start_churn(self, mean_session, mean_downtime, on_leave=None,
                    on_join=None, exclude=()):
        """Begin alternating up/down sessions on every node.

        ``on_join`` hooks let applications re-install per-node state
        (workload generators) after a recovery, the way a rebooted
        PlanetLab host restarts its monitoring daemons. ``exclude``
        lists addresses kept stable -- typically the query site, which
        in the live demo was the researcher's own machine.
        """

        def leave(address):
            self.crash_node(address)
            if on_leave is not None:
                on_leave(address)

        def join(address):
            self.recover_node(address)
            if on_join is not None:
                on_join(address)

        self._churn = ChurnProcess(
            self.clock, ChurnConfig(mean_session, mean_downtime),
            self.rng.fork("churn"), leave, join,
        )
        excluded = set(exclude)
        for address in self.nodes:
            if address not in excluded:
                self._churn.manage(address)
        self._churn.start()
        return self._churn

    def stop_churn(self):
        if self._churn is not None:
            self._churn.stop()
            self._churn = None

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def message_counters(self):
        return self.net.counters.as_dict()

    def inbound_bytes(self, address):
        """Bytes delivered to one node so far (fan-in accounting)."""
        return self.net.inbound_bytes.get(address, 0)

    def reset_counters(self):
        from repro.util.stats import Counter

        self.net.counters = Counter()
