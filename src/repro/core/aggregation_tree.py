"""Hierarchical in-network aggregation via routing upcalls.

The trick (PIER inherits it from TAG-style sensor aggregation): every
partial aggregate for a group is routed toward the group's owner key,
and DHT routes to one key *converge* -- so an upcall at each hop can
hold arriving partials briefly, merge same-group states, and forward
one combined message instead of many. Bandwidth at the owner drops
from O(N) to O(fan-in of the tree), which is what makes a network-wide
SUM over 300 (or 10,000) nodes cheap.

One :class:`TreeCombiner` per node per tree-mode exchange edge. For
disposable per-epoch executions the engine registers it with the epoch
and tears it down with the epoch. Standing continuous queries register
it once under an epoch-free upcall name; payloads then carry an epoch
tag, and the combiner merges only same-epoch partials (held states are
keyed by tag) so a straggler from a finished epoch can never pollute
the next epoch's aggregate mid-route.

Paned edges (distributed sliding windows) add a *pane* tag beside the
epoch: held states are keyed by (epoch, pane, group) and forwarded
messages keep the pane, so the in-network tree merges pane partials --
one combined increment per pane per group reaches the owner -- without
ever conflating two panes' states. Paned routing also drops the
per-epoch rendezvous salt (see ``Exchange._route``): a window's panes
must accumulate at a stable owner across the epochs that share them,
so the combiner forwards under the plain routing namespace too.

Unpaned standing edges follow the exchange's stable-rendezvous
discipline when the engine's owner cache is live (``suspect_fn`` set):
forwards stay unsalted unless the sender marked the partial salted
(``payload["salted"]``) or this node's cached owner for the group is
currently suspect, in which case the forward re-salts to rendezvous
away from the dying node. Salting is *promotion-only* and sticky: a
partial that ever travelled under the epoch-salted key keeps the mark
through every re-forward. Each hop re-deciding from its own cache
would let two nodes that disagree about the owner's health bounce a
combined partial between the stable and salted keys forever -- a
routing livelock that silently holes the epoch. Without a cache the
per-epoch salt applies to every forward, matching the senders.
"""

from repro.core.exchange import epoch_route_ns, payload_rows
from repro.dht.chord import storage_key


class TreeCombiner:
    """Hold-and-merge relay for partial aggregate states."""

    def __init__(self, dht, ns, route_ns, upcall, agg_specs, hold_delay,
                 paned=False, suspect_fn=None, qsrc_fn=None, owner_fn=None,
                 regional=False):
        self.dht = dht
        self.ns = ns  # delivery namespace (dispatch tag on arrival)
        self.route_ns = route_ns  # routing namespace (must match the exchange's)
        self.upcall = upcall
        self.agg_specs = agg_specs
        self.hold_delay = hold_delay
        self.paned = paned  # pane-tagged edge: stable (unsalted) routing
        self.suspect_fn = suspect_fn  # owner-cache suspicion (stable edges)
        self.qsrc_fn = qsrc_fn  # representative qid for shared executions
        self.owner_fn = owner_fn  # learned terminal owner (hop caching)
        # Two-level regional trees: this node only ever absorbs as its
        # region's rendezvous (senders route *through* it), so its
        # forwards are already one-partial-per-region -- they go to
        # the global owner WITHOUT the per-hop intercept. Re-absorbing
        # a region's combined partial mid-backbone would chain another
        # hold delay onto every epoch's critical path for no byte win
        # that matters (there are only #regions forwards in flight).
        self.regional = regional
        # (epoch, pane, group_values) -> [merged states (list), salted]
        self._held = {}
        self._timer = None
        self.merged_in = 0  # messages absorbed (for the ablation bench)
        self.forwarded = 0
        self.hop_shortcuts = 0  # forwards that went direct to a cached owner

    def handler(self, node, route_msg, at_owner):
        """Routing intercept: absorb and merge unless we own the key.

        Batch-aware: a ``deliver_batch`` message (the batched exchange
        path, or a re-emitting upstream partial) is merged entry by
        entry, so one absorbed message can fold many partials at once.

        Absorbing *consumes* the message's dedup id: a replay of the
        same message (re-forwarded after a lost hop ack) that lands on
        this node again is dropped instead of double-merged. A message
        passed through to the owner keeps its id unconsumed -- the
        delivery layer there does the dedup.
        """
        if at_owner:
            return True  # land normally; the final group-by merges it
        if not node.accept_delivery_once(route_msg.payload.get("mid")):
            return False  # replay already folded into a held partial
        epoch = route_msg.payload.get("epoch")
        pane = route_msg.payload.get("pane")
        salted = bool(route_msg.payload.get("salted"))
        for gvals, states in payload_rows(route_msg.payload):
            self._absorb(epoch, pane, gvals, states, salted)
        self.merged_in += 1
        if self._timer is None:
            self._timer = self.dht.set_timer(self.hold_delay, self._forward)
        return False

    def _absorb(self, epoch, pane, gvals, states, salted=False):
        held = self._held.get((epoch, pane, gvals))
        if held is None:
            self._held[(epoch, pane, gvals)] = [list(states), salted]
        else:
            merged = held[0]
            for i, spec in enumerate(self.agg_specs):
                merged[i] = spec.agg.merge(merged[i], states[i])
            held[1] = held[1] or salted

    def _forward(self):
        self._timer = None
        held, self._held = self._held, {}
        for (epoch, pane, gvals), (states, salted) in held.items():
            self.forwarded += 1
            # A combined message is new traffic: it gets its own dedup
            # id (the absorbed originals' ids were consumed on absorb).
            payload = {"op": "deliver", "ns": self.ns, "rid": gvals,
                       "data": (gvals, tuple(states)),
                       "mid": self.dht.fresh_mid()}
            route_ns = self.route_ns
            if epoch is not None:
                payload["epoch"] = epoch
                if self.paned:
                    # Stable rendezvous: pane partials for a group must
                    # keep converging on one owner across epochs.
                    payload["pane"] = pane
                elif self.suspect_fn is not None:
                    # Stable unless any absorbed partial was already
                    # salted or the learned owner is suspect here, then
                    # the forward re-salts -- sticky, promotion-only,
                    # so every re-forward of the partial converges on
                    # the one salted rendezvous instead of bouncing
                    # between keys as hops disagree about the owner.
                    if salted or self.suspect_fn(self.ns, gvals):
                        route_ns = epoch_route_ns(route_ns, epoch)
                        payload["salted"] = True
                else:
                    route_ns = epoch_route_ns(route_ns, epoch)
            if self.qsrc_fn is not None:
                qsrc = self.qsrc_fn()
                if qsrc is not None:
                    payload["qsrc"] = qsrc
            key = storage_key(route_ns, gvals)
            if (self.owner_fn is not None and epoch is not None
                    and not payload.get("salted")):
                # Tree-edge hop caching: an unsalted standing forward
                # whose terminal owner is already learned goes direct
                # (one hop) instead of re-walking the O(log N) stable
                # route every epoch. Only *forwards* shortcut -- the
                # senders below still walk, so mid-route combiners
                # upstream of this node stay in the path. Unlearned
                # keys walk once with learn set; the owner's reply
                # warms this node's cache. Suspicion expires the cache
                # entry (owner_fn returns None) and the salted fallback
                # bypasses it entirely, so invalidation rides the
                # existing re-salt/suspect machinery. The cache entry
                # also records the owner's *region* and expires faster
                # when it is across the backbone (see
                # ``EngineConfig.cross_region_cache_ttl``) -- a cross-
                # region owner learned just before a partition must not
                # pin post-rejoin forwards onto the backbone.
                owner = self.owner_fn(self.ns, gvals)
                if owner is not None:
                    self.hop_shortcuts += 1
                    self.dht.route_via(owner, key, payload)
                    continue
                payload["learn"] = True
            self.dht.route(
                key, payload,
                upcall=None if self.regional else self.upcall,
            )

    def close(self):
        """Flush anything still held (epoch teardown)."""
        if self._timer is not None:
            self.dht.cancel_timer(self._timer)
            self._timer = None
        self._forward()
