"""PIER's query processor: dataflow engine + relational operators.

The public entry point is :class:`repro.core.network.PierNetwork`, which
stands up a simulated testbed (clock, latency model, Chord ring, one
PIER engine per node) and exposes SQL and algebraic query interfaces.

Layering (bottom-up):

* :mod:`opgraph` -- "boxes and arrows": serializable operator graphs.
* :mod:`dataflow` -- per-node, per-epoch push-based execution of a graph.
* :mod:`operators` -- scan, select, project, joins (symmetric-hash,
  fetch-matches, Bloom), group-by, top-k, distinct, result return.
* :mod:`exchange` -- the only operator that touches the network: rehash
  via DHT routing, direct result return, or aggregation-tree routing.
* :mod:`aggregation_tree` -- per-hop combining of partial aggregates.
* :mod:`recursion` -- cyclic dataflow with DHT-partitioned dup-elim.
* :mod:`planner` / :mod:`sql` -- SQL and algebra frontends.
* :mod:`engine` / :mod:`coordinator` -- per-node runtime and query-site
  result collection.
"""

from repro.core.network import PierNetwork, PierConfig
from repro.core.opgraph import OpSpec, QueryPlan

__all__ = ["OpSpec", "PierConfig", "PierNetwork", "QueryPlan"]
