"""Shared standing dataflows: scan hosts and subscription spines.

Two sharing mechanisms live here, both engine-owned and both keyed by
what the *logical* plan proved equal (see :mod:`repro.core.logical`):

* :class:`SharedScanRegistry` -- per-node, per-stream-table fan-out of
  the append firehose. N standing scans over the same table used to
  mean N ``fragment.on_append`` hooks and N copies of the "row arrived"
  charge; now one :class:`_ScanHost` owns the hook, charges
  ``rows_scanned`` once, and fans each ``(ts, row)`` to every
  subscriber's pending buffer. Refcounted: the host appears with the
  first subscriber and its hook is removed with the last.

* Spines -- whole-dataflow sharing for standing queries whose logical
  plans canonicalize identically (same ``share_signature``) and whose
  epochs are in phase (same ``t0 % every``). The engine runs ONE
  :class:`~repro.core.dataflow.StandingExecution` under the spine key;
  each member query is a :class:`SpineSubscriber` carrying only its
  identity (qid, origin) and its epoch *offset* on the spine's absolute
  epoch grid. The result operator fans each spine epoch's rows to every
  subscriber whose window it answers, translated to that subscriber's
  own epoch number -- the coordinator cannot tell shared from private
  answers.

Spine epochs are ABSOLUTE: the grid origin is ``phase = t0 % every``,
so epoch ``k`` always means instant ``phase + k * every`` on every node
regardless of when the plan broadcast arrived. A query submitted at
``t0`` sits at ``offset = (t0 - phase) / every`` (an exact integer by
construction) and its own epoch ``j`` is spine epoch ``offset + j``.

Soft-state discipline matches the rest of the engine: a crash wipes
hosts and spines alike (:meth:`SharedScanRegistry.reset`); standing
queries that still matter are re-adopted from their coordinator's
re-broadcast and re-form the spine from scratch.
"""


class _ScanHost:
    """One append hook on one stream fragment, fanned to N scans."""

    def __init__(self, registry, table, fragment):
        self.registry = registry
        self.table = table
        self.fragment = fragment
        self.subscribers = {}  # token -> callback(ts, row)
        self._next_token = 0
        # The host is the accounting boundary: seeding and appends are
        # charged once here, however many scans listen.
        registry.engine.note_rows_scanned(len(fragment))
        self._hook = fragment.on_append(self._on_append)

    def _on_append(self, timestamp, row):
        self.registry.engine.note_rows_scanned(1)
        for callback in list(self.subscribers.values()):
            callback(timestamp, row)

    def seed_rows(self):
        """The fragment's retained ``(ts, row)`` pairs, handed over in
        one call -- a subscribing scan seeds its whole pending buffer
        as a single batch instead of replaying history row by row."""
        return self.fragment.items()

    def subscribe(self, callback):
        token = self._next_token
        self._next_token += 1
        self.subscribers[token] = callback
        return token

    def unsubscribe(self, token):
        self.subscribers.pop(token, None)
        return not self.subscribers

    def close(self):
        if self._hook is not None:
            self.fragment.remove_append_hook(self._hook)
            self._hook = None
        self.subscribers = {}


class SharedScanRegistry:
    """Per-engine registry of shared stream-scan hosts.

    ``acquire`` returns an opaque token the scan hands back to
    ``release`` at teardown; the host (and its fragment hook) lives
    exactly as long as it has subscribers.
    """

    def __init__(self, engine):
        self.engine = engine
        self._hosts = {}  # table -> _ScanHost

    def acquire(self, table, fragment, callback):
        host = self._hosts.get(table)
        if host is not None and host.fragment is not fragment:
            # The table was dropped and re-created (tests do this
            # between scenarios): the old hook points at a dead deque.
            host.close()
            host = None
        if host is None:
            host = _ScanHost(self, table, fragment)
            self._hosts[table] = host
        return (table, host.subscribe(callback))

    def seed_rows(self, table):
        """One-batch seed hand-off from ``table``'s host (empty when no
        host exists yet -- callers acquire first)."""
        host = self._hosts.get(table)
        return host.seed_rows() if host is not None else []

    def release(self, token):
        table, sub = token
        host = self._hosts.get(table)
        if host is None:
            return
        if host.unsubscribe(sub):
            host.close()
            del self._hosts[table]

    def host_count(self, table=None):
        """Subscriber count for ``table`` (introspection / tests)."""
        if table is None:
            return len(self._hosts)
        host = self._hosts.get(table)
        return len(host.subscribers) if host is not None else 0

    def reset(self):
        for host in self._hosts.values():
            host.close()
        self._hosts = {}


class SpineSubscriber:
    """One query riding a spine: identity + epoch-grid placement."""

    __slots__ = ("qid", "origin", "offset", "last_epoch")

    def __init__(self, qid, origin, offset, last_epoch):
        self.qid = qid
        self.origin = origin
        self.offset = offset  # spine epoch k answers my epoch k - offset
        self.last_epoch = last_epoch  # my last epoch (None = unbounded)


class SpineRecord:
    """Engine-side state for one shared standing execution."""

    __slots__ = ("key", "plan", "t0", "subscribers", "execution",
                 "next_timer", "stalled", "prefix")

    def __init__(self, key, plan, t0):
        self.key = key
        self.plan = plan
        self.t0 = t0  # = phase: absolute instant of spine epoch 0
        self.subscribers = {}  # qid -> SpineSubscriber
        self.execution = None
        self.next_timer = None
        self.stalled = False
        self.prefix = None  # prefix-stage key when the scan is staged

    def rep_qid(self):
        """A live member qid for plan-pull provenance (any will do --
        all members carry byte-identical plans)."""
        for qid in self.subscribers:
            return qid
        return None

    def last_spine_epoch(self):
        """Last spine epoch any member still needs, or None if some
        member is unbounded (no LIFETIME)."""
        last = 0
        for sub in self.subscribers.values():
            if sub.last_epoch is None:
                return None
            last = max(last, sub.offset + sub.last_epoch)
        return last


class PrefixSubscriber:
    """One spine fed by a shared prefix (scan) stage.

    A stage member runs its own execution (tail operators, exchanges,
    epoch ring) -- the stage only replaces its scan. ``start_epoch`` is
    the first *stage* epoch whose rows the member consumes; a member
    whose first window needs panes the stage emitted before it joined
    gets the stage's retained pane history backfilled once
    (``needs_backfill``) so that window matches a private scan's seeded
    window exactly.
    """

    __slots__ = ("qid", "offset", "last_epoch", "start_epoch",
                 "needs_backfill")

    def __init__(self, qid, offset, last_epoch, start_epoch,
                 needs_backfill):
        self.qid = qid
        self.offset = offset  # stage epoch k feeds my epoch k - offset
        self.last_epoch = last_epoch  # my last epoch (None = unbounded)
        self.start_epoch = start_epoch  # first stage epoch I consume
        self.needs_backfill = needs_backfill


class PrefixRecord:
    """Engine-side state for one shared scan-stage execution.

    The stage runs a two-op plan (scan -> demux) on the same absolute
    epoch grid as spines (``t0`` = phase); the demux operator holds the
    subscriber map and fans each stage epoch's rows into every member
    spine's execution via ``StandingExecution.deliver_scan``. Spines
    whose logical plans *differ* (different predicates, groups, or
    output shapes) but scan the same stream table on the same epoch
    grid all ride one stage -- the fleet pays for one scan.
    """

    __slots__ = ("key", "plan", "t0", "subscribers", "execution",
                 "next_timer", "stalled")

    def __init__(self, key, plan, t0):
        self.key = key
        self.plan = plan  # the two-op stage plan, not a member plan
        self.t0 = t0  # = phase: absolute instant of stage epoch 0
        self.subscribers = {}  # qid -> PrefixSubscriber
        self.execution = None
        self.next_timer = None
        self.stalled = False

    def last_stage_epoch(self):
        """Last stage epoch any member still needs, or None if some
        member is unbounded (no LIFETIME)."""
        last = 0
        for sub in self.subscribers.values():
            if sub.last_epoch is None:
                return None
            last = max(last, sub.offset + sub.last_epoch)
        return last
