"""The query site: dissemination, collection, finishing, lifecycle.

Any node can be a query site. Submitting a query broadcasts its plan
over the overlay (and, for continuous queries, re-broadcasts it
periodically so nodes that crash and recover re-adopt it -- plans are
soft state like everything else). Result rows stream back as direct
messages tagged with the epoch they belong to; collection is keyed by
that tag, so a standing execution's long-lived result operators and the
rebuild path's per-epoch ones land in the same buckets, and rows for an
already-closed epoch are dropped. At each epoch's deadline the
coordinator applies the *finishing* step (global ORDER BY / LIMIT over
collected rows -- the one thing that cannot be fully in-network) and
hands an :class:`EpochResult` to the caller.

Two further duties support the standing path: answering ``xplan``
requests from nodes that see a standing query's rows without having its
plan (closing their adoption gap in one round-trip instead of a refresh
period), and stopping queries with a broadcast that engines tombstone
so a stale refresh cannot resurrect them.

Recursive queries additionally watch progress reports and close early
on quiescence: no node has produced a novel tuple for ``quiet_period``
seconds means the fixpoint is reached.
"""


class EpochResult:
    """What one epoch of one query produced.

    ``approximate`` labels answers the admission policy degraded
    (sketch-swapped aggregates, sampled scans): a list of the applied
    degradation records from ``plan.metadata["admission"]``, or None
    for exact answers. Degraded queries are never silently wrong --
    every result they produce carries the label.
    """

    def __init__(self, qid, epoch, t0, rows, columns, reporters, closed_at,
                 approximate=None):
        self.qid = qid
        self.epoch = epoch
        self.t0 = t0
        self.rows = rows
        self.columns = columns
        self.reporters = reporters  # addresses that contributed rows
        self.closed_at = closed_at
        self.approximate = approximate

    def dicts(self):
        if self.columns is None:
            return [dict(enumerate(row)) for row in self.rows]
        return [dict(zip(self.columns, row)) for row in self.rows]

    def __repr__(self):
        return "EpochResult({!r}, epoch={}, {} rows, {} reporters)".format(
            self.qid, self.epoch, len(self.rows), len(self.reporters)
        )


class QueryHandle:
    """The caller's view of a submitted query."""

    def __init__(self, coordinator, qid, plan, t0, on_epoch):
        self.coordinator = coordinator
        self.qid = qid
        self.plan = plan
        self.t0 = t0
        self.on_epoch = on_epoch
        self.results = {}  # epoch -> EpochResult
        self.raw = {}  # epoch -> list of rows (append-mode)
        self.raw_replace = {}  # epoch -> {node: rows} (replace-mode)
        self.reporters = {}  # epoch -> set of addresses
        self.bloom_partials = {}  # (epoch, op_id) -> {side: filter}
        self.bloom_done = -1  # epochs <= this already broadcast filters
        self.last_progress = t0
        self.finished = False

    def result(self, epoch=0):
        return self.results.get(epoch)

    def latest_result(self):
        if not self.results:
            return None
        return self.results[max(self.results)]

    def stop(self):
        self.coordinator.stop(self.qid)


class Coordinator:
    def __init__(self, engine, base_timing=None):
        self.engine = engine
        self.dht = engine.dht
        self.clock = engine.clock
        self._seq = 0
        self.active = {}  # qid -> QueryHandle
        engine.coordinator = self

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, plan, on_epoch=None):
        self._seq += 1
        qid = "{}#{}".format(self.engine.address, self._seq)
        t0 = self.clock.now
        handle = QueryHandle(self, qid, plan, t0, on_epoch)
        self.active[qid] = handle
        self._broadcast_plan(handle, refresh=0)
        if plan.mode == "continuous":
            self._schedule_close(handle, 1)
            self._schedule_refresh(handle, 1)
        else:
            self._schedule_close(handle, 0)
            if plan.mode == "recursive":
                self._schedule_quiescence_check(handle)
        if plan.metadata.get("bloom_broadcast_offset") is not None:
            self._schedule_bloom(handle, 0)
        return handle

    def _broadcast_plan(self, handle, refresh):
        self.dht.broadcast({
            "ctl": "plan",
            "token": "plan|{}|{}".format(handle.qid, refresh),
            "qid": handle.qid,
            "plan": handle.plan,
            "t0": handle.t0,
            "origin": self.engine.address,
        })

    def _schedule_refresh(self, handle, n):
        period = self.engine.config.plan_refresh_period
        plan = handle.plan
        if plan.lifetime is not None and n * period >= plan.lifetime:
            return

        def refresh():
            if handle.finished or handle.qid not in self.active:
                return
            self._broadcast_plan(handle, refresh=n)
            self._schedule_refresh(handle, n + 1)

        self.engine.set_timer(period, refresh)

    # ------------------------------------------------------------------
    # Epoch close + finishing
    # ------------------------------------------------------------------
    def _schedule_close(self, handle, epoch):
        plan = handle.plan
        t_k = handle.t0 + (epoch * plan.every if plan.mode == "continuous" else 0)
        close_at = t_k + plan.deadline
        self.engine.set_timer(
            max(0.0, close_at - self.clock.now), self._close_epoch, handle, epoch, t_k
        )

    def _close_epoch(self, handle, epoch, t_k):
        if handle.finished or handle.qid not in self.active:
            return
        rows = handle.raw.pop(epoch, [])
        for node_rows in handle.raw_replace.pop(epoch, {}).values():
            rows.extend(node_rows)
        rows = self._finish(handle.plan, rows)
        metadata = handle.plan.metadata
        if handle.plan.finishing.get("aggregate") is not None:
            # Close the cardinality feedback loop: observed group counts
            # feed the admission cost bounder's exchange/fold terms.
            stats_key = metadata.get("stats_key")
            stats = getattr(self.engine.catalog, "stats", None)
            if stats_key and stats is not None:
                stats.note_group_count(stats_key, len(rows))
        admission = metadata.get("admission")
        approximate = None
        if admission and admission.get("approximate"):
            approximate = admission.get("degradations")
        result = EpochResult(
            handle.qid, epoch, t_k, rows,
            metadata.get("columns"),
            handle.reporters.pop(epoch, set()),
            self.clock.now,
            approximate=approximate,
        )
        handle.results[epoch] = result
        if handle.on_epoch is not None:
            handle.on_epoch(result)
        plan = handle.plan
        if plan.mode == "continuous":
            next_epoch = epoch + 1
            if plan.lifetime is None or next_epoch * plan.every <= plan.lifetime:
                self._schedule_close(handle, next_epoch)
            else:
                self._finish_query(handle)
        else:
            self._finish_query(handle)

    def _finish(self, plan, rows):
        """Query-site finishing: reconcile group owners, finalize
        aggregates, HAVING, projection, and the global sort/cut that
        in-network operators cannot do."""
        finishing = plan.finishing
        aggregate = finishing.get("aggregate")
        if aggregate is not None:
            rows = self._finish_aggregate(aggregate, rows)
        order_by = finishing.get("order_by")
        if order_by:
            from repro.core.operators.topk import sort_rows

            rows = sort_rows(rows, order_by, finishing["schema"])
        limit = finishing.get("limit")
        if limit is not None:
            rows = rows[:limit]
        return list(rows)

    def _finish_aggregate(self, aggregate, rows):
        """Merge (group_values, states) rows from (possibly duplicate)
        group owners, finalize, filter, and project into SELECT order."""
        agg_specs = aggregate["agg_specs"]
        merged = {}
        for gvals, states in rows:
            held = merged.get(gvals)
            if held is None:
                merged[gvals] = list(states)
            else:
                for i, spec in enumerate(agg_specs):
                    held[i] = spec.agg.merge(held[i], states[i])
        internal_schema = aggregate["internal_schema"]
        having = aggregate["having"]
        having_fn = having.compile(internal_schema) if having is not None else None
        select_fns = [e.compile(internal_schema) for e in aggregate["select_exprs"]]
        out = []
        for gvals, states in merged.items():
            finals = tuple(
                spec.agg.final(state)
                for spec, state in zip(agg_specs, states)
            )
            internal_row = tuple(gvals) + finals
            if having_fn is not None and not having_fn(internal_row):
                continue
            out.append(tuple(fn(internal_row) for fn in select_fns))
        return out

    def _finish_query(self, handle):
        handle.finished = True
        self.active.pop(handle.qid, None)

    def stop(self, qid):
        handle = self.active.pop(qid, None)
        if handle is None:
            return
        handle.finished = True
        self.dht.broadcast({
            "ctl": "stop",
            "token": "stop|{}".format(qid),
            "qid": qid,
        })

    # ------------------------------------------------------------------
    # Inbound messages (wired through the engine)
    # ------------------------------------------------------------------
    def on_result(self, payload):
        handle = self.active.get(payload["qid"])
        if handle is None or handle.finished:
            return
        epoch = payload["epoch"]
        if epoch in handle.results:
            return  # epoch already closed; late rows are dropped
        rows = [tuple(r) for r in payload["rows"]]
        if payload.get("replace"):
            # Streaming refinement: keep only this node's latest batch.
            handle.raw_replace.setdefault(epoch, {})[payload["node"]] = rows
        else:
            handle.raw.setdefault(epoch, []).extend(rows)
        handle.reporters.setdefault(epoch, set()).add(payload["node"])

    def on_progress(self, payload):
        handle = self.active.get(payload["qid"])
        if handle is not None:
            handle.last_progress = self.clock.now

    def on_plan_request(self, payload, src):
        """A node evidence-of-query but plan-less asks for the plan.

        Standing queries pin their exchange rendezvous to epoch-free
        keys, so a recovered node that owns such a key sees rows for a
        query it does not run; replying directly closes its adoption
        gap in one round-trip instead of waiting for the next periodic
        refresh broadcast.
        """
        handle = self.active.get(payload["qid"])
        if handle is None or handle.finished:
            return
        self.dht.direct(src, {
            "op": "xplan_reply",
            "qid": handle.qid,
            "plan": handle.plan,
            "t0": handle.t0,
            "origin": self.engine.address,
        })

    def on_bloom(self, payload):
        handle = self.active.get(payload["qid"])
        if handle is None:
            return
        epoch = payload["epoch"]
        if epoch <= handle.bloom_done:
            return  # that epoch's merged filters already went out
        key = (epoch, payload["op_id"])
        merged = handle.bloom_partials.setdefault(key, {})
        side = payload["side"]
        incoming = payload["filter"]
        if side in merged:
            merged[side] = merged[side].union(incoming)
        else:
            merged[side] = incoming

    def _schedule_bloom(self, handle, epoch):
        """Arm the merge-and-broadcast step of epoch ``epoch``'s filter
        round-trip. Continuous plans re-run the round-trip every epoch
        (both execution disciplines rely on it: the standing path's
        bloom stages hold per-epoch filter namespaces, and the rebuild
        fallback instantiates fresh stages each epoch)."""
        plan = handle.plan
        if plan.mode == "continuous" and plan.lifetime is not None \
                and epoch * plan.every > plan.lifetime:
            return
        offset = plan.metadata["bloom_broadcast_offset"]
        t_k = handle.t0 + (epoch * plan.every if plan.mode == "continuous" else 0)
        self.engine.set_timer(
            max(0.0, t_k + offset - self.clock.now),
            self._broadcast_bloom, handle, epoch,
        )

    def _broadcast_bloom(self, handle, epoch):
        if handle.finished or handle.qid not in self.active:
            return
        fired = [key for key in handle.bloom_partials if key[0] == epoch]
        for key in fired:
            filters = handle.bloom_partials.pop(key)
            self.dht.broadcast({
                "ctl": "bloom",
                "token": "bloom|{}|{}|{}".format(handle.qid, epoch, key[1]),
                "qid": handle.qid,
                "epoch": epoch,
                "op_id": key[1],
                "filters": filters,
            })
        handle.bloom_done = max(handle.bloom_done, epoch)
        if handle.plan.mode == "continuous":
            self._schedule_bloom(handle, epoch + 1)

    # ------------------------------------------------------------------
    # Recursive quiescence
    # ------------------------------------------------------------------
    def _schedule_quiescence_check(self, handle):
        quiet = handle.plan.metadata.get("quiet_period", 3.0)
        min_runtime = handle.plan.metadata.get("min_runtime", 3.0)

        def check():
            if handle.finished or handle.qid not in self.active:
                return
            now = self.clock.now
            if now >= handle.t0 + min_runtime and now - handle.last_progress >= quiet:
                # Fixpoint: no novel tuples anywhere for a full quiet
                # period. Close epoch 0 early and tear the query down.
                self._close_epoch(handle, 0, handle.t0)
                self.dht.broadcast({
                    "ctl": "stop",
                    "token": "stop|{}".format(handle.qid),
                    "qid": handle.qid,
                })
                return
            self.engine.set_timer(1.0, check)

        self.engine.set_timer(min_runtime, check)

    def on_crash(self):
        """The query site died; its queries die with it (soft state)."""
        for handle in self.active.values():
            handle.finished = True
        self.active = {}
