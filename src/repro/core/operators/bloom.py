"""Bloom join support: the rehash-reducing pre-filter stage.

PIER's Bloom join (VLDB 2003): before rehashing R and S for a join,
each node summarizes its local join keys in a Bloom filter; the filters
are OR-ed together per side and redistributed; every node then rehashes
only the tuples whose keys pass the *opposite* side's filter. For
selective joins this cuts the dominant cost -- rehash bandwidth -- at
the price of two small filter round-trips.

A ``bloom_stage`` operator does both halves for one side:

1. buffer arriving rows and fold their keys into a local filter,
2. at its flush deadline, ship the filter to the query site (which
   merges and broadcasts -- the original used designated filter nodes;
   the merge point only changes a constant),
3. on the merged-filters control message, release the buffered rows
   that pass the opposite side's filter.

Continuous plans run the round-trip once per epoch. Every piece of the
exchange -- the local filter, the buffered rows, the released flag --
is per-epoch state in an :class:`~repro.core.dataflow.EpochStateRing`,
and both the outbound ``qbloom`` partial and the inbound merged-filter
control message are tagged with the epoch they belong to. A standing
execution therefore never rebuilds this operator: each ``open_epoch``
simply starts a fresh filter namespace, fed by the standing scan's
delta buffers rather than a fresh scan, and ``seal_epoch`` drops
whatever an epoch's release left behind (unreleased rows die with
their epoch, exactly as they did inside a torn-down execution).

*Paned* stages (``params["paned"]``: a standing stream leg with
``WINDOW > EVERY``) stop rebuilding even the filter. The scan emits
each row once into its pane; the stage keeps a Bloom filter partial and
a row buffer *per pane*, and each epoch's flush OR-merges the window's
pane filters -- identical bits to a filter folded from a full re-scan,
since the same keys set the same positions -- instead of re-folding the
overlap's rows. The release step replays the window's buffered rows
(every epoch re-filters them against that epoch's opposite-side merged
filter), so the join above sees exactly the rows a re-scanning stage
would have shipped.
"""

from repro.core.batch import RowBatch
from repro.core.dataflow import EpochStateRing, Operator, plan_live_epochs
from repro.core.operators import register_operator
from repro.db.window import window_pane_range
from repro.util.bloom import BloomFilter


@register_operator("bloom_stage")
class BloomStage(Operator):
    """Params: ``side`` ("left"/"right"), ``key_exprs``, ``schema``,
    ``capacity``, ``fp_rate``, ``group`` (filter-merge namespace shared
    by both sides of the join), optional ``paned`` geometry."""

    def __init__(self, ctx, spec):
        super().__init__(ctx, spec)
        schema = spec.params["schema"]
        compiled = [e.compile(schema) for e in spec.params["key_exprs"]]
        if len(compiled) == 1:
            fn = compiled[0]

            def key_fn(row):
                return (fn(row),)
        else:
            def key_fn(row):
                return tuple(f(row) for f in compiled)
        self._key_fn = key_fn
        batch_compiled = [
            e.compile_batch(schema) for e in spec.params["key_exprs"]
        ]
        if len(batch_compiled) == 1:
            bfn = batch_compiled[0]

            def batch_key_fn(batch):
                return [(v,) for v in bfn(batch)]
        else:
            def batch_key_fn(batch):
                return list(zip(*(f(batch) for f in batch_compiled)))
        self._batch_key_fn = batch_key_fn
        self.side = spec.params["side"]
        # epoch -> {"filter", "buffered", "released"}
        self._epochs = EpochStateRing(self._fresh_state)
        self._paned = (bool(spec.params.get("paned"))
                       and bool(getattr(ctx, "standing", False)))
        if self._paned:
            geometry = spec.params["paned"]
            self._panes_per_every = geometry["every"]
            self._panes_per_window = geometry["window"]
            self._current_pane = None
            self._pane_filters = {}  # pane -> BloomFilter partial
            self._pane_rows = {}  # pane -> [rows]
            # Older still-open epochs of an overlapping ring release
            # after the newest epoch's flush advanced the window: keep
            # their panes until every epoch that can read them sealed.
            overlap = plan_live_epochs(getattr(ctx, "plan", None))
            self._retain = (overlap - 1) * self._panes_per_every

    def _fresh_filter(self):
        return BloomFilter.for_capacity(
            self.spec.params.get("capacity", 1024),
            self.spec.params.get("fp_rate", 0.03),
        )

    def _fresh_state(self):
        if getattr(self, "_paned", False):
            return {"released": False}
        return {
            "filter": self._fresh_filter(),
            "buffered": [],
            "released": False,
        }

    def open_pane(self, pane):
        self._current_pane = pane

    def _window(self, epoch):
        return window_pane_range(
            epoch, self._panes_per_every, self._panes_per_window
        )

    def push(self, row, port=0):
        if self._paned:
            pane = self._current_pane
            self._pane_rows.setdefault(pane, []).append(row)
            held = self._pane_filters.get(pane)
            if held is None:
                held = self._pane_filters[pane] = self._fresh_filter()
            held.add(self._key_fn(row))
            return
        state = self._epochs.state(self._active_epoch())
        state["buffered"].append(row)
        state["filter"].add(self._key_fn(row))

    def push_batch(self, batch, port=0):
        """Vectorized buffer+fold: evaluate the join keys as whole
        columns, then extend the buffer and fold the filter in one
        pass each -- a pane (or epoch) is constant for the batch's
        duration, so its buffer and filter are looked up once instead
        of once per row. Filter bits and buffered rows are identical
        to the row-at-a-time path.
        """
        if len(batch) == 0:
            return
        rows = batch.rows()
        keys = self._batch_key_fn(batch)
        if self._paned:
            pane = self._current_pane
            self._pane_rows.setdefault(pane, []).extend(rows)
            held = self._pane_filters.get(pane)
            if held is None:
                held = self._pane_filters[pane] = self._fresh_filter()
            add = held.add
        else:
            state = self._epochs.state(self._active_epoch())
            state["buffered"].extend(rows)
            add = state["filter"].add
        for key in keys:
            add(key)

    def flush(self):
        """Ship the epoch's local filter to the query site for merging."""
        epoch = self._active_epoch()
        if self._paned:
            lo, hi = self._window(epoch)
            # Panes below every still-open epoch's window can never be
            # read again.
            cutoff = lo - self._retain
            self._pane_filters = {
                p: f for p, f in self._pane_filters.items() if p >= cutoff
            }
            self._pane_rows = {
                p: r for p, r in self._pane_rows.items() if p >= cutoff
            }
            merged = self._fresh_filter()
            for p in range(lo, hi):
                partial = self._pane_filters.get(p)
                if partial is not None:
                    merged = merged.union(partial)
            self._epochs.state(epoch)  # arm the epoch's release flag
            outgoing = merged
        else:
            outgoing = self._epochs.state(epoch)["filter"]
        self.ctx.send_to_origin({
            "op": "qbloom",
            "qid": self.ctx.query_id,
            "epoch": epoch,
            # Merged per filter *group*, shared by both sides of a join.
            "op_id": self.spec.params.get("group", self.spec.op_id),
            "side": self.side,
            "filter": outgoing,
        })

    def control(self, payload):
        """Merged filters arrived: release rows passing the opposite side.

        Delivery is scoped to the epoch the control message is tagged
        with, so under a standing execution the release lands in that
        epoch's buffer even when a newer epoch is already accumulating.
        A sealed epoch's state is gone -- its late filters are dropped,
        like the closed execution they would have hit on the rebuild
        path.
        """
        epoch = self._active_epoch()
        state = self._epochs.peek(epoch)
        if state is None or state["released"]:
            return
        state["released"] = True
        opposite = "right" if self.side == "left" else "left"
        other_filter = payload["filters"].get(opposite)
        if self._paned:
            # Replay the window's pane buffers: each epoch re-filters
            # the same retained rows against its own merged filters,
            # exactly as a re-scanning stage would have re-buffered them.
            lo, hi = self._window(epoch)
            rows = []
            for p in range(lo, hi):
                rows.extend(self._pane_rows.get(p, ()))
        else:
            rows, state["buffered"] = state["buffered"], []
        if not rows:
            return
        # Release at batch granularity: one columnar key pass over the
        # whole buffer, one membership test per row, one batch out --
        # kept rows and their order match the per-row emit exactly.
        if other_filter is None:
            kept = rows
        else:
            keys = self._batch_key_fn(RowBatch(rows=rows))
            kept = [row for row, key in zip(rows, keys)
                    if key in other_filter]
        if not kept:
            return
        if len(kept) == 1:
            self.emit(kept[0])
        else:
            self.emit_batch(RowBatch(rows=kept))

    def seal_epoch(self, k):
        # Paned buffers outlive epochs by design; window advance prunes.
        self._epochs.seal(k)

    def teardown(self):
        self._epochs.clear()
        if self._paned:
            self._pane_filters = {}
            self._pane_rows = {}
