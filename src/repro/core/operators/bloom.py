"""Bloom join support: the rehash-reducing pre-filter stage.

PIER's Bloom join (VLDB 2003): before rehashing R and S for a join,
each node summarizes its local join keys in a Bloom filter; the filters
are OR-ed together per side and redistributed; every node then rehashes
only the tuples whose keys pass the *opposite* side's filter. For
selective joins this cuts the dominant cost -- rehash bandwidth -- at
the price of two small filter round-trips.

A ``bloom_stage`` operator does both halves for one side:

1. buffer arriving rows and fold their keys into a local filter,
2. at its flush deadline, ship the filter to the query site (which
   merges and broadcasts -- the original used designated filter nodes;
   the merge point only changes a constant),
3. on the merged-filters control message, release the buffered rows
   that pass the opposite side's filter.
"""

from repro.core.dataflow import Operator
from repro.core.operators import register_operator
from repro.util.bloom import BloomFilter


@register_operator("bloom_stage")
class BloomStage(Operator):
    """Params: ``side`` ("left"/"right"), ``key_exprs``, ``schema``,
    ``capacity``, ``fp_rate``."""

    def __init__(self, ctx, spec):
        super().__init__(ctx, spec)
        schema = spec.params["schema"]
        compiled = [e.compile(schema) for e in spec.params["key_exprs"]]
        if len(compiled) == 1:
            fn = compiled[0]
            self._key_fn = lambda row: (fn(row),)
        else:
            self._key_fn = lambda row: tuple(f(row) for f in compiled)
        self.side = spec.params["side"]
        self._filter = BloomFilter.for_capacity(
            spec.params.get("capacity", 1024), spec.params.get("fp_rate", 0.03)
        )
        self._buffered = []
        self._released = False

    def push(self, row, port=0):
        self._buffered.append(row)
        self._filter.add(self._key_fn(row))

    def flush(self):
        """Ship the local filter to the query site for merging."""
        self.ctx.send_to_origin({
            "op": "qbloom",
            "qid": self.ctx.query_id,
            "epoch": self.ctx.epoch,
            # Merged per filter *group*, shared by both sides of a join.
            "op_id": self.spec.params.get("group", self.spec.op_id),
            "side": self.side,
            "filter": self._filter,
        })

    def control(self, payload):
        """Merged filters arrived: release rows passing the opposite side."""
        if self._released:
            return
        self._released = True
        opposite = "right" if self.side == "left" else "left"
        other_filter = payload["filters"].get(opposite)
        rows, self._buffered = self._buffered, []
        for row in rows:
            if other_filter is None or self._key_fn(row) in other_filter:
                self.emit(row)

    def advance_epoch(self, k, t_k):
        # Defensive only: the planner keeps bloom plans on the rebuild
        # path (the filter round-trip is wired per-epoch at the site).
        self._buffered = []
        self._released = False
        self._filter = BloomFilter.for_capacity(
            self.spec.params.get("capacity", 1024),
            self.spec.params.get("fp_rate", 0.03),
        )

    def teardown(self):
        self._buffered = []
