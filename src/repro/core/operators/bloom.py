"""Bloom join support: the rehash-reducing pre-filter stage.

PIER's Bloom join (VLDB 2003): before rehashing R and S for a join,
each node summarizes its local join keys in a Bloom filter; the filters
are OR-ed together per side and redistributed; every node then rehashes
only the tuples whose keys pass the *opposite* side's filter. For
selective joins this cuts the dominant cost -- rehash bandwidth -- at
the price of two small filter round-trips.

A ``bloom_stage`` operator does both halves for one side:

1. buffer arriving rows and fold their keys into a local filter,
2. at its flush deadline, ship the filter to the query site (which
   merges and broadcasts -- the original used designated filter nodes;
   the merge point only changes a constant),
3. on the merged-filters control message, release the buffered rows
   that pass the opposite side's filter.

Continuous plans run the round-trip once per epoch. Every piece of the
exchange -- the local filter, the buffered rows, the released flag --
is per-epoch state in an :class:`~repro.core.dataflow.EpochStateRing`,
and both the outbound ``qbloom`` partial and the inbound merged-filter
control message are tagged with the epoch they belong to. A standing
execution therefore never rebuilds this operator: each ``open_epoch``
simply starts a fresh filter namespace, fed by the standing scan's
delta buffers rather than a fresh scan, and ``seal_epoch`` drops
whatever an epoch's release left behind (unreleased rows die with
their epoch, exactly as they did inside a torn-down execution).
"""

from repro.core.dataflow import EpochStateRing, Operator
from repro.core.operators import register_operator
from repro.util.bloom import BloomFilter


@register_operator("bloom_stage")
class BloomStage(Operator):
    """Params: ``side`` ("left"/"right"), ``key_exprs``, ``schema``,
    ``capacity``, ``fp_rate``, ``group`` (filter-merge namespace shared
    by both sides of the join)."""

    def __init__(self, ctx, spec):
        super().__init__(ctx, spec)
        schema = spec.params["schema"]
        compiled = [e.compile(schema) for e in spec.params["key_exprs"]]
        if len(compiled) == 1:
            fn = compiled[0]
            self._key_fn = lambda row: (fn(row),)
        else:
            self._key_fn = lambda row: tuple(f(row) for f in compiled)
        self.side = spec.params["side"]
        # epoch -> {"filter", "buffered", "released"}
        self._epochs = EpochStateRing(self._fresh_state)

    def _fresh_state(self):
        return {
            "filter": BloomFilter.for_capacity(
                self.spec.params.get("capacity", 1024),
                self.spec.params.get("fp_rate", 0.03),
            ),
            "buffered": [],
            "released": False,
        }

    def push(self, row, port=0):
        state = self._epochs.state(self._active_epoch())
        state["buffered"].append(row)
        state["filter"].add(self._key_fn(row))

    def flush(self):
        """Ship the epoch's local filter to the query site for merging."""
        epoch = self._active_epoch()
        state = self._epochs.state(epoch)
        self.ctx.send_to_origin({
            "op": "qbloom",
            "qid": self.ctx.query_id,
            "epoch": epoch,
            # Merged per filter *group*, shared by both sides of a join.
            "op_id": self.spec.params.get("group", self.spec.op_id),
            "side": self.side,
            "filter": state["filter"],
        })

    def control(self, payload):
        """Merged filters arrived: release rows passing the opposite side.

        Delivery is scoped to the epoch the control message is tagged
        with, so under a standing execution the release lands in that
        epoch's buffer even when a newer epoch is already accumulating.
        A sealed epoch's state is gone -- its late filters are dropped,
        like the closed execution they would have hit on the rebuild
        path.
        """
        state = self._epochs.peek(self._active_epoch())
        if state is None or state["released"]:
            return
        state["released"] = True
        opposite = "right" if self.side == "left" else "left"
        other_filter = payload["filters"].get(opposite)
        rows, state["buffered"] = state["buffered"], []
        for row in rows:
            if other_filter is None or self._key_fn(row) in other_filter:
                self.emit(row)

    def seal_epoch(self, k):
        self._epochs.seal(k)

    def teardown(self):
        self._epochs.clear()
