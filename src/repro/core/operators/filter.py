"""Select (filter): drop rows failing a predicate.

Params: ``predicate`` (Expr), ``schema`` (input Schema). The predicate
compiles once per instantiation; per-row evaluation is a closure call.
SQL-style null semantics: a None predicate result filters the row out.
"""

from repro.core.dataflow import Operator
from repro.core.operators import register_operator


@register_operator("select")
class Select(Operator):
    def __init__(self, ctx, spec):
        super().__init__(ctx, spec)
        self._predicate = spec.params["predicate"].compile(spec.params["schema"])

    def push(self, row, port=0):
        if self._predicate(row):
            self.emit(row)
