"""Select (filter): drop rows failing a predicate.

Params: ``predicate`` (Expr), ``schema`` (input Schema). The predicate
compiles once per instantiation; per-row evaluation is a closure call.
SQL-style null semantics: a None predicate result filters the row out.

Batches take the vectorized path: the predicate's batch evaluator
produces one value column, and ``RowBatch.take`` keeps the truthy
positions. ``take`` tests truthiness -- not ``is True`` -- so None,
False and 0 all filter exactly as the row-at-a-time ``if`` does.
"""

from repro.core.dataflow import Operator
from repro.core.operators import register_operator


@register_operator("select")
class Select(Operator):
    def __init__(self, ctx, spec):
        super().__init__(ctx, spec)
        predicate = spec.params["predicate"]
        schema = spec.params["schema"]
        self._predicate = predicate.compile(schema)
        self._batch_predicate = predicate.compile_batch(schema)

    def push(self, row, port=0):
        if self._predicate(row):
            self.emit(row)

    def push_batch(self, batch, port=0):
        if len(batch) == 0:
            return
        kept = batch.take(self._batch_predicate(batch))
        if len(kept):
            self.emit_batch(kept)
