"""Project: evaluate a list of expressions into a new row shape.

Params: ``exprs`` (list of Expr), ``schema`` (input Schema). Output
column names are a planning-time concern; rows stay positional.
"""

from repro.core.dataflow import Operator
from repro.core.operators import register_operator


@register_operator("project")
class Project(Operator):
    def __init__(self, ctx, spec):
        super().__init__(ctx, spec)
        schema = spec.params["schema"]
        self._fns = [e.compile(schema) for e in spec.params["exprs"]]

    def push(self, row, port=0):
        self.emit(tuple(fn(row) for fn in self._fns))
