"""Project: evaluate a list of expressions into a new row shape.

Params: ``exprs`` (list of Expr), ``schema`` (input Schema). Output
column names are a planning-time concern; rows stay positional.

Batches take the vectorized path: each output expression's batch
evaluator produces one whole column, and the results are re-wrapped as
a column-built batch -- bare column references pass their input column
through by reference, so a pure reorder/narrowing projection copies
nothing.
"""

from repro.core.batch import RowBatch
from repro.core.dataflow import Operator
from repro.core.operators import register_operator


@register_operator("project")
class Project(Operator):
    def __init__(self, ctx, spec):
        super().__init__(ctx, spec)
        schema = spec.params["schema"]
        exprs = spec.params["exprs"]
        self._fns = [e.compile(schema) for e in exprs]
        self._batch_fns = [e.compile_batch(schema) for e in exprs]

    def push(self, row, port=0):
        self.emit(tuple(fn(row) for fn in self._fns))

    def push_batch(self, batch, port=0):
        if len(batch) == 0:
            return
        self.emit_batch(
            RowBatch(columns=[fn(batch) for fn in self._batch_fns])
        )
