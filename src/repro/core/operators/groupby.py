"""Group-by aggregation in two network phases.

``partial`` instances run where the data lives: they fold raw rows into
per-group aggregate states and, at their flush deadline, emit compact
``(group_values, states)`` pairs -- these are what the exchange ships
(and what the aggregation tree merges per hop). ``final`` instances run
at each group's DHT owner: they merge arriving partials and emit
finished rows (group columns then aggregate results) at their own
deadline.

A node with zero matching rows emits nothing, so global aggregates
naturally report over the *responding* nodes only -- the semantics
Figure 1 of the paper plots.

Params (partial): ``group_exprs``, ``agg_specs``, ``schema``.
Params (final): ``agg_specs``.
"""

from repro.core.dataflow import Operator
from repro.core.operators import register_operator


@register_operator("groupby_partial")
class GroupByPartial(Operator):
    def __init__(self, ctx, spec):
        super().__init__(ctx, spec)
        schema = spec.params["schema"]
        self._group_fns = [e.compile(schema) for e in spec.params["group_exprs"]]
        self._agg_specs = spec.params["agg_specs"]
        self._arg_fns = [a.compile_arg(schema) for a in self._agg_specs]
        self._groups = {}

    def push(self, row, port=0):
        gvals = tuple(fn(row) for fn in self._group_fns)
        states = self._groups.get(gvals)
        if states is None:
            states = [a.agg.init() for a in self._agg_specs]
            self._groups[gvals] = states
        for i, spec in enumerate(self._agg_specs):
            states[i] = spec.agg.add(states[i], self._arg_fns[i](row))

    def flush(self):
        for gvals, states in self._groups.items():
            self.emit((gvals, tuple(states)))
        self._groups = {}

    def advance_epoch(self, k, t_k):
        # Post-flush stragglers die with their epoch, exactly as they
        # did inside a torn-down execution.
        self._groups = {}


@register_operator("groupby_final")
class GroupByFinal(Operator):
    """Merges partial states at each group's owner.

    After its first flush the operator keeps its state and *re-emits*
    the updated full group set when stragglers arrive (partials delayed
    by failed hops) -- PIER's streaming refinement. The downstream
    result operator runs in replace mode, so the query site keeps each
    node's latest contribution rather than double-counting.
    """

    def __init__(self, ctx, spec):
        super().__init__(ctx, spec)
        self._agg_specs = spec.params["agg_specs"]
        self._groups = {}
        self._flushed = False
        self._reflush_timer = None

    def push(self, row, port=0):
        gvals, states = row
        held = self._groups.get(gvals)
        if held is None:
            self._groups[gvals] = list(states)
        else:
            for i, spec in enumerate(self._agg_specs):
                held[i] = spec.agg.merge(held[i], states[i])
        if self._flushed and self._reflush_timer is None:
            self._reflush_timer = self.ctx.dht.set_timer(0.4, self.flush)

    def flush(self):
        if self._reflush_timer is not None:
            self.ctx.dht.cancel_timer(self._reflush_timer)
            self._reflush_timer = None
        self._flushed = True
        self.reset_batch()
        for gvals, states in self._groups.items():
            # Ship mergeable *states*, not finalized values: during ring
            # healing two nodes can both act as a group's owner, and the
            # query site can only reconcile them if states stay algebraic.
            self.emit((tuple(gvals), tuple(states)))

    def advance_epoch(self, k, t_k):
        # A pending refinement reflush must not leak last epoch's
        # groups into the new epoch's result stream.
        if self._reflush_timer is not None:
            self.ctx.dht.cancel_timer(self._reflush_timer)
            self._reflush_timer = None
        self._groups = {}
        self._flushed = False

    def teardown(self):
        if self._reflush_timer is not None:
            self.ctx.dht.cancel_timer(self._reflush_timer)
            self._reflush_timer = None
        self._groups = {}
