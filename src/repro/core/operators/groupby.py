"""Group-by aggregation in two network phases.

``partial`` instances run where the data lives: they fold raw rows into
per-group aggregate states and, at their flush deadline, emit compact
``(group_values, states)`` pairs -- these are what the exchange ships
(and what the aggregation tree merges per hop). ``final`` instances run
at each group's DHT owner: they merge arriving partials and emit
finished rows (group columns then aggregate results) at their own
deadline.

A node with zero matching rows emits nothing, so global aggregates
naturally report over the *responding* nodes only -- the semantics
Figure 1 of the paper plots.

Both operators key their held state by ``ctx.active_epoch`` (one
``EpochStateRing`` entry per live epoch), so an overlapping-epoch
standing execution can run every live epoch's aggregation concurrently
through one instance.

*Paned* plans (``params["paned"]``, standing plans with
``WINDOW > EVERY``) go further. Rows arrive bucketed by pane (the scan
sends ``open_pane`` markers), partials accumulate per pane, and each
epoch's answer is assembled from pane partials instead of re-folding
the overlap's rows. Two disciplines share that machinery
(:class:`PaneWindow`):

* *node-local* (``paned_exchange = False`` ablation, and top-k plans):
  the partial assembles each epoch's window itself and ships full
  window states, exactly as before panes crossed the network;
* *distributed* (``params["paned_ship"] == "delta"``, the default for
  grouped aggregation): the partial ships each pane's **increment**
  exactly once -- announced downstream with ``announce_pane`` so the
  pane-tagged exchange stamps it onto the batch -- and the *final*
  holds the window's pane partials at the group's owner, assembling
  every epoch's window there. The overlap therefore never crosses the
  wire again: per epoch only the panes that actually grew travel, and
  the final folds O(changed panes) state rows instead of every group's
  full window state from every node.

Params (partial): ``group_exprs``, ``agg_specs``, ``schema``, optional
``paned`` geometry (``{"width", "every", "window"}``) and
``paned_ship``. Params (final): ``agg_specs``, optional ``paned``.
"""

from repro.core.dataflow import EpochStateRing, Operator, plan_live_epochs
from repro.core.operators import register_operator
from repro.db.window import window_pane_range


class PaneWindow:
    """Per-pane partial states plus per-epoch window assembly.

    The one pane store both paned group-by shapes share: a local paned
    partial folds raw rows into pane states; a paned final merges pane
    *increments* arriving over the exchange. Either way
    :meth:`assemble` produces an epoch's window from its panes:

    * when every aggregate is invertible, one running state per group
      is slid -- ``merge`` the panes entering the window, ``unmerge``
      the panes leaving -- so advancing costs O(panes changed);
    * otherwise the window's live panes are re-merged, still O(panes)
      per epoch, never O(rows).

    Versions detect a pane that grew *after* it was merged into the
    running state (a boundary-straggler row, or a late increment): the
    running state is then stale and is rebuilt from the raw panes.

    ``retain_panes`` keeps that many pane ranges behind the newest
    window's low edge: under an overlapping-epoch ring an *older*
    still-open epoch can reflush (streaming refinement) after the
    newest epoch already advanced the window, and its re-assembly --
    served statelessly by re-merging, leaving the running state pinned
    to the newest window -- needs those panes to still exist.
    """

    def __init__(self, agg_specs, retain_panes=0):
        self._specs = agg_specs
        self._invertible = all(s.agg.invertible for s in agg_specs)
        self._retain = retain_panes
        self._panes = {}  # pane -> {gvals: [states]}
        self._versions = {}  # pane -> fold count
        self._window = {}  # gvals -> running [states] (invertible only)
        self._window_panes = set()
        self._window_refs = {}  # gvals -> live pane count
        self._merged_versions = {}  # pane -> version when merged
        self._hi = None  # newest assembled window's high edge

    def entry(self, pane, gvals):
        """The mutable state list for (pane, group), created on first
        fold; every call bumps the pane's version."""
        self._versions[pane] = self._versions.get(pane, 0) + 1
        store = self._panes.setdefault(pane, {})
        states = store.get(gvals)
        if states is None:
            states = store[gvals] = [s.agg.init() for s in self._specs]
        return states

    def assemble(self, lo, hi):
        """``(gvals, states)`` pairs for the window ``[lo, hi)``."""
        if self._hi is not None and hi < self._hi:
            # An older still-open epoch re-assembling after the newest
            # advanced: serve it statelessly, touch nothing.
            return self._remerge(lo, hi)
        self._hi = hi
        if not self._invertible:
            self._prune(lo)
            return self._remerge(lo, hi)
        if any(self._versions.get(p, 0) != v
               for p, v in self._merged_versions.items()):
            # A merged pane grew after the fact (boundary straggler,
            # late increment): the running state no longer matches the
            # raw panes, so rebuild it from them.
            self._window = {}
            self._window_panes = set()
            self._window_refs = {}
            self._merged_versions = {}
        self._slide(lo, hi)
        self._prune(lo)
        return [(gvals, tuple(states))
                for gvals, states in self._window.items()]

    def _remerge(self, lo, hi):
        merged = {}
        for p in range(lo, hi):
            for gvals, states in self._panes.get(p, {}).items():
                held = merged.get(gvals)
                if held is None:
                    merged[gvals] = list(states)
                else:
                    for i, spec in enumerate(self._specs):
                        held[i] = spec.agg.merge(held[i], states[i])
        return [(gvals, tuple(states)) for gvals, states in merged.items()]

    def _slide(self, lo, hi):
        """Move the running window state to cover panes ``[lo, hi)``.

        Original flushes advance monotonically (epoch k-1's deadline
        precedes epoch k's even when the epochs overlap), so panes only
        ever retire off the old edge and join on the new one.
        """
        for p in sorted(self._window_panes):
            if lo <= p < hi:
                continue
            for gvals, states in self._panes.get(p, {}).items():
                held = self._window[gvals]
                for i, spec in enumerate(self._specs):
                    held[i] = spec.agg.unmerge(held[i], states[i])
                self._window_refs[gvals] -= 1
                if self._window_refs[gvals] == 0:
                    del self._window[gvals]
                    del self._window_refs[gvals]
            self._window_panes.discard(p)
            self._merged_versions.pop(p, None)
        for p in range(lo, hi):
            if p in self._window_panes:
                continue
            self._window_panes.add(p)
            self._merged_versions[p] = self._versions.get(p, 0)
            for gvals, states in self._panes.get(p, {}).items():
                held = self._window.get(gvals)
                if held is None:
                    self._window[gvals] = list(states)
                    self._window_refs[gvals] = 1
                else:
                    for i, spec in enumerate(self._specs):
                        held[i] = spec.agg.merge(held[i], states[i])
                    self._window_refs[gvals] += 1

    def _prune(self, lo):
        """Drop panes no window still to come (or still open) can read."""
        cutoff = lo - self._retain
        self._panes = {
            p: d for p, d in self._panes.items()
            if p >= cutoff or p in self._window_panes
        }
        self._versions = {
            p: v for p, v in self._versions.items() if p in self._panes
        }

    def clear(self):
        self._panes = {}
        self._versions = {}
        self._window = {}
        self._window_panes = set()
        self._window_refs = {}
        self._merged_versions = {}
        self._hi = None


@register_operator("groupby_partial")
class GroupByPartial(Operator):
    def __init__(self, ctx, spec):
        super().__init__(ctx, spec)
        schema = spec.params["schema"]
        group_exprs = spec.params["group_exprs"]
        self._group_fns = [e.compile(schema) for e in group_exprs]
        self._batch_group_fns = [e.compile_batch(schema) for e in group_exprs]
        self._agg_specs = spec.params["agg_specs"]
        self._arg_fns = [a.compile_arg(schema) for a in self._agg_specs]
        self._batch_arg_fns = [
            a.compile_arg_batch(schema) for a in self._agg_specs
        ]
        self._note = getattr(ctx.engine, "note_rows_aggregated", None)
        self._epochs = EpochStateRing(dict)  # epoch -> {gvals: [states]}
        self._paned = (bool(spec.params.get("paned"))
                       and bool(getattr(ctx, "standing", False)))
        self._ship_delta = (self._paned
                            and spec.params.get("paned_ship") == "delta")
        if self._paned:
            geometry = spec.params["paned"]
            self._panes_per_every = geometry["every"]
            self._panes_per_window = geometry["window"]
            self._current_pane = None
            if self._ship_delta:
                # Unshipped per-pane increments: each pane's partial
                # crosses the wire once, at the first flush after rows
                # touched it; the final holds the window's panes.
                self._pending_panes = {}  # pane -> {gvals: [states]}
            else:
                self._window = PaneWindow(self._agg_specs)

    def open_pane(self, pane):
        self._current_pane = pane

    def push(self, row, port=0):
        gvals = tuple(fn(row) for fn in self._group_fns)
        states = self._group_states(gvals)
        for i, spec in enumerate(self._agg_specs):
            states[i] = spec.agg.add(states[i], self._arg_fns[i](row))
        if self._note is not None:
            self._note(1)

    def push_batch(self, batch, port=0):
        """Vectorized fold: evaluate group keys and aggregate inputs as
        whole columns, then fold each group's run of values in one pass.

        Rows are bucketed by group key first (preserving arrival order
        within each group), so per-group accumulation order -- and thus
        every state, float sums included -- matches the row-at-a-time
        path exactly. State-store lookups happen once per group per
        batch instead of once per row.
        """
        n = len(batch)
        if n == 0:
            return
        group_cols = [fn(batch) for fn in self._batch_group_fns]
        arg_cols = [fn(batch) for fn in self._batch_arg_fns]
        if not group_cols:
            keys = [()] * n  # global aggregate: one group for every row
        elif len(group_cols) == 1:
            keys = [(g,) for g in group_cols[0]]
        else:
            keys = list(zip(*group_cols))
        buckets = {}
        for i, gvals in enumerate(keys):
            bucket = buckets.get(gvals)
            if bucket is None:
                bucket = buckets[gvals] = []
            bucket.append(i)
        for gvals, indices in buckets.items():
            states = self._group_states(gvals)
            for i, spec in enumerate(self._agg_specs):
                col = arg_cols[i]
                states[i] = spec.agg.add_many(
                    states[i], [col[j] for j in indices]
                )
        if self._note is not None:
            self._note(n)

    def _group_states(self, gvals):
        """The mutable state list for one group under the current mode
        (pending pane / pane window / epoch ring)."""
        if self._ship_delta:
            store = self._pending_panes.setdefault(self._current_pane, {})
        elif self._paned:
            return self._window.entry(self._current_pane, gvals)
        else:
            store = self._epochs.state(self._active_epoch())
        states = store.get(gvals)
        if states is None:
            states = store[gvals] = [a.agg.init() for a in self._agg_specs]
        return states

    def flush(self):
        if not self._paned:
            # Emit-and-clear: post-flush stragglers die with their epoch,
            # exactly as they did inside a torn-down execution.
            held = self._epochs.seal(self._active_epoch())
            for gvals, states in (held or {}).items():
                self.emit((gvals, tuple(states)))
            return
        lo, hi = window_pane_range(
            self._active_epoch(), self._panes_per_every,
            self._panes_per_window,
        )
        if self._ship_delta:
            # Ship each pending pane's increment under its pane tag;
            # panes below the window can never be read again (their
            # last covering epoch already flushed) and are dropped.
            for pane in sorted(self._pending_panes):
                if pane >= hi:
                    continue  # still open: a later epoch closes it
                store = self._pending_panes.pop(pane)
                if pane < lo:
                    continue
                self.announce_pane(pane)
                for gvals, states in store.items():
                    self.emit((gvals, tuple(states)))
            return
        for gvals, states in self._window.assemble(lo, hi):
            self.emit((gvals, states))

    def seal_epoch(self, k):
        # Unpaned: whatever survived the flush dies with its epoch.
        # Paned: pane partials outlive epochs by design; pruning rides
        # on each flush's window advance.
        self._epochs.seal(k)

    def teardown(self):
        self._epochs.clear()
        if self._ship_delta:
            self._pending_panes = {}
        elif self._paned:
            self._window.clear()


@register_operator("groupby_final")
class GroupByFinal(Operator):
    """Merges partial states at each group's owner.

    After its first flush the operator keeps its state and *re-emits*
    the updated full group set when stragglers arrive (partials delayed
    by failed hops) -- PIER's streaming refinement. The downstream
    result operator runs in replace mode, so the query site keeps each
    node's latest contribution rather than double-counting.

    State is keyed per epoch: under an overlapping-epoch standing plan
    a late partial tagged with the previous epoch merges into (and
    refines) that epoch's groups while the current epoch accumulates
    beside it.

    *Paned* finals (distributed sliding windows) hold the window's pane
    partials instead: arriving increments -- announced by the
    pane-tagged exchange's delivery -- merge into their pane's store,
    and each epoch's flush assembles the window from pane partials
    (:class:`PaneWindow`), so per-epoch owner work is O(panes changed)
    rather than O(groups x nodes). A late increment triggers a
    refinement reflush of every flushed, still-open epoch whose window
    covers its pane.
    """

    def __init__(self, ctx, spec):
        super().__init__(ctx, spec)
        self._agg_specs = spec.params["agg_specs"]
        self._note = getattr(ctx.engine, "note_rows_merged", None)
        # epoch -> {"groups", "flushed", "timer"}; sealing an epoch
        # cancels its pending refinement reflush so sealed groups can
        # never leak into a later epoch's result stream.
        self._epochs = EpochStateRing(
            lambda: {"groups": {}, "flushed": False, "timer": None},
            on_seal=self._cancel_reflush,
        )
        self._paned = (bool(spec.params.get("paned"))
                       and bool(getattr(ctx, "standing", False)))
        if self._paned:
            geometry = spec.params["paned"]
            self._panes_per_every = geometry["every"]
            self._panes_per_window = geometry["window"]
            self._current_pane = None
            # Older still-open epochs of the ring may reflush after the
            # newest advanced the window: retain their panes.
            overlap = plan_live_epochs(getattr(ctx, "plan", None))
            self._window = PaneWindow(
                self._agg_specs,
                retain_panes=(overlap - 1) * self._panes_per_every,
            )

    def _cancel_reflush(self, entry):
        if entry["timer"] is not None:
            self.ctx.dht.cancel_timer(entry["timer"])
            entry["timer"] = None

    def open_pane(self, pane):
        self._current_pane = pane

    def _window_range(self, epoch):
        return window_pane_range(
            epoch, self._panes_per_every, self._panes_per_window
        )

    def push(self, row, port=0):
        epoch = self._active_epoch()
        gvals, states = row
        if self._note is not None:
            self._note(1)
        if self._paned:
            pane = self._current_pane
            if pane is None:
                # Untagged arrival (defensive): file it under the
                # epoch's newest pane so it is never silently dropped.
                pane = self._window_range(epoch)[1] - 1
            held = self._window.entry(pane, tuple(gvals))
            for i, spec in enumerate(self._agg_specs):
                held[i] = spec.agg.merge(held[i], states[i])
            # Streaming refinement: every flushed, still-open epoch
            # whose window covers this pane now has a stale answer.
            for e, entry in self._epochs.items():
                if not entry["flushed"] or entry["timer"] is not None:
                    continue
                lo, hi = self._window_range(e)
                if lo <= pane < hi:
                    entry["timer"] = self.ctx.dht.set_timer(
                        0.4, self._reflush, e
                    )
            return
        entry = self._epochs.state(epoch)
        held = entry["groups"].get(gvals)
        if held is None:
            entry["groups"][gvals] = list(states)
        else:
            for i, spec in enumerate(self._agg_specs):
                held[i] = spec.agg.merge(held[i], states[i])
        if entry["flushed"] and entry["timer"] is None:
            entry["timer"] = self.ctx.dht.set_timer(
                0.4, self._reflush, epoch
            )

    def _reflush(self, epoch):
        self._run_in_epoch(epoch, self.flush)

    def flush(self):
        entry = self._epochs.state(self._active_epoch())
        self._cancel_reflush(entry)
        entry["flushed"] = True
        self.reset_batch()
        if self._paned:
            lo, hi = self._window_range(self._active_epoch())
            for gvals, states in self._window.assemble(lo, hi):
                self.emit((tuple(gvals), tuple(states)))
            return
        for gvals, states in entry["groups"].items():
            # Ship mergeable *states*, not finalized values: during ring
            # healing two nodes can both act as a group's owner, and the
            # query site can only reconcile them if states stay algebraic.
            self.emit((tuple(gvals), tuple(states)))

    def seal_epoch(self, k):
        # The pane store outlives epochs by design (later windows reuse
        # the panes); only the per-epoch flush bookkeeping is sealed.
        self._epochs.seal(k)

    def teardown(self):
        self._epochs.clear()
        if self._paned:
            self._window.clear()
