"""Group-by aggregation in two network phases.

``partial`` instances run where the data lives: they fold raw rows into
per-group aggregate states and, at their flush deadline, emit compact
``(group_values, states)`` pairs -- these are what the exchange ships
(and what the aggregation tree merges per hop). ``final`` instances run
at each group's DHT owner: they merge arriving partials and emit
finished rows (group columns then aggregate results) at their own
deadline.

A node with zero matching rows emits nothing, so global aggregates
naturally report over the *responding* nodes only -- the semantics
Figure 1 of the paper plots.

Both operators key their held state by ``ctx.active_epoch`` (one
``EpochStateRing`` entry per live epoch), so an overlapping-epoch
standing execution can run every live epoch's aggregation concurrently
through one instance.

*Paned* partials (``params["paned"]``, standing plans with
``WINDOW > EVERY``) go further: rows arrive bucketed by pane (the scan
sends ``open_pane`` markers), partials accumulate per pane, and each
epoch's flush assembles the window from pane partials instead of
re-folding the overlap's rows. When every aggregate is invertible the
operator keeps one running window state per group and slides it --
``merge`` the panes entering the window, ``unmerge`` the panes leaving
it -- so per-epoch work is O(panes changed); otherwise it re-merges the
window's live panes, still O(panes), never O(rows).

Params (partial): ``group_exprs``, ``agg_specs``, ``schema``,
optional ``paned`` geometry (``{"width", "every", "window"}``).
Params (final): ``agg_specs``.
"""

from repro.core.dataflow import EpochStateRing, Operator
from repro.core.operators import register_operator
from repro.db.window import window_pane_range


@register_operator("groupby_partial")
class GroupByPartial(Operator):
    def __init__(self, ctx, spec):
        super().__init__(ctx, spec)
        schema = spec.params["schema"]
        self._group_fns = [e.compile(schema) for e in spec.params["group_exprs"]]
        self._agg_specs = spec.params["agg_specs"]
        self._arg_fns = [a.compile_arg(schema) for a in self._agg_specs]
        self._note = getattr(ctx.engine, "note_rows_aggregated", None)
        self._epochs = EpochStateRing(dict)  # epoch -> {gvals: [states]}
        self._paned = (bool(spec.params.get("paned"))
                       and bool(getattr(ctx, "standing", False)))
        if self._paned:
            geometry = spec.params["paned"]
            self._panes_per_every = geometry["every"]
            self._panes_per_window = geometry["window"]
            self._invertible = all(s.agg.invertible for s in self._agg_specs)
            self._panes = {}  # pane -> {gvals: [states]} (raw partials)
            self._current_pane = None
            # Invertible sliding window: one running merged state per
            # group, plus which panes it currently covers and how many
            # of them contribute to each group (so a group vanishes
            # exactly when its last pane slides out). Versions detect a
            # pane growing *after* it was merged (a boundary-straggler
            # row): the running state is then stale and is rebuilt from
            # the raw panes at the next flush.
            self._window = {}  # gvals -> [states]
            self._window_panes = set()
            self._window_refs = {}  # gvals -> live pane count
            self._pane_versions = {}  # pane -> push count
            self._merged_versions = {}  # pane -> version when merged

    def open_pane(self, pane):
        self._current_pane = pane

    def push(self, row, port=0):
        gvals = tuple(fn(row) for fn in self._group_fns)
        if self._paned:
            store = self._panes.setdefault(self._current_pane, {})
            if self._invertible:
                self._pane_versions[self._current_pane] = (
                    self._pane_versions.get(self._current_pane, 0) + 1
                )
        else:
            store = self._epochs.state(self._active_epoch())
        states = store.get(gvals)
        if states is None:
            states = [a.agg.init() for a in self._agg_specs]
            store[gvals] = states
        for i, spec in enumerate(self._agg_specs):
            states[i] = spec.agg.add(states[i], self._arg_fns[i](row))
        if self._note is not None:
            self._note(1)

    def flush(self):
        if not self._paned:
            # Emit-and-clear: post-flush stragglers die with their epoch,
            # exactly as they did inside a torn-down execution.
            held = self._epochs.seal(self._active_epoch())
            for gvals, states in (held or {}).items():
                self.emit((gvals, tuple(states)))
            return
        lo, hi = window_pane_range(
            self._active_epoch(), self._panes_per_every,
            self._panes_per_window,
        )
        if self._invertible:
            if any(self._pane_versions.get(p, 0) != v
                   for p, v in self._merged_versions.items()):
                # A merged pane grew after the fact (boundary-straggler
                # emission): the running state no longer matches the raw
                # panes, so rebuild it from them.
                self._window = {}
                self._window_panes = set()
                self._window_refs = {}
                self._merged_versions = {}
            self._slide_window(lo, hi)
            for gvals, states in self._window.items():
                self.emit((gvals, tuple(states)))
        else:
            # Pane-re-merge fallback: O(live panes) merges per group.
            self._panes = {p: d for p, d in self._panes.items() if p >= lo}
            merged = {}
            for p in range(lo, hi):
                for gvals, states in self._panes.get(p, {}).items():
                    held = merged.get(gvals)
                    if held is None:
                        merged[gvals] = list(states)
                    else:
                        for i, spec in enumerate(self._agg_specs):
                            held[i] = spec.agg.merge(held[i], states[i])
            for gvals, states in merged.items():
                self.emit((gvals, tuple(states)))

    def _slide_window(self, lo, hi):
        """Move the running window state to cover panes ``[lo, hi)``.

        Flushes advance monotonically (epoch k-1's deadline precedes
        epoch k's even when the epochs overlap), so panes only ever
        retire off the old edge and join on the new one. Retiring
        consumes the raw pane partial (handed to ``unmerge``); joining
        keeps it until retirement.
        """
        for p in sorted(self._window_panes):
            if lo <= p < hi:
                continue
            for gvals, states in self._panes.pop(p, {}).items():
                held = self._window[gvals]
                for i, spec in enumerate(self._agg_specs):
                    held[i] = spec.agg.unmerge(held[i], states[i])
                self._window_refs[gvals] -= 1
                if self._window_refs[gvals] == 0:
                    del self._window[gvals]
                    del self._window_refs[gvals]
            self._window_panes.discard(p)
            self._merged_versions.pop(p, None)
            self._pane_versions.pop(p, None)
        for p in range(lo, hi):
            if p in self._window_panes:
                continue
            self._window_panes.add(p)
            self._merged_versions[p] = self._pane_versions.get(p, 0)
            for gvals, states in self._panes.get(p, {}).items():
                held = self._window.get(gvals)
                if held is None:
                    self._window[gvals] = list(states)
                    self._window_refs[gvals] = 1
                else:
                    for i, spec in enumerate(self._agg_specs):
                        held[i] = spec.agg.merge(held[i], states[i])
                    self._window_refs[gvals] += 1
        # Panes older than every window still to come are dead weight.
        self._panes = {
            p: d for p, d in self._panes.items()
            if p >= lo or p in self._window_panes
        }
        self._pane_versions = {
            p: v for p, v in self._pane_versions.items() if p in self._panes
        }

    def seal_epoch(self, k):
        # Unpaned: whatever survived the flush dies with its epoch.
        # Paned: pane partials outlive epochs by design; pruning rides
        # on each flush's window advance.
        self._epochs.seal(k)

    def teardown(self):
        self._epochs.clear()
        if self._paned:
            self._panes = {}
            self._window = {}
            self._window_panes = set()
            self._window_refs = {}
            self._pane_versions = {}
            self._merged_versions = {}


@register_operator("groupby_final")
class GroupByFinal(Operator):
    """Merges partial states at each group's owner.

    After its first flush the operator keeps its state and *re-emits*
    the updated full group set when stragglers arrive (partials delayed
    by failed hops) -- PIER's streaming refinement. The downstream
    result operator runs in replace mode, so the query site keeps each
    node's latest contribution rather than double-counting.

    State is keyed per epoch: under an overlapping-epoch standing plan
    a late partial tagged with the previous epoch merges into (and
    refines) that epoch's groups while the current epoch accumulates
    beside it.
    """

    def __init__(self, ctx, spec):
        super().__init__(ctx, spec)
        self._agg_specs = spec.params["agg_specs"]
        # epoch -> {"groups", "flushed", "timer"}; sealing an epoch
        # cancels its pending refinement reflush so sealed groups can
        # never leak into a later epoch's result stream.
        self._epochs = EpochStateRing(
            lambda: {"groups": {}, "flushed": False, "timer": None},
            on_seal=self._cancel_reflush,
        )

    def _cancel_reflush(self, entry):
        if entry["timer"] is not None:
            self.ctx.dht.cancel_timer(entry["timer"])
            entry["timer"] = None

    def push(self, row, port=0):
        epoch = self._active_epoch()
        entry = self._epochs.state(epoch)
        gvals, states = row
        held = entry["groups"].get(gvals)
        if held is None:
            entry["groups"][gvals] = list(states)
        else:
            for i, spec in enumerate(self._agg_specs):
                held[i] = spec.agg.merge(held[i], states[i])
        if entry["flushed"] and entry["timer"] is None:
            entry["timer"] = self.ctx.dht.set_timer(
                0.4, self._reflush, epoch
            )

    def _reflush(self, epoch):
        self._run_in_epoch(epoch, self.flush)

    def flush(self):
        entry = self._epochs.state(self._active_epoch())
        self._cancel_reflush(entry)
        entry["flushed"] = True
        self.reset_batch()
        for gvals, states in entry["groups"].items():
            # Ship mergeable *states*, not finalized values: during ring
            # healing two nodes can both act as a group's owner, and the
            # query site can only reconcile them if states stay algebraic.
            self.emit((tuple(gvals), tuple(states)))

    def seal_epoch(self, k):
        self._epochs.seal(k)

    def teardown(self):
        self._epochs.clear()
