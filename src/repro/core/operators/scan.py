"""Scan: emit one node's fragment of a relation.

Dissemination turns one logical scan into N local scans -- every node
that receives the plan scans what *it* has:

* ``local`` tables: the node's private rows,
* ``dht`` tables: the items this node stores for the table's namespace
  (PIER's ``lscan`` access path),
* ``stream`` tables: the rows in this epoch's window
  ``(t0 - window, t0]``.

Under a disposable per-epoch execution the scan runs once, at start.
Under a :class:`~repro.core.dataflow.StandingExecution` it *subscribes*
instead of re-scanning:

* stream tables: an append hook on the fragment feeds a pending buffer;
  each ``open_epoch`` emits the buffered rows falling in the new
  epoch's window and prunes what can never appear in a later one, so a
  row is touched O(1) times instead of once per epoch it survives in
  the retention deque;
* dht tables: a TTL'd ``newData`` subscription (renewed every epoch)
  tracks arriving items by reference; each epoch emits the tracked
  items still live -- identical to a fresh ``lscan`` because renewals
  and re-puts update the shared :class:`StoredItem` in place -- and
  prunes the dead;
* local tables: rows never age, every epoch reads all of them, so the
  scan simply re-reads the fragment (there is no delta to exploit).

When the planner marked the plan *paned* (``WINDOW > EVERY`` above a
pane-aware aggregate), the standing stream scan goes one step further:
instead of re-emitting the window overlap every epoch, it buckets its
delta into panes of width ``plan.pane``, announces each bucket with an
``open_pane`` marker, and emits every row exactly once. The pane-aware
operator downstream keeps the pane partials and assembles each epoch's
window from them, so nothing in the overlap is ever re-scanned *or*
re-aggregated.

Params: ``table`` (catalog name). The optional ``alias`` only matters
at planning time (column qualification); at runtime rows are positional.
``paned`` carries the pane geometry (``{"width", "every", "window"}``,
width in seconds, the others in panes) and switches on the pane-emission
mode described above.
"""

import zlib

from repro.core.batch import RowBatch
from repro.core.dataflow import Operator
from repro.core.operators import register_operator
from repro.db.window import pane_index, window_pane_range


def _sample_keep(row, threshold):
    """Deterministic Bernoulli sampling by row content.

    Admission-degraded plans (``params["sample"]``) keep a row iff its
    content hash falls under the rate threshold. CRC32 of the repr is
    stable across nodes and processes (unlike ``hash()`` under hash
    randomization), so every replica of a row makes the same keep/drop
    decision and joins stay consistent across fragments.
    """
    return zlib.crc32(repr(row).encode("utf-8")) % 1000000 < threshold


@register_operator("scan")
class Scan(Operator):
    def __init__(self, ctx, spec):
        super().__init__(ctx, spec)
        self._standing = bool(getattr(ctx, "standing", False))
        config = getattr(getattr(ctx, "engine", None), "config", None)
        # Columnar batching: each emission wave leaves as one RowBatch
        # feeding consumers' push_batch. The planner stamps
        # batch-capable pipelines (params["batch"]); the engine knob is
        # the global row-mode ablation for benchmarks.
        self._batch = bool(
            spec.params.get("batch", True)
            and getattr(config, "columnar_batches", True)
        )
        self._paned = bool(spec.params.get("paned")) and self._standing
        # Admission-control sampling: emit only a deterministic
        # hash-sampled fraction of scanned rows. Every row is still
        # *examined* (and charged to rows_scanned) -- sampling sheds
        # downstream exchange and fold load, not scan effort -- which
        # is exactly how the planner's cost bounder models it.
        sample = spec.params.get("sample")
        self._sample_threshold = (
            int(float(sample) * 1000000) if sample is not None else None
        )
        # Prefix-fed: a shared scan stage feeds this execution via
        # StandingExecution.deliver_scan; this scan goes passive (no
        # subscription, no per-epoch emission) and only relays injected
        # waves. Examinations are charged once at the stage.
        self._prefix_fed = (
            self._standing and bool(getattr(ctx, "prefix_fed", False))
        )
        self._table_def = None
        self._pending = []  # stream mode: [(ts, row)] not yet aged out
        self._tracked = {}  # dht mode: item key -> StoredItem (by ref)
        self._sub_token = None
        self._append_token = None
        self._share_token = None  # SharedScanRegistry subscription
        if self._paned:
            geometry = spec.params["paned"]  # set by the planner
            self._pane = geometry["width"]
            self._panes_per_every = geometry["every"]
            self._panes_per_window = geometry["window"]
            # Pane indices are aligned to the query's submission time,
            # recovered from the epoch the execution joined at.
            self._pane_origin = ctx.t0 - ctx.epoch * ctx.plan.every

    # ------------------------------------------------------------------
    # Shared plumbing
    # ------------------------------------------------------------------
    def _count(self, n):
        self.ctx.engine.note_rows_scanned(n)

    def _emit_rows(self, rows):
        """Emit one scan wave: a single RowBatch in columnar mode, a
        row loop otherwise. ``rows`` is taken over by the batch."""
        if self._sample_threshold is not None and rows:
            threshold = self._sample_threshold
            rows = [r for r in rows if _sample_keep(r, threshold)]
        if not rows:
            return
        if self._batch and len(rows) > 1:
            self.emit_batch(
                RowBatch(rows=rows, schema=self._table_def.schema)
            )
        else:
            for row in rows:
                self.emit(row)

    def _window(self):
        window = self.spec.params.get("window") or self.ctx.plan.window
        if window is None:
            window = self._table_def.window
        return window

    def start(self):
        table_name = self.spec.params["table"]
        self._table_def = self.ctx.engine.catalog.lookup(table_name)
        if self._prefix_fed:
            return  # passive: the prefix stage injects our rows
        if self._standing:
            self._start_standing(table_name)
            return
        if self._table_def.source == "dht":
            items = self.ctx.dht.lscan(table_name)
            self._count(len(items))
            self._emit_rows([tuple(item.value) for item in items])
            return
        fragment = self.ctx.fragment(table_name)
        if self._table_def.source == "stream":
            # The whole retention deque is examined to select the window.
            self._count(len(fragment))
            rows = fragment.scan_window(self.ctx.t0 - self._window(), self.ctx.t0)
        else:
            rows = fragment.scan()
            self._count(len(rows))
        self._emit_rows(list(rows))

    # ------------------------------------------------------------------
    # Standing (subscription) mode
    # ------------------------------------------------------------------
    def _start_standing(self, table_name):
        source = self._table_def.source
        if source == "stream":
            fragment = self.ctx.fragment(table_name)
            registry = getattr(self.ctx.engine, "shared_scans", None)
            share_key = self.spec.params.get("share_scan")
            config = getattr(self.ctx.engine, "config", None)
            if not getattr(config, "shared_dataflows", True):
                share_key = None  # ablation: fully private plumbing
            if share_key and registry is not None:
                # Shared host: ONE append hook per table per node fans
                # rows to every subscribed standing scan, and the host
                # charges the seed/append examinations once however
                # many queries listen. Per-epoch window examinations
                # below still count per scan. The host hands over the
                # retained history as one batch to seed the buffer.
                self._share_token = registry.acquire(
                    share_key, fragment, self._on_shared_append
                )
                self._pending = registry.seed_rows(share_key)
            else:
                # Seed with history already retained, then hear about
                # each future append exactly once.
                self._pending = fragment.items()
                self._count(len(self._pending))
                self._append_token = fragment.on_append(self._on_append)
            if self._paned:
                self._emit_paned_epoch(self.ctx.epoch)
            else:
                self._emit_stream_epoch(self.ctx.t0)
        elif source == "dht":
            for item in self.ctx.dht.lscan(table_name):
                self._tracked[item.key()] = item
            self._sub_token = self.ctx.dht.new_data(
                table_name, self._on_new_item, ttl=self._sub_ttl()
            )
            self._emit_dht_epoch()
        else:
            rows = self.ctx.fragment(table_name).scan()
            self._count(len(rows))
            self._emit_rows(list(rows))

    def _sub_ttl(self):
        # Outlive one missed boundary, not a dead query: the next
        # advance renews; a crashed execution lets it age out.
        return 2.0 * (self.ctx.plan.every or 30.0)

    def _on_append(self, timestamp, row):
        self._pending.append((timestamp, row))
        self._count(1)

    def _on_shared_append(self, timestamp, row):
        # The shared host already charged the examination.
        self._pending.append((timestamp, row))

    def _on_new_item(self, item):
        self._tracked[item.key()] = item
        self._count(1)

    def open_epoch(self, k, t_k):
        """Emit epoch ``k``'s delta (subscription mode only)."""
        if not self._standing or self._prefix_fed:
            return
        source = self._table_def.source
        if source == "stream":
            if self._paned:
                self._emit_paned_epoch(k)
            else:
                self._emit_stream_epoch(t_k)
        elif source == "dht":
            if self._sub_token is not None:
                table = self.spec.params["table"]
                if not self.ctx.dht.renew_new_data(
                    table, self._sub_token, self._sub_ttl()
                ):
                    # The subscription aged out (e.g. this node crashed
                    # and recovered): re-seed from the store, exactly
                    # like a fresh adoption.
                    self._tracked = {
                        i.key(): i for i in self.ctx.dht.lscan(table)
                    }
                    self._sub_token = self.ctx.dht.new_data(
                        table, self._on_new_item, ttl=self._sub_ttl()
                    )
            self._emit_dht_epoch()
        else:
            rows = self.ctx.fragment(self.spec.params["table"]).scan()
            self._count(len(rows))
            self._emit_rows(list(rows))

    def _emit_stream_epoch(self, t_k):
        window = self._window()
        lo = t_k - window
        every = self.ctx.plan.every or window
        # Rows at or before the *next* window's low edge can never be
        # scanned again; keep the overlap (window > every) for re-emission.
        keep_after = t_k + every - window
        kept, out = [], []
        for ts, row in self._pending:
            if lo < ts <= t_k:
                out.append(row)
            if ts > keep_after:
                kept.append((ts, row))
        self._count(len(self._pending))
        self._pending = kept
        self._emit_rows(out)

    def _emit_paned_epoch(self, k):
        """Bucket the delta by pane and emit each row exactly once.

        Panes up to (but excluding) ``k * panes_per_every`` close with
        epoch ``k``'s window; rows older than the window (panes below
        ``lo``) can never be scanned again and are dropped. A row can
        land in an already-emitted pane that is *still inside the
        window* -- an append stamped exactly on the previous boundary
        whose event fired just after that boundary's emission wave --
        and is emitted into its true pane now: the pane's partials stay
        live downstream for every window that still covers it, exactly
        as the from-scratch path would keep re-scanning the row. Rows
        for still-open panes stay pending for the next epoch.
        """
        lo, hi = window_pane_range(
            k, self._panes_per_every, self._panes_per_window
        )
        kept, buckets = [], {}
        examined = 0
        for ts, row in self._pending:
            p = pane_index(ts, self._pane_origin, self._pane)
            if p >= hi:
                kept.append((ts, row))
                continue
            examined += 1
            if p >= lo:
                buckets.setdefault(p, []).append(row)
        self._count(examined)
        self._pending = kept
        for p in sorted(buckets):
            self.open_pane(p)
            self._emit_rows(buckets[p])

    def inject_rows(self, rows, pane=None):
        """Relay one wave from a shared prefix stage (prefix-fed mode).

        The caller (``StandingExecution.deliver_scan``) has already
        scoped the epoch; rows were examined and charged once at the
        stage, so no ``_count`` here. The pane marker is re-announced
        first so pane-aware consumers bucket the wave correctly.
        """
        if pane is not None:
            self.announce_pane(pane)
        self._emit_rows(list(rows))

    def _emit_dht_epoch(self):
        now = self.ctx.clock.now
        dead, out = [], []
        for key, item in self._tracked.items():
            if item.expires_at > now:
                out.append(tuple(item.value))
            else:
                dead.append(key)
        self._count(len(self._tracked))
        for key in dead:
            del self._tracked[key]
        self._emit_rows(out)

    def teardown(self):
        if self._share_token is not None:
            self.ctx.engine.shared_scans.release(self._share_token)
            self._share_token = None
        if self._append_token is not None:
            fragment = self.ctx.fragment(self.spec.params["table"])
            fragment.remove_append_hook(self._append_token)
            self._append_token = None
        if self._sub_token is not None:
            self.ctx.dht.remove_new_data(
                self.spec.params["table"], self._sub_token
            )
            self._sub_token = None
        self._pending = []
        self._tracked = {}
