"""Scan: emit one node's fragment of a relation.

Dissemination turns one logical scan into N local scans -- every node
that receives the plan scans what *it* has:

* ``local`` tables: the node's private rows,
* ``dht`` tables: the items this node stores for the table's namespace
  (PIER's ``lscan`` access path),
* ``stream`` tables: the rows in this epoch's window
  ``(t0 - window, t0]``.

Params: ``table`` (catalog name). The optional ``alias`` only matters
at planning time (column qualification); at runtime rows are positional.
"""

from repro.core.dataflow import Operator
from repro.core.operators import register_operator


@register_operator("scan")
class Scan(Operator):
    def start(self):
        table_name = self.spec.params["table"]
        table_def = self.ctx.engine.catalog.lookup(table_name)
        if table_def.source == "dht":
            for item in self.ctx.dht.lscan(table_name):
                self.emit(tuple(item.value))
            return
        fragment = self.ctx.fragment(table_name)
        if table_def.source == "stream":
            window = self.spec.params.get("window") or self.ctx.plan.window
            if window is None:
                window = table_def.window
            rows = fragment.scan_window(self.ctx.t0 - window, self.ctx.t0)
        else:
            rows = fragment.scan()
        for row in rows:
            self.emit(row)
