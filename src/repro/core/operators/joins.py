"""In-network join operators.

PIER's two workhorse joins (VLDB 2003, section 3.4):

* **Symmetric hash join (SHJ)** -- both relations are rehashed on their
  join keys into a query-temporary namespace; at every node an SHJ
  instance builds a hash table per side and probes the opposite one on
  each arrival, so results stream out without blocking. The exchanges
  feeding ports 0/1 did the network work; this operator is local.

* **Fetch-matches (FM)** -- used when one relation is *already*
  published in the DHT partitioned on the join column: probe-side rows
  trigger a ``get`` for their key, so only matching tuples ever cross
  the network. Asynchronous by nature; replies landing after the query
  deadline are dropped by the closed execution, the soft-state way.

Join state is keyed by ``ctx.active_epoch`` (one
:class:`~repro.core.dataflow.EpochStateRing` entry per live epoch):
under an overlapping-epoch standing plan, rows tagged with a previous
epoch keep probing (and building) that epoch's tables while the
current epoch's fill up beside them. Sealing an epoch drops its
tables, exactly as tearing down a rebuilt execution did.

Fetch-matches is additionally *pane-transparent* on paned plans
(``params["paned"]``): a joined row belongs to the pane of the stream
row that probed for it, so the operator records the pane each probe was
pushed under, and re-announces it downstream when the asynchronous
reply releases the joins -- which is what lets a paned aggregate sit
above a stream-probed join. The inner DHT relation is treated as
quasi-static over a window (its rows are TTL'd soft state): a probe
joins against the table as of the epoch its pane first closed, exactly
like the pane partials the aggregate caches.
"""

from repro.core.batch import RowBatch
from repro.core.dataflow import EpochStateRing, Operator
from repro.core.operators import register_operator


@register_operator("shj")
class SymmetricHashJoin(Operator):
    """Pipelined equi-join; port 0 is the left input, port 1 the right.

    Params: ``left_schema``, ``right_schema`` (qualified), ``left_keys``
    and ``right_keys`` (expression lists of equal length), optional
    ``residual`` predicate over the concatenated schema.
    """

    def __init__(self, ctx, spec):
        super().__init__(ctx, spec)
        left_schema = spec.params["left_schema"]
        right_schema = spec.params["right_schema"]
        self._left_key = _key_fn(spec.params["left_keys"], left_schema)
        self._right_key = _key_fn(spec.params["right_keys"], right_schema)
        self._left_batch_key = _batch_key_fn(
            spec.params["left_keys"], left_schema)
        self._right_batch_key = _batch_key_fn(
            spec.params["right_keys"], right_schema)
        # epoch -> ({}, {}): key -> [rows], by port
        self._epochs = EpochStateRing(lambda: ({}, {}))
        residual = spec.params.get("residual")
        if residual is not None:
            out_schema = left_schema.concat(right_schema)
            self._residual = residual.compile(out_schema)
            self._batch_residual = residual.compile_batch(out_schema)
        else:
            self._residual = None
            self._batch_residual = None

    def push(self, row, port=0):
        tables = self._epochs.state(self._active_epoch())
        key = self._left_key(row) if port == 0 else self._right_key(row)
        mine, other = tables[port], tables[1 - port]
        mine.setdefault(key, []).append(row)
        for match in other.get(key, ()):
            # Column order is left-then-right regardless of arrival side.
            joined = (row + match) if port == 0 else (match + row)
            if self._residual is None or self._residual(joined):
                self.emit(joined)

    def push_batch(self, batch, port=0):
        """Vectorized build+probe: evaluate the join keys as whole
        columns, then run one combined build/probe pass.

        A batch arrives on a single port, so the opposite side's table
        is constant for the batch's duration and per-row work shrinks
        to one build append plus one probe lookup over already-computed
        keys. The pass still walks rows in batch order and matches in
        table insertion order -- joined output (and every table state
        left behind) is row-identical to the default unrolled path.
        """
        n = len(batch)
        if n == 0:
            return
        tables = self._epochs.state(self._active_epoch())
        keys = (self._left_batch_key(batch) if port == 0
                else self._right_batch_key(batch))
        mine, other = tables[port], tables[1 - port]
        left = port == 0
        joined = []
        for row, key in zip(batch.rows(), keys):
            mine.setdefault(key, []).append(row)
            for match in other.get(key, ()):
                # Column order is left-then-right regardless of side.
                joined.append((row + match) if left else (match + row))
        if not joined:
            return
        if self._batch_residual is not None:
            out = RowBatch(rows=joined)
            joined = out.take(self._batch_residual(out)).rows()
            if not joined:
                return
        if len(joined) == 1:
            self.emit(joined[0])
        else:
            self.emit_batch(RowBatch(rows=joined))

    def seal_epoch(self, k):
        self._epochs.seal(k)

    def teardown(self):
        self._epochs.clear()


def _key_fn(exprs, schema):
    compiled = [e.compile(schema) for e in exprs]
    if len(compiled) == 1:
        fn = compiled[0]
        return lambda row: (fn(row),)
    return lambda row: tuple(fn(row) for fn in compiled)


def _batch_key_fn(exprs, schema):
    """Batch variant of :func:`_key_fn`: batch -> list of key tuples."""
    compiled = [e.compile_batch(schema) for e in exprs]
    if len(compiled) == 1:
        fn = compiled[0]
        return lambda batch: [(v,) for v in fn(batch)]
    return lambda batch: list(zip(*(fn(batch) for fn in compiled)))


@register_operator("fetch_matches")
class FetchMatches(Operator):
    """Probe-side join against a DHT-published table.

    Params: ``probe_schema``, ``table`` (dht table name, partitioned on
    the join column), ``table_schema`` (qualified), ``probe_key``
    (expression over the probe schema), optional ``residual`` over the
    concatenated schema, optional ``dedup_keys`` (skip repeat gets for
    a key already fetched -- the recursion path sets this).
    """

    def __init__(self, ctx, spec):
        super().__init__(ctx, spec)
        probe_schema = spec.params["probe_schema"]
        self._probe_key = spec.params["probe_key"].compile(probe_schema)
        self._batch_probe_key = spec.params["probe_key"].compile_batch(
            probe_schema)
        self._table = spec.params["table"]
        residual = spec.params.get("residual")
        if residual is not None:
            out_schema = probe_schema.concat(spec.params["table_schema"])
            self._residual = residual.compile(out_schema)
        else:
            self._residual = None
        self._dedup = spec.params.get("dedup_keys", False)
        self._paned = (bool(spec.params.get("paned"))
                       and bool(getattr(ctx, "standing", False)))
        self._current_pane = None
        # epoch -> {"cache": {...}, "waiting": {...}}
        self._epochs = EpochStateRing(lambda: {"cache": {}, "waiting": {}})

    def open_pane(self, pane):
        # Pane-transparent, not pane-forwarding: emissions are async,
        # so the marker is replayed at join-release time instead of
        # being propagated now.
        if self._paned:
            self._current_pane = pane
        else:
            super().open_pane(pane)

    def push(self, row, port=0):
        epoch = self._active_epoch()
        entry = self._epochs.state(epoch)
        key = self._probe_key(row)
        if self._dedup and key in entry["cache"]:
            if self._paned and self._current_pane is not None:
                self.announce_pane(self._current_pane)
            self._join(row, entry["cache"][key])
            return
        pending = (row, self._current_pane if self._paned else None)
        if key in entry["waiting"]:
            entry["waiting"][key].append(pending)
            return
        entry["waiting"][key] = [pending]
        self.ctx.dht.get(
            self._table, key,
            lambda values: self._fetched(epoch, key, values),
        )

    def push_batch(self, batch, port=0):
        """Vectorized probe: evaluate the probe keys as one column,
        then split the batch into cache hits (joined immediately),
        piggybacks on an in-flight fetch, and novel keys -- issuing a
        single ``get`` per distinct novel key instead of one dispatch
        round per row. Cache hits release in batch-row order and
        waiting lists grow in batch-row order, so emitted output and
        the state left behind are row-identical to the unrolled path.
        """
        n = len(batch)
        if n == 0:
            return
        epoch = self._active_epoch()
        entry = self._epochs.state(epoch)
        keys = self._batch_probe_key(batch)
        pane = self._current_pane if self._paned else None
        cache = entry["cache"]
        waiting = entry["waiting"]
        dedup = self._dedup
        novel = []  # distinct keys needing a fetch, in first-seen order
        for row, key in zip(batch.rows(), keys):
            if dedup and key in cache:
                if pane is not None:
                    self.announce_pane(pane)
                self._join(row, cache[key])
                continue
            queue = waiting.get(key)
            if queue is not None:
                queue.append((row, pane))
            else:
                waiting[key] = [(row, pane)]
                novel.append(key)
        for key in novel:
            self.ctx.dht.get(
                self._table, key,
                lambda values, key=key: self._fetched(epoch, key, values),
            )

    def _fetched(self, epoch, key, values):
        # The reply lands asynchronously: re-enter the epoch the probe
        # rows were pushed under so downstream state files the joins
        # correctly. A sealed epoch's entry is gone -- its reply finds
        # no waiting probes and is dropped, matching the closed
        # execution it would have landed in on the rebuild path.
        entry = self._epochs.peek(epoch)
        if entry is None:
            return
        rows = [tuple(v) for _iid, v in values]
        if self._dedup:
            entry["cache"][key] = rows
        waiting = entry["waiting"].pop(key, ())

        def deliver():
            announced = None
            for probe_row, pane in waiting:
                if self._paned and pane is not None and pane != announced:
                    # Joined rows belong to their probe row's pane.
                    self.announce_pane(pane)
                    announced = pane
                self._join(probe_row, rows)

        self._run_in_epoch(epoch, deliver)

    def _join(self, probe_row, table_rows):
        for table_row in table_rows:
            joined = probe_row + table_row
            if self._residual is None or self._residual(joined):
                self.emit(joined)

    def seal_epoch(self, k):
        self._epochs.seal(k)

    def teardown(self):
        self._epochs.clear()
