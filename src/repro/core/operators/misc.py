"""Small operators: distinct, union, limit, and result return.

``distinct`` is the linchpin of recursive queries: DHT-partitioned (by
an exchange keyed on the whole row), it emits only never-seen rows, so
a cyclic plan reaches a fixpoint when no new rows appear anywhere --
which the engine reports to the query site as quiescence.

``result`` is the query-site boundary: rows are batched briefly and
sent directly (not via DHT routing) to the origin node, exactly how
PIER returns answers.

Stateful operators here keep their per-``ctx.active_epoch`` state in an
:class:`~repro.core.dataflow.EpochStateRing`, so an overlapping-epoch
standing execution keeps up to N epochs' state apart through one
instance.
"""

from repro.core.dataflow import EpochStateRing, Operator
from repro.core.operators import register_operator


@register_operator("distinct")
class Distinct(Operator):
    """Emit each distinct row once, immediately on first arrival.

    Params: ``report_progress`` -- when true (recursive plans), novel
    row counts feed the engine's quiescence reports.
    """

    def __init__(self, ctx, spec):
        super().__init__(ctx, spec)
        self._seen = EpochStateRing(set)  # epoch -> set of rows
        self._report = spec.params.get("report_progress", False)

    def push(self, row, port=0):
        seen = self._seen.state(self._active_epoch())
        if row in seen:
            return
        seen.add(row)
        if self._report:
            self.ctx.engine.note_progress(self.ctx.query_id, self.ctx.epoch, 1)
        self.emit(row)

    def seal_epoch(self, k):
        self._seen.seal(k)

    def teardown(self):
        self._seen.clear()


@register_operator("union")
class Union(Operator):
    """Bag union: forward rows from any port unchanged."""

    def push(self, row, port=0):
        self.emit(row)


@register_operator("limit")
class Limit(Operator):
    """Stop forwarding after ``limit`` rows (local short-circuit).

    The countdown is per epoch: each epoch answers the LIMIT afresh,
    as a rebuilt operator would.
    """

    def __init__(self, ctx, spec):
        super().__init__(ctx, spec)
        limit = spec.params["limit"]
        # epoch -> [rows still allowed through] (one-slot mutable cell)
        self._remaining = EpochStateRing(lambda: [limit])

    def push(self, row, port=0):
        cell = self._remaining.state(self._active_epoch())
        if cell[0] > 0:
            cell[0] -= 1
            self.emit(row)

    def seal_epoch(self, k):
        self._remaining.seal(k)

    def teardown(self):
        self._remaining.clear()


@register_operator("result")
class ResultReturn(Operator):
    """Ship rows to the query site, batched to save messages.

    Two modes:

    * append (default): rows buffer for ``batch_delay`` (0.25 s) and
      each message carries the increment -- right for streamed selects
      and recursion, where every row is final.
    * replace (``params["replace"]``, aggregate plans): the upstream
      final operators re-emit their *full* state when stragglers
      refine it; each message carries this node's complete current
      contribution and the query site keeps only the latest one.

    Batches are keyed by the epoch that produced their rows, and every
    message carries that epoch so the query site's per-epoch collection
    buckets stay correct even when two epochs are in flight at once.
    """

    def __init__(self, ctx, spec):
        super().__init__(ctx, spec)
        self._replace = spec.params.get("replace", False)
        self._batches = EpochStateRing(list)  # epoch -> [rows]
        self._timer = None
        self._delay = spec.params.get("batch_delay", 0.25)

    def push(self, row, port=0):
        self._batches.state(self._active_epoch()).append(row)
        if self._timer is None:
            self._timer = self.ctx.dht.set_timer(self._delay, self._send)

    def reset_batch(self):
        if self._replace:
            self._batches.seal(self._active_epoch())

    def _send(self):
        self._timer = None
        for epoch in self._batches.epochs():
            self._send_epoch(epoch)

    def _send_epoch(self, epoch):
        rows = self._batches.peek(epoch)
        if not rows:
            return
        if not self._replace:
            self._batches.seal(epoch)
        # One target (the query's own site) for private executions; a
        # spine fans the same rows to every subscriber whose window
        # this epoch answers, each under its own qid and epoch number.
        # Each message gets its own list: replace-mode keeps the batch
        # for refinement re-sends, and receivers must never alias it.
        targets_fn = getattr(self.ctx, "result_targets", None)
        if targets_fn is None:
            self.ctx.send_to_origin({
                "op": "qres", "qid": self.ctx.query_id, "epoch": epoch,
                "node": self.ctx.engine.address, "rows": list(rows),
                "replace": self._replace,
            })
            return
        for qid, origin, their_epoch in targets_fn(epoch):
            self.ctx.dht.direct(origin, {
                "op": "qres",
                "qid": qid,
                "epoch": their_epoch,
                "node": self.ctx.engine.address,
                "rows": list(rows),
                "replace": self._replace,
            })

    def flush(self):
        if self._timer is not None:
            self.ctx.dht.cancel_timer(self._timer)
            self._timer = None
        self._send_epoch(self._active_epoch())

    def seal_epoch(self, k):
        # Last call for the retiring epoch's rows: ship, then forget.
        self._send_epoch(k)
        self._batches.seal(k)

    def teardown(self):
        if self._timer is not None:
            self.ctx.dht.cancel_timer(self._timer)
            self._timer = None
        self._send()
