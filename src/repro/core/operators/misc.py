"""Small operators: distinct, union, limit, and result return.

``distinct`` is the linchpin of recursive queries: DHT-partitioned (by
an exchange keyed on the whole row), it emits only never-seen rows, so
a cyclic plan reaches a fixpoint when no new rows appear anywhere --
which the engine reports to the query site as quiescence.

``result`` is the query-site boundary: rows are batched briefly and
sent directly (not via DHT routing) to the origin node, exactly how
PIER returns answers.

Stateful operators here keep their per-``ctx.active_epoch`` state in an
:class:`~repro.core.dataflow.EpochStateRing`, so an overlapping-epoch
standing execution keeps up to N epochs' state apart through one
instance.
"""

from repro.core.batch import RowBatch
from repro.core.dataflow import EpochStateRing, Operator
from repro.core.operators import register_operator
from repro.db.window import window_pane_range


@register_operator("distinct")
class Distinct(Operator):
    """Emit each distinct row once, immediately on first arrival.

    Params: ``report_progress`` -- when true (recursive plans), novel
    row counts feed the engine's quiescence reports.
    """

    def __init__(self, ctx, spec):
        super().__init__(ctx, spec)
        self._seen = EpochStateRing(set)  # epoch -> set of rows
        self._report = spec.params.get("report_progress", False)

    def push(self, row, port=0):
        seen = self._seen.state(self._active_epoch())
        if row in seen:
            return
        seen.add(row)
        if self._report:
            self.ctx.engine.note_progress(self.ctx.query_id, self.ctx.epoch, 1)
        self.emit(row)

    def push_batch(self, batch, port=0):
        """Column kernel: one membership pass, one batched emission.

        The novel rows leave in first-occurrence order as a single
        RowBatch (downstream vectorized operators process one batch
        instead of N pushes) and the progress note aggregates the whole
        wave -- row-identical to the default loop by construction.
        """
        seen = self._seen.state(self._active_epoch())
        seen_add = seen.add
        novel = []
        append = novel.append
        for row in batch.iter_rows():
            if row not in seen:
                seen_add(row)
                append(row)
        if not novel:
            return
        if self._report:
            self.ctx.engine.note_progress(
                self.ctx.query_id, self.ctx.epoch, len(novel)
            )
        if len(novel) == 1:
            self.emit(novel[0])
        else:
            self.emit_batch(RowBatch(rows=novel))

    def seal_epoch(self, k):
        self._seen.seal(k)

    def teardown(self):
        self._seen.clear()


@register_operator("demux")
class Demux(Operator):
    """Fan a shared prefix stage's scan waves into member executions.

    The stage plan is scan -> demux; the engine parks the owning
    :class:`~repro.core.sharing.PrefixRecord` on the stage context
    (``ctx.prefix_record``) and this operator fans every wave of stage
    epoch ``k`` to each subscriber as *its* epoch ``j = k - offset``
    via ``StandingExecution.deliver_scan`` (which re-applies the
    member-side open/sealed/early guards). Pane markers from the stage
    scan ride along so pane-aware tails bucket waves exactly as a
    private scan would announce them.

    Paned stages also retain each emitted pane's rows (pruned below the
    newest window) so a subscriber that joins an already-running stage
    can be backfilled: at its first full boundary the retained panes
    its window still covers are injected once, making its epoch-1
    window identical to a private twin's -- exact parity from the first
    reported epoch onward.
    """

    def __init__(self, ctx, spec):
        super().__init__(ctx, spec)
        geometry = spec.params.get("paned")
        self._paned = bool(geometry)
        if self._paned:
            self._panes_per_every = geometry["every"]
            self._panes_per_window = geometry["window"]
        self._pane = None  # current pane marker from the stage scan
        self._store = {}  # pane -> [rows] retained for joiner backfill

    def _record(self):
        return getattr(self.ctx, "prefix_record", None)

    def _member_pane(self, pane, sub):
        """Translate a stage pane index into the subscriber's numbering.

        Pane indices are aligned to a query's own t0; a member that
        joined ``offset`` epochs after the stage's grid origin numbers
        the same wall-clock pane ``offset * panes_per_every`` lower.
        """
        if pane is None:
            return None
        return pane - sub.offset * self._panes_per_every

    def open_pane(self, pane):
        self._pane = pane  # marker consumed here, not propagated

    def push(self, row, port=0):
        self._fan([row])

    def push_batch(self, batch, port=0):
        self._fan(list(batch.iter_rows()))

    def _fan(self, rows):
        record = self._record()
        if record is None or not rows:
            return
        k = self._active_epoch()
        pane = self._pane if self._paned else None
        if pane is not None:
            self._store.setdefault(pane, []).extend(rows)
        engine = self.ctx.engine
        for sub in list(record.subscribers.values()):
            j = k - sub.offset
            if j < 1:
                # Members never run their epoch 0 (submission instant);
                # the first boundary's open drains backfill instead.
                continue
            if sub.last_epoch is not None and j > sub.last_epoch:
                continue
            execution = engine.prefix_member_execution(sub.qid)
            if execution is not None:
                execution.deliver_scan(
                    list(rows), j, self._member_pane(pane, sub)
                )

    def open_epoch(self, k, t_k):
        record = self._record()
        if record is None or not self._paned:
            return
        lo, hi = window_pane_range(
            k, self._panes_per_every, self._panes_per_window
        )
        engine = self.ctx.engine
        for sub in list(record.subscribers.values()):
            if not sub.needs_backfill or k < sub.start_epoch:
                continue
            sub.needs_backfill = False
            execution = engine.prefix_member_execution(sub.qid)
            if execution is None:
                continue
            j = k - sub.offset
            # Panes emitted at stage epochs < k that epoch k's window
            # still covers: [lo, hi - panes_per_every). The top
            # panes_per_every panes are epoch k's own wave, which fans
            # normally right after this open (sources open last).
            for p in sorted(self._store):
                if lo <= p < hi - self._panes_per_every:
                    execution.deliver_scan(
                        list(self._store[p]), j, self._member_pane(p, sub)
                    )
        for p in [p for p in self._store if p < lo]:
            del self._store[p]

    def teardown(self):
        self._store = {}


@register_operator("union")
class Union(Operator):
    """Bag union: forward rows from any port unchanged."""

    def push(self, row, port=0):
        self.emit(row)


@register_operator("limit")
class Limit(Operator):
    """Stop forwarding after ``limit`` rows (local short-circuit).

    The countdown is per epoch: each epoch answers the LIMIT afresh,
    as a rebuilt operator would.
    """

    def __init__(self, ctx, spec):
        super().__init__(ctx, spec)
        limit = spec.params["limit"]
        # epoch -> [rows still allowed through] (one-slot mutable cell)
        self._remaining = EpochStateRing(lambda: [limit])

    def push(self, row, port=0):
        cell = self._remaining.state(self._active_epoch())
        if cell[0] > 0:
            cell[0] -= 1
            self.emit(row)

    def seal_epoch(self, k):
        self._remaining.seal(k)

    def teardown(self):
        self._remaining.clear()


@register_operator("result")
class ResultReturn(Operator):
    """Ship rows to the query site, batched to save messages.

    Two modes:

    * append (default): rows buffer for ``batch_delay`` (0.25 s) and
      each message carries the increment -- right for streamed selects
      and recursion, where every row is final.
    * replace (``params["replace"]``, aggregate plans): the upstream
      final operators re-emit their *full* state when stragglers
      refine it; each message carries this node's complete current
      contribution and the query site keeps only the latest one.

    Batches are keyed by the epoch that produced their rows, and every
    message carries that epoch so the query site's per-epoch collection
    buckets stay correct even when two epochs are in flight at once.
    """

    def __init__(self, ctx, spec):
        super().__init__(ctx, spec)
        self._replace = spec.params.get("replace", False)
        self._batches = EpochStateRing(list)  # epoch -> [rows]
        self._timer = None
        self._delay = spec.params.get("batch_delay", 0.25)

    def push(self, row, port=0):
        self._batches.state(self._active_epoch()).append(row)
        if self._timer is None:
            self._timer = self.ctx.dht.set_timer(self._delay, self._send)

    def reset_batch(self):
        if self._replace:
            self._batches.seal(self._active_epoch())

    def _send(self):
        self._timer = None
        for epoch in self._batches.epochs():
            self._send_epoch(epoch)

    def _send_epoch(self, epoch):
        rows = self._batches.peek(epoch)
        if not rows:
            return
        if not self._replace:
            self._batches.seal(epoch)
        # One target (the query's own site) for private executions; a
        # spine fans the same rows to every subscriber whose window
        # this epoch answers, each under its own qid and epoch number.
        # Each message gets its own list: replace-mode keeps the batch
        # for refinement re-sends, and receivers must never alias it.
        targets_fn = getattr(self.ctx, "result_targets", None)
        if targets_fn is None:
            self.ctx.send_to_origin({
                "op": "qres", "qid": self.ctx.query_id, "epoch": epoch,
                "node": self.ctx.engine.address, "rows": list(rows),
                "replace": self._replace,
            })
            return
        for qid, origin, their_epoch in targets_fn(epoch):
            self.ctx.dht.direct(origin, {
                "op": "qres",
                "qid": qid,
                "epoch": their_epoch,
                "node": self.ctx.engine.address,
                "rows": list(rows),
                "replace": self._replace,
            })

    def flush(self):
        if self._timer is not None:
            self.ctx.dht.cancel_timer(self._timer)
            self._timer = None
        self._send_epoch(self._active_epoch())

    def seal_epoch(self, k):
        # Last call for the retiring epoch's rows: ship, then forget.
        self._send_epoch(k)
        self._batches.seal(k)

    def teardown(self):
        if self._timer is not None:
            self.ctx.dht.cancel_timer(self._timer)
            self._timer = None
        self._send()
