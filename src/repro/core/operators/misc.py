"""Small operators: distinct, union, limit, and result return.

``distinct`` is the linchpin of recursive queries: DHT-partitioned (by
an exchange keyed on the whole row), it emits only never-seen rows, so
a cyclic plan reaches a fixpoint when no new rows appear anywhere --
which the engine reports to the query site as quiescence.

``result`` is the query-site boundary: rows are batched briefly and
sent directly (not via DHT routing) to the origin node, exactly how
PIER returns answers.
"""

from repro.core.dataflow import Operator
from repro.core.operators import register_operator


@register_operator("distinct")
class Distinct(Operator):
    """Emit each distinct row once, immediately on first arrival.

    Params: ``report_progress`` -- when true (recursive plans), novel
    row counts feed the engine's quiescence reports.
    """

    def __init__(self, ctx, spec):
        super().__init__(ctx, spec)
        self._seen = set()
        self._report = spec.params.get("report_progress", False)

    def push(self, row, port=0):
        if row in self._seen:
            return
        self._seen.add(row)
        if self._report:
            self.ctx.engine.note_progress(self.ctx.query_id, self.ctx.epoch, 1)
        self.emit(row)

    def advance_epoch(self, k, t_k):
        self._seen = set()

    def teardown(self):
        self._seen = set()


@register_operator("union")
class Union(Operator):
    """Bag union: forward rows from any port unchanged."""

    def push(self, row, port=0):
        self.emit(row)


@register_operator("limit")
class Limit(Operator):
    """Stop forwarding after ``limit`` rows (local short-circuit)."""

    def __init__(self, ctx, spec):
        super().__init__(ctx, spec)
        self._remaining = spec.params["limit"]

    def push(self, row, port=0):
        if self._remaining > 0:
            self._remaining -= 1
            self.emit(row)

    def advance_epoch(self, k, t_k):
        # Each epoch answers the LIMIT afresh, as a rebuilt op would.
        self._remaining = self.spec.params["limit"]


@register_operator("result")
class ResultReturn(Operator):
    """Ship rows to the query site, batched to save messages.

    Two modes:

    * append (default): rows buffer for ``batch_delay`` (0.25 s) and
      each message carries the increment -- right for streamed selects
      and recursion, where every row is final.
    * replace (``params["replace"]``, aggregate plans): the upstream
      final operators re-emit their *full* state when stragglers
      refine it; each message carries this node's complete current
      contribution and the query site keeps only the latest one.
    """

    def __init__(self, ctx, spec):
        super().__init__(ctx, spec)
        self._replace = spec.params.get("replace", False)
        self._batch = []
        self._timer = None
        self._delay = spec.params.get("batch_delay", 0.25)

    def push(self, row, port=0):
        self._batch.append(row)
        if self._timer is None:
            self._timer = self.ctx.dht.set_timer(self._delay, self._send)

    def reset_batch(self):
        if self._replace:
            self._batch = []

    def _send(self):
        self._timer = None
        if not self._batch:
            return
        if self._replace:
            rows = list(self._batch)  # keep: later sends resend the cycle
        else:
            rows, self._batch = self._batch, []
        self.ctx.send_to_origin({
            "op": "qres",
            "qid": self.ctx.query_id,
            "epoch": self.ctx.epoch,
            "node": self.ctx.engine.address,
            "rows": rows,
            "replace": self._replace,
        })

    def flush(self):
        if self._timer is not None:
            self.ctx.dht.cancel_timer(self._timer)
            self._timer = None
        self._send()

    def advance_epoch(self, k, t_k):
        # Runs while ctx.epoch still names the epoch being retired, so
        # this last send is tagged for the epoch its rows belong to.
        self.flush()
        self._batch = []

    def teardown(self):
        self.flush()
