"""Operator registry: plan ``kind`` strings -> runtime classes.

Importing this package registers every built-in operator. Third-party
operators can call :func:`register_operator` to add their own kinds --
PIER's "boxes and arrows" interface was explicitly extensible and this
mirrors that.
"""

from repro.util.errors import PlanError

_REGISTRY = {}


def register_operator(kind):
    """Class decorator: make ``kind`` instantiable from an OpSpec."""

    def wrap(cls):
        if kind in _REGISTRY:
            raise PlanError("operator kind {!r} already registered".format(kind))
        _REGISTRY[kind] = cls
        cls.kind = kind
        return cls

    return wrap


def create_operator(ctx, spec):
    cls = _REGISTRY.get(spec.kind)
    if cls is None:
        raise PlanError("unknown operator kind {!r}".format(spec.kind))
    return cls(ctx, spec)


def registered_kinds():
    return sorted(_REGISTRY)


# Import for side effect: each module registers its operators.
from repro.core.operators import scan  # noqa: E402,F401
from repro.core.operators import filter as filter_op  # noqa: E402,F401
from repro.core.operators import project  # noqa: E402,F401
from repro.core.operators import joins  # noqa: E402,F401
from repro.core.operators import bloom  # noqa: E402,F401
from repro.core.operators import groupby  # noqa: E402,F401
from repro.core.operators import topk  # noqa: E402,F401
from repro.core.operators import misc  # noqa: E402,F401
from repro.core import exchange  # noqa: E402,F401
