"""Top-k: ORDER BY ... LIMIT k, network-aware.

A ``partial`` top-k runs before the wire (each node forwards only its
local top k, a classic bandwidth saver); the query site applies the
same sort/cut again globally in its finishing step. Because top-k is
not decomposable the partial phase is *safe* only because every node's
true top k is a superset of its contribution to the global top k.

Row buffers are keyed per epoch so an overlapping-epoch standing plan
can cut every live epoch of its ring concurrently. *Paned* instances (standing plans
with ``WINDOW > EVERY``) buffer per pane instead: top-k has no inverse,
but a window's top k can only come from its panes' top k's, so each
closed pane is cut once to ``k`` rows and every epoch's flush merges
the window's pane caches -- O(k x panes) sorted per epoch instead of
re-buffering the whole overlap.

Params: ``sort_keys`` (list of (Expr, descending?)), ``limit``,
``schema`` (input), optional ``paned`` geometry.
"""

import functools

from repro.core.dataflow import EpochStateRing, Operator
from repro.core.operators import register_operator
from repro.db.window import window_pane_range


def make_sort_cmp(sort_keys, schema):
    """A comparator over rows honouring per-key ASC/DESC."""
    compiled = [(expr.compile(schema), desc) for expr, desc in sort_keys]

    def cmp(row_a, row_b):
        for fn, desc in compiled:
            a, b = fn(row_a), fn(row_b)
            if a == b:
                continue
            # None sorts last regardless of direction, like SQL NULLS LAST.
            if a is None:
                return 1
            if b is None:
                return -1
            if a < b:
                return 1 if desc else -1
            return -1 if desc else 1
        return 0

    return cmp


def sort_rows(rows, sort_keys, schema):
    """Sort rows by the compiled comparator (best first)."""
    return sorted(rows, key=functools.cmp_to_key(make_sort_cmp(sort_keys, schema)))


@register_operator("topk")
class TopK(Operator):
    """Params additionally accept ``replay`` (aggregate-plan top-k):
    in replay mode the buffer participates in streaming refinement --
    a cumulative upstream re-emission resets it, and its own flush
    re-emits without clearing."""

    def __init__(self, ctx, spec):
        super().__init__(ctx, spec)
        self._sort_keys = spec.params["sort_keys"]
        self._limit = spec.params["limit"]
        self._schema = spec.params["schema"]
        self._replay = spec.params.get("replay", False)
        self._note = getattr(ctx.engine, "note_rows_aggregated", None)
        # epoch -> {"rows", "flushed", "timer"}; sealing cancels the
        # epoch's pending replay reflush with its state.
        self._epochs = EpochStateRing(
            lambda: {"rows": [], "flushed": False, "timer": None},
            on_seal=self._cancel_reflush,
        )
        self._paned = (bool(spec.params.get("paned"))
                       and bool(getattr(ctx, "standing", False)))
        if self._paned:
            geometry = spec.params["paned"]
            self._panes_per_every = geometry["every"]
            self._panes_per_window = geometry["window"]
            self._panes = {}  # pane -> rows (cut to limit once closed)
            self._pane_cut = set()
            self._current_pane = None

    def _cancel_reflush(self, entry):
        if entry["timer"] is not None:
            self.ctx.dht.cancel_timer(entry["timer"])
            entry["timer"] = None

    def open_pane(self, pane):
        self._current_pane = pane

    def push(self, row, port=0):
        if self._note is not None:
            self._note(1)
        if self._paned:
            self._panes.setdefault(self._current_pane, []).append(row)
            # A straggler landing in an already-cut pane re-opens it
            # (its cached cut no longer reflects all of its rows; the
            # cut-then-extend superset property keeps this safe).
            self._pane_cut.discard(self._current_pane)
            return
        entry = self._epochs.state(self._active_epoch())
        entry["rows"].append(row)
        if self._replay and entry["flushed"] and entry["timer"] is None:
            entry["timer"] = self.ctx.dht.set_timer(
                0.2, self._reflush, self._active_epoch()
            )

    def push_batch(self, batch, port=0):
        """Vectorized buffer fill: one extend + one counter bump.

        The cut happens at flush, so batching changes nothing about
        the emitted rows -- only the per-row bookkeeping collapses.
        """
        n = len(batch)
        if n == 0:
            return
        if self._note is not None:
            self._note(n)
        rows = batch.rows()
        if self._paned:
            self._panes.setdefault(self._current_pane, []).extend(rows)
            self._pane_cut.discard(self._current_pane)
            return
        entry = self._epochs.state(self._active_epoch())
        entry["rows"].extend(rows)
        if self._replay and entry["flushed"] and entry["timer"] is None:
            entry["timer"] = self.ctx.dht.set_timer(
                0.2, self._reflush, self._active_epoch()
            )

    def _reflush(self, epoch):
        self._run_in_epoch(epoch, self.flush)

    def reset_batch(self):
        if self._replay:
            self._epochs.state(self._active_epoch())["rows"] = []
        super().reset_batch()

    def _cut(self, rows):
        ordered = sort_rows(rows, self._sort_keys, self._schema)
        if self._limit is not None:
            ordered = ordered[: self._limit]
        return ordered

    def flush(self):
        if self._paned:
            self._flush_paned(self._active_epoch())
            return
        entry = self._epochs.state(self._active_epoch())
        self._cancel_reflush(entry)
        entry["flushed"] = True
        ordered = self._cut(entry["rows"])
        if self._replay:
            self.reset_batch()
        else:
            entry["rows"] = []
        for row in ordered:
            self.emit(row)

    def _flush_paned(self, epoch):
        """Assemble epoch ``epoch``'s top k from its panes' top k's.

        Every pane in the window closed with this epoch's boundary, so
        each can be cut to ``limit`` rows once and reused by every
        later window that still covers it.
        """
        lo, hi = window_pane_range(
            epoch, self._panes_per_every, self._panes_per_window
        )
        self._panes = {p: r for p, r in self._panes.items() if p >= lo}
        self._pane_cut = {p for p in self._pane_cut if p >= lo}
        candidates = []
        for p in range(lo, hi):
            rows = self._panes.get(p)
            if rows is None:
                continue
            if p not in self._pane_cut:
                rows = self._panes[p] = self._cut(rows)
                self._pane_cut.add(p)
            candidates.extend(rows)
        for row in self._cut(candidates):
            self.emit(row)

    def seal_epoch(self, k):
        self._epochs.seal(k)

    def teardown(self):
        self._epochs.clear()
        if self._paned:
            self._panes = {}
            self._pane_cut = set()
