"""Top-k: ORDER BY ... LIMIT k, network-aware.

A ``partial`` top-k runs before the wire (each node forwards only its
local top k, a classic bandwidth saver); the query site applies the
same sort/cut again globally in its finishing step. Because top-k is
not decomposable the partial phase is *safe* only because every node's
true top k is a superset of its contribution to the global top k.

Params: ``sort_keys`` (list of (Expr, descending?)), ``limit``,
``schema`` (input).
"""

import functools

from repro.core.dataflow import Operator
from repro.core.operators import register_operator


def make_sort_cmp(sort_keys, schema):
    """A comparator over rows honouring per-key ASC/DESC."""
    compiled = [(expr.compile(schema), desc) for expr, desc in sort_keys]

    def cmp(row_a, row_b):
        for fn, desc in compiled:
            a, b = fn(row_a), fn(row_b)
            if a == b:
                continue
            # None sorts last regardless of direction, like SQL NULLS LAST.
            if a is None:
                return 1
            if b is None:
                return -1
            if a < b:
                return 1 if desc else -1
            return -1 if desc else 1
        return 0

    return cmp


def sort_rows(rows, sort_keys, schema):
    return sorted(rows, key=functools.cmp_to_key(make_sort_cmp(sort_keys, schema)))


@register_operator("topk")
class TopK(Operator):
    """Params additionally accept ``replay`` (aggregate-plan top-k):
    in replay mode the buffer participates in streaming refinement --
    a cumulative upstream re-emission resets it, and its own flush
    re-emits without clearing."""

    def __init__(self, ctx, spec):
        super().__init__(ctx, spec)
        self._sort_keys = spec.params["sort_keys"]
        self._limit = spec.params["limit"]
        self._schema = spec.params["schema"]
        self._replay = spec.params.get("replay", False)
        self._rows = []
        self._flushed = False
        self._reflush_timer = None

    def push(self, row, port=0):
        self._rows.append(row)
        if self._replay and self._flushed and self._reflush_timer is None:
            self._reflush_timer = self.ctx.dht.set_timer(0.2, self.flush)

    def reset_batch(self):
        if self._replay:
            self._rows = []
        super().reset_batch()

    def flush(self):
        if self._reflush_timer is not None:
            self.ctx.dht.cancel_timer(self._reflush_timer)
            self._reflush_timer = None
        self._flushed = True
        ordered = sort_rows(self._rows, self._sort_keys, self._schema)
        if self._limit is not None:
            ordered = ordered[: self._limit]
        if self._replay:
            self.reset_batch()
        else:
            self._rows = []
        for row in ordered:
            self.emit(row)

    def advance_epoch(self, k, t_k):
        if self._reflush_timer is not None:
            self.ctx.dht.cancel_timer(self._reflush_timer)
            self._reflush_timer = None
        self._rows = []
        self._flushed = False

    def teardown(self):
        if self._reflush_timer is not None:
            self.ctx.dht.cancel_timer(self._reflush_timer)
            self._reflush_timer = None
        self._rows = []
