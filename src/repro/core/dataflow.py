"""Per-node execution of an operator graph: one-shot epochs and
long-lived standing executions.

PIER's engine is push-based and non-blocking: scans push rows through
selections/projections into stateful operators (joins, group-bys),
which hold state until their *flush deadline* fires; exchanges move
rows between nodes through the DHT.

Two execution disciplines share the machinery:

* :class:`EpochExecution` -- one node's disposable instantiation of one
  plan for one epoch. One-shot and recursive queries use it.
* :class:`StandingExecution` -- one node's *only* instantiation of a
  standing continuous plan (every continuous plan is standing).
  Operators are built and wired once; at every epoch boundary the
  engine calls :meth:`advance_epoch`, which rolls each operator over
  instead of tearing the graph down and rebuilding it. Exchange
  namespaces are epoch-free and registered once per query, batches
  carry an epoch tag, and arrivals tagged with an already-finished
  epoch are dropped at the door -- the soft-state answer to
  stragglers. A standing execution may also run as a shared *spine*
  serving many canonically identical queries at once: it is then built
  with ``spine`` set and sees a :class:`SharedQueryContext`, whose
  ``s|``-prefixed namespaces and ``result_targets`` fan each epoch's
  answer out to every subscriber (see :mod:`repro.core.sharing`).

Epoch rollover is a *two-phase open/seal lifecycle*. Opening epoch
``k`` (``Operator.open_epoch``) starts fresh per-epoch state and lets
sources emit the new epoch's delta; sealing an epoch
(``Operator.seal_epoch``) ships whatever the operator still holds for
it and discards that epoch's state. How far the two phases separate is
the plan's *epoch ring width* ``N = QueryPlan.epoch_overlap`` (derived
by the planner from the flush schedule: the ceiling of the worst flush
horizon over the period, transfer margin included). The execution
keeps an ordered map of open epoch states and seals epoch ``k - N``
when opening ``k``, so at most ``N`` epoch states are ever live per
operator: ``N = 1`` collapses to the classic single-boundary rollover
(seal ``k-1``, open ``k``), ``N = 2`` is the former two-live-epoch
overlap mode, and longer flush schedules simply widen the ring instead
of falling back to rebuild-per-epoch. Every delivery and flush runs
inside :meth:`LocalQueryContext.in_epoch`, so stateful operators
always know which epoch's state a row or deadline belongs to; their
per-epoch state lives behind :class:`EpochStateRing`, which keeps the
create-on-first-touch / discard-on-seal bookkeeping in one place.

End-of-stream is deliberately absent: a planetary-scale system cannot
agree on "all rows have arrived", so operators flush on plan-specified
deadlines and the query site closes each epoch at the plan's deadline.
Late rows are dropped -- the soft-state philosophy the paper leans on.
"""

from contextlib import contextmanager

from repro.core.batch import RowBatch
from repro.util.errors import PlanError


def plan_live_epochs(plan):
    """A plan's epoch ring width N, clamped the way executions use it.

    The single definition of "how many epoch states stay live at
    once": :class:`StandingExecution` bounds its open-epoch map with
    it, and pane-holding operators (paned group-by finals, paned bloom
    stages) size their pane retention from it -- an older still-open
    epoch may re-read panes after the newest epoch advanced the
    window, so ``(N - 1) * panes_per_every`` extra pane ranges must
    survive pruning. Accepts a missing/stub plan (treated as N = 1).
    """
    return max(1, int(getattr(plan, "epoch_overlap", 1) or 1))


class LocalQueryContext:
    """What operator instances see of their environment.

    For standing executions ``epoch`` / ``t0`` are *mutable*: the
    execution re-points them at each boundary, after the operators have
    finished rolling the previous epoch over. ``active_epoch`` is the
    epoch the *current* push or flush belongs to -- usually equal to
    ``epoch``, but different while an overlapping-epoch execution
    delivers rows (or fires deadlines) for a still-live previous epoch.
    """

    #: True on :class:`SharedQueryContext` only -- operators that care
    #: whether they run under a spine (result fan-out, plan-pull
    #: provenance stamps) test this rather than the class.
    shared = False

    #: Prefix-sharing knobs (set by the engine on member executions).
    #: ``prefix_fed`` makes the plan's scan passive -- rows arrive via
    #: :meth:`StandingExecution.deliver_scan` from the shared stage
    #: instead of a private table subscription. ``prefix_key`` lets
    #: standing exchanges co-route co-tenant queries' rows to one owner
    #: (see :meth:`Exchange route namespaces <repro.core.exchange>`).
    prefix_fed = False
    prefix_key = None

    def __init__(self, engine, plan, query_id, epoch, t0, origin,
                 standing=False):
        self.engine = engine
        self.dht = engine.dht
        self.clock = engine.clock
        self.plan = plan
        self.query_id = query_id
        self.epoch = epoch
        self.t0 = t0  # epoch start (plan-global sim time)
        self.origin = origin  # query-site address for result return
        self.standing = standing
        self.active_epoch = epoch

    @contextmanager
    def in_epoch(self, epoch):
        """Scope ``active_epoch`` to ``epoch`` for one push/flush chain.

        Pushes cascade synchronously through the local graph, so a
        dynamically scoped epoch tag is enough for every operator
        downstream to file the rows under the right epoch state.
        """
        previous, self.active_epoch = self.active_epoch, epoch
        try:
            yield
        finally:
            self.active_epoch = previous

    def namespace(self, op_id, port):
        """DHT namespace for rows bound for (op, port).

        Epoch-scoped for disposable executions; epoch-free for standing
        ones, where the engine registers delivery once per query and
        batches carry the epoch as data instead.
        """
        if self.standing:
            return "q|{}|{}|{}".format(self.query_id, op_id, port)
        return "q|{}|{}|{}|{}".format(self.query_id, self.epoch, op_id, port)

    def upcall_name(self, op_id, port):
        """Intercept name for aggregation-tree combining on this edge."""
        if self.standing:
            return "t|{}|{}|{}".format(self.query_id, op_id, port)
        return "t|{}|{}|{}|{}".format(self.query_id, self.epoch, op_id, port)

    def route_namespace(self, op_id):
        """ROUTING namespace for the exchange feeding ``op_id``.

        Usually the ``"x"``-port delivery namespace; prefix-sharing
        members instead route under a namespace derived from the shared
        prefix key, so co-tenant queries' equal routing ids rendezvous
        at the SAME owner and their batches can be multiplexed into one
        wire message. Delivery stays per-query (``payload["ns"]``), so
        the owner demultiplexes back to each query's own operator.
        """
        if self.prefix_key is not None and self.standing:
            return "p|{}|{}|x".format(self.prefix_key, op_id)
        return self.namespace(op_id, "x")

    def fragment(self, table_name):
        """This node's local/stream fragment of ``table_name``."""
        return self.engine.fragment(table_name)

    def send_to_origin(self, payload):
        """Ship a payload directly to the query site (result return)."""
        self.dht.direct(self.origin, payload)

    def rep_qid(self):
        """A representative query id for plan-pull provenance.

        A private execution is its own representative; a spine answers
        with any live subscriber's qid (they all carry identical
        plans).
        """
        return self.query_id

    def result_targets(self, epoch):
        """Who gets this epoch's rows: ``(qid, origin, their_epoch)``
        triples. One target (ourselves) here; a spine fans out."""
        return ((self.query_id, self.origin, epoch),)


class SharedQueryContext(LocalQueryContext):
    """Context for a spine execution serving N subscriber queries.

    The query id IS the spine key, namespaces move to the ``s|`` / ``ts|``
    prefixes (so private ``q|`` plumbing and shared plumbing can never
    collide even if a qid equalled a spine key), and result fan-out
    translates each spine epoch to every subscriber's own epoch number
    via its grid offset. ``origin`` is this node itself -- a spine has
    no single query site; results go to each subscriber's origin.
    """

    shared = True

    def __init__(self, engine, plan, spine, epoch, t0):
        super().__init__(
            engine, plan, spine.key, epoch, t0, engine.address,
            standing=True,
        )
        self.spine = spine

    def namespace(self, op_id, port):
        return "s|{}|{}|{}".format(self.query_id, op_id, port)

    def upcall_name(self, op_id, port):
        return "ts|{}|{}|{}".format(self.query_id, op_id, port)

    def rep_qid(self):
        return self.spine.rep_qid()

    def result_targets(self, epoch):
        """Fan spine epoch ``epoch`` to every subscriber it answers.

        Subscriber epoch ``j = epoch - offset``: ``j < 1`` predates the
        subscriber's first window (its epoch 0 is the submission
        instant, never reported), ``j > last_epoch`` is past its
        LIFETIME.
        """
        targets = []
        for sub in self.spine.subscribers.values():
            j = epoch - sub.offset
            if j < 1:
                continue
            if sub.last_epoch is not None and j > sub.last_epoch:
                continue
            targets.append((sub.qid, sub.origin, j))
        return targets


class EpochStateRing:
    """Per-epoch operator state behind the open/seal lifecycle.

    Every stateful operator holds what it has accumulated for each live
    epoch (hash tables, group states, pending batches, reflush timers)
    in one *state object per epoch*. The ring owns the bookkeeping that
    used to be re-implemented per operator:

    * ``state(epoch)`` creates the epoch's state lazily on first touch
      (``factory()``), so an epoch that never sees a row costs nothing;
    * ``seal(epoch)`` pops the state exactly once, running ``on_seal``
      (timer cancellation and the like) before handing it back to the
      caller -- after a seal the epoch's memory is reclaimed and any
      straggler touching it simply starts from ``peek() is None``;
    * ``clear()`` is teardown: every live state is sealed.

    The execution bounds how many epochs are live at once (its plan's
    ``epoch_overlap``); the ring itself only promises that state for an
    epoch exists between first touch and seal, and never after.
    """

    __slots__ = ("_factory", "_on_seal", "_states")

    def __init__(self, factory, on_seal=None):
        self._factory = factory
        self._on_seal = on_seal
        self._states = {}

    def state(self, epoch):
        """The epoch's state, created on first touch."""
        state = self._states.get(epoch)
        if state is None:
            state = self._states[epoch] = self._factory()
        return state

    def peek(self, epoch):
        """The epoch's state if it was ever touched and not yet sealed."""
        return self._states.get(epoch)

    def seal(self, epoch):
        """Discard (and return) the epoch's state; ``on_seal`` runs first."""
        state = self._states.pop(epoch, None)
        if state is not None and self._on_seal is not None:
            self._on_seal(state)
        return state

    def epochs(self):
        """Live epochs, ascending."""
        return sorted(self._states)

    def items(self):
        """(epoch, state) pairs for every live epoch, ascending."""
        return [(e, self._states[e]) for e in sorted(self._states)]

    def clear(self):
        """Teardown: seal every live epoch."""
        states, self._states = self._states, {}
        if self._on_seal is not None:
            for state in states.values():
                self._on_seal(state)

    def __contains__(self, epoch):
        return epoch in self._states

    def __len__(self):
        return len(self._states)

    def __repr__(self):
        return "EpochStateRing(live={})".format(sorted(self._states))


class Operator:
    """Base class for operator instances.

    Lifecycle: ``start`` (once, after wiring; scans emit here), then any
    number of ``push(row, port)`` calls, then ``flush`` at the plan's
    deadline for this op (stateful ops emit held state), finally
    ``teardown``. ``control`` receives coordinator control messages
    (e.g. a merged Bloom filter).

    Standing executions add the epoch lifecycle. ``open_epoch(k, t_k)``
    begins epoch ``k``: sources emit the new epoch's delta, stateful
    operators lazily start a fresh per-epoch state on first push.
    ``seal_epoch(k)`` finishes epoch ``k`` at this operator: ship
    whatever is still held under that epoch's tag (exchanges, result
    sinks) or discard it (post-flush straggler state), exactly where a
    disposable per-epoch execution's teardown would have. The execution keeps up to
    ``plan.epoch_overlap`` epochs open at once and drives the two
    phases directly -- sealing ``k - N`` before opening ``k`` -- so an
    operator never needs to know the ring width. Stateful operators
    key their state by ``ctx.active_epoch`` (kept in an
    :class:`EpochStateRing`), which the execution scopes around every
    delivery and flush.

    Paned plans additionally thread ``open_pane(p)`` markers through
    the local chain between a stream scan and the pane-aware stateful
    operator above it: the scan announces which pane the next emitted
    rows belong to, stateless operators forward the marker, and the
    pane-aware consumer switches its accumulation bucket.
    """

    #: Engine batch counter, resolved once at construction (class-level
    #: default so stub operators that skip ``__init__`` still emit).
    _note_batches = None

    def __init__(self, ctx, spec):
        self.ctx = ctx
        self.spec = spec
        self.consumers = []  # (operator instance, port)
        self._note_batches = getattr(
            getattr(ctx, "engine", None), "note_batches_pushed", None
        )

    def wire(self, consumer, port):
        """Connect this operator's output to ``consumer``'s input port."""
        self.consumers.append((consumer, port))

    def start(self):
        """Run once after the graph is wired; sources emit here."""
        pass

    def push(self, row, port=0):
        """Receive one row on ``port`` (operators without inputs raise)."""
        raise NotImplementedError(
            "{} does not accept input".format(type(self).__name__)
        )

    def push_batch(self, batch, port=0):
        """Receive a :class:`RowBatch` on ``port``.

        The default unrolls to row-at-a-time ``push`` so the long tail
        of operators keeps working unchanged; hot-path operators
        (select, project, group-by partial, top-k, exchange) override
        it with column loops. Overrides must produce *row-identical*
        output to the unrolled default -- the property tests hold them
        to it.
        """
        push = self.push
        for row in batch.iter_rows():
            push(row, port)

    def flush(self):
        """Plan deadline for this op: emit held state downstream.

        Runs inside ``ctx.in_epoch`` scoping, so per-epoch operators
        flush exactly the state of ``ctx.active_epoch``.
        """
        pass

    def control(self, payload):
        """Receive a coordinator control message (Bloom filters etc.)."""
        pass

    def open_epoch(self, k, t_k):
        """Begin epoch ``k`` (sources emit the epoch's delta here)."""
        pass

    def seal_epoch(self, k):
        """Finish epoch ``k``: ship or drop anything still held for it."""
        pass

    def teardown(self):
        """Execution is closing: release subscriptions, ship leftovers."""
        pass

    def emit(self, row):
        """Push ``row`` to every wired consumer."""
        for consumer, port in self.consumers:
            consumer.push(row, port)

    def emit_batch(self, batch):
        """Push a :class:`RowBatch` to every wired consumer.

        Counted once per producing operator call (``batches_pushed``),
        however many consumers receive it.
        """
        if self._note_batches is not None:
            self._note_batches(1)
        for consumer, port in self.consumers:
            consumer.push_batch(batch, port)

    def open_pane(self, pane):
        """A paned producer announces the pane its next rows belong to.

        Stateless operators forward the marker down the local chain;
        pane-aware stateful operators (group-by partials and finals,
        top-k, bloom stages, pane-tagged exchanges) override this to
        switch their accumulation bucket and stop the propagation.
        Markers also survive the network: a pane-tagged exchange stamps
        each batch with the pane it was pushed under, and delivery
        re-announces it on the receiving side before pushing the rows.
        """
        for consumer, _port in self.consumers:
            consumer.open_pane(pane)

    def announce_pane(self, pane):
        """Tell consumers which pane the next emitted rows belong to.

        Producers that *re-emit* pane-bucketed state (a delta-shipping
        group-by partial, a fetch-matches join releasing async replies)
        use this instead of ``open_pane`` -- calling their own
        ``open_pane`` would hit their receiver override rather than
        their consumers.
        """
        for consumer, _port in self.consumers:
            consumer.open_pane(pane)

    def reset_batch(self):
        """A cumulative upstream operator is about to re-emit its full
        state (streaming refinement after stragglers). Stateless ops
        just propagate; replace-mode sinks clear their current batch.
        """
        for consumer, _port in self.consumers:
            consumer.reset_batch()

    def _active_epoch(self):
        """Epoch tag for the current push/flush (stub-context safe)."""
        ctx = self.ctx
        return getattr(ctx, "active_epoch", getattr(ctx, "epoch", 0))

    def _run_in_epoch(self, epoch, fn):
        """Run ``fn`` with ``ctx.active_epoch`` scoped to ``epoch``.

        Operator-internal timers (refinement re-flushes, async fetch
        replies) fire outside the execution's own epoch scoping and use
        this to restore the epoch their state belongs to.
        """
        scope = getattr(self.ctx, "in_epoch", None)
        if scope is None:
            fn()
            return
        with scope(epoch):
            fn()

    def __repr__(self):
        return "{}({!r})".format(type(self).__name__, self.spec.op_id)


class _ExecutionBase:
    """Shared graph instantiation, delivery, and flush scheduling."""

    standing = False

    def __init__(self, engine, plan, query_id, epoch, t0, origin,
                 spine=None, prefix_key=None):
        from repro.core.operators import create_operator

        self.engine = engine
        self.plan = plan
        self.query_id = query_id
        self.epoch = epoch
        self.t0 = t0
        self.origin = origin
        if spine is not None:
            self.ctx = SharedQueryContext(engine, plan, spine, epoch, t0)
        else:
            self.ctx = LocalQueryContext(
                engine, plan, query_id, epoch, t0, origin,
                standing=self.standing,
            )
        if prefix_key is not None:
            self.ctx.prefix_fed = True
            self.ctx.prefix_key = prefix_key
        self.ops = {}
        self._flush_timers = []
        self.closed = False

        for spec in plan.specs.values():
            self.ops[spec.op_id] = create_operator(self.ctx, spec)
        for spec in plan.specs.values():
            producer = self.ops[spec.op_id]
            for consumer_id, port in plan.consumers_of(spec.op_id):
                producer.wire(self.ops[consumer_id], port)

    def start(self):
        """Register network endpoints, start ops (sources last)."""
        self._register_endpoints()
        sources = self._source_ids()
        for op_id, op in self.ops.items():
            if op_id not in sources:
                op.start()
        for op_id in sources:
            self.ops[op_id].start()
        self._schedule_flushes()

    def _source_ids(self):
        return {s.op_id for s in self.plan.sources()}

    def _register_endpoints(self):
        """Tell the engine which exchange namespaces feed which ops."""
        for spec in self.plan.ops_of_kind("exchange"):
            consumers = self.plan.consumers_of(spec.op_id)
            if len(consumers) != 1:
                raise PlanError(
                    "exchange {!r} must feed exactly one op".format(spec.op_id)
                )
            consumer_id, port = consumers[0]
            mode = spec.params.get("mode", "rehash")
            if mode in ("rehash", "tree"):
                ns = self.ctx.namespace(consumer_id, port)
                combine = spec.params.get("combine") if mode == "tree" else None
                self.engine.register_exchange_input(
                    ns, self, consumer_id, port, combine,
                    standing=self.standing,
                )

    def _unregister_endpoints(self):
        for spec in self.plan.ops_of_kind("exchange"):
            consumers = self.plan.consumers_of(spec.op_id)
            if consumers:
                consumer_id, port = consumers[0]
                ns = self.ctx.namespace(consumer_id, port)
                self.engine.unregister_exchange_input(ns)

    def _schedule_flushes(self, epoch=None, t0=None):
        """Arm one timer per planned flush offset, bound to ``epoch``.

        Timers are tracked as ``(epoch, timer)`` so a standing
        execution can cancel exactly one epoch's deadlines when it
        seals that epoch.
        """
        now = self.engine.clock.now
        epoch = epoch if epoch is not None else self.ctx.epoch
        t0 = t0 if t0 is not None else self.ctx.t0
        for op_id, offset in self.plan.flush_offsets.items():
            if op_id not in self.ops:
                continue
            delay = max(0.0, t0 + offset - now)
            timer = self.engine.set_timer(delay, self._flush_op, op_id, epoch)
            self._flush_timers.append((epoch, timer))

    def _flush_op(self, op_id, epoch=None):
        if self.closed:
            return
        epoch = epoch if epoch is not None else self.ctx.epoch
        with self.ctx.in_epoch(epoch):
            self.ops[op_id].flush()

    def flush_input(self, op_id, epoch):
        """Flush one operator's held state for ``epoch`` out of band.

        The engine uses this after replaying early-buffered exchange
        rows into a freshly adopted execution: the epoch's scheduled
        flush wave may already be past (or dangerously far off on a
        node that might churn again), and replayed rows should reach
        the query site as soon as they land.
        """
        self._flush_op(op_id, epoch)

    def deliver(self, op_id, port, row):
        """A row arrived over an exchange for one of our operators."""
        if not self.closed:
            self.ops[op_id].push(row, port)

    def deliver_batch(self, op_id, port, rows, pane=None):
        """A batched exchange message arrived: feed the consumer batch.

        ``pane`` is the batch's pane tag (pane-tagged exchanges of
        paned plans); it is re-announced to the receiving operator
        before the rows so per-pane state lands in the right bucket.
        Multi-row arrivals go through the consumer's ``push_batch``
        (vectorized operators process them as one batch); single rows
        skip the batch wrapper.
        """
        if self.closed:
            return
        op = self.ops[op_id]
        if pane is not None:
            op.open_pane(pane)
        rows = list(rows)
        if len(rows) == 1:
            op.push(rows[0], port)
        else:
            op.push_batch(RowBatch(rows=rows), port)

    def control(self, op_id, payload, epoch=None):
        """Deliver a control payload to one op, or to a filter group.

        Bloom control messages target a group id shared by both stage
        ops of a join rather than a single op id, and carry the epoch
        whose filters they complete: delivery is scoped to that epoch
        so per-epoch operator state files the release correctly.
        """
        if self.closed:
            return
        targets = []
        op = self.ops.get(op_id)
        if op is not None:
            targets.append(op)
        else:
            targets = [
                candidate for candidate in self.ops.values()
                if candidate.spec.params.get("group") == op_id
            ]
        with self.ctx.in_epoch(epoch if epoch is not None else self.ctx.epoch):
            for target in targets:
                target.control(payload)

    def close(self):
        """Tear the execution down: cancel timers, teardown every op,
        release this node's exchange registrations. Idempotent; later
        deliveries hit the ``closed`` guard and drop."""
        if self.closed:
            return
        self.closed = True
        for _epoch, timer in self._flush_timers:
            timer.cancel()
        self._flush_timers = []
        # Teardown before unregistering: an exchange's teardown flush
        # can deliver self-owned rows synchronously, and with the
        # namespace still registered they hit this execution's closed
        # guard (a cheap drop) instead of the engine's unclaimed-row
        # buffer (held for its whole TTL).
        for op in self.ops.values():
            op.teardown()
        self._unregister_endpoints()


class EpochExecution(_ExecutionBase):
    """One node's disposable instantiation of a plan for one epoch."""

    def __repr__(self):
        return "EpochExecution({!r}, epoch={}, node={})".format(
            self.query_id, self.epoch, self.engine.address
        )


class StandingExecution(_ExecutionBase):
    """One node's long-lived instantiation of a standing continuous plan.

    Built once when the query is adopted; the engine's epoch timers
    then call :meth:`advance_epoch` at each boundary. Exchange inputs
    are registered once (epoch-free namespaces), so the engine's
    early-row buffering window shrinks to first adoption only, and
    arrivals carry an epoch tag checked here: tags for sealed epochs
    are dropped as late, early tags (a sender whose boundary timer
    fired first) are parked until this node advances.

    The execution keeps an ordered map of open epochs bounded by the
    plan's ring width ``N = plan.epoch_overlap``: opening epoch ``k``
    seals every epoch at or below ``k - N``. A sealed epoch's still-
    pending flush timers are cancelled with it; the surviving epochs'
    deadlines -- which may stretch several periods past their boundary
    -- keep firing against their own state, and exchange arrivals
    tagged with any open epoch still land in it. ``N = 1`` is the
    classic one-live-epoch rollover; larger ``N`` is how slow flush
    schedules (tree holds, bloom round-trips) run standing instead of
    rebuilding per epoch.
    """

    standing = True

    def __init__(self, engine, plan, query_id, epoch, t0, origin,
                 spine=None, prefix_key=None):
        super().__init__(engine, plan, query_id, epoch, t0, origin,
                         spine=spine, prefix_key=prefix_key)
        self.live_epochs = plan_live_epochs(plan)
        self._early = {}  # epoch -> [(op_id, port, rows)]
        self._early_scan = {}  # epoch -> [(rows, pane)] from a prefix stage
        self._open_epochs = {epoch: t0}  # epoch -> t_k, ascending
        self._sealed_through = epoch - 1  # epochs <= this are closed here
        # Adaptive ring: the planner records the plan's *true* flush
        # horizon (no static cap since it was retired); the execution
        # decides how many epoch states actually stay live. Start
        # clamped at ring_max_overlap, widen by one whenever a boundary
        # saw late-straggler drops, narrow after a run of quiet
        # boundaries -- but never below what the tail demonstrably
        # needs (the staleness high-water mark of recent deliveries).
        # Paned plans opt out: their pane retention is sized from the
        # planned width, so the ring must not outgrow it.
        config = getattr(engine, "config", None)
        self._adaptive_ring = (
            bool(getattr(config, "adaptive_ring", True))
            and getattr(plan, "pane", None) is None
        )
        self._ring_max = max(1, int(getattr(config, "ring_max_overlap", 64)))
        self._ring_quiet = max(1, int(
            getattr(config, "ring_quiet_boundaries", 4)
        ))
        if self._adaptive_ring or self.live_epochs > self._ring_max:
            self.live_epochs = min(self.live_epochs, self._ring_max)
        # The planned width stays the floor: it is the flush horizon
        # the timing walk proved the plan needs, so narrowing below it
        # would seal epochs before their own flushes fire. Adaptation
        # happens above it -- widen past the plan on observed drops,
        # then decay back.
        self._ring_floor = self.live_epochs
        self.late_drops = 0  # total late drops at this execution
        self._drops_since_boundary = 0
        self._quiet_boundaries = 0
        self._stale_high = 0  # max delivery staleness seen recently

    @property
    def overlap(self):
        """True when the ring holds more than one live epoch."""
        return self.live_epochs > 1

    @property
    def current_epoch(self):
        """The newest open epoch (what the engine indexes this node's
        execution under)."""
        return self.ctx.epoch

    def advance_epoch(self, k, t_k):
        """Epoch boundary: open ``k``, sealing every epoch <= ``k - N``."""
        if self.closed:
            return
        if self._adaptive_ring:
            self._resize_ring()
        for stale in sorted(
            e for e in self._open_epochs if e <= k - self.live_epochs
        ):
            self._seal_epoch(stale)
        now = self.engine.clock.now
        self._flush_timers = [
            (e, t) for e, t in self._flush_timers
            if not t.cancelled and t.time > now
        ]
        self._open_epochs[k] = t_k
        self._move_context(k, t_k)
        sources = self._source_ids()
        for op_id, op in self.ops.items():
            if op_id not in sources:
                op.open_epoch(k, t_k)
        self._schedule_flushes(k, t_k)
        # Sources last: scans emit the new epoch's delta into consumers
        # that have already opened it.
        for op_id in sources:
            self.ops[op_id].open_epoch(k, t_k)
        for op_id, port, rows, pane in self._early.pop(k, ()):
            self.deliver_batch(op_id, port, rows, k, pane)
        for rows, pane in self._early_scan.pop(k, ()):
            self.deliver_scan(rows, k, pane)

    def _resize_ring(self):
        """Adapt the ring width to the observed straggler tail.

        Widen by one after any boundary interval that dropped late
        rows (capped at ``ring_max_overlap``); after ``ring_quiet``
        drop-free boundaries, narrow by one back toward the planned
        floor -- but never below the recent delivery-staleness
        high-water mark + 1, so a tail that genuinely uses the extra
        width keeps it and the widen/narrow pair cannot oscillate
        against real stragglers. The staleness mark decays one epoch
        per boundary, letting a spike age out.
        """
        if self._drops_since_boundary:
            self._drops_since_boundary = 0
            self._quiet_boundaries = 0
            if self.live_epochs < self._ring_max:
                self.live_epochs += 1
                if hasattr(self.engine, "ring_widenings"):
                    self.engine.ring_widenings += 1
        else:
            self._quiet_boundaries += 1
            needed = max(self._ring_floor, self._stale_high + 1)
            if (self._quiet_boundaries >= self._ring_quiet
                    and self.live_epochs > needed):
                self.live_epochs -= 1
                self._quiet_boundaries = 0
        if self._stale_high > 0:
            self._stale_high -= 1

    def _note_late_drop(self):
        self.late_drops += 1
        self._drops_since_boundary += 1
        if hasattr(self.engine, "ring_late_drops"):
            self.engine.ring_late_drops += 1

    def _move_context(self, k, t_k):
        self.ctx.epoch = k
        self.ctx.t0 = t_k
        self.ctx.active_epoch = k
        self.epoch = k
        self.t0 = t_k

    def _seal_epoch(self, e):
        """Close epoch ``e`` everywhere: ship leftovers, drop its state."""
        self._open_epochs.pop(e, None)
        self._early.pop(e, None)
        self._early_scan.pop(e, None)
        kept = []
        for epoch, timer in self._flush_timers:
            if epoch == e:
                timer.cancel()
            else:
                kept.append((epoch, timer))
        self._flush_timers = kept
        sources = self._source_ids()
        with self.ctx.in_epoch(e):
            for op_id, op in self.ops.items():
                if op_id not in sources:
                    op.seal_epoch(e)
            for op_id in sources:
                self.ops[op_id].seal_epoch(e)
        self._sealed_through = max(self._sealed_through, e)

    def deliver(self, op_id, port, row, epoch=None, pane=None):
        """Single-row exchange arrival (see :meth:`deliver_batch`)."""
        self.deliver_batch(op_id, port, (row,), epoch, pane)

    def deliver_batch(self, op_id, port, rows, epoch=None, pane=None):
        """Exchange arrival tagged ``epoch``: deliver into that epoch's
        state if it is open here, drop it as late if already sealed,
        park it as early if this node has not opened it yet. ``pane``
        is the batch's pane tag (paned plans); it is re-announced to
        the receiving operator before the rows land."""
        if self.closed:
            return
        if epoch is None:
            epoch = self.ctx.epoch
        if epoch not in self._open_epochs:
            if epoch <= self._sealed_through:
                # Late: that epoch already closed here. Untagged rows
                # drop (their per-epoch state is gone), but a
                # pane-tagged increment is *ship-once* delta state
                # whose pane store deliberately outlives epochs --
                # dropping it would under-count every remaining window
                # covering the pane. Re-file it under the oldest open
                # epoch instead; the pane tag, not the epoch, decides
                # where it lands.
                if pane is None or not self._open_epochs:
                    self._note_late_drop()
                    return
                epoch = min(self._open_epochs)
            elif epoch > self.ctx.epoch + 2:
                return  # implausibly far ahead: don't park unboundedly
            else:
                self._early.setdefault(epoch, []).append(
                    (op_id, port, list(rows), pane)
                )
                return
        elif epoch < self.ctx.epoch:
            # An open-but-old epoch: how far behind the newest this
            # delivery ran is the staleness the adaptive ring must
            # keep covering when it considers narrowing.
            stale = self.ctx.epoch - epoch
            if stale > self._stale_high:
                self._stale_high = stale
        op = self.ops[op_id]
        with self.ctx.in_epoch(epoch):
            if pane is not None:
                op.open_pane(pane)
            rows = list(rows)
            if len(rows) == 1:
                op.push(rows[0], port)
            else:
                op.push_batch(RowBatch(rows=rows), port)

    def deliver_scan(self, rows, epoch, pane=None):
        """Scan rows arrived from a shared prefix stage for ``epoch``.

        A prefix-fed member's scan is passive; the stage's demux calls
        this instead, with the member's own epoch number. Guards mirror
        :meth:`deliver_batch`: sealed epochs drop (pane-tagged rows
        re-file under the oldest open epoch -- the pane, not the epoch,
        decides where windowed state lands), epochs this member has not
        opened yet park in ``_early_scan`` until its boundary timer
        fires (the stage timer can fire first at a shared instant), and
        implausibly far-ahead tags drop.
        """
        if self.closed:
            return
        if epoch not in self._open_epochs:
            if epoch <= self._sealed_through:
                if pane is None or not self._open_epochs:
                    self._note_late_drop()
                    return
                epoch = min(self._open_epochs)
            elif epoch > self.ctx.epoch + 2:
                return
            else:
                self._early_scan.setdefault(epoch, []).append(
                    (list(rows), pane)
                )
                return
        scan_id = self._prefix_scan_id()
        if scan_id is None:
            return
        with self.ctx.in_epoch(epoch):
            self.ops[scan_id].inject_rows(list(rows), pane)

    def _prefix_scan_id(self):
        scans = [s.op_id for s in self.plan.ops_of_kind("scan")]
        return scans[0] if len(scans) == 1 else None

    def close(self):
        self._early = {}
        self._early_scan = {}
        self._open_epochs = {}
        super().close()

    def __repr__(self):
        return "StandingExecution({!r}, epoch={}, node={})".format(
            self.query_id, self.ctx.epoch, self.engine.address
        )
