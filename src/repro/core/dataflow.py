"""Per-node execution of an operator graph: one-shot epochs and
long-lived standing executions.

PIER's engine is push-based and non-blocking: scans push rows through
selections/projections into stateful operators (joins, group-bys),
which hold state until their *flush deadline* fires; exchanges move
rows between nodes through the DHT.

Two execution disciplines share the machinery:

* :class:`EpochExecution` -- one node's instantiation of one plan for
  one epoch. One-shot and recursive queries use it, as do continuous
  plans whose flush schedule spills past the epoch period (overlapping
  epochs need two live copies of the stateful operators, which only
  disposable per-epoch instances provide).
* :class:`StandingExecution` -- one node's *only* instantiation of a
  standing continuous plan. Operators are built and wired once; at
  every epoch boundary the engine calls :meth:`advance_epoch`, which
  rolls each operator over (ship or drop the old epoch's held state,
  reset for the new one) instead of tearing the graph down and
  rebuilding it. Exchange namespaces are epoch-free and registered
  once per query, batches carry an epoch tag, and arrivals tagged with
  an already-finished epoch are dropped at the door -- the soft-state
  answer to stragglers.

End-of-stream is deliberately absent: a planetary-scale system cannot
agree on "all rows have arrived", so operators flush on plan-specified
deadlines and the query site closes each epoch at the plan's deadline.
Late rows are dropped -- the soft-state philosophy the paper leans on.
"""

from repro.util.errors import PlanError


class LocalQueryContext:
    """What operator instances see of their environment.

    For standing executions ``epoch`` / ``t0`` are *mutable*: the
    execution re-points them at each boundary, after the operators have
    finished rolling the previous epoch over.
    """

    def __init__(self, engine, plan, query_id, epoch, t0, origin,
                 standing=False):
        self.engine = engine
        self.dht = engine.dht
        self.clock = engine.clock
        self.plan = plan
        self.query_id = query_id
        self.epoch = epoch
        self.t0 = t0  # epoch start (plan-global sim time)
        self.origin = origin  # query-site address for result return
        self.standing = standing

    def namespace(self, op_id, port):
        """DHT namespace for rows bound for (op, port).

        Epoch-scoped for disposable executions; epoch-free for standing
        ones, where the engine registers delivery once per query and
        batches carry the epoch as data instead.
        """
        if self.standing:
            return "q|{}|{}|{}".format(self.query_id, op_id, port)
        return "q|{}|{}|{}|{}".format(self.query_id, self.epoch, op_id, port)

    def upcall_name(self, op_id, port):
        """Intercept name for aggregation-tree combining on this edge."""
        if self.standing:
            return "t|{}|{}|{}".format(self.query_id, op_id, port)
        return "t|{}|{}|{}|{}".format(self.query_id, self.epoch, op_id, port)

    def fragment(self, table_name):
        return self.engine.fragment(table_name)

    def send_to_origin(self, payload):
        self.dht.direct(self.origin, payload)


class Operator:
    """Base class for operator instances.

    Lifecycle: ``start`` (once, after wiring; scans emit here), then any
    number of ``push(row, port)`` calls, then ``flush`` at the plan's
    deadline for this op (stateful ops emit held state), finally
    ``teardown``. ``control`` receives coordinator control messages
    (e.g. a merged Bloom filter).

    Standing executions add ``advance_epoch(k, t_k)``: finish the
    previous epoch (ship held output where the rebuild path would have,
    discard per-epoch state otherwise) and get ready for epoch ``k``.
    It runs in two waves -- non-source operators first, while
    ``ctx.epoch`` still names the epoch being retired, then sources
    after the context has moved, so scans emit the new epoch's delta
    into already-reset consumers. The default is a no-op: stateless
    operators carry nothing across the boundary.
    """

    def __init__(self, ctx, spec):
        self.ctx = ctx
        self.spec = spec
        self.consumers = []  # (operator instance, port)

    def wire(self, consumer, port):
        self.consumers.append((consumer, port))

    def start(self):
        pass

    def push(self, row, port=0):
        raise NotImplementedError(
            "{} does not accept input".format(type(self).__name__)
        )

    def flush(self):
        pass

    def control(self, payload):
        pass

    def advance_epoch(self, k, t_k):
        pass

    def teardown(self):
        pass

    def emit(self, row):
        for consumer, port in self.consumers:
            consumer.push(row, port)

    def reset_batch(self):
        """A cumulative upstream operator is about to re-emit its full
        state (streaming refinement after stragglers). Stateless ops
        just propagate; replace-mode sinks clear their current batch.
        """
        for consumer, _port in self.consumers:
            consumer.reset_batch()

    def __repr__(self):
        return "{}({!r})".format(type(self).__name__, self.spec.op_id)


class _ExecutionBase:
    """Shared graph instantiation, delivery, and flush scheduling."""

    standing = False

    def __init__(self, engine, plan, query_id, epoch, t0, origin):
        from repro.core.operators import create_operator

        self.engine = engine
        self.plan = plan
        self.query_id = query_id
        self.epoch = epoch
        self.t0 = t0
        self.origin = origin
        self.ctx = LocalQueryContext(
            engine, plan, query_id, epoch, t0, origin, standing=self.standing
        )
        self.ops = {}
        self._flush_timers = []
        self.closed = False

        for spec in plan.specs.values():
            self.ops[spec.op_id] = create_operator(self.ctx, spec)
        for spec in plan.specs.values():
            producer = self.ops[spec.op_id]
            for consumer_id, port in plan.consumers_of(spec.op_id):
                producer.wire(self.ops[consumer_id], port)

    def start(self):
        """Register network endpoints, start ops (sources last)."""
        self._register_endpoints()
        sources = self._source_ids()
        for op_id, op in self.ops.items():
            if op_id not in sources:
                op.start()
        for op_id in sources:
            self.ops[op_id].start()
        self._schedule_flushes()

    def _source_ids(self):
        return {s.op_id for s in self.plan.sources()}

    def _register_endpoints(self):
        """Tell the engine which exchange namespaces feed which ops."""
        for spec in self.plan.ops_of_kind("exchange"):
            consumers = self.plan.consumers_of(spec.op_id)
            if len(consumers) != 1:
                raise PlanError(
                    "exchange {!r} must feed exactly one op".format(spec.op_id)
                )
            consumer_id, port = consumers[0]
            mode = spec.params.get("mode", "rehash")
            if mode in ("rehash", "tree"):
                ns = self.ctx.namespace(consumer_id, port)
                combine = spec.params.get("combine") if mode == "tree" else None
                self.engine.register_exchange_input(
                    ns, self, consumer_id, port, combine,
                    standing=self.standing,
                )

    def _unregister_endpoints(self):
        for spec in self.plan.ops_of_kind("exchange"):
            consumers = self.plan.consumers_of(spec.op_id)
            if consumers:
                consumer_id, port = consumers[0]
                ns = self.ctx.namespace(consumer_id, port)
                self.engine.unregister_exchange_input(ns)

    def _schedule_flushes(self):
        now = self.engine.clock.now
        for op_id, offset in self.plan.flush_offsets.items():
            if op_id not in self.ops:
                continue
            delay = max(0.0, self.ctx.t0 + offset - now)
            timer = self.engine.set_timer(delay, self._flush_op, op_id)
            self._flush_timers.append(timer)

    def _flush_op(self, op_id):
        if not self.closed:
            self.ops[op_id].flush()

    def deliver(self, op_id, port, row):
        """A row arrived over an exchange for one of our operators."""
        if not self.closed:
            self.ops[op_id].push(row, port)

    def deliver_batch(self, op_id, port, rows):
        """A batched exchange message arrived: push each carried row."""
        if self.closed:
            return
        op = self.ops[op_id]
        for row in rows:
            op.push(row, port)

    def control(self, op_id, payload):
        """Deliver a control payload to one op, or to a filter group.

        Bloom control messages target a group id shared by both stage
        ops of a join rather than a single op id.
        """
        if self.closed:
            return
        op = self.ops.get(op_id)
        if op is not None:
            op.control(payload)
            return
        for candidate in self.ops.values():
            if candidate.spec.params.get("group") == op_id:
                candidate.control(payload)

    def close(self):
        if self.closed:
            return
        self.closed = True
        for timer in self._flush_timers:
            timer.cancel()
        self._flush_timers = []
        # Teardown before unregistering: an exchange's teardown flush
        # can deliver self-owned rows synchronously, and with the
        # namespace still registered they hit this execution's closed
        # guard (a cheap drop) instead of the engine's unclaimed-row
        # buffer (held for its whole TTL).
        for op in self.ops.values():
            op.teardown()
        self._unregister_endpoints()


class EpochExecution(_ExecutionBase):
    """One node's disposable instantiation of a plan for one epoch."""

    def __repr__(self):
        return "EpochExecution({!r}, epoch={}, node={})".format(
            self.query_id, self.epoch, self.engine.address
        )


class StandingExecution(_ExecutionBase):
    """One node's long-lived instantiation of a standing continuous plan.

    Built once when the query is adopted; the engine's epoch timers
    then call :meth:`advance_epoch` at each boundary. Exchange inputs
    are registered once (epoch-free namespaces), so the engine's
    early-row buffering window shrinks to first adoption only, and
    arrivals carry an epoch tag checked here: late tags are dropped,
    early tags (a sender whose boundary timer fired first) are parked
    until this node advances.
    """

    standing = True

    def __init__(self, engine, plan, query_id, epoch, t0, origin):
        super().__init__(engine, plan, query_id, epoch, t0, origin)
        self._early = {}  # epoch -> [(op_id, port, rows)]

    @property
    def current_epoch(self):
        return self.ctx.epoch

    def advance_epoch(self, k, t_k):
        """Roll every operator over from the previous epoch into ``k``."""
        if self.closed:
            return
        for timer in self._flush_timers:
            timer.cancel()
        self._flush_timers = []
        sources = self._source_ids()
        # Wave 1 -- retire the old epoch while ctx still names it:
        # exchanges and result sinks ship what they hold under the old
        # tag, stateful operators drop per-epoch state.
        for op_id, op in self.ops.items():
            if op_id not in sources:
                op.advance_epoch(k, t_k)
        self.ctx.epoch = k
        self.ctx.t0 = t_k
        self.epoch = k
        self.t0 = t_k
        self._schedule_flushes()
        # Wave 2 -- begin the new epoch: scans emit their delta into
        # the freshly reset graph.
        for op_id in sources:
            self.ops[op_id].advance_epoch(k, t_k)
        for op_id, port, rows in self._early.pop(k, ()):
            self.deliver_batch(op_id, port, rows, k)

    def deliver(self, op_id, port, row, epoch=None):
        self.deliver_batch(op_id, port, (row,), epoch)

    def deliver_batch(self, op_id, port, rows, epoch=None):
        if self.closed:
            return
        if epoch is not None and epoch != self.ctx.epoch:
            if epoch < self.ctx.epoch:
                return  # late: that epoch already closed here
            if epoch > self.ctx.epoch + 2:
                return  # implausibly far ahead: don't park unboundedly
            self._early.setdefault(epoch, []).append((op_id, port, list(rows)))
            return
        op = self.ops[op_id]
        for row in rows:
            op.push(row, port)

    def close(self):
        self._early = {}
        super().close()

    def __repr__(self):
        return "StandingExecution({!r}, epoch={}, node={})".format(
            self.query_id, self.ctx.epoch, self.engine.address
        )
