"""Exchange: the operator that moves rows between nodes.

Everything networked in a PIER plan funnels through exchanges, in one
of two modes:

* ``rehash`` -- classic parallel-DB repartitioning, by DHT ``route``:
  a row goes to whichever node owns ``hash(edge_namespace, key)``.
  Joins use it for both inputs; grouped aggregation uses it to bring
  each group's partials to one owner.
* ``tree`` -- rehash plus an *upcall* at every routing hop: partial
  aggregates heading for the same owner meet mid-route and are merged
  by :mod:`repro.core.aggregation_tree`, so the wire carries combined
  states instead of per-node partials. This is the paper's "multihop,
  in-network aggregation".

Key specs (``params["key"]``):

* ``{"kind": "exprs", "exprs": [...], "schema": s}`` -- hash computed columns,
* ``{"kind": "group"}`` -- row is ``(group_values, states)``; hash group_values,
* ``{"kind": "row"}`` -- hash the whole row (recursion's dup-elim partitioning),
* ``{"kind": "const"}`` -- single rendezvous key (global aggregates).

Rows are not shipped one message at a time: pushes buffer per routing
key for a short flush window (``EngineConfig.flush_delay``) and travel
as one ``deliver_batch`` route message per key, so a rehash that moves
k co-keyed rows costs one multi-hop route (and one hop-ack per hop)
instead of k. ``max_batch_rows`` / ``max_batch_bytes`` bound how much
a single message can carry; ``flush_delay = 0`` restores the original
message-per-row behaviour (the benchmarks' unbatched baseline).

Every payload carries its routing id (``rid``) so a receiver that has
no subscriber can NACK the sender, muting further rehashes of that key
toward a node that will only drop them.

Standing continuous plans add two behaviours:

* payloads are tagged with the epoch they belong to (namespaces are
  epoch-free, so the tag is how receivers sort late from current).
  Pending batches are keyed per epoch -- an overlapping-epoch plan can
  push rows for every live epoch of its ring through one exchange --
  and ``seal_epoch`` ships any still-buffered rows under a retiring
  epoch's tag;
* rehash-mode exchanges cache the terminal owner per routing key --
  the same epoch-free key routes every epoch, so after the first
  routed walk (which asks the terminal to identify itself) batches go
  direct in one hop instead of O(log N), falling back to key routing
  if the cached owner dies.
"""

from repro.core.batch import columnar_wire
from repro.core.dataflow import EpochStateRing, Operator
from repro.core.operators import register_operator
from repro.dht.chord import storage_key
from repro.util.errors import PlanError
from repro.util.serde import wire_size


def epoch_route_ns(route_ns, epoch):
    """Per-epoch salted routing namespace for a standing exchange.

    Standing delivery namespaces are epoch-free; the salt rotates a
    key's rendezvous owner between epochs. It is the *fallback*
    discipline: tree edges with a live owner cache pin a stable
    rendezvous per key and re-salt only while the cached owner is
    suspect (see ``Exchange._route``); cacheless configurations salt
    every epoch. The combiner forwards under the same namespace choice
    so combined partials converge with the originals.
    """
    return "{}|e{}".format(route_ns, epoch)


def payload_rows(payload):
    """Rows carried by a ``deliver`` / ``deliver_batch`` payload.

    The wire shapes are produced by ``Exchange._route`` below; every
    consumer (engine delivery, unclaimed-row buffering, tree combiners)
    decodes them through here so all three stay defined in one place:

    * ``cols`` -- columnar batch: per-column value lists, transposed
      back to row tuples (uniform-arity batches; saves the per-row
      container framing on the wire);
    * ``rows`` -- row-shaped batch (ragged rows, or columnar mode off);
    * ``data`` -- a single row.
    """
    cols = payload.get("cols")
    if cols is not None:
        return list(zip(*cols))
    rows = payload.get("rows")
    if rows is not None:
        return rows
    return (payload["data"],)


@register_operator("exchange")
class Exchange(Operator):
    def __init__(self, ctx, spec):
        super().__init__(ctx, spec)
        consumers = ctx.plan.consumers_of(spec.op_id)
        if len(consumers) != 1:
            raise PlanError("exchange {!r} must feed exactly one op".format(spec.op_id))
        consumer_id, port = consumers[0]
        self._ns = ctx.namespace(consumer_id, port)
        # Routing must be port-independent: a join's two inputs have to
        # co-locate equal keys, so both exchanges hash under the consumer's
        # shared namespace and only the delivery tag carries the port.
        # Prefix-sharing members route under the shared prefix key (see
        # LocalQueryContext.route_namespace) so co-tenants co-locate.
        route_ns_fn = getattr(ctx, "route_namespace", None)
        self._route_ns = (
            route_ns_fn(consumer_id) if route_ns_fn is not None
            else ctx.namespace(consumer_id, "x")
        )
        self.mode = spec.params.get("mode", "rehash")
        if self.mode not in ("rehash", "tree"):
            raise PlanError("unknown exchange mode {!r}".format(self.mode))
        self._upcall = (
            ctx.upcall_name(consumer_id, port) if self.mode == "tree" else None
        )
        self._key_fn = self._build_key_fn(spec.params["key"])
        self._batch_key_fn = self._build_batch_key_fn(spec.params["key"])
        config = ctx.engine.config
        # Columnar wire shape for multi-row messages (row-mode ablation
        # for the benchmarks turns it off engine-wide).
        self._columnar_wire = bool(
            getattr(config, "columnar_batches", True)
        )
        self._flush_delay = spec.params.get("flush_delay", config.flush_delay)
        self._max_batch_rows = spec.params.get(
            "max_batch_rows", config.max_batch_rows
        )
        self._max_batch_bytes = spec.params.get(
            "max_batch_bytes", config.max_batch_bytes
        )
        self._standing = bool(getattr(ctx, "standing", False))
        # Pane-tagged mode (paned plans whose pane-aware aggregate sits
        # *above* this exchange): remember the pane announced by the
        # upstream producer and stamp every batch with it, so delivery
        # on the far side can re-announce the pane before the rows land.
        self._paned = bool(spec.params.get("paned")) and self._standing
        self._current_pane = None
        # Owner caching only pays off when the routing key is stable
        # across epochs (standing, epoch-free namespaces) and no
        # per-hop combining would be skipped (rehash mode only).
        self._cache_owners = (
            self._standing and self.mode == "rehash"
            and getattr(config, "route_cache_ttl", 0) > 0
        )
        # Resolved via getattr so harness stubs without the full engine
        # surface (unit tests) still drive the batching logic.
        self._muted_fn = getattr(ctx.engine, "exchange_muted", None)
        self._owner_fn = getattr(ctx.engine, "cached_owner", None)
        self._suspect_fn = getattr(ctx.engine, "route_owner_suspect", None)
        self._mid_fn = getattr(ctx.dht, "fresh_mid", None)
        if self._owner_fn is None:
            self._cache_owners = False
        # Unpaned standing tree edges pin a stable per-query rendezvous
        # (matching the paned discipline) when the owner cache can
        # vouch for the owner's health; without a cache there is no
        # suspect signal, so those configurations keep the per-epoch
        # salt.
        self._stable_tree = (
            self._standing and self.mode == "tree"
            and getattr(config, "route_cache_ttl", 0) > 0
            and self._suspect_fn is not None and self._owner_fn is not None
        )
        # Region-aware two-level trees: a standing tree edge on a
        # region-labelled topology routes each partial through its own
        # region's combiner rendezvous first. The rendezvous absorbs
        # same-region partials into one level-1 combiner, which then
        # ships ONE combined partial per region across the backbone
        # toward the global owner (level 2 -- the ordinary combiner
        # forward machinery). Resolved via getattr so harness stubs
        # and flat topologies degrade to single-level trees.
        self._rendezvous_fn = getattr(ctx.dht, "region_rendezvous", None)
        self._regional = (
            self._standing and self.mode == "tree"
            and bool(getattr(config, "regional_trees", False))
            and getattr(ctx.engine, "region", None) is not None
            and self._rendezvous_fn is not None
            and hasattr(ctx.dht, "route_through")
        )
        # Spine executions stamp a live subscriber qid on every batch:
        # the s| namespace embeds no address, so this is the receiving
        # side's only lead for pulling a plan it missed.
        self._rep_qid_fn = (
            ctx.rep_qid if getattr(ctx, "shared", False) else None
        )
        # Prefix-sharing members hand their outbound route messages to
        # the engine's per-instant multiplexer: co-tenant queries push
        # at the same instants (one demux fan feeds them all), so
        # same-destination messages coalesce into one deliver_mux.
        self._mux = None
        if self._standing and getattr(ctx, "prefix_key", None) is not None:
            self._mux = getattr(ctx.engine, "exchange_mux", None)
        # Pending batches are keyed by epoch tag, then routing id: a
        # standing overlapping-epoch plan can push rows for several
        # live epochs through the same exchange instance, and each
        # batch must ship under the tag of the epoch that produced it.
        # Each epoch's state is {"rows": {rid: [rows]}, "bytes": {rid: n}}.
        self._pending = EpochStateRing(lambda: {"rows": {}, "bytes": {}})
        self._timer = None
        # Adaptive load management. ``adaptive_flush`` sizes the flush
        # window and batch caps from the observed arrival rate (EWMA
        # over one-second windows): hot edges gather a whole window
        # into few large messages, sparse edges stretch the window to
        # fill batches. Backpressure ("xbp" from an overloaded owner)
        # stretches both further via the engine's per-namespace factor.
        self._clock = getattr(ctx, "clock", None)
        self._adaptive_flush = (
            bool(getattr(config, "adaptive_flush", False))
            and self._flush_delay > 0 and self._clock is not None
        )
        self._adaptive_max_rows = getattr(
            config, "adaptive_flush_max_rows", 2048
        )
        self._adaptive_max_bytes = getattr(
            config, "adaptive_flush_max_bytes", 262144
        )
        self._stretch_fn = getattr(ctx.engine, "exchange_flush_stretch", None)
        self._rate = 0.0  # EWMA rows/sec through this exchange
        self._rate_count = 0
        self._rate_t0 = None
        # Hot-group splitting: standing group-partial edges whose one
        # routing key crosses the threshold within an epoch shard later
        # partials across k salted keys (k owners); the query site's
        # duplicate-owner merge re-unifies the group. Paned edges shard
        # by pane so each pane's history accumulates at one owner.
        hot = int(getattr(config, "hot_group_threshold", 0) or 0)
        self._hot_threshold = (
            hot if (self._standing
                    and spec.params.get("key", {}).get("kind") == "group")
            else 0
        )
        self._hot_shards = max(2, int(getattr(config, "hot_group_shards", 4)))
        self._hot_counts = EpochStateRing(dict)  # epoch -> {rid: rows}
        self.hot_splits = 0  # rows routed under a shard key (introspection)

    def _build_key_fn(self, key_spec):
        kind = key_spec["kind"]
        if kind == "exprs":
            compiled = [e.compile(key_spec["schema"]) for e in key_spec["exprs"]]
            return lambda row: tuple(fn(row) for fn in compiled)
        if kind == "group":
            return lambda row: row[0]
        if kind == "row":
            return lambda row: row
        if kind == "const":
            return lambda row: "__root__"
        raise PlanError("unknown exchange key kind {!r}".format(kind))

    def _build_batch_key_fn(self, key_spec):
        """Routing ids for a whole batch (one per row, in row order)."""
        kind = key_spec["kind"]
        if kind == "exprs":
            compiled = [
                e.compile_batch(key_spec["schema"])
                for e in key_spec["exprs"]
            ]

            def batch_keys(batch):
                cols = [fn(batch) for fn in compiled]
                if len(cols) == 1:
                    return [(v,) for v in cols[0]]
                return list(zip(*cols))

            return batch_keys
        if kind == "group":
            return lambda batch: [row[0] for row in batch.rows()]
        if kind == "row":
            return lambda batch: batch.rows()
        return lambda batch: ["__root__"] * len(batch)

    def _note_arrivals(self, n):
        """Fold ``n`` pushed rows into the arrival-rate EWMA (rows/sec,
        observed through one-second windows)."""
        now = self._clock.now
        if self._rate_t0 is None:
            self._rate_t0 = now
        elif now - self._rate_t0 >= 1.0:
            observed = self._rate_count / (now - self._rate_t0)
            if self._rate == 0.0:
                self._rate = observed
            else:
                self._rate += 0.5 * (observed - self._rate)
            self._rate_count = 0
            self._rate_t0 = now
        self._rate_count += n

    def _flush_plan(self):
        """Current (delay, max_rows, max_bytes) under load adaptation.

        Static configuration returns the configured trio untouched. With
        ``adaptive_flush`` the window targets one base-cap batch per
        flush: sparse edges stretch the delay (up to 8x) so batches
        fill instead of trickling, hot edges keep the base window but
        raise the caps to one window's worth of rows, so the edge
        ships a few large messages instead of many cap-sized ones. A
        live backpressure stretch multiplies all three on top.
        """
        delay = self._flush_delay
        max_rows = self._max_batch_rows
        max_bytes = self._max_batch_bytes
        if self._adaptive_flush and self._rate > 0.0:
            desired = self._max_batch_rows / self._rate
            delay = min(max(delay, desired), self._flush_delay * 8.0)
            target_rows = self._rate * delay
            if target_rows > max_rows:
                max_rows = int(min(target_rows, self._adaptive_max_rows))
                per_row = max(1, max_bytes // max(1, self._max_batch_rows))
                max_bytes = int(min(
                    max(max_bytes, max_rows * per_row),
                    self._adaptive_max_bytes,
                ))
        if self._stretch_fn is not None:
            stretch = self._stretch_fn(self._ns)
            if stretch > 1.0:
                delay *= stretch
                max_rows = int(min(max_rows * stretch,
                                   self._adaptive_max_rows))
                max_bytes = int(min(max_bytes * stretch,
                                    self._adaptive_max_bytes))
        return delay, max_rows, max_bytes

    def _hot_rid(self, rid, epoch, pane):
        """Shard a hot group's routing key across k owners.

        Counts pushed rows per (epoch, rid); once a key crosses the
        threshold its later rows route under ``("hot", rid, shard)``.
        Paned edges shard by pane (a pane's whole history must
        accumulate at one owner); unpaned edges round-robin by row
        count. Delivery, muting, and the final fold are rid-agnostic,
        and the coordinator merges the k owners' partial states for
        the group exactly as it merges duplicate owners after churn.
        """
        counts = self._hot_counts.state(epoch)
        n = counts.get(rid, 0) + 1
        counts[rid] = n
        if n <= self._hot_threshold:
            return rid
        self.hot_splits += 1
        shard = (pane if pane is not None else n) % self._hot_shards
        return ("hot", rid, shard)

    def push_batch(self, batch, port=0):
        """Vectorized push: routing keys evaluate as columns, the
        per-push invariants (epoch, pane, mute lookup shape) hoist out
        of the loop, and rows append into the same per-(pane, rid)
        pending buckets the row path uses -- byte caps included, so the
        shipped messages are identical to row-at-a-time pushes.
        """
        n = len(batch)
        if n == 0:
            return
        rows = batch.rows()
        rids = self._batch_key_fn(batch)
        muted_fn = self._muted_fn
        epoch = self._active_epoch() if self._standing else None
        pane = self._current_pane if self._paned else None
        if self._adaptive_flush:
            self._note_arrivals(n)
        hot = self._hot_threshold and epoch is not None
        if self._flush_delay <= 0:
            for row, rid in zip(rows, rids):
                if muted_fn is not None and muted_fn(self._ns, rid):
                    continue
                if hot:
                    rid = self._hot_rid(rid, epoch, pane)
                self._route(rid, [row], epoch, pane)
            return
        delay, max_rows, max_bytes = self._flush_plan()
        pending = self._pending.state(epoch)
        held_rows = pending["rows"]
        held_bytes = pending["bytes"]
        for row, rid in zip(rows, rids):
            if muted_fn is not None and muted_fn(self._ns, rid):
                continue
            if hot:
                rid = self._hot_rid(rid, epoch, pane)
            bucket = (pane, rid)
            bucket_rows = held_rows.setdefault(bucket, [])
            bucket_rows.append(row)
            size = held_bytes.get(bucket, 0) + wire_size(row)
            held_bytes[bucket] = size
            if len(bucket_rows) >= max_rows or size >= max_bytes:
                del held_rows[bucket]
                del held_bytes[bucket]
                self._route(rid, bucket_rows, epoch, pane)
        if self._timer is None and held_rows:
            self._timer = self.ctx.dht.set_timer(delay, self._flush_pending)

    def push(self, row, port=0):
        rid = self._key_fn(row)
        if self._muted_fn is not None and self._muted_fn(self._ns, rid):
            return  # receiver NACKed this key: it would only drop the row
        epoch = self._active_epoch() if self._standing else None
        pane = self._current_pane if self._paned else None
        if self._adaptive_flush:
            self._note_arrivals(1)
        if self._hot_threshold and epoch is not None:
            rid = self._hot_rid(rid, epoch, pane)
        if self._flush_delay <= 0:
            self._route(rid, [row], epoch, pane)
            return
        delay, max_rows, max_bytes = self._flush_plan()
        pending = self._pending.state(epoch)
        # Batches are keyed by (pane, rid): a pane-tagged exchange must
        # never mix two panes' rows in one message, because the tag is
        # per batch.
        bucket = (pane, rid)
        rows = pending["rows"].setdefault(bucket, [])
        rows.append(row)
        size = pending["bytes"].get(bucket, 0) + wire_size(row)
        pending["bytes"][bucket] = size
        if len(rows) >= max_rows or size >= max_bytes:
            del pending["rows"][bucket]
            del pending["bytes"][bucket]
            self._route(rid, rows, epoch, pane)
            return
        if self._timer is None:
            self._timer = self.ctx.dht.set_timer(delay, self._flush_pending)

    def _flush_pending(self, epoch=None):
        """Ship pending batches -- all of them, or just one epoch's."""
        if epoch is None:
            self._timer = None
            shipping = self._pending.items()
            self._pending.clear()
        else:
            state = self._pending.seal(epoch)
            shipping = [(epoch, state)] if state is not None else []
        for tag, state in shipping:
            for (pane, rid), rows in state["rows"].items():
                self._route(rid, rows, tag, pane)

    def _route(self, rid, rows, epoch=None, pane=None):
        if len(rows) == 1:
            payload = {"op": "deliver", "ns": self._ns, "rid": rid,
                       "data": rows[0]}
        else:
            payload = {"op": "deliver_batch", "ns": self._ns, "rid": rid}
            cols = columnar_wire(rows) if self._columnar_wire else None
            if cols is not None:
                payload["cols"] = cols
            else:
                payload["rows"] = rows
        if self._mid_fn is not None:
            # Per-message dedup id: survives re-forwards of this exact
            # message, so the delivery layer drops at-least-once
            # replays (a delivered hop whose ack was lost).
            payload["mid"] = self._mid_fn()
        if self._standing:
            payload["epoch"] = epoch
            if self._paned:
                payload["pane"] = pane
            if self._rep_qid_fn is not None:
                qsrc = self._rep_qid_fn()
                if qsrc is not None:
                    payload["qsrc"] = qsrc
            if self._cache_owners:
                key = storage_key(self._route_ns, rid)
                owner = self._owner_fn(self._ns, rid)
                if owner is not None:
                    self._dispatch_via(owner, key, payload)
                    return
                payload["learn"] = True  # ask the terminal to identify itself
                self._dispatch(key, payload)
                return
            if self._paned:
                # Pane-tagged partials must accumulate at a *stable*
                # owner: epoch k+1's window reuses panes shipped during
                # epoch k, so rotating the rendezvous per epoch would
                # strand them at last epoch's owner. The epoch tag
                # still rides on the payload for late/early gating.
                key = storage_key(self._route_ns, rid)
                self._ship(key, payload)
                return
            if self._stable_tree:
                # Stable per-query rendezvous for tree edges, like the
                # paned discipline: the combining tree re-converges on
                # the same owner every epoch, so hop caches and learned
                # owners keep paying off. Fallback: while the learned
                # owner is suspect, re-salt this key's route for the
                # epoch -- a fresh rendezvous away from the dying node
                # -- without forgetting the stable owner, whose
                # suspicion may clear. The salt decision rides on the
                # payload, and combiners only ever *promote* partials
                # to the salted key (never demote): if each hop
                # re-decided from its own cache, two nodes disagreeing
                # about the owner's health would bounce a combined
                # partial between the two rendezvous keys forever.
                if self._suspect_fn(self._ns, rid):
                    key = storage_key(
                        epoch_route_ns(self._route_ns, epoch), rid
                    )
                    payload["salted"] = True
                else:
                    key = storage_key(self._route_ns, rid)
                    if self._owner_fn(self._ns, rid) is None:
                        payload["learn"] = True
                self._ship(key, payload)
                return
            # No owner cache (tree mode): salt the routing key with the
            # epoch so successive epochs rendezvous at *different*
            # nodes. Without a cache there is no suspect signal to
            # trigger a fallback, so a fixed rendezvous would correlate
            # every epoch's owner risk onto one node -- one flaky host
            # could hole a standing query's answer epoch after epoch.
            # Delivery stays keyed by the epoch-free namespace, so
            # whoever terminates the salted key dispatches to the same
            # standing registration.
            key = storage_key(epoch_route_ns(self._route_ns, epoch), rid)
            self._ship(key, payload)
            return
        key = storage_key(self._route_ns, rid)
        self._dispatch(key, payload)

    def _ship(self, key, payload):
        """Dispatch a standing tree partial, region-first when enabled.

        Regional trees redirect the *first hop* to this region's
        rendezvous, where the upcall intercept absorbs the partial into
        the region-local combiner; the combiner's later forward crosses
        the backbone once per region per flush. The message itself
        still targets the global key, so a dead rendezvous degrades to
        the normal walk (the hop machinery reroutes around it). Bundles
        are bypassed: the mux ships with ``upcall=None``, which would
        skip the level-1 absorption.
        """
        if self._regional:
            via = self._rendezvous_fn(key)
            if via is not None:
                self.ctx.dht.route_through(via, key, payload,
                                           upcall=self._upcall)
                return
        self._dispatch(key, payload)

    def _dispatch(self, key, payload):
        """Ship one route message -- directly, or via the mux."""
        if self._mux is not None:
            self._mux.route(key, payload, self._upcall)
        else:
            self.ctx.dht.route(key, payload, upcall=self._upcall)

    def _dispatch_via(self, owner, key, payload):
        if self._mux is not None:
            self._mux.route_via(owner, key, payload)
        else:
            self.ctx.dht.route_via(owner, key, payload)

    def open_pane(self, pane):
        """Pane markers stop at the exchange either way: a pane-tagged
        exchange records the pane and stamps it on the batches it ships
        (delivery re-announces it on the far side); an unpaned exchange
        swallows the marker so it cannot leak through the locally wired
        consumer edge."""
        if self._paned:
            self._current_pane = pane

    def flush(self):
        if self._timer is not None:
            self.ctx.dht.cancel_timer(self._timer)
            self._timer = None
        self._flush_pending()

    def seal_epoch(self, k):
        # Ship leftovers tagged with the epoch they belong to;
        # receivers that already sealed it drop them as late, exactly
        # as the rebuild path's teardown flush landed in closed
        # executions.
        self._flush_pending(k)
        if self._hot_threshold:
            self._hot_counts.seal(k)

    def teardown(self):
        # Best effort, like the unbatched path: a row pushed just before
        # close would already be in flight; ship what we still hold.
        self.flush()


class ExchangeMux:
    """Per-engine multiplexer for prefix-sharing members' route traffic.

    Co-tenant queries of one prefix stage push at the same instants
    (one demux fan feeds them all) and -- thanks to the shared route
    namespace -- equal routing ids rendezvous at the same owner. Their
    exchanges hand outbound messages here instead of routing directly;
    a zero-delay timer (which the simulator fires after the whole
    same-instant cascade) coalesces everything bound for one routing
    key into a single ``deliver_mux`` message whose parts are the
    original per-query payloads. The receiver dispatches each part
    through the normal delivery ladder, so answers are unchanged; only
    the message count amortizes across the fleet.

    Bundles ride with ``upcall=None``: mid-route tree combining is
    per-query anyway (upcall names embed the qid), and every part
    terminates at the same owner, where each query's final operator
    merges exactly as it would have. Single-entry buckets fall back to
    the ordinary route/route_via call, upcall included.
    """

    def __init__(self, engine):
        self.engine = engine
        self._buckets = {}  # bucket key -> [(payload, upcall, owner, key)]
        self._timer = None
        self.bundles = 0  # multi-part messages shipped (introspection)
        self.bundled_parts = 0

    def route(self, key, payload, upcall):
        self._add(("route", key), payload, upcall, None, key)

    def route_via(self, owner, key, payload):
        self._add(("via", owner.address, key), payload, None, owner, key)

    def _add(self, bucket, payload, upcall, owner, key):
        self._buckets.setdefault(bucket, []).append(
            (payload, upcall, owner, key)
        )
        if self._timer is None:
            self._timer = self.engine.set_timer(0.0, self._ship)

    def _ship(self):
        self._timer = None
        buckets, self._buckets = self._buckets, {}
        dht = self.engine.dht
        mid_fn = getattr(dht, "fresh_mid", None)
        for entries in buckets.values():
            payload, upcall, owner, key = entries[0]
            if len(entries) == 1:
                if owner is not None:
                    dht.route_via(owner, key, payload)
                else:
                    dht.route(key, payload, upcall=upcall)
                continue
            bundle = {
                "op": "deliver_mux",
                "parts": [e[0] for e in entries],
            }
            if mid_fn is not None:
                bundle["mid"] = mid_fn()
            self.bundles += 1
            self.bundled_parts += len(entries)
            if owner is not None:
                dht.route_via(owner, key, bundle)
            else:
                dht.route(key, bundle, upcall=None)
