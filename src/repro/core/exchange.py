"""Exchange: the operator that moves rows between nodes.

Everything networked in a PIER plan funnels through exchanges, in one
of two modes:

* ``rehash`` -- classic parallel-DB repartitioning, by DHT ``route``:
  a row goes to whichever node owns ``hash(edge_namespace, key)``.
  Joins use it for both inputs; grouped aggregation uses it to bring
  each group's partials to one owner.
* ``tree`` -- rehash plus an *upcall* at every routing hop: partial
  aggregates heading for the same owner meet mid-route and are merged
  by :mod:`repro.core.aggregation_tree`, so the wire carries combined
  states instead of per-node partials. This is the paper's "multihop,
  in-network aggregation".

Key specs (``params["key"]``):

* ``{"kind": "exprs", "exprs": [...], "schema": s}`` -- hash computed columns,
* ``{"kind": "group"}`` -- row is ``(group_values, states)``; hash group_values,
* ``{"kind": "row"}`` -- hash the whole row (recursion's dup-elim partitioning),
* ``{"kind": "const"}`` -- single rendezvous key (global aggregates).
"""

from repro.core.dataflow import Operator
from repro.core.operators import register_operator
from repro.dht.chord import storage_key
from repro.util.errors import PlanError


@register_operator("exchange")
class Exchange(Operator):
    def __init__(self, ctx, spec):
        super().__init__(ctx, spec)
        consumers = ctx.plan.consumers_of(spec.op_id)
        if len(consumers) != 1:
            raise PlanError("exchange {!r} must feed exactly one op".format(spec.op_id))
        consumer_id, port = consumers[0]
        self._ns = ctx.namespace(consumer_id, port)
        # Routing must be port-independent: a join's two inputs have to
        # co-locate equal keys, so both exchanges hash under the consumer's
        # shared namespace and only the delivery tag carries the port.
        self._route_ns = ctx.namespace(consumer_id, "x")
        self.mode = spec.params.get("mode", "rehash")
        if self.mode not in ("rehash", "tree"):
            raise PlanError("unknown exchange mode {!r}".format(self.mode))
        self._upcall = (
            ctx.upcall_name(consumer_id, port) if self.mode == "tree" else None
        )
        self._key_fn = self._build_key_fn(spec.params["key"])

    def _build_key_fn(self, key_spec):
        kind = key_spec["kind"]
        if kind == "exprs":
            compiled = [e.compile(key_spec["schema"]) for e in key_spec["exprs"]]
            return lambda row: tuple(fn(row) for fn in compiled)
        if kind == "group":
            return lambda row: row[0]
        if kind == "row":
            return lambda row: row
        if kind == "const":
            return lambda row: "__root__"
        raise PlanError("unknown exchange key kind {!r}".format(kind))

    def push(self, row, port=0):
        rid = self._key_fn(row)
        key = storage_key(self._route_ns, rid)
        self.ctx.dht.route(
            key,
            {"op": "deliver", "ns": self._ns, "data": row},
            upcall=self._upcall,
        )
