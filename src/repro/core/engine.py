"""The per-node PIER engine.

One engine runs on every node, glued to that node's DHT API. It:

* holds the node's table fragments (local rows, stream windows) and
  publishes rows into DHT tables,
* adopts query plans that arrive by broadcast and schedules their
  epochs (one for one-shot/recursive plans, a chain for continuous),
* registers exchange namespaces with the DHT so rehashed rows reach the
  right operator instance -- and buffers early arrivals that beat the
  plan broadcast to this node,
* reports recursion progress to the query site for quiescence
  detection.

Engines keep only soft state: a crash loses fragments, executions and
adopted queries; a recovered node re-adopts continuous queries from
the coordinator's periodic plan re-broadcasts.
"""

from repro.core.aggregation_tree import TreeCombiner
from repro.core.dataflow import EpochExecution
from repro.core.exchange import payload_rows
from repro.db.table import make_fragment


class EngineConfig:
    """Per-engine timing knobs (plan-independent).

    The ``flush_delay`` / ``max_batch_rows`` / ``max_batch_bytes`` trio
    controls exchange batching: rehashed rows sharing a routing key are
    held up to ``flush_delay`` seconds and shipped as one
    ``deliver_batch`` message, bounded by the row/byte caps.
    ``flush_delay = 0`` disables batching (one route message per row).

    ``undelivered_ttl`` / ``undelivered_cap`` bound the buffer of rows
    that arrive before their query's plan does: a namespace's early rows
    are dropped after the TTL, and no namespace holds more than the cap.
    """

    def __init__(
        self,
        teardown_slack=2.0,
        tree_hold_delay=0.8,
        progress_batch_delay=0.5,
        plan_refresh_period=60.0,
        publish_ttl=120.0,
        flush_delay=0.25,
        max_batch_rows=64,
        max_batch_bytes=8192,
        undelivered_ttl=15.0,
        undelivered_cap=512,
    ):
        self.teardown_slack = teardown_slack
        self.tree_hold_delay = tree_hold_delay
        self.progress_batch_delay = progress_batch_delay
        self.plan_refresh_period = plan_refresh_period
        self.publish_ttl = publish_ttl
        self.flush_delay = flush_delay
        self.max_batch_rows = max_batch_rows
        self.max_batch_bytes = max_batch_bytes
        self.undelivered_ttl = undelivered_ttl
        self.undelivered_cap = undelivered_cap


class _QueryRecord:
    """An engine's view of one adopted query."""

    __slots__ = ("qid", "plan", "t0", "origin", "stopped", "next_epoch_timer")

    def __init__(self, qid, plan, t0, origin):
        self.qid = qid
        self.plan = plan
        self.t0 = t0
        self.origin = origin
        self.stopped = False
        self.next_epoch_timer = None


class PierEngine:
    def __init__(self, dht, catalog, config=None, rng=None):
        self.dht = dht
        self.catalog = catalog
        self.config = config if config is not None else EngineConfig()
        self.rng = rng
        self.clock = dht.clock
        self.address = dht.address

        self.fragments = {}
        self.executions = {}  # (qid, epoch) -> EpochExecution
        self.queries = {}  # qid -> _QueryRecord
        self.combiners = {}  # ns -> TreeCombiner
        self._undelivered = {}  # ns -> [rows arriving before registration]
        self._undelivered_expiry = {}  # ns -> drop-dead time for those rows
        self._undelivered_timer = None
        self._progress_pending = {}  # (qid, epoch) -> count
        self._progress_timer = None
        self._publish_seq = 0
        self._maintained = {}  # (table, instance_id) -> republish timer
        self.coordinator = None  # set by Coordinator.attach

        dht.on_broadcast(self._on_broadcast)
        dht.on_direct(self._on_direct)
        dht.set_default_delivery(self._on_unclaimed_delivery)

    # ------------------------------------------------------------------
    # Data management
    # ------------------------------------------------------------------
    def fragment(self, table_name):
        """This node's fragment of a local/stream table (created lazily)."""
        fragment = self.fragments.get(table_name)
        if fragment is None:
            fragment = make_fragment(self.catalog.lookup(table_name))
            self.fragments[table_name] = fragment
        return fragment

    def local_insert(self, table_name, rows):
        self.fragment(table_name).insert_many(rows)

    def stream_append(self, table_name, row, timestamp=None):
        ts = timestamp if timestamp is not None else self.clock.now
        self.fragment(table_name).append(ts, row)

    def publish(self, table_name, row, ttl=None, keep_alive=False):
        """Insert into a DHT table: the row travels to its partition owner.

        With ``keep_alive`` the row becomes *maintained* soft state:
        this node re-puts it every ttl/3 so it survives the storing
        node's crashes (the replacement owner receives the next re-put).
        Maintenance stops when this node crashes or calls
        :meth:`stop_publishing` -- after which the row simply expires,
        which is the only deletion mechanism PIER has.
        """
        table_def = self.catalog.lookup(table_name)
        if isinstance(row, dict):
            row = table_def.schema.row_from_dict(row)
        else:
            row = table_def.schema.coerce_row(row)
        rid = row[table_def.schema.index_of(table_def.partition_key)]
        self._publish_seq += 1
        instance_id = (self.address, self._publish_seq)
        if ttl is None:
            ttl = table_def.ttl if table_def.ttl is not None else self.config.publish_ttl
        self.dht.put(table_name, rid, instance_id, row, ttl)
        if keep_alive:
            self._keep_alive(table_name, rid, instance_id, row, ttl)
        return instance_id

    def _keep_alive(self, table_name, rid, instance_id, row, ttl):
        key = (table_name, instance_id)
        period = ttl / 3.0

        def republish():
            if key not in self._maintained:
                return
            self.dht.put(table_name, rid, instance_id, row, ttl)
            self._maintained[key] = self.set_timer(period, republish)

        self._maintained[key] = self.set_timer(period, republish)

    def stop_publishing(self, table_name, instance_id):
        """Let a maintained row age out (soft-state deletion)."""
        timer = self._maintained.pop((table_name, instance_id), None)
        if timer is not None:
            timer.cancel()

    def set_timer(self, delay, callback, *args):
        return self.dht.set_timer(delay, callback, *args)

    # ------------------------------------------------------------------
    # Plan adoption and epoch scheduling
    # ------------------------------------------------------------------
    def _on_broadcast(self, payload, origin_ref, depth):
        if not isinstance(payload, dict):
            return
        ctl = payload.get("ctl")
        if ctl == "plan":
            self._adopt_query(payload)
        elif ctl == "stop":
            self._stop_query(payload["qid"])
        elif ctl == "bloom":
            execution = self.executions.get((payload["qid"], payload["epoch"]))
            if execution is not None:
                execution.control(payload["op_id"], {"filters": payload["filters"]})

    def _adopt_query(self, payload):
        qid = payload["qid"]
        if qid in self.queries:
            return  # refresh broadcast for a query we already run
        record = _QueryRecord(qid, payload["plan"], payload["t0"], payload["origin"])
        self.queries[qid] = record
        plan = record.plan
        if plan.mode == "continuous":
            # First epoch strictly after adoption; a late joiner starts
            # at the next epoch boundary instead of replaying history.
            elapsed = max(0.0, self.clock.now - record.t0)
            k = int(elapsed // plan.every) + 1
            self._schedule_epoch(record, k)
        else:
            self._start_epoch(record, 0, record.t0)

    def _schedule_epoch(self, record, k):
        plan = record.plan
        if record.stopped:
            return
        if plan.lifetime is not None and k * plan.every > plan.lifetime:
            self.queries.pop(record.qid, None)  # soft-state expiry
            return
        t_k = record.t0 + k * plan.every
        delay = max(0.0, t_k - self.clock.now)
        record.next_epoch_timer = self.set_timer(
            delay, self._start_epoch, record, k, t_k
        )

    def _start_epoch(self, record, k, t_k):
        if record.stopped:
            return
        execution = EpochExecution(
            self, record.plan, record.qid, k, t_k, record.origin
        )
        self.executions[(record.qid, k)] = execution
        execution.start()
        close_at = t_k + record.plan.deadline + self.config.teardown_slack
        self.set_timer(max(0.0, close_at - self.clock.now),
                       self._close_epoch, record.qid, k)
        if record.plan.mode == "continuous":
            self._schedule_epoch(record, k + 1)

    def _close_epoch(self, qid, epoch):
        execution = self.executions.pop((qid, epoch), None)
        if execution is not None:
            execution.close()
        record = self.queries.get(qid)
        if record is not None and record.plan.mode != "continuous":
            record.stopped = True
            self.queries.pop(qid, None)

    def _stop_query(self, qid):
        # Early rows held for this query's namespaces will never find a
        # subscriber now; drop them instead of waiting out their TTL.
        # (Done even without a query record: a node the plan broadcast
        # missed can still have buffered rehashed rows for it.)
        prefix = "q|{}|".format(qid)
        for ns in [n for n in self._undelivered if n.startswith(prefix)]:
            del self._undelivered[ns]
            self._undelivered_expiry.pop(ns, None)
        record = self.queries.pop(qid, None)
        if record is None:
            return
        record.stopped = True
        if record.next_epoch_timer is not None:
            record.next_epoch_timer.cancel()
        for (open_qid, epoch) in list(self.executions):
            if open_qid == qid:
                self.executions.pop((open_qid, epoch)).close()

    # ------------------------------------------------------------------
    # Exchange plumbing
    # ------------------------------------------------------------------
    def register_exchange_input(self, ns, execution, op_id, port, combine=None):
        """Claim an exchange namespace for a local operator input.

        ``combine`` carries tree-mode parameters ({"agg_specs": ...});
        when present a :class:`TreeCombiner` intercept is installed so
        this node merges pass-through partials for that edge.
        """

        def deliver(payload, route_msg):
            execution.deliver_batch(op_id, port, payload_rows(payload))

        self.dht.register_delivery(ns, deliver)
        if combine is not None:
            upcall = execution.ctx.upcall_name(op_id, port)
            route_ns = execution.ctx.namespace(op_id, "x")
            combiner = TreeCombiner(
                self.dht, ns, route_ns, upcall, combine["agg_specs"],
                combine.get("hold", self.config.tree_hold_delay),
            )
            self.combiners[ns] = combiner
            self.dht.register_intercept(upcall, combiner.handler)
        self._undelivered_expiry.pop(ns, None)
        execution.deliver_batch(op_id, port, self._undelivered.pop(ns, ()))

    def unregister_exchange_input(self, ns):
        self.dht.unregister_delivery(ns)
        combiner = self.combiners.pop(ns, None)
        if combiner is not None:
            combiner.close()
            self.dht.unregister_intercept(combiner.upcall)
        self._undelivered.pop(ns, None)
        self._undelivered_expiry.pop(ns, None)

    def _on_unclaimed_delivery(self, payload, route_msg):
        # Rows can beat the plan broadcast to this node; hold them until
        # the execution registers. Nothing guarantees a plan ever
        # arrives (the broadcast can miss this node, or the query may
        # already be stopping), so the buffer is bounded two ways: each
        # namespace is dropped ``undelivered_ttl`` after its first early
        # row, and holds at most ``undelivered_cap`` rows.
        ns = payload["ns"]
        incoming = payload_rows(payload)
        rows = self._undelivered.get(ns)
        if rows is None:
            rows = self._undelivered[ns] = []
            self._undelivered_expiry[ns] = (
                self.clock.now + self.config.undelivered_ttl
            )
            if self._undelivered_timer is None:
                self._undelivered_timer = self.set_timer(
                    self.config.undelivered_ttl, self._expire_undelivered
                )
        space = self.config.undelivered_cap - len(rows)
        if space > 0:
            rows.extend(incoming[:space])

    def _expire_undelivered(self):
        self._undelivered_timer = None
        now = self.clock.now
        for ns in [n for n, t in self._undelivered_expiry.items() if t <= now]:
            self._undelivered.pop(ns, None)
            self._undelivered_expiry.pop(ns, None)
        if self._undelivered_expiry:
            next_deadline = min(self._undelivered_expiry.values())
            self._undelivered_timer = self.set_timer(
                max(0.0, next_deadline - now), self._expire_undelivered
            )

    # ------------------------------------------------------------------
    # Recursion progress (quiescence detection support)
    # ------------------------------------------------------------------
    def note_progress(self, qid, epoch, count):
        key = (qid, epoch)
        self._progress_pending[key] = self._progress_pending.get(key, 0) + count
        if self._progress_timer is None:
            self._progress_timer = self.set_timer(
                self.config.progress_batch_delay, self._send_progress
            )

    def _send_progress(self):
        self._progress_timer = None
        pending, self._progress_pending = self._progress_pending, {}
        for (qid, epoch), count in pending.items():
            record = self.queries.get(qid)
            if record is None or count == 0:
                continue
            self.dht.direct(record.origin, {
                "op": "qprog", "qid": qid, "epoch": epoch,
                "node": self.address, "new": count,
            })

    # ------------------------------------------------------------------
    # Direct messages (results, progress, filters) go to the coordinator
    # ------------------------------------------------------------------
    def _on_direct(self, payload, src):
        if self.coordinator is None or not isinstance(payload, dict):
            return
        op = payload.get("op")
        if op == "qres":
            self.coordinator.on_result(payload)
        elif op == "qprog":
            self.coordinator.on_progress(payload)
        elif op == "qbloom":
            self.coordinator.on_bloom(payload)

    # ------------------------------------------------------------------
    # Failure semantics
    # ------------------------------------------------------------------
    def on_crash(self):
        """Node failed: all engine state is soft and is dropped."""
        self.fragments = {}
        self.executions = {}
        self.queries = {}
        self.combiners = {}
        self._undelivered = {}
        self._undelivered_expiry = {}
        self._undelivered_timer = None  # node timers die with the crash
        self._progress_pending = {}
        self._progress_timer = None
        self._maintained = {}  # the publisher died; its rows will expire
        if self.coordinator is not None:
            self.coordinator.on_crash()

    def __repr__(self):
        return "PierEngine({!r}, {} queries, {} executions)".format(
            self.address, len(self.queries), len(self.executions)
        )
