"""The per-node PIER engine.

One engine runs on every node, glued to that node's DHT API. It:

* holds the node's table fragments (local rows, stream windows) and
  publishes rows into DHT tables,
* adopts query plans that arrive by broadcast and schedules their
  epochs: one-shot/recursive plans get a single disposable
  :class:`~repro.core.dataflow.EpochExecution`; every continuous plan
  gets a long-lived :class:`~repro.core.dataflow.StandingExecution`
  whose operators are rolled over through the open/seal epoch
  lifecycle at every boundary instead of being torn down and rebuilt.
  The plan's epoch ring width (``QueryPlan.epoch_overlap``) says how
  many epoch states stay live per operator, so flush schedules
  spanning several periods -- and bloom-stage plans, whose filter
  round-trip is driven per epoch by the query site -- run standing
  too,
* multiplexes canonically identical standing queries onto shared
  *spines*: a continuous plan stamped with a logical share signature
  (``plan.metadata["spine"]``) joins the engine-wide
  :class:`~repro.core.sharing.SpineRecord` for that signature and
  epoch phase instead of building its own dataflow. One execution
  scans, exchanges, and aggregates; the result operator fans each
  epoch's answer to every subscriber's query site under its own qid
  and epoch number. Stream scans additionally share one append hook
  per table through the :class:`~repro.core.sharing.SharedScanRegistry`
  whatever plan they belong to,
* registers exchange namespaces with the DHT so rehashed rows reach
  the right operator instance -- once per epoch for disposable
  executions, once per *query* for standing ones -- and buffers early
  arrivals that beat the plan broadcast to this node, NACKing their
  senders when the buffer gives up on them,
* remembers recently stopped query ids (TTL'd tombstones) so a stale
  plan-refresh broadcast cannot resurrect a query after its stop,
* reports recursion progress to the query site for quiescence
  detection.

Engines keep only soft state: a crash loses fragments, executions and
adopted queries; a recovered node re-adopts continuous queries from
the coordinator's periodic plan re-broadcasts.
"""

from repro.core.aggregation_tree import TreeCombiner
from repro.core.dataflow import EpochExecution, StandingExecution
from repro.core.exchange import ExchangeMux, payload_rows
from repro.core.opgraph import OpSpec, QueryPlan
from repro.core.sharing import (
    PrefixRecord,
    PrefixSubscriber,
    SharedScanRegistry,
    SpineRecord,
    SpineSubscriber,
)
from repro.db.table import make_fragment
from repro.util.serde import wire_size


class EngineConfig:
    """Per-engine timing knobs (plan-independent).

    The ``flush_delay`` / ``max_batch_rows`` / ``max_batch_bytes`` trio
    controls exchange batching: rehashed rows sharing a routing key are
    held up to ``flush_delay`` seconds and shipped as one
    ``deliver_batch`` message, bounded by the row/byte caps.
    ``flush_delay = 0`` disables batching (one route message per row).

    ``undelivered_ttl`` / ``undelivered_cap`` bound the buffer of rows
    that arrive before their query's plan does: a namespace's early rows
    are dropped after the TTL, and no namespace holds more than the cap.
    Dropped rows are NACKed to their origin exchanges *only when the
    query carries a stop tombstone here* (an authoritative rejection);
    a node that merely missed the plan broadcast drops silently, since
    the refresh (or plan fetch) will enroll it and muting a live
    query's keys would hole the answer. Receiving a NACK mutes the
    affected routing keys for ``nack_mute_ttl`` seconds.

    ``route_cache_ttl`` bounds how long a standing exchange may trust
    a learned terminal owner before re-walking the ring; 0 disables
    owner caching (and with it the stable-rendezvous discipline on
    standing tree edges, which needs the cache to detect suspects).
    ``stop_tombstone_ttl`` is how long a stopped qid is remembered to
    fend off stale refresh broadcasts.

    ``columnar_batches`` turns on the columnar hot path: scans emit
    their per-epoch deltas as :class:`~repro.core.batch.RowBatch`
    objects feeding vectorized operators, and multi-row exchange
    messages ship per-column lists instead of row tuples. Off is the
    row-at-a-time ablation the columnar benchmark compares against;
    results are identical either way.

    ``shared_dataflows`` turns on every multi-query sharing layer:
    spine co-execution of canonically identical standing queries,
    prefix (scan-stage) sharing of different queries over the same
    (table, geometry), shared per-table scan hosts, and exchange
    multiplexing of co-routed batches. Off is the fully-private
    ablation the differential fuzz suite compares against; results are
    identical either way.
    """

    def __init__(
        self,
        teardown_slack=2.0,
        tree_hold_delay=0.8,
        progress_batch_delay=0.5,
        plan_refresh_period=60.0,
        publish_ttl=120.0,
        flush_delay=0.25,
        max_batch_rows=64,
        max_batch_bytes=8192,
        undelivered_ttl=15.0,
        undelivered_cap=512,
        route_cache_ttl=120.0,
        nack_mute_ttl=30.0,
        stop_tombstone_ttl=120.0,
        columnar_batches=True,
        shared_dataflows=True,
        # Region-aware two-level aggregation trees: standing tree-mode
        # exchanges on a region-labelled topology send partials through
        # their region's combiner rendezvous first, so one combined
        # partial per region crosses the backbone per flush. Off by
        # default -- the flat single-level tree stays the baseline.
        regional_trees=False,
        # Learned owners in another region expire on this shorter TTL
        # (the plain route_cache_ttl still caps same-region entries): a
        # cross-region owner cached just before a partition would
        # otherwise pin post-rejoin forwards onto the backbone for the
        # full TTL.
        cross_region_cache_ttl=30.0,
        # Adaptive epoch ring: standing executions start their ring at
        # min(planned width, ring_max_overlap), widen by one on
        # boundaries that saw late-straggler drops, and narrow back
        # toward the staleness the tail actually exhibits after
        # ring_quiet_boundaries drop-free boundaries. This replaces the
        # planner's retired static cap of 16. Paned plans keep the
        # planned width (their pane retention is sized from it).
        adaptive_ring=True,
        ring_max_overlap=64,
        ring_quiet_boundaries=4,
        # Adaptive exchange flush windows: size each exchange's batch
        # caps from its observed arrival rate, so a hot edge gathers
        # one flush window's worth of rows into few large messages
        # instead of capping out at max_batch_rows-sized ones. Off by
        # default -- the fixed caps are the baseline discipline.
        adaptive_flush=False,
        adaptive_flush_max_rows=2048,
        adaptive_flush_max_bytes=262144,
        # Owner backpressure: a node whose standing exchange inputs
        # exceed backpressure_rows_per_sec tells the origins to stretch
        # their flush windows (and caps) by up to backpressure_factor
        # for backpressure_ttl seconds ("xbp" direct messages, resent
        # at most once per TTL). Off by default.
        backpressure=False,
        backpressure_rows_per_sec=2000.0,
        backpressure_factor=4.0,
        backpressure_ttl=3.0,
        # Hot-group splitting: when one routing key of a standing
        # group-partial exchange pushes more than hot_group_threshold
        # rows in an epoch, later partials shard across
        # hot_group_shards salted keys (k owners); the coordinator's
        # duplicate-owner merge re-unifies the group. 0 disables.
        hot_group_threshold=0,
        hot_group_shards=4,
    ):
        self.teardown_slack = teardown_slack
        self.tree_hold_delay = tree_hold_delay
        self.progress_batch_delay = progress_batch_delay
        self.plan_refresh_period = plan_refresh_period
        self.publish_ttl = publish_ttl
        self.flush_delay = flush_delay
        self.max_batch_rows = max_batch_rows
        self.max_batch_bytes = max_batch_bytes
        self.undelivered_ttl = undelivered_ttl
        self.undelivered_cap = undelivered_cap
        self.route_cache_ttl = route_cache_ttl
        self.nack_mute_ttl = nack_mute_ttl
        self.stop_tombstone_ttl = stop_tombstone_ttl
        self.columnar_batches = columnar_batches
        self.shared_dataflows = shared_dataflows
        self.regional_trees = regional_trees
        self.cross_region_cache_ttl = cross_region_cache_ttl
        self.adaptive_ring = adaptive_ring
        self.ring_max_overlap = ring_max_overlap
        self.ring_quiet_boundaries = ring_quiet_boundaries
        self.adaptive_flush = adaptive_flush
        self.adaptive_flush_max_rows = adaptive_flush_max_rows
        self.adaptive_flush_max_bytes = adaptive_flush_max_bytes
        self.backpressure = backpressure
        self.backpressure_rows_per_sec = backpressure_rows_per_sec
        self.backpressure_factor = backpressure_factor
        self.backpressure_ttl = backpressure_ttl
        self.hot_group_threshold = hot_group_threshold
        self.hot_group_shards = hot_group_shards


class _QueryRecord:
    """An engine's view of one adopted query."""

    __slots__ = ("qid", "plan", "t0", "origin", "stopped",
                 "next_epoch_timer", "execution", "spine")

    def __init__(self, qid, plan, t0, origin):
        self.qid = qid
        self.plan = plan
        self.t0 = t0
        self.origin = origin
        self.stopped = False
        self.next_epoch_timer = None
        self.execution = None  # the StandingExecution, once started
        self.spine = None  # spine key when riding a shared execution


class PierEngine:
    def __init__(self, dht, catalog, config=None, rng=None):
        self.dht = dht
        self.catalog = catalog
        self.config = config if config is not None else EngineConfig()
        self.rng = rng
        self.clock = dht.clock
        self.address = dht.address
        self.region = getattr(dht, "region", None)

        self.fragments = {}
        self.executions = {}  # (qid, epoch) -> execution serving that epoch
        self.queries = {}  # qid -> _QueryRecord
        self._spines = {}  # spine key -> SpineRecord (shared executions)
        self._prefixes = {}  # prefix key -> PrefixRecord (shared scan stages)
        self.shared_scans = SharedScanRegistry(self)
        self.exchange_mux = ExchangeMux(self)  # prefix-member coalescing
        self.combiners = {}  # ns -> TreeCombiner
        self._undelivered = {}  # ns -> [rows arriving before registration]
        self._undelivered_tags = {}  # ns -> [epoch tag per buffered row]
        self._undelivered_origins = {}  # ns -> {origin address: {rid}}
        self._undelivered_expiry = {}  # ns -> drop-dead time for those rows
        self._undelivered_timer = None
        self._stop_tombstones = {}  # qid -> forget-at time (stale-refresh guard)
        self._exchange_mutes = {}  # (ns, rid) -> mute expiry (NACKed keys)
        # Learned-owner cache: (ns, rid) -> (NodeRef, expiry, region).
        # The region rides along so cross-region owners can expire on
        # the shorter cross_region_cache_ttl.
        self._route_owners = {}
        # Backpressure: inbound standing-exchange row accounting per
        # namespace (detection side, this node as owner) and TTL'd
        # flush-stretch factors (reaction side, this node as sender).
        self._bp_inflow = {}  # ns -> {"count", "t0", "origins"}
        self._bp_sent = {}  # ns -> last xbp send time
        self._bp_stretch = {}  # ns -> (factor, expiry)
        self.ring_late_drops = 0  # standing-ring drops (adaptive signal)
        self.ring_widenings = 0  # adaptive-ring widen events
        self._progress_pending = {}  # (qid, epoch) -> count
        self._progress_timer = None
        self._publish_seq = 0
        self._maintained = {}  # (table, instance_id) -> republish timer
        self.rows_scanned = 0  # scan effort counter (benchmarks)
        self.rows_aggregated = 0  # rows folded into stateful window ops
        self.rows_merged = 0  # partial states folded at group owners
        self.batches_pushed = 0  # multi-row RowBatch emissions (columnar)
        self.tree_forwards = 0  # combiner forwards (closed combiners)
        self.tree_hop_shortcuts = 0  # of which went direct to a cached owner
        self.coordinator = None  # set by Coordinator.attach

        dht.on_broadcast(self._on_broadcast)
        dht.on_direct(self._on_direct)
        dht.set_default_delivery(self._on_unclaimed_delivery)
        dht.on_storage_probe(self._on_storage_probe)

    # ------------------------------------------------------------------
    # Data management
    # ------------------------------------------------------------------
    def fragment(self, table_name):
        """This node's fragment of a local/stream table (created lazily)."""
        fragment = self.fragments.get(table_name)
        if fragment is None:
            fragment = make_fragment(self.catalog.lookup(table_name))
            self.fragments[table_name] = fragment
        return fragment

    def local_insert(self, table_name, rows):
        self.fragment(table_name).insert_many(rows)

    def stream_append(self, table_name, row, timestamp=None):
        ts = timestamp if timestamp is not None else self.clock.now
        self.fragment(table_name).append(ts, row)
        # Feed the shared runtime-stats catalog (admission control's
        # arrival-rate view); the schema catalog carries it when the
        # testbed enabled stats.
        stats = getattr(self.catalog, "stats", None)
        if stats is not None:
            stats.note_append(table_name, wire_size(row), self.clock.now)

    def publish(self, table_name, row, ttl=None, keep_alive=False):
        """Insert into a DHT table: the row travels to its partition owner.

        With ``keep_alive`` the row becomes *maintained* soft state:
        this node re-puts it every ttl/3 so it survives the storing
        node's crashes (the replacement owner receives the next re-put).
        Maintenance stops when this node crashes or calls
        :meth:`stop_publishing` -- after which the row simply expires,
        which is the only deletion mechanism PIER has.
        """
        table_def = self.catalog.lookup(table_name)
        if isinstance(row, dict):
            row = table_def.schema.row_from_dict(row)
        else:
            row = table_def.schema.coerce_row(row)
        rid = row[table_def.schema.index_of(table_def.partition_key)]
        self._publish_seq += 1
        instance_id = (self.address, self._publish_seq)
        if ttl is None:
            ttl = table_def.ttl if table_def.ttl is not None else self.config.publish_ttl
        self.dht.put(table_name, rid, instance_id, row, ttl)
        if keep_alive:
            self._keep_alive(table_name, rid, instance_id, row, ttl)
        return instance_id

    def _keep_alive(self, table_name, rid, instance_id, row, ttl):
        key = (table_name, instance_id)
        period = ttl / 3.0

        def republish():
            if key not in self._maintained:
                return
            self.dht.put(table_name, rid, instance_id, row, ttl)
            self._maintained[key] = self.set_timer(period, republish)

        self._maintained[key] = self.set_timer(period, republish)

    def stop_publishing(self, table_name, instance_id):
        """Let a maintained row age out (soft-state deletion)."""
        timer = self._maintained.pop((table_name, instance_id), None)
        if timer is not None:
            timer.cancel()

    def set_timer(self, delay, callback, *args):
        return self.dht.set_timer(delay, callback, *args)

    def note_rows_scanned(self, n):
        """Scan-effort accounting (rows examined by scan operators)."""
        self.rows_scanned += n

    def note_rows_aggregated(self, n):
        """Aggregation-effort accounting: rows folded into group-by /
        top-k state. Paned sliding windows fold each row once; the
        from-scratch path re-folds the whole window every epoch, so the
        ratio of these counters is the paned benchmark's headline."""
        self.rows_aggregated += n

    def note_batches_pushed(self, n):
        """Columnar-path accounting: RowBatch emissions between
        operators. ``rows_scanned`` / ``rows_aggregated`` keep their
        per-row meaning; this counts how often whole batches moved."""
        self.batches_pushed += n

    def note_rows_merged(self, n):
        """Owner-side accounting: partial state rows folded by final
        group-bys. Distributed panes ship each pane's increment once,
        so this drops by the window overlap versus re-shipping every
        group's full window state each epoch -- the distributed-panes
        benchmark's headline."""
        self.rows_merged += n

    # ------------------------------------------------------------------
    # Plan adoption and epoch scheduling
    # ------------------------------------------------------------------
    def _on_broadcast(self, payload, origin_ref, depth):
        if not isinstance(payload, dict):
            return
        ctl = payload.get("ctl")
        if ctl == "plan":
            self._adopt_query(payload)
        elif ctl == "stop":
            self._stop_query(payload["qid"])
        elif ctl == "bloom":
            # A standing execution is indexed under its *newest* epoch,
            # but merged filters for any still-open epoch of its ring
            # must reach it (bloom plans never ride a spine, so the
            # query record always owns its execution).
            epoch = payload["epoch"]
            record = self.queries.get(payload["qid"])
            if record is not None and record.execution is not None:
                execution = record.execution
            else:
                execution = self.executions.get((payload["qid"], epoch))
            if execution is not None:
                execution.control(
                    payload["op_id"], {"filters": payload["filters"]}, epoch
                )

    def _adopt_query(self, payload):
        qid = payload["qid"]
        if qid in self.queries:
            return  # refresh broadcast for a query we already run
        self._sweep_soft_maps()
        tombstone = self._stop_tombstones.get(qid)
        if tombstone is not None:
            if tombstone > self.clock.now:
                return  # stale refresh of a query stopped moments ago
            del self._stop_tombstones[qid]
        record = _QueryRecord(qid, payload["plan"], payload["t0"], payload["origin"])
        self.queries[qid] = record
        plan = record.plan
        if plan.mode == "continuous":
            elapsed = max(0.0, self.clock.now - record.t0)
            k_now = int(elapsed // plan.every)
            if plan.lifetime is not None and k_now * plan.every > plan.lifetime:
                self.queries.pop(qid, None)  # adopted after expiry
                return
            key = self._spine_key(plan, record.t0)
            if key is not None:
                self._join_spine(record, key)
            elif k_now >= 1:
                # Standing queries join the epoch *in progress*: the
                # rendezvous for their epoch-free exchange keys may hash
                # to this very node, so waiting for the next boundary
                # would drop every current-epoch row routed here.
                # Registration replays any early rows buffered under
                # this epoch's tag, and already-due flush timers fire
                # immediately.
                self._start_epoch(record, k_now, record.t0 + k_now * plan.every)
            else:
                # First epoch strictly after adoption; a late joiner
                # starts at the next boundary instead of replaying
                # history.
                self._schedule_epoch(record, k_now + 1)
        else:
            self._start_epoch(record, 0, record.t0)

    def _schedule_epoch(self, record, k):
        plan = record.plan
        if record.stopped:
            return
        if plan.lifetime is not None and k * plan.every > plan.lifetime:
            if record.execution is not None:
                # Keep the record adopted until the final epoch settles:
                # a plan refresh landing mid-final-epoch must hit the
                # already-running query (duplicate-adoption guard), not
                # spawn a second standing execution over the same
                # epoch-free namespaces. Stragglers get the same grace a
                # rebuilt epoch's close timer gave them.
                self.set_timer(
                    plan.deadline + self.config.teardown_slack,
                    self._retire_standing, record,
                )
            else:
                self.queries.pop(record.qid, None)  # soft-state expiry
            return
        t_k = record.t0 + k * plan.every
        delay = max(0.0, t_k - self.clock.now)
        record.next_epoch_timer = self.set_timer(
            delay, self._start_epoch, record, k, t_k
        )

    def _start_epoch(self, record, k, t_k):
        if record.stopped:
            return
        if record.plan.mode == "continuous":
            self._advance_standing(record, k, t_k)
        else:
            execution = EpochExecution(
                self, record.plan, record.qid, k, t_k, record.origin
            )
            self.executions[(record.qid, k)] = execution
            execution.start()
            close_at = t_k + record.plan.deadline + self.config.teardown_slack
            self.set_timer(max(0.0, close_at - self.clock.now),
                           self._close_epoch, record.qid, k)
        if record.plan.mode == "continuous":
            self._schedule_epoch(record, k + 1)

    def _advance_standing(self, record, k, t_k):
        """Epoch boundary for a standing query: build once, then roll."""
        execution = record.execution
        if execution is None:
            execution = StandingExecution(
                self, record.plan, record.qid, k, t_k, record.origin
            )
            record.execution = execution
            self.executions[(record.qid, k)] = execution
            execution.start()
        else:
            self.executions.pop((record.qid, execution.current_epoch), None)
            self.executions[(record.qid, k)] = execution
            execution.advance_epoch(k, t_k)

    def _retire_standing(self, record):
        """Lifetime reached and the final epoch has settled."""
        if self.queries.get(record.qid) is record:
            self.queries.pop(record.qid, None)  # soft-state expiry
        self._close_standing(record)

    def _close_standing(self, record):
        execution = record.execution
        if execution is None:
            return
        record.execution = None
        self.executions.pop((record.qid, execution.current_epoch), None)
        execution.close()
        # The query is gone for good: reclaim its per-key soft state.
        prefix = "q|{}|".format(record.qid)
        for key in [k for k in self._route_owners if k[0].startswith(prefix)]:
            del self._route_owners[key]
        for key in [k for k in self._exchange_mutes if k[0].startswith(prefix)]:
            del self._exchange_mutes[key]

    def _close_epoch(self, qid, epoch):
        execution = self.executions.pop((qid, epoch), None)
        if execution is not None:
            execution.close()
        record = self.queries.get(qid)
        if record is not None and record.plan.mode != "continuous":
            record.stopped = True
            self.queries.pop(qid, None)

    # ------------------------------------------------------------------
    # Shared spines (multi-query standing dataflows)
    # ------------------------------------------------------------------
    def _spine_key(self, plan, t0):
        """Spine identity for a plan at submission time ``t0``.

        The logical share signature alone is not enough: two identical
        queries submitted half a period apart tick on different grids.
        The key therefore pairs the signature with the epoch *phase*
        ``t0 % every`` (in integer milliseconds, so float noise cannot
        split a spine). Plans the planner left unstamped (one-shot,
        bloom-staged, ``shared=False``) return None and run privately.
        """
        if not self.config.shared_dataflows:
            return None
        sig = plan.metadata.get("spine") if plan.metadata else None
        if sig is None:
            return None
        phase_ms = int(round((t0 % plan.every) * 1000))
        return "{}@{}".format(sig, phase_ms)

    def _prefix_key(self, plan, t0):
        """Prefix-stage identity for a plan at submission time ``t0``.

        Same shape as :meth:`_spine_key` (signature + epoch phase in
        integer milliseconds), but over the logical *prefix* signature:
        plans that differ in predicates/groups yet scan the same stream
        table on the same grid share one scan stage. Checked only after
        the spine key missed -- identical bodies share the whole
        dataflow instead.
        """
        if not self.config.shared_dataflows:
            return None
        sig = plan.metadata.get("prefix") if plan.metadata else None
        if sig is None:
            return None
        phase_ms = int(round((t0 % plan.every) * 1000))
        return "{}@{}".format(sig, phase_ms)

    def _join_spine(self, record, key):
        """Enroll an adopted query as a subscriber of spine ``key``.

        First subscriber creates the spine record; the grid origin is
        the phase instant, so spine epoch ``k`` is always ``phase +
        k * every`` on every node regardless of adoption order. The
        subscriber's own epochs map onto the grid through its offset.
        """
        plan = record.plan
        srec = self._spines.get(key)
        if srec is None:
            srec = SpineRecord(key, plan, record.t0 % plan.every)
            srec.prefix = self._prefix_key(plan, record.t0)
            self._spines[key] = srec
        offset = int(round((record.t0 - srec.t0) / plan.every))
        last_epoch = None
        if plan.lifetime is not None:
            last_epoch = int(plan.lifetime / plan.every + 1e-9)
        srec.subscribers[record.qid] = SpineSubscriber(
            record.qid, record.origin, offset, last_epoch
        )
        record.spine = key
        record.execution = srec.execution
        if last_epoch is not None:
            # The subscriber retires on its own clock; the spine stalls
            # (or closes) only when no subscriber needs the next epoch.
            retire_at = (record.t0 + plan.lifetime + plan.deadline
                         + self.config.teardown_slack)
            record.next_epoch_timer = self.set_timer(
                max(0.0, retire_at - self.clock.now),
                self._retire_spine_subscriber, record.qid, key,
            )
        if srec.next_timer is None:
            # New spine, or one stalled past every member's lifetime:
            # (re)enter the grid at the current epoch. For the common
            # first-subscriber-at-submission case this runs spine epoch
            # ``offset`` immediately -- the subscriber's epoch 0, which
            # fan-out filters, but whose window history gets seeded
            # exactly like a private adoption would (by its own scan,
            # or by its shared scan stage).
            srec.stalled = False
            elapsed = max(0.0, self.clock.now - srec.t0)
            k_now = int(elapsed // plan.every)
            if srec.prefix is not None and srec.execution is not None:
                # Stage-fed spine re-entering after a stall: waves the
                # stage fanned past this spine's horizon were skipped,
                # so its retained pane state has gaps. Soft-state
                # answer: rebuild the execution from scratch; it is
                # re-seeded from the stage's retained panes below.
                old, srec.execution = srec.execution, None
                old.close()
                for sub_qid in srec.subscribers:
                    rec = self.queries.get(sub_qid)
                    if rec is not None and rec.spine == key:
                        rec.execution = None
            self._advance_spine(key, k_now, srec.t0 + k_now * plan.every)
            if srec.prefix is not None and srec.execution is not None:
                self._enroll_spine_in_stage(srec, k_now)
        elif srec.prefix is not None:
            self._sync_stage_horizon(srec)

    def _advance_spine(self, key, k, t_k):
        """Spine epoch boundary: build once, then roll; stall when no
        subscriber's lifetime reaches ``k``."""
        srec = self._spines.get(key)
        if srec is None:
            return
        srec.next_timer = None
        if not srec.subscribers:
            self._close_spine(key)
            return
        last = srec.last_spine_epoch()
        if last is not None and k > last:
            # Nobody needs this epoch; hold the grid until a new
            # subscriber joins (which re-enters at its current epoch).
            srec.stalled = True
            return
        if srec.execution is None:
            execution = StandingExecution(
                self, srec.plan, key, k, t_k, self.address, spine=srec,
                prefix_key=srec.prefix,
            )
            srec.execution = execution
            execution.start()
            for qid in srec.subscribers:
                rec = self.queries.get(qid)
                if rec is not None and rec.spine == key:
                    rec.execution = execution
        else:
            srec.execution.advance_epoch(k, t_k)
        srec.next_timer = self.set_timer(
            max(0.0, t_k + srec.plan.every - self.clock.now),
            self._advance_spine, key, k + 1, t_k + srec.plan.every,
        )

    def _retire_spine_subscriber(self, qid, key):
        """A subscriber's lifetime (plus straggler grace) is up."""
        record = self.queries.get(qid)
        if record is not None and record.spine == key:
            self.queries.pop(qid, None)  # soft-state expiry
            record.execution = None
        self._drop_spine_subscriber(qid, key)

    def _drop_spine_subscriber(self, qid, key):
        srec = self._spines.get(key)
        if srec is None:
            return
        srec.subscribers.pop(qid, None)
        if not srec.subscribers:
            self._close_spine(key)
        elif srec.prefix is not None:
            self._sync_stage_horizon(srec)

    def _close_spine(self, key):
        srec = self._spines.pop(key, None)
        if srec is None:
            return
        if srec.prefix is not None:
            self._drop_prefix_subscriber("s|" + key, srec.prefix)
        if srec.next_timer is not None:
            srec.next_timer.cancel()
            srec.next_timer = None
        execution, srec.execution = srec.execution, None
        if execution is not None:
            execution.close()
        # The spine is gone for good: reclaim its per-key soft state.
        prefix = "s|{}|".format(key)
        for entry in [k for k in self._route_owners
                      if k[0].startswith(prefix)]:
            del self._route_owners[entry]
        for entry in [k for k in self._exchange_mutes
                      if k[0].startswith(prefix)]:
            del self._exchange_mutes[entry]

    # ------------------------------------------------------------------
    # Shared prefix stages (common-subplan sharing)
    # ------------------------------------------------------------------
    def _enroll_spine_in_stage(self, srec, k_now):
        """Subscribe spine ``srec``'s execution to its shared scan stage.

        Every stage-stamped spine -- single-subscriber (one lone query)
        or a whole identical-query fleet -- is one stage member: its
        scan is passive (``prefix_fed``) and the stage's demux injects
        each epoch's rows via ``deliver_scan``. Spines of *different*
        signatures over the same (table, geometry, phase) land on the
        same stage; that is the common-subplan sharing: one scan feeds
        every tail. Spine grids are absolute (origin = phase), so a
        spine always sits at stage offset 0 and stage epoch ``k`` feeds
        spine epoch ``k`` directly.

        Seeding mirrors a private adoption: a spine entering at epoch 0
        reports nothing before its first boundary, where the stage
        backfills its retained panes; one entering mid-grid (``k_now >=
        1``) gets the current window immediately -- from the stage's
        initial full-history emission when the stage is new, or from
        the demux's retained-pane store when it joins a running stage.
        """
        key = srec.prefix
        plan = srec.plan
        prec = self._prefixes.get(key)
        if prec is None:
            prec = PrefixRecord(key, self._stage_plan(plan), srec.t0)
            self._prefixes[key] = prec
        sid = "s|" + srec.key
        offset = int(round((srec.t0 - prec.t0) / plan.every))
        sub = prec.subscribers.get(sid)
        if sub is None:
            sub = PrefixSubscriber(sid, offset, None, 0, False)
            prec.subscribers[sid] = sub
        sub.last_epoch = srec.last_spine_epoch()
        sub.start_epoch = offset + k_now + 1
        sub.needs_backfill = plan.pane is not None and k_now == 0
        if k_now >= 1 and prec.execution is not None:
            if prec.next_timer is not None:
                # Running stage, joined mid-epoch: this epoch's waves
                # already fanned past us. Re-seed the current window
                # from the demux's retained panes now.
                self._backfill_from_stage(prec, sub, srec.execution,
                                          k_now)
            else:
                # Stalled stage: re-entering the grid below emits the
                # stall-gap panes itself, but panes emitted before the
                # stall live only in its store -- flag a backfill at
                # the re-entry open.
                sub.needs_backfill = plan.pane is not None
                sub.start_epoch = offset + k_now
        if prec.next_timer is None:
            # New stage, or one stalled past every member's horizon:
            # (re)enter the grid at the current epoch. A new stage's
            # initial emission seeds the full window history exactly
            # like a private adoption's first scan would.
            prec.stalled = False
            elapsed = max(0.0, self.clock.now - prec.t0)
            k = int(elapsed // plan.every)
            self._advance_prefix(key, k, prec.t0 + k * plan.every)

    def _sync_stage_horizon(self, srec):
        """Keep the stage subscriber's horizon in step with the spine's
        (membership changed: the last epoch any member needs moved)."""
        prec = self._prefixes.get(srec.prefix)
        if prec is None:
            return
        sub = prec.subscribers.get("s|" + srec.key)
        if sub is not None:
            sub.last_epoch = srec.last_spine_epoch()

    def _backfill_from_stage(self, prec, sub, execution, j):
        """Inject the stage's retained panes into a (re)joining member.

        ``j`` is the member epoch the current stage epoch answers; the
        store holds exactly the already-emitted panes of that epoch's
        window (pruned at each boundary). Unpaned stages retain nothing
        -- their next boundary re-emits the full window anyway.
        """
        sub.needs_backfill = False
        if prec.execution is None:
            return
        geometry = prec.plan.ops_of_kind("scan")[0].params.get("paned")
        shift = sub.offset * geometry["every"] if geometry else 0
        for op in prec.execution.ops.values():
            if op.spec.kind == "demux":
                for pane in sorted(op._store):
                    execution.deliver_scan(
                        list(op._store[pane]), j, pane - shift
                    )

    def _stage_plan(self, plan):
        """The two-op stage plan (scan -> demux) for prefix ``plan``.

        Cloned from the member plan's scan spec, so pane geometry,
        shared-scan host key and batching carry over; every co-tenant
        lowers an identical scan spec by construction (it is covered by
        the prefix signature).
        """
        scan_spec = plan.ops_of_kind("scan")[0]
        stage_scan = OpSpec("stage_scan", "scan", dict(scan_spec.params))
        demux_params = {}
        if scan_spec.params.get("paned"):
            demux_params["paned"] = scan_spec.params["paned"]
        stage_demux = OpSpec("stage_demux", "demux", demux_params,
                             ["stage_scan"])
        return QueryPlan(
            [stage_scan, stage_demux], "stage_demux", mode="continuous",
            every=plan.every, window=plan.window, deadline=plan.deadline,
            standing=True, epoch_overlap=1, pane=plan.pane,
        )

    def _advance_prefix(self, key, k, t_k):
        """Stage epoch boundary: build once, then roll; stall when no
        subscriber's lifetime reaches ``k``."""
        prec = self._prefixes.get(key)
        if prec is None:
            return
        prec.next_timer = None
        if not prec.subscribers:
            self._close_prefix(key)
            return
        last = prec.last_stage_epoch()
        if last is not None and k > last:
            prec.stalled = True
            return
        if prec.execution is None:
            execution = StandingExecution(
                self, prec.plan, "p|" + key, k, t_k, self.address
            )
            # The demux reads the subscriber map through the record;
            # parked before start() so the initial scan wave fans.
            execution.ctx.prefix_record = prec
            prec.execution = execution
            execution.start()
        else:
            prec.execution.advance_epoch(k, t_k)
        prec.next_timer = self.set_timer(
            max(0.0, t_k + prec.plan.every - self.clock.now),
            self._advance_prefix, key, k + 1, t_k + prec.plan.every,
        )

    def prefix_member_execution(self, member_id):
        """A stage member's execution (demux fan-out hook). Members are
        spines, identified in the subscriber map as ``s|<spine key>``."""
        if member_id.startswith("s|"):
            srec = self._spines.get(member_id[2:])
            return srec.execution if srec is not None else None
        record = self.queries.get(member_id)
        return record.execution if record is not None else None

    def _drop_prefix_subscriber(self, qid, key):
        prec = self._prefixes.get(key)
        if prec is None:
            return
        prec.subscribers.pop(qid, None)
        if not prec.subscribers:
            self._close_prefix(key)

    def _close_prefix(self, key):
        prec = self._prefixes.pop(key, None)
        if prec is None:
            return
        if prec.next_timer is not None:
            prec.next_timer.cancel()
            prec.next_timer = None
        execution, prec.execution = prec.execution, None
        if execution is not None:
            execution.close()
        # The stage is gone for good: reclaim the co-routing soft state
        # its members' exchanges accumulated under the prefix route
        # namespace.
        prefix = "p|{}|".format(key)
        for entry in [k for k in self._route_owners
                      if k[0].startswith(prefix)]:
            del self._route_owners[entry]
        for entry in [k for k in self._exchange_mutes
                      if k[0].startswith(prefix)]:
            del self._exchange_mutes[entry]

    def _sweep_soft_maps(self):
        """Reclaim expired tombstones / mutes / owner-cache entries.

        These maps are TTL'd but mostly read by keys that stay hot;
        entries whose key never comes back (a stopped query's qid, a
        muted rid never pushed again) would otherwise linger. Swept
        opportunistically on adoption and stop -- both regular events on
        a busy engine -- so growth is bounded by the TTLs.
        """
        now = self.clock.now
        for qid in [q for q, t in self._stop_tombstones.items() if t <= now]:
            del self._stop_tombstones[qid]
        for key in [k for k, t in self._exchange_mutes.items() if t <= now]:
            del self._exchange_mutes[key]
        for key in [k for k, e in self._route_owners.items() if e[1] <= now]:
            del self._route_owners[key]

    def _stop_query(self, qid):
        # Remember the stop regardless of whether we run the query: a
        # plan-refresh broadcast already in flight (or one this node
        # missed the stop for) must not re-adopt a stopped query.
        self._sweep_soft_maps()
        self._stop_tombstones[qid] = (
            self.clock.now + self.config.stop_tombstone_ttl
        )
        # Early rows held for this query's namespaces will never find a
        # subscriber now; drop them instead of waiting out their TTL.
        # (Done even without a query record: a node the plan broadcast
        # missed can still have buffered rehashed rows for it.)
        prefix = "q|{}|".format(qid)
        for ns in [n for n in self._undelivered if n.startswith(prefix)]:
            self._send_nacks(ns)  # authoritative: the query is stopped
            self._drop_undelivered(ns)
        for key in [k for k in self._exchange_mutes if k[0].startswith(prefix)]:
            del self._exchange_mutes[key]
        for key in [k for k in self._route_owners if k[0].startswith(prefix)]:
            del self._route_owners[key]
        record = self.queries.pop(qid, None)
        if record is None:
            return
        record.stopped = True
        if record.next_epoch_timer is not None:
            record.next_epoch_timer.cancel()
        record.execution = None
        if record.spine is not None:
            # Leave the shared execution to its co-tenants; it closes
            # only when the last subscriber leaves (which in turn drops
            # the spine's shared-scan-stage membership).
            self._drop_spine_subscriber(qid, record.spine)
        for (open_qid, epoch) in list(self.executions):
            if open_qid == qid:
                self.executions.pop((open_qid, epoch)).close()

    # ------------------------------------------------------------------
    # Exchange plumbing
    # ------------------------------------------------------------------
    def register_exchange_input(self, ns, execution, op_id, port, combine=None,
                                standing=False):
        """Claim an exchange namespace for a local operator input.

        ``combine`` carries tree-mode parameters ({"agg_specs": ...});
        when present a :class:`TreeCombiner` intercept is installed so
        this node merges pass-through partials for that edge.

        ``standing`` marks a long-lived registration (epoch-free
        namespace): delivery forwards each payload's epoch tag so the
        execution can drop late arrivals, and buffered early rows are
        replayed tag by tag.
        """

        if standing:
            watch = self.config.backpressure

            def deliver(payload, route_msg):
                rows = payload_rows(payload)
                if watch:
                    self._note_exchange_inflow(
                        ns, len(rows), getattr(route_msg, "origin", None)
                    )
                execution.deliver_batch(
                    op_id, port, rows, payload.get("epoch"),
                    payload.get("pane"),
                )
        else:
            def deliver(payload, route_msg):
                execution.deliver_batch(op_id, port, payload_rows(payload))

        self.dht.register_delivery(ns, deliver)
        if combine is not None:
            upcall = execution.ctx.upcall_name(op_id, port)
            route_ns = execution.ctx.route_namespace(op_id)
            # Standing tree edges with a live owner cache get the
            # stable-rendezvous discipline: the combiner (like the
            # exchange) re-salts a group's route only while its cached
            # owner is suspect. Shared executions also stamp a
            # representative qid on forwards for plan-pull provenance.
            caching = standing and self.config.route_cache_ttl > 0
            suspect_fn = self.route_owner_suspect if caching else None
            # Hop caching: a standing combiner's forward may go direct
            # to the learned terminal owner instead of re-walking the
            # O(log N) stable-key route every epoch. Unlearned keys
            # walk with learn set (warming the cache); salted forwards
            # always walk (the re-salt IS the invalidation).
            owner_fn = self.cached_owner if caching else None
            qsrc_fn = (
                execution.ctx.rep_qid
                if getattr(execution.ctx, "shared", False) else None
            )
            # Under regional trees, absorption only happens at region
            # rendezvous (senders route through them), so forwards are
            # level-2 sends that skip further mid-route absorption.
            regional = (
                standing
                and bool(getattr(self.config, "regional_trees", False))
                and self.region is not None
            )
            combiner = TreeCombiner(
                self.dht, ns, route_ns, upcall, combine["agg_specs"],
                combine.get("hold", self.config.tree_hold_delay),
                paned=combine.get("paned", False),
                suspect_fn=suspect_fn, qsrc_fn=qsrc_fn,
                owner_fn=owner_fn, regional=regional,
            )
            self.combiners[ns] = combiner
            self.dht.register_intercept(upcall, combiner.handler)
        rows = self._undelivered.pop(ns, ())
        tags = self._undelivered_tags.pop(ns, ())
        self._undelivered_origins.pop(ns, None)
        self._undelivered_expiry.pop(ns, None)
        if standing:
            replayed_epochs = set()
            for row, (epoch_tag, pane_tag) in zip(rows, tags):
                execution.deliver_batch(op_id, port, (row,), epoch_tag,
                                        pane_tag)
                if epoch_tag is not None:
                    replayed_epochs.add(epoch_tag)
            # Replayed rows arrived before this node could subscribe
            # (typically a rejoined node that just pulled the plan),
            # so those epochs' flush waves are largely behind them.
            # Waiting for the next planned deadline risks the rows
            # dying held if this node churns again; nudge the consumer
            # to ship them as soon as the registration settles.
            for epoch_tag in replayed_epochs:
                self.set_timer(0.0, execution.flush_input, op_id, epoch_tag)
        else:
            execution.deliver_batch(op_id, port, rows)

    # ------------------------------------------------------------------
    # Owner backpressure (adaptive load management, run-time half)
    # ------------------------------------------------------------------
    def _note_exchange_inflow(self, ns, n, origin):
        """Owner-side arrival accounting for one standing namespace.

        Rates are measured over rolling one-second windows; when a
        window's rate exceeds ``backpressure_rows_per_sec``, every
        origin that contributed to it receives an "xbp" direct message
        asking it to stretch its flush window (rate-limited to one send
        per TTL per namespace, so a hot edge costs O(origins) control
        messages per TTL, not per batch).
        """
        now = self.clock.now
        state = self._bp_inflow.get(ns)
        if state is None or now - state["t0"] >= 1.0:
            if state is not None:
                self._maybe_send_backpressure(ns, state, now)
            state = self._bp_inflow[ns] = {
                "count": 0, "t0": now, "origins": set(),
            }
        state["count"] += n
        # Route messages carry a NodeRef origin; xbp goes out over
        # dht.direct, which addresses by string, so normalize here
        # (also dedupes one origin seen through both shapes).
        origin = getattr(origin, "address", origin)
        if origin is not None and origin != self.address:
            state["origins"].add(origin)

    def _maybe_send_backpressure(self, ns, state, now):
        elapsed = max(now - state["t0"], 1e-9)
        rate = state["count"] / elapsed
        threshold = self.config.backpressure_rows_per_sec
        if rate <= threshold or not state["origins"]:
            return
        last = self._bp_sent.get(ns, -1e18)
        ttl = self.config.backpressure_ttl
        if now - last < ttl:
            return
        self._bp_sent[ns] = now
        factor = min(self.config.backpressure_factor, rate / threshold)
        for origin in state["origins"]:
            self.dht.direct(origin, {
                "op": "xbp", "ns": ns, "factor": factor, "ttl": ttl,
            })

    def exchange_flush_stretch(self, ns):
        """Current flush-window stretch factor for a namespace (>= 1.0).

        Exchanges multiply their flush delay and batch caps by this
        while a backpressured owner's TTL is live: fewer, larger
        messages toward the overloaded node.
        """
        entry = self._bp_stretch.get(ns)
        if entry is None:
            return 1.0
        factor, expiry = entry
        if expiry <= self.clock.now:
            del self._bp_stretch[ns]
            return 1.0
        return factor

    def unregister_exchange_input(self, ns):
        self.dht.unregister_delivery(ns)
        combiner = self.combiners.pop(ns, None)
        if combiner is not None:
            combiner.close()
            # Fold the edge's hop accounting into engine totals so the
            # benches can still read it after the execution tears down.
            self.tree_forwards += combiner.forwarded
            self.tree_hop_shortcuts += combiner.hop_shortcuts
            self.dht.unregister_intercept(combiner.upcall)
        self._bp_inflow.pop(ns, None)
        self._bp_sent.pop(ns, None)
        self._drop_undelivered(ns)

    def _drop_undelivered(self, ns):
        self._undelivered.pop(ns, None)
        self._undelivered_tags.pop(ns, None)
        self._undelivered_origins.pop(ns, None)
        self._undelivered_expiry.pop(ns, None)

    def _on_unclaimed_delivery(self, payload, route_msg):
        # Rows can beat the plan broadcast to this node; hold them until
        # the execution registers. Nothing guarantees a plan ever
        # arrives (the broadcast can miss this node, or the query may
        # already be stopping), so the buffer is bounded two ways: each
        # namespace is dropped ``undelivered_ttl`` after its first early
        # row, and holds at most ``undelivered_cap`` rows. Whenever the
        # buffer sheds rows it NACKs the exchanges that sent them.
        ns = payload["ns"]
        incoming = payload_rows(payload)
        rows = self._undelivered.get(ns)
        if rows is None:
            rows = self._undelivered[ns] = []
            self._undelivered_tags[ns] = []
            self._undelivered_origins[ns] = {}
            self._undelivered_expiry[ns] = (
                self.clock.now + self.config.undelivered_ttl
            )
            if self._undelivered_timer is None:
                self._undelivered_timer = self.set_timer(
                    self.config.undelivered_ttl, self._expire_undelivered
                )
            if payload.get("epoch") is not None:
                # A standing query is live somewhere and its epoch-free
                # rendezvous hashes *here* -- every epoch's rows will
                # keep arriving at this node. Waiting out the refresh
                # period would hole the answer for several epochs
                # (per-epoch keys would have re-hashed away from a
                # planless node; epoch-free keys keep coming back).
                # Pull the missing soft state instead: ask the query
                # site for the plan directly, once per buffer
                # generation.
                self._request_plan(ns, payload.get("qsrc"))
        origin = getattr(route_msg, "origin", None)
        rid = payload.get("rid")
        if origin is not None and rid is not None:
            self._undelivered_origins[ns].setdefault(
                origin.address, set()
            ).add(rid)
        space = self.config.undelivered_cap - len(rows)
        if space > 0:
            taken = list(incoming[:space])
            rows.extend(taken)
            self._undelivered_tags[ns].extend(
                [(payload.get("epoch"), payload.get("pane"))] * len(taken)
            )
        if len(incoming) > max(space, 0):
            # Cap overflow: this node is drowning in rows nobody here
            # subscribes to. NACK the senders -- which only goes out if
            # the query is tombstoned here (see _send_nacks); a
            # merely-missed plan keeps dropping silently.
            self._send_nacks(ns)

    def _on_storage_probe(self, ns):
        """A get/lscan probe referenced a continuous query's temp
        namespace. Same adoption gap as an epoch-tagged unclaimed row
        (the querying side evidently believes this node participates),
        same cure: pull the plan from the query site directly instead
        of waiting out a refresh period."""
        self._request_plan(ns)

    def _request_plan(self, ns, qsrc=None):
        """Ask the query site for a plan we evidently missed.

        ``qid`` embeds the submitting node's address (``addr#seq``, a
        coordinator invariant), so the request needs no lookup. A stale
        or stopped query simply gets no reply and the buffered rows age
        out as before.

        Spine namespaces (``s|``) embed a content-derived key, not a
        qid, so senders stamp a live subscriber qid (``qsrc``) on every
        shared batch; adopting that query re-forms the spine here.
        Probes without provenance drop silently.
        """
        if ns.startswith("s|"):
            if qsrc is None or qsrc in self.queries \
                    or qsrc in self._stop_tombstones:
                return
            origin = qsrc.rsplit("#", 1)[0]
            if origin and origin != self.address:
                self.dht.direct(origin, {"op": "xplan", "qid": qsrc})
            return
        if not ns.startswith("q|"):
            return
        qid = ns.split("|")[1]
        if qid in self.queries or qid in self._stop_tombstones:
            return
        origin = qid.rsplit("#", 1)[0]
        if origin and origin != self.address:
            self.dht.direct(origin, {"op": "xplan", "qid": qid})

    def _send_nacks(self, ns):
        """Tell origin exchanges their rehashes for ``ns`` go nowhere.

        Carries the routing ids observed from each origin, so the
        sender can mute exactly the keys that hash to this node (it has
        no other way to know which keys terminate here). Sent at most
        once per origin per buffer generation.

        Only *authoritative* rejections are sent: the query must carry
        a stop tombstone here. A node that merely missed the plan
        broadcast stays silent -- the refresh will enroll it shortly,
        and muting a live query's keys at the senders would silently
        hole the answer for the whole mute window (ownership can also
        move to a healthy subscriber while the mute persists).
        """
        qid = ns.split("|")[1] if ns.startswith("q|") else None
        if qid is None or qid not in self._stop_tombstones:
            return
        origins = self._undelivered_origins.get(ns)
        if not origins:
            return
        for address, rids in origins.items():
            self.dht.direct(address, {
                "op": "xnack", "ns": ns, "rids": list(rids),
            })
        origins.clear()

    def _expire_undelivered(self):
        self._undelivered_timer = None
        now = self.clock.now
        for ns in [n for n, t in self._undelivered_expiry.items() if t <= now]:
            self._send_nacks(ns)
            self._drop_undelivered(ns)
        if self._undelivered_expiry:
            next_deadline = min(self._undelivered_expiry.values())
            self._undelivered_timer = self.set_timer(
                max(0.0, next_deadline - now), self._expire_undelivered
            )

    def exchange_muted(self, ns, rid):
        """Has a receiver NACKed this routing key? (checked per push)"""
        expiry = self._exchange_mutes.get((ns, rid))
        if expiry is None:
            return False
        if expiry <= self.clock.now:
            del self._exchange_mutes[(ns, rid)]
            return False
        return True

    def cached_owner(self, ns, rid):
        """Learned terminal owner for a standing exchange key, if fresh."""
        entry = self._route_owners.get((ns, rid))
        if entry is None:
            return None
        ref, expiry = entry[0], entry[1]
        if expiry <= self.clock.now or self.dht.is_suspect(ref.address):
            del self._route_owners[(ns, rid)]
            return None
        return ref

    def route_owner_suspect(self, ns, rid):
        """Is the learned owner for a standing key currently suspect?

        Drives the stable-rendezvous fallback on standing tree edges:
        a suspect owner makes the sender re-salt that key's route for
        the epoch (fresh rendezvous away from the dying node) without
        forgetting the cache entry -- the suspicion may clear, and the
        stable owner holds the group's accumulated state. Expired
        entries are reclaimed; no cache entry means nothing to
        distrust.
        """
        entry = self._route_owners.get((ns, rid))
        if entry is None:
            return False
        ref, expiry = entry[0], entry[1]
        if expiry <= self.clock.now:
            del self._route_owners[(ns, rid)]
            return False
        return self.dht.is_suspect(ref.address)

    # ------------------------------------------------------------------
    # Recursion progress (quiescence detection support)
    # ------------------------------------------------------------------
    def note_progress(self, qid, epoch, count):
        key = (qid, epoch)
        self._progress_pending[key] = self._progress_pending.get(key, 0) + count
        if self._progress_timer is None:
            self._progress_timer = self.set_timer(
                self.config.progress_batch_delay, self._send_progress
            )

    def _send_progress(self):
        self._progress_timer = None
        pending, self._progress_pending = self._progress_pending, {}
        for (qid, epoch), count in pending.items():
            record = self.queries.get(qid)
            if record is None or count == 0:
                continue
            self.dht.direct(record.origin, {
                "op": "qprog", "qid": qid, "epoch": epoch,
                "node": self.address, "new": count,
            })

    # ------------------------------------------------------------------
    # Direct messages: engine-level control, then coordinator traffic
    # ------------------------------------------------------------------
    def _on_direct(self, payload, src):
        if not isinstance(payload, dict):
            return
        op = payload.get("op")
        if op == "xnack":
            # Mutes only matter while we still run the query: a NACK
            # straggling in after our own stop-cleanup would otherwise
            # park an entry nothing ever reads again.
            ns = payload["ns"]
            qid = ns.split("|")[1] if ns.startswith("q|") else None
            if qid in self.queries:
                expiry = self.clock.now + self.config.nack_mute_ttl
                for rid in payload["rids"]:
                    self._exchange_mutes[(ns, rid)] = expiry
            return
        if op == "xowner":
            if payload.get("rid") is not None:
                ns, rid = payload["ns"], payload["rid"]
                region = payload.get("region")
                ttl = self.config.route_cache_ttl
                if (region is not None and self.region is not None
                        and region != self.region):
                    # A backbone owner: trust it for less time, so a
                    # partition cannot leave a cross-region entry
                    # pinning forwards long after the region rejoined.
                    ttl = min(ttl, self.config.cross_region_cache_ttl)
                self._route_owners[(ns, rid)] = (
                    payload["ref"], self.clock.now + ttl, region,
                )
            return
        if op == "xowner_stale":
            self._route_owners.pop((payload["ns"], payload["rid"]), None)
            return
        if op == "xbp":
            # An overloaded owner asks us to stretch flushes toward it.
            # Factors do not stack -- the largest live request wins --
            # and the TTL makes the signal self-expiring soft state.
            ns = payload["ns"]
            factor = max(1.0, float(payload["factor"]))
            expiry = self.clock.now + float(payload.get(
                "ttl", self.config.backpressure_ttl
            ))
            current = self._bp_stretch.get(ns)
            if current is None or factor >= current[0]:
                self._bp_stretch[ns] = (factor, expiry)
            return
        if op == "xplan_reply":
            self._adopt_query(payload)
            return
        if self.coordinator is None:
            return
        if op == "qres":
            self.coordinator.on_result(payload)
        elif op == "qprog":
            self.coordinator.on_progress(payload)
        elif op == "qbloom":
            self.coordinator.on_bloom(payload)
        elif op == "xplan":
            self.coordinator.on_plan_request(payload, src)

    # ------------------------------------------------------------------
    # Failure semantics
    # ------------------------------------------------------------------
    def on_crash(self):
        """Node failed: all engine state is soft and is dropped."""
        self.fragments = {}
        self.executions = {}
        self.queries = {}
        self._spines = {}  # spine timers die with the crash
        self._prefixes = {}  # stage timers die with the crash
        self.shared_scans.reset()
        self.exchange_mux = ExchangeMux(self)  # held bundles die too
        self.combiners = {}
        self._undelivered = {}
        self._undelivered_tags = {}
        self._undelivered_origins = {}
        self._undelivered_expiry = {}
        self._undelivered_timer = None  # node timers die with the crash
        self._stop_tombstones = {}
        self._exchange_mutes = {}
        self._route_owners = {}
        self._bp_inflow = {}
        self._bp_sent = {}
        self._bp_stretch = {}
        self._progress_pending = {}
        self._progress_timer = None
        self._maintained = {}  # the publisher died; its rows will expire
        if self.coordinator is not None:
            self.coordinator.on_crash()

    def __repr__(self):
        return "PierEngine({!r}, {} queries, {} executions)".format(
            self.address, len(self.queries), len(self.executions)
        )
