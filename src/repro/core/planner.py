"""The physical planner: logical plans -> physical (timed) operator graphs.

Planning runs in two explicit phases:

1. **logical** (``core/logical.py``): the parsed
   :class:`~repro.core.logical.LogicalQuery` is resolved against the
   catalog into a normalized operator DAG with canonical expression
   forms -- name resolution, predicate pushdown, left-deep join
   ordering and equi-join key extraction, aggregate/project shape
   checks. No physical decision happens there, and near-duplicate
   queries (alias renames, flipped comparisons, reordered conjuncts,
   different output names) normalize to the *same* DAG.
2. **physical** (this module): the DAG is lowered node by node into a
   :class:`~repro.core.opgraph.QueryPlan` -- join strategies
   (symmetric-hash / fetch-matches / Bloom), exchange modes
   (rehash / aggregation tree), partial top-k, and flush deadlines from
   a dataflow-timing walk (when can an operator's inputs have
   arrived?), because a soft-state system flushes on clocks, not on
   end-of-stream tokens.

The logical phase's canonical signatures also drive **dataflow
sharing**: an eligible standing plan is stamped with its
``share_signature`` (``metadata["spine"]``) so the engine can run all
concurrent queries with the same signature and epoch phase on one
shared spine (see ``core/sharing.py``), and stream scans are stamped
``share_scan`` so co-located queries subscribe through one
per-(node, table) append hook.

Recursive queries (transitive-closure shape) become cyclic graphs:
base rows enter a DHT-partitioned ``distinct``; novel rows feed both
result return and a join against the edge relation whose output cycles
back into the same ``distinct`` -- semi-naive evaluation as dataflow.
"""

import math

from repro.core.aggregates import AggSpec
from repro.core.logical import (
    AggCall,
    LogicalQuery,
    RecursiveSpec,
    and_all as _and_all,
    build_logical_plan,
    split_where as _split_where,
)
from repro.core.opgraph import OpSpec, QueryPlan
from repro.db.expressions import ColumnRef, equi_join_pairs
from repro.db.schema import Column, Schema
from repro.db.types import ANY
from repro.db.window import pane_width
from repro.util.errors import CatalogError, PlanError

__all__ = [
    "AggCall", "LogicalQuery", "RecursiveSpec", "PlannerTiming",
    "plan_query",
]


class PlannerTiming:
    """Dataflow-timing constants (seconds) used to place flush deadlines.

    These bound, not measure: scan_ready covers plan dissemination,
    rehash_xfer covers a multi-hop routed transfer, tree_xfer covers the
    extra per-hop hold time of aggregation trees on a few-hundred-node
    overlay. Generous values trade a little latency for complete
    answers; the soft-state design makes tight values degrade to
    partial answers rather than errors.
    """

    def __init__(self, scan_ready=1.5, hold=0.6, rehash_xfer=1.5,
                 tree_xfer=6.0, result_send=0.4, collect=2.0,
                 bloom_merge=1.2, bloom_release=1.0):
        self.scan_ready = scan_ready
        self.hold = hold
        self.rehash_xfer = rehash_xfer
        self.tree_xfer = tree_xfer
        self.result_send = result_send
        self.collect = collect
        self.bloom_merge = bloom_merge
        self.bloom_release = bloom_release


class _Builder:
    """Accumulates op specs and the timing walk while lowering."""

    def __init__(self, timing):
        self.timing = timing
        self.specs = []
        self.flush_offsets = {}
        self._n = 0

    def add(self, kind, params=None, inputs=()):
        self._n += 1
        op_id = "op{}".format(self._n)
        self.specs.append(OpSpec(op_id, kind, params, inputs))
        return op_id

    def flush_at(self, op_id, t):
        self.flush_offsets[op_id] = t

    def spec(self, op_id):
        for spec in self.specs:
            if spec.op_id == op_id:
                return spec
        raise KeyError(op_id)


def plan_query(lq, catalog, timing=None):
    """Compile a LogicalQuery against a catalog into a QueryPlan."""
    timing = timing if timing is not None else PlannerTiming()
    if lq.recursive is not None:
        plan = _plan_recursive(lq, catalog, timing)
    else:
        plan = _plan_flat(lq, catalog, timing)
    # Admission-time annotations. The cost bound is recomputed here
    # (not passed in) so EXPLAIN output always reflects the stats the
    # plan was admitted against; the stats key is what the coordinator
    # reports observed group cardinalities back under.
    bound = bound_query_cost(lq, catalog)
    if bound is not None:
        plan.metadata["cost"] = bound.as_dict()
    key = query_stats_key(lq)
    if key is not None:
        plan.metadata["stats_key"] = key
    sample = lq.options.get("sample_rate")
    if sample is not None:
        for spec in plan.ops_of_kind("scan"):
            spec.params["sample"] = sample
    return plan


# ----------------------------------------------------------------------
# Cost bounding (admission control's plan-time half)
# ----------------------------------------------------------------------

#: Nominal state-size multipliers for the exchange-byte bound. A
#: COUNT(DISTINCT x) partial carries the group's value *set*, so its
#: wire size grows with distinct values per group; the sketch swap
#: (APPROX_COUNT_DISTINCT) replaces it with a constant-size HLL whose
#: error is documented at ~1.04/sqrt(2^precision). The factors are
#: deliberately coarse -- this is a *bound* used to refuse or degrade
#: queries, not a cardinality estimator.
_DISTINCT_STATE_FACTOR = 32.0
_SKETCH_STATE_FACTOR = 4.0

#: Nominal fan-in for the partial-aggregation exchange bound: with
#: per-node partial aggregation, at most ~this many contributing nodes
#: ship each group per epoch (flush waves x tree combining), so
#: exchange rows are bounded by ``groups * fan-in`` when the group
#: cardinality is known, whatever the raw row rate.
_GROUP_FANIN = 16.0

#: Unit weights for the scalar budget: one unit per row scanned, per
#: 64 exchange bytes, and two per owner group fold, all per second.
_W_EXCHANGE_BYTES = 1.0 / 64.0
_W_FOLD = 2.0


class CostBound:
    """Per-epoch cost bound for a continuous query, from catalog stats.

    ``rows_scanned`` is the standing-scan examination bound (stream
    subscriptions touch each arriving row O(1) times, so it is
    ``sum(table arrival rate) * EVERY``); ``exchange_rows`` /
    ``exchange_bytes`` bound what crosses the network per epoch after
    partial aggregation and sampling; ``fold_groups`` bounds owner-side
    group folds per epoch. ``units_per_sec`` collapses them into the
    scalar the admission budget is expressed in -- amortized over the
    epoch period, so widening EVERY genuinely cheapens group-bound
    queries (their per-epoch group fold and exchange terms amortize)
    while the raw scan-rate term stays put.
    """

    __slots__ = ("rows_scanned", "exchange_rows", "exchange_bytes",
                 "fold_groups", "every")

    def __init__(self, rows_scanned, exchange_rows, exchange_bytes,
                 fold_groups, every):
        self.rows_scanned = rows_scanned
        self.exchange_rows = exchange_rows
        self.exchange_bytes = exchange_bytes
        self.fold_groups = fold_groups
        self.every = every

    def units_per_sec(self):
        per_epoch = (
            self.rows_scanned
            + self.exchange_bytes * _W_EXCHANGE_BYTES
            + self.fold_groups * _W_FOLD
        )
        return per_epoch / self.every

    def as_dict(self):
        return {
            "rows_scanned": round(self.rows_scanned, 2),
            "exchange_rows": round(self.exchange_rows, 2),
            "exchange_bytes": round(self.exchange_bytes, 2),
            "fold_groups": round(self.fold_groups, 2),
            "every": self.every,
            "units_per_sec": round(self.units_per_sec(), 2),
        }


def query_stats_key(lq):
    """The key group-cardinality feedback files under: the scanned
    tables plus the canonical GROUP BY shape. Different predicates over
    the same grouping share one cardinality estimate -- coarse, but the
    feedback loop converges on whatever actually closes epochs."""
    if not lq.tables:
        return None
    tables = ",".join(sorted(name for name, _alias in lq.tables))
    groups = ";".join(str(e) for e in lq.group_by)
    return "{}|{}".format(tables, groups)


def _distinct_flavor(lq):
    """Which COUNT_DISTINCT family the query uses, if any."""
    for item, _name in lq.select_items:
        func = getattr(item, "func_name", None)
        if func == "COUNT_DISTINCT":
            return "exact"
        if func == "APPROX_COUNT_DISTINCT":
            return "sketch"
    return None


def bound_query_cost(lq, catalog, now=None):
    """Bound ``lq``'s per-epoch cost from the catalog's runtime stats.

    Returns a :class:`CostBound`, or ``None`` when the query is not
    continuous (one-shots are a single epoch of work; the standing load
    problem admission exists for does not arise) or the catalog carries
    no :class:`~repro.core.catalog.StatsCatalog`. Tables the stats have
    never seen contribute zero -- a cold catalog admits everything,
    which is the honest default (see ``StatsCatalog.seed``).
    """
    if lq.every is None:
        return None
    stats = getattr(catalog, "stats", None)
    if stats is None:
        return None
    rate = 0.0
    row_bytes = 0.0
    for name, _alias in lq.tables:
        table_rate = stats.arrival_rate(name, now)
        rate += table_rate
        row_bytes = max(row_bytes, stats.avg_row_bytes(name))
    rows_scanned = rate * lq.every
    sample = float(lq.options.get("sample_rate", 1.0))
    exchange_rows = rows_scanned * sample
    fold_groups = exchange_rows
    if lq.group_by:
        groups = stats.group_cardinality(query_stats_key(lq))
        if groups is not None:
            exchange_rows = min(exchange_rows, groups * _GROUP_FANIN)
            fold_groups = min(fold_groups, groups * _GROUP_FANIN)
    state_factor = 1.0
    flavor = _distinct_flavor(lq)
    if flavor == "exact":
        state_factor = _DISTINCT_STATE_FACTOR
    elif flavor == "sketch":
        state_factor = _SKETCH_STATE_FACTOR
    exchange_bytes = exchange_rows * row_bytes * state_factor
    return CostBound(rows_scanned, exchange_rows, exchange_bytes,
                     fold_groups, lq.every)


# ----------------------------------------------------------------------
# Flat (non-recursive) lowering
# ----------------------------------------------------------------------
def _plan_flat(lq, catalog, timing):
    logical = build_logical_plan(lq, catalog)
    b = _Builder(timing)

    # Lower the DAG in its deterministic topological order. ``lowered``
    # maps each logical node (by identity) to its physical info: at
    # least {"op": root_op_id}; joins add "strategy" (+ bloom "stages"),
    # aggregates add "partial"/"exchange"/"final" so the pane walk can
    # find the whole lowered cluster.
    lowered = {}
    ready = timing.scan_ready
    schema = None
    sort_keys = []
    agg_finishing = None
    result_id = None
    for node in logical.nodes:
        if node.kind == "scan":
            op_id = b.add("scan", {"table": node.attrs["table"],
                                   "alias": node.attrs["alias"]})
            lowered[id(node)] = {"op": op_id}
        elif node.kind == "filter":
            child = lowered[id(node.inputs[0])]["op"]
            op_id = b.add("select", {
                "predicate": node.attrs["predicate"],
                "schema": node.inputs[0].schema,
            }, [child])
            lowered[id(node)] = {"op": op_id}
        elif node.kind == "join":
            ready, info = _lower_join(b, lq, node, lowered, ready, timing)
            lowered[id(node)] = info
        elif node.kind == "aggregate":
            ready, agg_finishing, info = _lower_aggregation(
                b, lq, node, lowered, ready, timing
            )
            lowered[id(node)] = info
            schema = _output_schema(lq)
            sort_keys = _compile_order_by(lq, schema)
        elif node.kind == "project":
            child = lowered[id(node.inputs[0])]["op"]
            op_id = b.add("project", {
                "exprs": node.attrs["exprs"],
                "schema": node.inputs[0].schema,
            }, [child])
            lowered[id(node)] = {"op": op_id}
            schema = _output_schema(lq)
            sort_keys = _compile_order_by(lq, schema)
        elif node.kind == "topk":
            # Partial top-k before the wire when there is a LIMIT to
            # exploit. Aggregate plans skip it (no logical topk node):
            # their group rows are mergeable states that only the query
            # site can rank after reconciling owners.
            child = lowered[id(node.inputs[0])]["op"]
            op_id = b.add("topk", {
                "sort_keys": sort_keys, "limit": lq.limit, "schema": schema,
            }, [child])
            ready += 0.2
            b.flush_at(op_id, ready)
            lowered[id(node)] = {"op": op_id}
        elif node.kind == "output":
            # Aggregate answers refine as stragglers arrive, so the
            # query site keeps each node's latest batch, not appends.
            child = lowered[id(node.inputs[0])]["op"]
            result_id = b.add("result",
                              {"replace": agg_finishing is not None}, [child])
            ready += timing.result_send
            b.flush_at(result_id, ready)
            lowered[id(node)] = {"op": result_id}
        else:  # pragma: no cover - build_logical_plan emits no other kind
            raise PlanError("unknown logical node kind {!r}".format(node.kind))
    deadline = ready + timing.collect

    mode = "continuous" if lq.every else "oneshot"
    standing = mode == "continuous"
    epoch_overlap = _epoch_overlap(b, lq) if standing else 1
    pane = None
    metadata = {"columns": [name for _item, name in lq.select_items]}
    if standing:
        # Mark the networked boundary ops (EXPLAIN metadata: standing
        # scans subscribe to their sources once and push per-epoch
        # deltas; standing exchanges use epoch-free namespaces with
        # epoch-tagged batches).
        for spec in b.specs:
            if spec.kind in ("scan", "exchange"):
                spec.params["standing"] = True
        pane = _mark_paned(b, logical, lowered, lq)
        if lq.options.get("shared") is not False:
            # Stream scans share one per-(node, table) append hook via
            # the engine's SharedScanRegistry even when the plans
            # themselves differ.
            for node in logical.nodes:
                if (node.kind == "scan"
                        and node.attrs["table_def"].source == "stream"):
                    spec = b.spec(lowered[id(node)]["op"])
                    spec.params["share_scan"] = node.attrs["table"]
            # Whole-dataflow sharing: queries whose canonical DAGs and
            # epoch geometry match run on one spine, demultiplexed only
            # at result return. Bloom plans stay private -- their
            # per-epoch coordinator round-trip is keyed to one qid.
            if not any(spec.kind == "bloom_stage" for spec in b.specs):
                metadata["spine"] = logical.share_signature()
                # Prefix sharing: single-stream-table plans also carry
                # the scan-stage signature, so queries with *different*
                # predicates/groups over the same (table, geometry) can
                # share one scan stage with a demux into private tails.
                scans = logical.scan_nodes()
                if (len(scans) == 1
                        and scans[0].attrs["table_def"].source == "stream"):
                    prefix = logical.prefix_signature()
                    if prefix is not None:
                        metadata["prefix"] = prefix

    # Columnar batch capability: every lowered pipeline moves rows as
    # RowBatches (scan deltas emit batched, hot operators vectorize).
    # Stamped explicitly so EXPLAIN output and the engine's row-mode
    # ablation (EngineConfig.columnar_batches) stay introspectable.
    metadata["columnar"] = True
    for spec in b.specs:
        if spec.kind == "scan":
            spec.params["batch"] = True

    finishing = {}
    if agg_finishing is not None:
        finishing["aggregate"] = agg_finishing
        finishing["schema"] = schema
    if sort_keys:
        finishing["order_by"] = sort_keys
        finishing["schema"] = schema
    if lq.limit is not None:
        finishing["limit"] = lq.limit
        finishing.setdefault("schema", schema)
    if "bloom_broadcast_offset" in b.__dict__:
        metadata["bloom_broadcast_offset"] = b.bloom_broadcast_offset
    return QueryPlan(
        b.specs, result_id, mode=mode, every=lq.every, window=lq.window,
        lifetime=lq.lifetime, flush_offsets=b.flush_offsets,
        deadline=deadline, finishing=finishing, metadata=metadata,
        standing=standing, epoch_overlap=epoch_overlap, pane=pane,
    )


_STANDING_XFER_MARGIN = 1.0  # flush window + worst simulated RTT


def _epoch_overlap(b, lq):
    """Epoch ring width N for a continuous plan.

    ``N`` is how many epoch states a standing execution keeps live at
    once. The standing path rolls every operator over at each boundary,
    and an epoch is sealed when its N-th successor opens, so N must
    cover the plan's flush horizon:

        N = ceil(worst (flush offset + margin) / period)

    A flush whose output still has to *cross an exchange* pads its
    offset with a transfer margin: its rows travel tagged with the
    producing epoch and must land before a receiver seals that epoch.
    Result-bound flushes need no margin -- their rows go direct to the
    query site, which collects by epoch tag until its own deadline.
    Bloom-stage plans ride the same math: their filter flush feeds the
    query site and the release control message lands well before the
    downstream exchange flushes the N already accounts for.
    """
    consumers = {}
    for spec in b.specs:
        for input_id in spec.inputs:
            consumers.setdefault(input_id, []).append(spec)

    def feeds_exchange(op_id, seen=None):
        seen = seen if seen is not None else set()
        if op_id in seen:
            return False
        seen.add(op_id)
        for consumer in consumers.get(op_id, ()):
            if consumer.kind == "exchange":
                return True
            if feeds_exchange(consumer.op_id, seen):
                return True
        return False

    horizon = 0.0
    for op_id, offset in b.flush_offsets.items():
        margin = _STANDING_XFER_MARGIN if feeds_exchange(op_id) else 0.0
        horizon = max(horizon, offset + margin)
    # No static ceiling here: the plan records the *true* horizon, and
    # the engine's adaptive ring (EngineConfig.adaptive_ring /
    # ring_max_overlap) decides how many epoch states to actually keep
    # live -- starting clamped, widening on observed late-straggler
    # drops, narrowing when the tail is quiet. The retired static cap
    # of 16 lives on only as history in benchmarks/baselines/.
    return max(1, math.ceil(horizon / lq.every - 1e-9))


def _mark_paned(b, logical, lowered, lq):
    """Mark a standing plan for paned sliding-window aggregation.

    Paned evaluation applies when the window overlaps the period
    (``WINDOW > EVERY``, commensurable on the millisecond grid) and a
    stream-table scan's rows reach a pane-aware stateful operator
    through pane-transparent operators. The walk runs over the
    *logical* DAG (one consumer per node by construction) and maps each
    step onto its lowered physical specs: ``filter``/``project`` nodes
    are stateless row operators, a ``join`` is transparent when it
    lowered to fetch-matches and was entered from the probe side (the
    probe row's pane rides the asynchronous DHT get). Three terminal
    shapes:

    * ``aggregate`` -- the lowered ``groupby_partial`` gets the
      geometry; since grouped aggregation always feeds an exchange into
      a ``groupby_final``, the panes go *distributed*: the partial
      ships per-pane delta increments (``paned_ship = "delta"``), the
      exchange tags every batch with its pane, tree combiners merge
      same-pane partials mid-route, and the final assembles each
      epoch's window from pane partials at the group's owner -- so the
      overlap never crosses the wire again. The ``paned_exchange``
      query option set False keeps the node-local discipline (the
      benchmarks' ablation knob: full window states ship every epoch).
    * ``topk`` -- PR 3's node-local panes.
    * a ``join`` lowered with Bloom stages -- the entered side's
      ``bloom_stage`` keeps per-pane filter partials and row buffers,
      OR-merging the window's pane filters each epoch instead of
      rebuilding the filter from a re-scan (the join above stays
      from-scratch).

    Returns the first marked geometry, or None when the plan keeps
    from-scratch evaluation (the ``paned`` query option forces that).
    """
    if lq.options.get("paned") is False:
        return None
    every = lq.every
    if every is None:
        return None
    consumers = logical.consumers()
    marked = None
    for node in logical.nodes:
        if node.kind != "scan":
            continue
        table_def = node.attrs["table_def"]
        if table_def.source != "stream":
            continue
        window = lq.window if lq.window is not None else table_def.window
        if window is None or window <= every:
            continue
        width = pane_width(window, every)
        if width is None:
            continue
        geometry = {
            "width": width,
            "every": round(every / width),
            "window": round(window / width),
        }
        chain = _pane_chain(b, consumers, lowered, node)
        if chain is None:
            continue
        transparent, terminal_node, terminal_spec = chain
        b.spec(lowered[id(node)]["op"]).params["paned"] = geometry
        for spec in transparent:
            if spec.kind == "fetch_matches":
                spec.params["paned"] = geometry
        terminal_spec.params["paned"] = geometry
        if (terminal_spec.kind == "groupby_partial"
                and lq.options.get("paned_exchange") is not False):
            _mark_paned_exchange(b, lowered[id(terminal_node)], geometry)
        if marked is None:
            marked = geometry
    return marked


def _pane_chain(b, consumers, lowered, scan_node):
    """Walk from a scan's logical node to its pane-aware consumer.

    Returns ``(transparent_specs, terminal_node, terminal_spec)`` or
    None when the rows do not reach a pane-aware operator (e.g. they
    cross a symmetric-hash exchange, whose rehash scatters a pane's
    rows across owners mid-epoch).
    """
    transparent = []
    node = scan_node
    while True:
        downstream = consumers.get(node, ())
        if len(downstream) != 1:
            return None
        parent = downstream[0]
        info = lowered[id(parent)]
        if parent.kind in ("filter", "project"):
            transparent.append(b.spec(info["op"]))
            node = parent
            continue
        if parent.kind == "join":
            if info["strategy"] == "fm" and parent.inputs[0] is node:
                transparent.append(b.spec(info["op"]))
                node = parent
                continue
            if info["strategy"] == "bloom":
                side = 0 if parent.inputs[0] is node else 1
                return transparent, parent, b.spec(info["stages"][side])
            return None
        if parent.kind == "aggregate":
            return transparent, parent, b.spec(info["partial"])
        if parent.kind == "topk":
            return transparent, parent, b.spec(info["op"])
        return None


def _mark_paned_exchange(b, agg_info, geometry):
    """Extend panes across the aggregate's exchange to the final.

    The partial switches to shipping per-pane *increments* (each pane's
    partial crosses the wire once, when new rows touched it), the
    exchange stamps batches with their pane so delivery can re-announce
    it, and the final -- which now holds the window's pane partials at
    the group's owner -- gets the geometry to assemble each epoch's
    window. Tree-mode combining merges same-(epoch, pane) partials
    mid-route; its routing keys drop the per-epoch rendezvous salt,
    because a window's panes must accumulate at a *stable* owner across
    the epochs that share them.
    """
    partial = b.spec(agg_info["partial"])
    exchange = b.spec(agg_info["exchange"])
    final = b.spec(agg_info["final"])
    partial.params["paned_ship"] = "delta"
    exchange.params["paned"] = geometry
    if "combine" in exchange.params:
        exchange.params["combine"] = dict(
            exchange.params["combine"], paned=True
        )
    final.params["paned"] = geometry


def _lower_join(b, lq, node, lowered, ready, timing):
    """Lower one logical join; returns (ready, lowered-info)."""
    left_op = lowered[id(node.inputs[0])]["op"]
    right_op = lowered[id(node.inputs[1])]["op"]
    pairs = node.attrs["pairs"]
    residual = node.attrs["residual"]
    left_schema = node.attrs["left_schema"]
    right_schema = node.attrs["right_schema"]
    right_def = node.attrs["right_def"]
    left_keys = [ColumnRef(left) for left, _right in pairs]
    right_keys = [ColumnRef(right) for _left, right in pairs]
    strategy = lq.options.get("join_strategy", "auto")
    if strategy == "auto":
        strategy = "fm" if _fm_applicable(right_def, pairs, right_schema) else "shj"

    if strategy == "fm":
        if not _fm_applicable(right_def, pairs, right_schema):
            raise PlanError(
                "fetch-matches needs {} partitioned on the join column".format(
                    right_def.name
                )
            )
        join_id = b.add("fetch_matches", {
            "probe_schema": left_schema,
            "table": right_def.name,
            "table_schema": right_schema,
            "probe_key": left_keys[0],
            "residual": residual,
        }, [left_op])
        ready = ready + timing.rehash_xfer  # one get round-trip
        return ready, {"op": join_id, "strategy": "fm"}

    stages = None
    if strategy == "bloom":
        left_op, right_op, ready = _plan_bloom_stages(
            b, left_op, left_schema, left_keys,
            right_op, right_schema, right_keys, ready, timing,
        )
        stages = [left_op, right_op]

    left_ex = b.add("exchange", {
        "mode": "rehash",
        "key": {"kind": "exprs", "exprs": left_keys, "schema": left_schema},
    }, [left_op])
    right_ex = b.add("exchange", {
        "mode": "rehash",
        "key": {"kind": "exprs", "exprs": right_keys, "schema": right_schema},
    }, [right_op])
    join_id = b.add("shj", {
        "left_schema": left_schema,
        "right_schema": right_schema,
        "left_keys": left_keys,
        "right_keys": right_keys,
        "residual": residual,
    }, [left_ex, right_ex])
    ready = ready + timing.rehash_xfer
    info = {"op": join_id, "strategy": strategy}
    if stages is not None:
        info["stages"] = stages
    return ready, info


def _plan_bloom_stages(b, left_op, left_schema, left_keys,
                       right_op, right_schema, right_keys, ready, timing):
    """Insert bloom_stage ops on both legs; returns new legs + ready."""
    filter_flush = ready + 0.3
    merge_at = filter_flush + timing.bloom_merge
    release_at = merge_at + timing.bloom_release
    stages = []
    # Both stages share a filter group so the query site merges their
    # partials together and each side receives the *other's* filter.
    group = "bloom:{}".format(left_op)
    for side, op, schema, keys in (
        ("left", left_op, left_schema, left_keys),
        ("right", right_op, right_schema, right_keys),
    ):
        stage = b.add("bloom_stage", {
            "side": side, "key_exprs": keys, "schema": schema,
            "capacity": 512, "fp_rate": 0.02, "group": group,
        }, [op])
        b.flush_at(stage, filter_flush)
        stages.append(stage)
    b.bloom_broadcast_offset = merge_at
    return stages[0], stages[1], release_at


def _fm_applicable(right_def, pairs, right_schema):
    if right_def.source != "dht" or len(pairs) != 1:
        return False
    partition_index = right_def.schema.index_of(right_def.partition_key)
    join_index = right_schema.index_of(pairs[0][1])
    return partition_index == join_index


def _lower_aggregation(b, lq, node, lowered, ready, timing):
    group_exprs = list(node.attrs["group_by"])
    agg_specs = []
    for item, name in lq.select_items:
        if isinstance(item, AggCall):
            agg_specs.append(AggSpec(item.func_name, item.arg, name,
                                     item.params))

    child = lowered[id(node.inputs[0])]["op"]
    schema = node.inputs[0].schema
    partial_id = b.add("groupby_partial", {
        "group_exprs": group_exprs, "agg_specs": agg_specs, "schema": schema,
    }, [child])
    ready += timing.hold
    b.flush_at(partial_id, ready)

    # The ablation knob: aggregation_tree=False ships partials straight
    # to each group's owner with no in-network combining (same answer,
    # more messages converging on the owner).
    use_tree = lq.options.get("aggregation_tree", True)
    exchange_params = {"mode": "tree" if use_tree else "rehash",
                       "key": {"kind": "group"}}
    if use_tree:
        exchange_params["combine"] = {"agg_specs": agg_specs}
    exchange_id = b.add("exchange", exchange_params, [partial_id])
    ready += timing.tree_xfer if use_tree else timing.rehash_xfer

    final_id = b.add("groupby_final", {"agg_specs": agg_specs}, [exchange_id])
    ready += timing.hold
    b.flush_at(final_id, ready)

    # Final operators emit mergeable (group_values, states) rows; the
    # query site reconciles owners (ring healing can split a group
    # across two acting owners), finalizes, applies HAVING and projects
    # into SELECT order -- all over a handful of group rows.
    internal_schema = _aggregation_internal_schema(lq, group_exprs, agg_specs)
    select_exprs = []
    for item, name in lq.select_items:
        if isinstance(item, AggCall):
            select_exprs.append(ColumnRef(name))
        else:
            rewritten = _rewrite_group_expr(item, group_exprs, internal_schema)
            try:
                rewritten.compile(internal_schema)
            except CatalogError:
                raise PlanError(
                    "SELECT item {!r} is neither an aggregate nor derivable "
                    "from the GROUP BY columns".format(item.display())
                )
            select_exprs.append(rewritten)
    agg_finishing = {
        "agg_specs": agg_specs,
        "internal_schema": internal_schema,
        "select_exprs": select_exprs,
        "having": lq.having,
    }
    info = {"op": final_id, "partial": partial_id,
            "exchange": exchange_id, "final": final_id}
    return ready, agg_finishing, info


def _aggregation_internal_schema(lq, group_exprs, agg_specs):
    """Schema of final group-by output rows: group cols then agg cols."""
    columns = []
    for i, expr in enumerate(group_exprs):
        if isinstance(expr, ColumnRef):
            name = expr.name
        else:
            name = "__group{}".format(i)
        columns.append(Column(name, ANY))
    for spec in agg_specs:
        columns.append(Column(spec.output_name, ANY))
    return Schema(columns)


def _rewrite_group_expr(expr, group_exprs, internal_schema):
    """Map a SELECT-list group expression onto the internal schema."""
    for i, g in enumerate(group_exprs):
        if g.display() == expr.display():
            return ColumnRef(internal_schema.columns[i].name)
    # Not literally a group expression: compile as-is; it may still
    # reference group columns by name (e.g. an arithmetic over them).
    return expr


def _output_schema(lq):
    return Schema(Column(name, ANY) for _item, name in lq.select_items)


def _compile_order_by(lq, schema):
    sort_keys = []
    for expr, desc in lq.order_by:
        sort_keys.append((expr, desc))
    # Validate references now so a bad ORDER BY fails at plan time.
    for expr, _desc in sort_keys:
        expr.compile(schema)
    return sort_keys


# ----------------------------------------------------------------------
# Recursive planning (transitive-closure shape)
# ----------------------------------------------------------------------
def _plan_recursive(lq, catalog, timing):
    spec = lq.recursive
    base, step = spec.base, spec.step
    b = _Builder(timing)

    # --- base leg: scan -> select -> project into the recursive shape
    if len(base.tables) != 1:
        raise PlanError("recursive base must read exactly one table")
    base_table, base_alias = base.tables[0]
    base_def = catalog.lookup(base_table)
    base_schema = base_def.schema.qualify(base_alias or base_table)
    base_scan = b.add("scan", {"table": base_table, "alias": base_alias})
    op = base_scan
    if base.where is not None:
        op = b.add("select", {"predicate": base.where, "schema": base_schema}, [op])
    base_exprs = [item for item, _n in base.select_items]
    op = b.add("project", {"exprs": base_exprs, "schema": base_schema}, [op])

    rec_columns = [name for _i, name in base.select_items]
    rec_schema = Schema(Column(n, ANY) for n in rec_columns)

    # --- the fixpoint core: row-partitioned distinct
    to_distinct = b.add("exchange", {"mode": "rehash", "key": {"kind": "row"}}, [op])
    distinct_id = b.add("distinct", {"report_progress": True}, [to_distinct])

    # --- result branch
    out_exprs = [item for item, _n in lq.select_items]
    out_schema_in = rec_schema.qualify(spec.name)
    result_chain = distinct_id
    if lq.where is not None:
        result_chain = b.add("select", {
            "predicate": lq.where, "schema": out_schema_in,
        }, [result_chain])
    result_chain = b.add("project", {
        "exprs": out_exprs, "schema": out_schema_in,
    }, [result_chain])
    result_id = b.add("result", {}, [result_chain])

    # --- recursive step: join novel rows with the edge table
    rec_alias, edge_table, edge_alias = _recursive_step_shape(step, spec.name)
    edge_def = catalog.lookup(edge_table)
    edge_schema = edge_def.schema.qualify(edge_alias or edge_table)
    probe_schema = rec_schema.qualify(rec_alias)
    conjuncts = _split_where(step.where)
    pred = _and_all(conjuncts)
    pairs, residual = equi_join_pairs(pred, probe_schema, edge_schema)
    if not pairs:
        raise PlanError("recursive step needs an equi-join with the edge table")
    step_exprs = [item for item, _n in step.select_items]
    out_schema = probe_schema.concat(edge_schema)

    if _fm_applicable(edge_def, pairs, edge_schema):
        join_id = b.add("fetch_matches", {
            "probe_schema": probe_schema,
            "table": edge_table,
            "table_schema": edge_schema,
            "probe_key": ColumnRef(pairs[0][0]),
            "residual": residual,
            "dedup_keys": True,
        }, [distinct_id])
    else:
        left_keys = [ColumnRef(left) for left, _right in pairs]
        right_keys = [ColumnRef(right) for _left, right in pairs]
        left_ex = b.add("exchange", {
            "mode": "rehash",
            "key": {"kind": "exprs", "exprs": left_keys, "schema": probe_schema},
        }, [distinct_id])
        edge_scan = b.add("scan", {"table": edge_table, "alias": edge_alias})
        right_ex = b.add("exchange", {
            "mode": "rehash",
            "key": {"kind": "exprs", "exprs": right_keys, "schema": edge_schema},
        }, [edge_scan])
        join_id = b.add("shj", {
            "left_schema": probe_schema,
            "right_schema": edge_schema,
            "left_keys": left_keys,
            "right_keys": right_keys,
            "residual": residual,
        }, [left_ex, right_ex])

    step_project = b.add("project", {
        "exprs": step_exprs, "schema": out_schema,
    }, [join_id])
    back_ex = b.add("exchange", {"mode": "rehash", "key": {"kind": "row"}},
                    [step_project])
    # Close the cycle: the back edge feeds the same distinct operator.
    for s in b.specs:
        if s.op_id == distinct_id:
            s.inputs.append(back_ex)

    deadline = lq.options.get("recursion_deadline", 45.0)
    metadata = {
        "columns": [name for _item, name in lq.select_items],
        "quiet_period": lq.options.get("quiet_period", 3.0),
        "min_runtime": lq.options.get("min_runtime", 3.0),
        "columnar": True,
    }
    for spec in b.specs:
        if spec.kind == "scan":
            spec.params["batch"] = True
    return QueryPlan(
        b.specs, result_id, mode="recursive", flush_offsets={},
        deadline=deadline, finishing={}, metadata=metadata,
    )


def _recursive_step_shape(step, rec_name):
    """Identify which FROM entry is the recursive table; return aliases."""
    if len(step.tables) != 2:
        raise PlanError("recursive step must join the recursive table with one table")
    (t1, a1), (t2, a2) = step.tables
    if t1 == rec_name:
        return (a1 or t1), t2, a2
    if t2 == rec_name:
        return (a2 or t2), t1, a1
    raise PlanError("recursive step does not reference {!r}".format(rec_name))
