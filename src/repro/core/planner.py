"""The planner: logical queries -> physical (timed) operator graphs.

The logical layer (:class:`LogicalQuery`) is what the SQL frontend
produces and what the algebraic API can build directly. Planning:

1. access paths: one scan per FROM table, with single-table predicates
   pushed down just above their scan;
2. joins: left-deep over the FROM order, keyed on equi-join conjuncts;
   strategy per join is symmetric-hash (default), fetch-matches (when
   the inner table is DHT-partitioned on the join column), or Bloom
   (bloom_stage pre-filters before the rehash);
3. aggregation: partial group-by where rows live, a tree-mode exchange
   keyed on the group, and a final group-by at each group's owner;
4. top-k: a partial ORDER BY/LIMIT cut before result return, with the
   authoritative sort/cut re-applied at the query site ("finishing");
5. timing: every stateful operator gets a flush deadline derived from a
   dataflow-timing walk (when can its inputs have arrived?), because a
   soft-state system flushes on clocks, not on end-of-stream tokens.

Recursive queries (transitive-closure shape) become cyclic graphs:
base rows enter a DHT-partitioned ``distinct``; novel rows feed both
result return and a join against the edge relation whose output cycles
back into the same ``distinct`` -- semi-naive evaluation as dataflow.
"""

import math

from repro.core.aggregates import AggSpec
from repro.core.opgraph import OpSpec, QueryPlan
from repro.db.expressions import ColumnRef, equi_join_pairs
from repro.db.schema import Column, Schema
from repro.db.types import ANY
from repro.db.window import pane_width
from repro.util.errors import CatalogError, PlanError


class AggCall:
    """An aggregate in a SELECT list: ``SUM(expr)`` / ``COUNT(*)``."""

    def __init__(self, func_name, arg):
        self.func_name = func_name.upper()
        self.arg = arg  # Expr or None for COUNT(*)

    def display(self):
        arg = "*" if self.arg is None else self.arg.display()
        return "{}({})".format(self.func_name, arg)

    def __repr__(self):
        return "AggCall({})".format(self.display())


class LogicalQuery:
    """A resolved query, independent of surface syntax."""

    def __init__(self, tables, select_items, where=None, group_by=None,
                 having=None, order_by=None, limit=None, every=None,
                 window=None, lifetime=None, options=None, recursive=None):
        self.tables = tables  # [(table_name, alias)]
        self.select_items = select_items  # [(Expr | AggCall, output_name)]
        self.where = where
        self.group_by = group_by if group_by is not None else []
        self.having = having
        self.order_by = order_by if order_by is not None else []  # [(Expr, desc)]
        self.limit = limit
        self.every = every
        self.window = window
        self.lifetime = lifetime
        self.options = options if options is not None else {}
        self.recursive = recursive  # RecursiveSpec or None


class RecursiveSpec:
    """``WITH RECURSIVE name AS (base UNION step)`` components."""

    def __init__(self, name, base, step):
        self.name = name
        self.base = base  # LogicalQuery (single table, no aggregates)
        self.step = step  # LogicalQuery (join of `name` with one table)


class PlannerTiming:
    """Dataflow-timing constants (seconds) used to place flush deadlines.

    These bound, not measure: scan_ready covers plan dissemination,
    rehash_xfer covers a multi-hop routed transfer, tree_xfer covers the
    extra per-hop hold time of aggregation trees on a few-hundred-node
    overlay. Generous values trade a little latency for complete
    answers; the soft-state design makes tight values degrade to
    partial answers rather than errors.
    """

    def __init__(self, scan_ready=1.5, hold=0.6, rehash_xfer=1.5,
                 tree_xfer=6.0, result_send=0.4, collect=2.0,
                 bloom_merge=1.2, bloom_release=1.0):
        self.scan_ready = scan_ready
        self.hold = hold
        self.rehash_xfer = rehash_xfer
        self.tree_xfer = tree_xfer
        self.result_send = result_send
        self.collect = collect
        self.bloom_merge = bloom_merge
        self.bloom_release = bloom_release


class _Builder:
    """Accumulates op specs and the timing walk while planning."""

    def __init__(self, timing):
        self.timing = timing
        self.specs = []
        self.flush_offsets = {}
        self._n = 0

    def add(self, kind, params=None, inputs=()):
        self._n += 1
        op_id = "op{}".format(self._n)
        self.specs.append(OpSpec(op_id, kind, params, inputs))
        return op_id

    def flush_at(self, op_id, t):
        self.flush_offsets[op_id] = t


def plan_query(lq, catalog, timing=None):
    """Compile a LogicalQuery against a catalog into a QueryPlan."""
    timing = timing if timing is not None else PlannerTiming()
    if lq.recursive is not None:
        return _plan_recursive(lq, catalog, timing)
    return _plan_flat(lq, catalog, timing)


# ----------------------------------------------------------------------
# Flat (non-recursive) planning
# ----------------------------------------------------------------------
def _plan_flat(lq, catalog, timing):
    b = _Builder(timing)
    op_id, schema, ready = _plan_from_where(b, lq, catalog, timing)

    has_aggs = any(isinstance(item, AggCall) for item, _name in lq.select_items)
    agg_finishing = None
    if has_aggs or lq.group_by:
        op_id, schema, ready, agg_finishing = _plan_aggregation(
            b, lq, op_id, schema, ready, timing
        )
    else:
        exprs = []
        for item, _name in lq.select_items:
            if isinstance(item, AggCall):
                raise PlanError("aggregate outside aggregation context")
            exprs.append(item)
        op_id = b.add("project", {"exprs": exprs, "schema": schema}, [op_id])
        schema = _output_schema(lq)

    # Partial top-k before the wire when there is a LIMIT to exploit.
    # Aggregate plans skip it: their group rows are mergeable states
    # that only the query site can rank after reconciling owners.
    sort_keys = _compile_order_by(lq, schema)
    if sort_keys and lq.limit is not None and agg_finishing is None:
        op_id = b.add("topk", {
            "sort_keys": sort_keys, "limit": lq.limit, "schema": schema,
        }, [op_id])
        ready += 0.2
        b.flush_at(op_id, ready)

    # Aggregate answers refine as stragglers arrive, so the query site
    # keeps each node's latest batch instead of appending.
    result_id = b.add("result", {"replace": agg_finishing is not None}, [op_id])
    ready += timing.result_send
    b.flush_at(result_id, ready)
    deadline = ready + timing.collect

    mode = "continuous" if lq.every else "oneshot"
    standing, epoch_overlap = _standing_eligible(b, lq, mode)
    pane = None
    if standing:
        # Mark the networked boundary ops (EXPLAIN metadata: standing
        # scans subscribe to their sources once and push per-epoch
        # deltas; standing exchanges use epoch-free namespaces with
        # epoch-tagged batches). At runtime operators key off the
        # execution's ctx.standing; the discipline itself must be
        # cluster-uniform (see EngineConfig.standing) because the two
        # paths register incompatible exchange namespaces.
        for spec in b.specs:
            if spec.kind in ("scan", "exchange"):
                spec.params["standing"] = True
        pane = _mark_paned(b, lq, catalog)
    finishing = {}
    if agg_finishing is not None:
        finishing["aggregate"] = agg_finishing
        finishing["schema"] = schema
    if sort_keys:
        finishing["order_by"] = sort_keys
        finishing["schema"] = schema
    if lq.limit is not None:
        finishing["limit"] = lq.limit
        finishing.setdefault("schema", schema)
    metadata = {"columns": [name for _item, name in lq.select_items]}
    if "bloom_broadcast_offset" in b.__dict__:
        metadata["bloom_broadcast_offset"] = b.bloom_broadcast_offset
    return QueryPlan(
        b.specs, result_id, mode=mode, every=lq.every, window=lq.window,
        lifetime=lq.lifetime, flush_offsets=b.flush_offsets,
        deadline=deadline, finishing=finishing, metadata=metadata,
        standing=standing, epoch_overlap=epoch_overlap, pane=pane,
    )


_STANDING_XFER_MARGIN = 1.0  # flush window + worst simulated RTT

# Ring-width ceiling: a runaway horizon/period ratio would make every
# operator hold that many live epoch states, so past this the plan
# keeps the rebuild path (in practice the planner's timing walk bounds
# horizons to ~10s, so only sub-second periods ever get near it).
_STANDING_MAX_OVERLAP = 16


def _standing_eligible(b, lq, mode):
    """Can this continuous plan run as one long-lived execution?

    Returns ``(standing, epoch_overlap)`` where ``epoch_overlap`` is
    the *epoch ring width* N: how many epoch states a standing
    execution keeps live at once. The standing path rolls every
    operator over at each boundary, and an epoch is sealed when its
    N-th successor opens, so N must cover the plan's flush horizon:

        N = ceil(worst (flush offset + margin) / period)

    A flush whose output still has to *cross an exchange* pads its
    offset with a transfer margin: its rows travel tagged with the
    producing epoch and must land before a receiver seals that epoch
    (the rebuild path kept the old epoch's registration open past the
    boundary, so it was forgiving here). Result-bound flushes need no
    margin -- their rows go direct to the query site, which collects by
    epoch tag until its own deadline. Bloom-stage plans ride the same
    math: their filter flush feeds the query site and the release
    control message lands well before the downstream exchange flushes
    the N already accounts for.

    Only two things force the rebuild path now: the ``standing`` query
    option set False (the continuous benchmarks' ablation knob, and the
    per-plan face of the ``EngineConfig.standing`` compatibility flag)
    and a horizon so far past the period that the ring would exceed
    ``_STANDING_MAX_OVERLAP`` live epochs.
    """
    if mode != "continuous":
        return False, 1
    if lq.options.get("standing") is False:
        return False, 1
    consumers = {}
    for spec in b.specs:
        for input_id in spec.inputs:
            consumers.setdefault(input_id, []).append(spec)

    def feeds_exchange(op_id, seen=None):
        seen = seen if seen is not None else set()
        if op_id in seen:
            return False
        seen.add(op_id)
        for consumer in consumers.get(op_id, ()):
            if consumer.kind == "exchange":
                return True
            if feeds_exchange(consumer.op_id, seen):
                return True
        return False

    horizon = 0.0
    for op_id, offset in b.flush_offsets.items():
        margin = _STANDING_XFER_MARGIN if feeds_exchange(op_id) else 0.0
        horizon = max(horizon, offset + margin)
    overlap = max(1, math.ceil(horizon / lq.every - 1e-9))
    if overlap > _STANDING_MAX_OVERLAP:
        return False, 1
    return True, overlap


def _mark_paned(b, lq, catalog):
    """Mark a standing plan for paned sliding-window aggregation.

    Paned evaluation applies when the window overlaps the period
    (``WINDOW > EVERY``, commensurable on the millisecond grid) and a
    stream-table scan's rows reach a pane-aware stateful operator
    through pane-transparent operators: stateless row operators
    (``select``/``project``) and ``fetch_matches`` joins, which carry
    their probe row's pane through the asynchronous DHT get. Both ends
    of each chain get the pane geometry in their params (``{"width",
    "every", "window"}``, the latter two in panes); the scan then emits
    each row once into its pane and the pane-aware operator assembles
    every epoch's window from pane partials. Three terminal shapes:

    * ``groupby_partial`` / ``topk`` -- PR 3's node-local panes. When
      the partial additionally feeds an exchange into a
      ``groupby_final`` (grouped aggregation always does), the panes
      go *distributed*: the partial ships per-pane delta increments
      (``paned_ship = "delta"``), the exchange tags every batch with
      its pane, tree combiners merge same-pane partials mid-route, and
      the final assembles each epoch's window from pane partials at
      the group's owner -- so the overlap never crosses the wire
      again. The ``paned_exchange`` query option set False keeps the
      node-local discipline (the benchmarks' ablation knob: full
      window states ship every epoch).
    * ``bloom_stage`` -- a standing bloom join leg keeps per-pane
      filter partials and row buffers, OR-merging the window's pane
      filters each epoch instead of rebuilding the filter from a
      re-scan (the join above stays from-scratch).

    Returns the first marked geometry, or None when the plan keeps
    from-scratch evaluation (the ``paned`` query option forces that).
    """
    if lq.options.get("paned") is False:
        return None
    every = lq.every
    if every is None:
        return None
    consumers = {}
    for spec in b.specs:
        for input_id in spec.inputs:
            consumers.setdefault(input_id, []).append(spec)
    marked = None
    for scan in (s for s in b.specs if s.kind == "scan"):
        table_def = catalog.lookup(scan.params["table"])
        if table_def.source != "stream":
            continue
        window = lq.window if lq.window is not None else table_def.window
        if window is None or window <= every:
            continue
        width = pane_width(window, every)
        if width is None:
            continue
        geometry = {
            "width": width,
            "every": round(every / width),
            "window": round(window / width),
        }
        chain = _pane_chain(consumers, scan)
        if chain is None:
            continue
        transparent, terminal = chain
        scan.params["paned"] = geometry
        for spec in transparent:
            if spec.kind == "fetch_matches":
                spec.params["paned"] = geometry
        terminal.params["paned"] = geometry
        if (terminal.kind == "groupby_partial"
                and lq.options.get("paned_exchange") is not False):
            _mark_paned_exchange(consumers, terminal, geometry)
        if marked is None:
            marked = geometry
    return marked


def _pane_chain(consumers, scan):
    """Walk from a scan to its pane-aware consumer, or None.

    Returns ``(transparent_ops, terminal)`` where ``transparent_ops``
    are the pane-transparent operators crossed on the way.
    """
    transparent = []
    spec = scan
    while True:
        downstream = consumers.get(spec.op_id, ())
        if len(downstream) != 1:
            return None
        spec = downstream[0]
        if spec.kind in ("select", "project", "fetch_matches"):
            transparent.append(spec)
            continue
        if spec.kind in ("groupby_partial", "topk", "bloom_stage"):
            return transparent, spec
        return None


def _mark_paned_exchange(consumers, partial, geometry):
    """Extend panes across the partial's exchange to the final.

    The partial switches to shipping per-pane *increments* (each pane's
    partial crosses the wire once, when new rows touched it), the
    exchange stamps batches with their pane so delivery can re-announce
    it, and the final -- which now holds the window's pane partials at
    the group's owner -- gets the geometry to assemble each epoch's
    window. Tree-mode combining merges same-(epoch, pane) partials
    mid-route; its routing keys drop the per-epoch rendezvous salt,
    because a window's panes must accumulate at a *stable* owner across
    the epochs that share them.
    """
    downstream = consumers.get(partial.op_id, ())
    if len(downstream) != 1 or downstream[0].kind != "exchange":
        return
    exchange = downstream[0]
    above = consumers.get(exchange.op_id, ())
    if len(above) != 1 or above[0].kind != "groupby_final":
        return
    partial.params["paned_ship"] = "delta"
    exchange.params["paned"] = geometry
    if "combine" in exchange.params:
        exchange.params["combine"] = dict(
            exchange.params["combine"], paned=True
        )
    above[0].params["paned"] = geometry


def _plan_from_where(b, lq, catalog, timing):
    """Scans, pushdowns and joins; returns (op_id, schema, ready_time)."""
    if not lq.tables:
        raise PlanError("query needs at least one table")
    conjuncts = _split_where(lq.where)

    # Access path per table, with pushed-down single-table predicates.
    legs = []
    for table_name, alias in lq.tables:
        table_def = catalog.lookup(table_name)
        schema = table_def.schema.qualify(alias or table_name)
        op_id = b.add("scan", {"table": table_name, "alias": alias})
        mine, conjuncts = _partition_conjuncts(conjuncts, schema)
        if mine is not None:
            op_id = b.add("select", {"predicate": mine, "schema": schema}, [op_id])
        legs.append((op_id, schema, table_def))
    ready = timing.scan_ready

    op_id, schema, _table_def = legs[0]
    for right_op, right_schema, right_def in legs[1:]:
        op_id, schema, ready, conjuncts = _plan_join(
            b, lq, op_id, schema, right_op, right_schema, right_def,
            conjuncts, ready, timing,
        )

    # Anything left in the WHERE applies after all joins.
    residual = _and_all(conjuncts)
    if residual is not None:
        op_id = b.add("select", {"predicate": residual, "schema": schema}, [op_id])
    return op_id, schema, ready


def _plan_join(b, lq, left_op, left_schema, right_op, right_schema,
               right_def, conjuncts, ready, timing):
    pairs, leftover = _extract_join_pairs(conjuncts, left_schema, right_schema)
    if not pairs:
        raise PlanError(
            "no equi-join predicate between {} and {} (cartesian products "
            "are not supported at Internet scale)".format(
                left_schema.names, right_schema.names
            )
        )
    left_keys = [ColumnRef(left) for left, _right in pairs]
    right_keys = [ColumnRef(right) for _left, right in pairs]
    strategy = lq.options.get("join_strategy", "auto")
    if strategy == "auto":
        strategy = "fm" if _fm_applicable(right_def, pairs, right_schema) else "shj"

    if strategy == "fm":
        if not _fm_applicable(right_def, pairs, right_schema):
            raise PlanError(
                "fetch-matches needs {} partitioned on the join column".format(
                    right_def.name
                )
            )
        out_schema = left_schema.concat(right_schema)
        join_id = b.add("fetch_matches", {
            "probe_schema": left_schema,
            "table": right_def.name,
            "table_schema": right_schema,
            "probe_key": left_keys[0],
            "residual": _and_all(
                _join_residuals(leftover, out_schema)[0]
            ),
        }, [left_op])
        leftover = _join_residuals(leftover, out_schema)[1]
        ready = ready + timing.rehash_xfer  # one get round-trip
        return join_id, out_schema, ready, leftover

    if strategy == "bloom":
        left_op, right_op, ready = _plan_bloom_stages(
            b, left_op, left_schema, left_keys,
            right_op, right_schema, right_keys, ready, timing,
        )

    left_ex = b.add("exchange", {
        "mode": "rehash",
        "key": {"kind": "exprs", "exprs": left_keys, "schema": left_schema},
    }, [left_op])
    right_ex = b.add("exchange", {
        "mode": "rehash",
        "key": {"kind": "exprs", "exprs": right_keys, "schema": right_schema},
    }, [right_op])
    out_schema = left_schema.concat(right_schema)
    applicable, leftover = _join_residuals(leftover, out_schema)
    join_id = b.add("shj", {
        "left_schema": left_schema,
        "right_schema": right_schema,
        "left_keys": left_keys,
        "right_keys": right_keys,
        "residual": _and_all(applicable),
    }, [left_ex, right_ex])
    ready = ready + timing.rehash_xfer
    return join_id, out_schema, ready, leftover


def _plan_bloom_stages(b, left_op, left_schema, left_keys,
                       right_op, right_schema, right_keys, ready, timing):
    """Insert bloom_stage ops on both legs; returns new legs + ready."""
    filter_flush = ready + 0.3
    merge_at = filter_flush + timing.bloom_merge
    release_at = merge_at + timing.bloom_release
    stages = []
    # Both stages share a filter group so the query site merges their
    # partials together and each side receives the *other's* filter.
    group = "bloom:{}".format(left_op)
    for side, op, schema, keys in (
        ("left", left_op, left_schema, left_keys),
        ("right", right_op, right_schema, right_keys),
    ):
        stage = b.add("bloom_stage", {
            "side": side, "key_exprs": keys, "schema": schema,
            "capacity": 512, "fp_rate": 0.02, "group": group,
        }, [op])
        b.flush_at(stage, filter_flush)
        stages.append(stage)
    b.bloom_broadcast_offset = merge_at
    return stages[0], stages[1], release_at


def _fm_applicable(right_def, pairs, right_schema):
    if right_def.source != "dht" or len(pairs) != 1:
        return False
    partition_index = right_def.schema.index_of(right_def.partition_key)
    join_index = right_schema.index_of(pairs[0][1])
    return partition_index == join_index


def _plan_aggregation(b, lq, op_id, schema, ready, timing):
    group_exprs = list(lq.group_by)
    agg_specs = []
    for item, name in lq.select_items:
        if isinstance(item, AggCall):
            agg_specs.append(AggSpec(item.func_name, item.arg, name))
    if not agg_specs:
        raise PlanError("GROUP BY without aggregates is just DISTINCT; use it")

    partial_id = b.add("groupby_partial", {
        "group_exprs": group_exprs, "agg_specs": agg_specs, "schema": schema,
    }, [op_id])
    ready += timing.hold
    b.flush_at(partial_id, ready)

    # The ablation knob: aggregation_tree=False ships partials straight
    # to each group's owner with no in-network combining (same answer,
    # more messages converging on the owner).
    use_tree = lq.options.get("aggregation_tree", True)
    exchange_params = {"mode": "tree" if use_tree else "rehash",
                       "key": {"kind": "group"}}
    if use_tree:
        exchange_params["combine"] = {"agg_specs": agg_specs}
    exchange_id = b.add("exchange", exchange_params, [partial_id])
    ready += timing.tree_xfer if use_tree else timing.rehash_xfer

    final_id = b.add("groupby_final", {"agg_specs": agg_specs}, [exchange_id])
    ready += timing.hold
    b.flush_at(final_id, ready)

    # Final operators emit mergeable (group_values, states) rows; the
    # query site reconciles owners (ring healing can split a group
    # across two acting owners), finalizes, applies HAVING and projects
    # into SELECT order -- all over a handful of group rows.
    internal_schema = _aggregation_internal_schema(lq, group_exprs, agg_specs)
    select_exprs = []
    for item, name in lq.select_items:
        if isinstance(item, AggCall):
            select_exprs.append(ColumnRef(name))
        else:
            rewritten = _rewrite_group_expr(item, group_exprs, internal_schema)
            try:
                rewritten.compile(internal_schema)
            except CatalogError:
                raise PlanError(
                    "SELECT item {!r} is neither an aggregate nor derivable "
                    "from the GROUP BY columns".format(item.display())
                )
            select_exprs.append(rewritten)
    agg_finishing = {
        "agg_specs": agg_specs,
        "internal_schema": internal_schema,
        "select_exprs": select_exprs,
        "having": lq.having,
    }
    return final_id, _output_schema(lq), ready, agg_finishing


def _aggregation_internal_schema(lq, group_exprs, agg_specs):
    """Schema of final group-by output rows: group cols then agg cols."""
    columns = []
    for i, expr in enumerate(group_exprs):
        if isinstance(expr, ColumnRef):
            name = expr.name
        else:
            name = "__group{}".format(i)
        columns.append(Column(name, ANY))
    for spec in agg_specs:
        columns.append(Column(spec.output_name, ANY))
    return Schema(columns)


def _rewrite_group_expr(expr, group_exprs, internal_schema):
    """Map a SELECT-list group expression onto the internal schema."""
    for i, g in enumerate(group_exprs):
        if g.display() == expr.display():
            return ColumnRef(internal_schema.columns[i].name)
    # Not literally a group expression: compile as-is; it may still
    # reference group columns by name (e.g. an arithmetic over them).
    return expr


def _output_schema(lq):
    return Schema(Column(name, ANY) for _item, name in lq.select_items)


def _compile_order_by(lq, schema):
    sort_keys = []
    for expr, desc in lq.order_by:
        sort_keys.append((expr, desc))
    # Validate references now so a bad ORDER BY fails at plan time.
    for expr, _desc in sort_keys:
        expr.compile(schema)
    return sort_keys


# ----------------------------------------------------------------------
# WHERE-clause plumbing
# ----------------------------------------------------------------------
def _split_where(where):
    if where is None:
        return []
    from repro.db.expressions import conjuncts as split

    return split(where)


def _partition_conjuncts(conjuncts, schema):
    """(AND of conjuncts fully resolvable in schema, the remainder)."""
    mine, rest = [], []
    for conj in conjuncts:
        if all(schema.has_column(ref) for ref in conj.column_refs()):
            mine.append(conj)
        else:
            rest.append(conj)
    return _and_all(mine), rest


def _extract_join_pairs(conjuncts, left_schema, right_schema):
    pred = _and_all(conjuncts)
    if pred is None:
        return [], []
    pairs, residual = equi_join_pairs(pred, left_schema, right_schema)
    return pairs, _split_where(residual)


def _join_residuals(conjuncts, out_schema):
    """Split leftovers into (applicable at this join, still deferred)."""
    applicable, deferred = [], []
    for conj in conjuncts:
        if all(out_schema.has_column(ref) for ref in conj.column_refs()):
            applicable.append(conj)
        else:
            deferred.append(conj)
    return applicable, deferred


def _and_all(conjuncts):
    from repro.db.expressions import BinaryOp

    result = None
    for conj in conjuncts:
        result = conj if result is None else BinaryOp("AND", result, conj)
    return result


# ----------------------------------------------------------------------
# Recursive planning (transitive-closure shape)
# ----------------------------------------------------------------------
def _plan_recursive(lq, catalog, timing):
    spec = lq.recursive
    base, step = spec.base, spec.step
    b = _Builder(timing)

    # --- base leg: scan -> select -> project into the recursive shape
    if len(base.tables) != 1:
        raise PlanError("recursive base must read exactly one table")
    base_table, base_alias = base.tables[0]
    base_def = catalog.lookup(base_table)
    base_schema = base_def.schema.qualify(base_alias or base_table)
    base_scan = b.add("scan", {"table": base_table, "alias": base_alias})
    op = base_scan
    if base.where is not None:
        op = b.add("select", {"predicate": base.where, "schema": base_schema}, [op])
    base_exprs = [item for item, _n in base.select_items]
    op = b.add("project", {"exprs": base_exprs, "schema": base_schema}, [op])

    rec_columns = [name for _i, name in base.select_items]
    rec_schema = Schema(Column(n, ANY) for n in rec_columns)

    # --- the fixpoint core: row-partitioned distinct
    to_distinct = b.add("exchange", {"mode": "rehash", "key": {"kind": "row"}}, [op])
    distinct_id = b.add("distinct", {"report_progress": True}, [to_distinct])

    # --- result branch
    out_exprs = [item for item, _n in lq.select_items]
    out_schema_in = rec_schema.qualify(spec.name)
    result_chain = distinct_id
    if lq.where is not None:
        result_chain = b.add("select", {
            "predicate": lq.where, "schema": out_schema_in,
        }, [result_chain])
    result_chain = b.add("project", {
        "exprs": out_exprs, "schema": out_schema_in,
    }, [result_chain])
    result_id = b.add("result", {}, [result_chain])

    # --- recursive step: join novel rows with the edge table
    rec_alias, edge_table, edge_alias = _recursive_step_shape(step, spec.name)
    edge_def = catalog.lookup(edge_table)
    edge_schema = edge_def.schema.qualify(edge_alias or edge_table)
    probe_schema = rec_schema.qualify(rec_alias)
    conjuncts = _split_where(step.where)
    pred = _and_all(conjuncts)
    pairs, residual = equi_join_pairs(pred, probe_schema, edge_schema)
    if not pairs:
        raise PlanError("recursive step needs an equi-join with the edge table")
    step_exprs = [item for item, _n in step.select_items]
    out_schema = probe_schema.concat(edge_schema)

    if _fm_applicable(edge_def, pairs, edge_schema):
        join_id = b.add("fetch_matches", {
            "probe_schema": probe_schema,
            "table": edge_table,
            "table_schema": edge_schema,
            "probe_key": ColumnRef(pairs[0][0]),
            "residual": residual,
            "dedup_keys": True,
        }, [distinct_id])
    else:
        left_keys = [ColumnRef(left) for left, _right in pairs]
        right_keys = [ColumnRef(right) for _left, right in pairs]
        left_ex = b.add("exchange", {
            "mode": "rehash",
            "key": {"kind": "exprs", "exprs": left_keys, "schema": probe_schema},
        }, [distinct_id])
        edge_scan = b.add("scan", {"table": edge_table, "alias": edge_alias})
        right_ex = b.add("exchange", {
            "mode": "rehash",
            "key": {"kind": "exprs", "exprs": right_keys, "schema": edge_schema},
        }, [edge_scan])
        join_id = b.add("shj", {
            "left_schema": probe_schema,
            "right_schema": edge_schema,
            "left_keys": left_keys,
            "right_keys": right_keys,
            "residual": residual,
        }, [left_ex, right_ex])

    step_project = b.add("project", {
        "exprs": step_exprs, "schema": out_schema,
    }, [join_id])
    back_ex = b.add("exchange", {"mode": "rehash", "key": {"kind": "row"}},
                    [step_project])
    # Close the cycle: the back edge feeds the same distinct operator.
    for s in b.specs:
        if s.op_id == distinct_id:
            s.inputs.append(back_ex)

    deadline = lq.options.get("recursion_deadline", 45.0)
    metadata = {
        "columns": [name for _item, name in lq.select_items],
        "quiet_period": lq.options.get("quiet_period", 3.0),
        "min_runtime": lq.options.get("min_runtime", 3.0),
    }
    return QueryPlan(
        b.specs, result_id, mode="recursive", flush_offsets={},
        deadline=deadline, finishing={}, metadata=metadata,
    )


def _recursive_step_shape(step, rec_name):
    """Identify which FROM entry is the recursive table; return aliases."""
    if len(step.tables) != 2:
        raise PlanError("recursive step must join the recursive table with one table")
    (t1, a1), (t2, a2) = step.tables
    if t1 == rec_name:
        return (a1 or t1), t2, a2
    if t2 == rec_name:
        return (a2 or t2), t1, a1
    raise PlanError("recursive step does not reference {!r}".format(rec_name))
