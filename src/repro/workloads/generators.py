"""Per-node metric generators.

:class:`RateProcess` models one host's outbound data rate: a lognormal
base level (hosts differ by orders of magnitude), a diurnal swing, AR(1)
noise, and occasional multi-sample bursts -- enough texture that the
Figure 1 time series wiggles like the paper's, without pretending to be
a packet trace.

:class:`StatsWorkload` wires one process per node to a stream table and
survives churn: its ``on_join`` hook re-installs the generator when a
host recovers, the way a rebooted PlanetLab node restarts its
monitoring daemons.
"""

import math


def poisson(rng, lam):
    """Poisson sample; Knuth for small lambda, normal approx for large."""
    if lam <= 0:
        return 0
    if lam < 30:
        threshold = math.exp(-lam)
        k = 0
        p = 1.0
        while True:
            p *= rng.random()
            if p <= threshold:
                return k
            k += 1
    return max(0, round(rng.gauss(lam, math.sqrt(lam))))


class RateProcess:
    """One host's outbound-rate time series (kbps)."""

    def __init__(self, rng, base_mu=5.0, base_sigma=1.0, diurnal_amplitude=0.3,
                 diurnal_period=86400.0, noise=0.15, burst_rate=0.01,
                 burst_multiplier=8.0, burst_length=4):
        self._rng = rng
        self.base = rng.lognormvariate(base_mu, base_sigma) / 10.0
        self.diurnal_amplitude = diurnal_amplitude
        self.diurnal_period = diurnal_period
        self.noise = noise
        self.burst_rate = burst_rate
        self.burst_multiplier = burst_multiplier
        self.burst_length = burst_length
        self.phase = rng.uniform(0, diurnal_period)
        self._ar = 0.0
        self._burst_left = 0

    def sample(self, t):
        """Rate at simulated time ``t`` (successive calls evolve noise)."""
        diurnal = 1.0 + self.diurnal_amplitude * math.sin(
            2 * math.pi * (t + self.phase) / self.diurnal_period
        )
        self._ar = 0.8 * self._ar + self._rng.gauss(0, self.noise)
        level = self.base * diurnal * math.exp(self._ar)
        if self._burst_left > 0:
            self._burst_left -= 1
            level *= self.burst_multiplier
        elif self._rng.random() < self.burst_rate:
            self._burst_left = self.burst_length
        return max(0.0, level)


class StatsWorkload:
    """Attach per-node rate generators feeding a stream table."""

    def __init__(self, net, table="node_stats", period=5.0, window=None,
                 process_factory=None):
        self.net = net
        self.table = table
        self.period = period
        self._factory = process_factory or (lambda rng: RateProcess(rng))
        self._processes = {}
        if not net.catalog.has_table(table):
            net.create_stream_table(
                table, [("rate_kbps", "FLOAT")],
                window=window if window is not None else 4 * period,
            )

    def install_all(self):
        for address in self.net.addresses():
            self.install(address)
        return self

    def install(self, address):
        """(Re)start the generator loop on one node."""
        rng = self.net.rng.fork("rate/{}".format(address))
        process = self._factory(rng)
        self._processes[address] = process
        node = self.net.node(address)
        jitter = rng.uniform(0, self.period)

        def tick():
            engine = self.net.node(address).engine
            engine.stream_append(
                self.table, (process.sample(self.net.now),)
            )
            engine.set_timer(self.period, tick)

        node.engine.set_timer(jitter, tick)

    def on_join(self, address):
        """Churn hook: a recovered host restarts its generator."""
        self.install(address)

    def current_rate(self, address):
        process = self._processes.get(address)
        return None if process is None else process.base
