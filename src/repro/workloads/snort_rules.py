"""Snort alert synthesis calibrated to the paper's Table 1.

Table 1 of the demo reports the network-wide top-ten intrusion
detection rules over PlanetLab, from open-source Snort running locally
on each node. We reproduce the *generating process*: every node keeps a
local (rule_id, descr, hits) relation; the network-wide distribution of
hits across rules follows the paper's published totals (465,770 for
BAD-TRAFFIC bad frag bits down to 7,277 for WEB-CGI redirect access),
plus a tail of rarer rules below the top ten so LIMIT 10 actually cuts
something.

Per-node counts are Poisson around each node's share, so individual
nodes disagree on ordering -- only the network-wide aggregate recovers
the paper's ranking, which is the point of the query.
"""

def _apportion(total, weights, total_weight):
    """Split ``total`` integer hits by weight, largest remainder."""
    raw = [total * w / total_weight for w in weights]
    floors = [int(r) for r in raw]
    shortfall = total - sum(floors)
    remainders = sorted(
        range(len(raw)), key=lambda i: raw[i] - floors[i], reverse=True
    )
    for i in remainders[:shortfall]:
        floors[i] += 1
    return floors


# (rule_id, description, network-wide hits) -- verbatim from Table 1.
TABLE1_RULES = [
    (1322, "BAD-TRAFFIC bad frag bits", 465770),
    (2189, "BAD TRAFFIC IP Proto 103 (PIM)", 123558),
    (1923, "RPC portmap proxy attempt UDP", 31491),
    (1444, "TFTP Get", 21944),
    (1917, "SCAN UPnP service discover attempt", 17565),
    (1384, "MISC UPnP malformed advertisement", 14052),
    (1321, "BAD-TRAFFIC 0 ttl", 10115),
    (1852, "WEB-MISC robots.txt access", 10094),
    (1411, "SNMP public access udp", 7778),
    (895, "WEB-CGI redirect access", 7277),
]

# A below-the-fold tail: plausible rules that must NOT reach the top ten.
TAIL_RULES = [
    (1616, "DNS named version attempt", 5120),
    (469, "ICMP PING NMAP", 4388),
    (648, "SHELLCODE x86 NOOP", 3305),
    (1201, "ATTACK-RESPONSES 403 Forbidden", 2217),
    (1560, "WEB-MISC /doc/ access", 1409),
    (1002, "WEB-IIS cmd.exe access", 955),
    (882, "WEB-CGI calendar access", 530),
    (1122, "WEB-MISC /etc/passwd", 216),
]


class SnortWorkload:
    """Distribute the network-wide rule hits over a testbed's nodes."""

    def __init__(self, net, table="snort_alerts", rules=None, tail=None,
                 hotspot_fraction=0.1, hotspot_weight=5.0):
        self.net = net
        self.table = table
        self.rules = list(rules if rules is not None else TABLE1_RULES)
        self.tail = list(tail if tail is not None else TAIL_RULES)
        self.hotspot_fraction = hotspot_fraction
        self.hotspot_weight = hotspot_weight
        if not net.catalog.has_table(table):
            net.create_local_table(table, [
                ("rule_id", "INT"), ("descr", "STR"), ("hits", "INT"),
            ])
        self.expected_totals = {
            rule_id: hits for rule_id, _d, hits in self.rules + self.tail
        }

    def install_all(self):
        """Populate every node's local alert table; returns self.

        Nodes are not uniform: a fraction are "hotspots" (DMZ hosts,
        popular services) attracting several times the baseline attack
        volume -- so single-node answers are unrepresentative and the
        network-wide aggregate is genuinely needed.

        Per-rule hits are apportioned across nodes by weighted
        largest-remainder, so the *network-wide* totals equal the
        paper's published counts exactly while individual nodes still
        see very different mixes. (A Poisson split would be equally
        realistic but lets adjacent Table 1 ranks -- 10,115 vs 10,094
        hits -- swap by sampling noise, which would make the headline
        reproduction flaky.)
        """
        rng = self.net.rng.fork("snort")
        addresses = self.net.addresses()
        weights = []
        for address in addresses:
            weight = 1.0
            if rng.random() < self.hotspot_fraction:
                weight = self.hotspot_weight
            # Mild per-node variation so fragments are never identical.
            weights.append(weight * (0.5 + rng.random()))
        total_weight = sum(weights)
        rows_by_address = {address: [] for address in addresses}
        for rule_id, descr, total in self.rules + self.tail:
            shares = _apportion(total, weights, total_weight)
            for address, hits in zip(addresses, shares):
                if hits > 0:
                    rows_by_address[address].append((rule_id, descr, hits))
        for address, rows in rows_by_address.items():
            self.net.insert(address, self.table, rows)
        return self

    def top_k_sql(self, k=10):
        """The Table 1 query."""
        return (
            "SELECT rule_id, descr, SUM(hits) AS hits "
            "FROM {} GROUP BY rule_id, descr "
            "ORDER BY hits DESC LIMIT {}".format(self.table, k)
        )

    def ground_truth_top_k(self, k=10):
        """What a global observer would answer (for shape checks)."""
        ranked = sorted(
            self.rules + self.tail, key=lambda r: r[2], reverse=True
        )
        return [(rule_id, descr) for rule_id, descr, _hits in ranked[:k]]
