"""A synthetic PlanetLab: ~100 sites on five continents, 2-4 hosts each.

The latency model is coordinate-based, so geography is a layout
problem: continents are regions of the unit square (distances scaled so
that trans-Pacific paths cost ~100+ ms one-way, matching 2004
PlanetLab), sites cluster tightly within a continent, and co-located
hosts are practically adjacent. The demo's "300 machines worldwide" is
the default.
"""

from repro.core.network import PierConfig, PierNetwork
from repro.util.rng import SeededRng

# Continent "centers" in the unit square, weighted like PlanetLab 2004:
# heavily North America + Europe, some Asia, a little elsewhere.
CONTINENTS = [
    ("na", (0.15, 0.30), 0.40),  # North America
    ("eu", (0.55, 0.20), 0.32),  # Europe
    ("as", (0.85, 0.40), 0.18),  # Asia
    ("sa", (0.25, 0.75), 0.05),  # South America
    ("oc", (0.90, 0.85), 0.05),  # Oceania
]


def planetlab_placements(num_hosts=300, seed=0, hosts_per_site=(2, 4)):
    """Generate {address: (x, y)} for a PlanetLab-like host set.

    Addresses look like ``plab-eu-site17-h2``; hosts of one site sit
    within ~1 ms of each other, sites scatter within their continent.
    """
    rng = SeededRng(seed, "planetlab")
    placements = {}
    site_index = 0
    while len(placements) < num_hosts:
        pick = rng.random()
        acc = 0.0
        for name, (cx, cy), weight in CONTINENTS:
            acc += weight
            if pick <= acc:
                continent, center = name, (cx, cy)
                break
        else:
            continent, center = CONTINENTS[0][0], CONTINENTS[0][1]
        site_x = min(1.0, max(0.0, center[0] + rng.gauss(0, 0.06)))
        site_y = min(1.0, max(0.0, center[1] + rng.gauss(0, 0.06)))
        site_index += 1
        count = rng.randint(*hosts_per_site)
        for h in range(count):
            if len(placements) >= num_hosts:
                break
            address = "plab-{}-site{}-h{}".format(continent, site_index, h)
            placements[address] = (
                min(1.0, max(0.0, site_x + rng.gauss(0, 0.004))),
                min(1.0, max(0.0, site_y + rng.gauss(0, 0.004))),
            )
    return placements


def build_planetlab_network(num_hosts=300, seed=0, config=None):
    """A ready PierNetwork laid out like the demo's testbed."""
    placements = planetlab_placements(num_hosts, seed)
    return PierNetwork(
        seed=seed,
        config=config if config is not None else PierConfig(),
        addresses=list(placements),
        placements=placements,
    )
