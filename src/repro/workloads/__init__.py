"""Workload synthesis: the data PlanetLab would have produced.

The demo ran on ~300 live PlanetLab hosts; we cannot, so these modules
generate the equivalent inputs with matching structure: a geographically
clustered testbed, per-node traffic-rate processes for the Figure 1
monitoring query, Snort alert tables calibrated to Table 1's rule
popularity, file corpora for keyword search, and router-level graphs
for recursive topology queries.
"""

from repro.workloads.generators import RateProcess, StatsWorkload, poisson
from repro.workloads.planetlab import build_planetlab_network, planetlab_placements
from repro.workloads.snort_rules import TABLE1_RULES, SnortWorkload

__all__ = [
    "RateProcess",
    "SnortWorkload",
    "StatsWorkload",
    "TABLE1_RULES",
    "build_planetlab_network",
    "planetlab_placements",
    "poisson",
]
