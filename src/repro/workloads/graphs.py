"""Router-level graph synthesis for the topology-mapping application.

The demo cites recursive queries over P2P overlays and network
topologies (Loo et al., UCB tech report). We generate three families
with networkx -- random (Erdos-Renyi), scale-free (Barabasi-Albert,
closest to router graphs), and ring-lattice (worst case for recursion
depth) -- and publish their edges as a DHT ``link`` relation
partitioned on the source column, which is exactly the layout the
fetch-matches recursive join wants.
"""

import networkx as nx


def make_graph(kind, n, seed=0, degree=3, p=None):
    """Build a directed graph of ``n`` nodes; returns networkx DiGraph."""
    if kind == "random":
        if p is None:
            p = min(1.0, degree / max(1, n - 1))
        g = nx.gnp_random_graph(n, p, seed=seed, directed=True)
    elif kind == "scale_free":
        undirected = nx.barabasi_albert_graph(n, max(1, degree // 2), seed=seed)
        g = nx.DiGraph()
        g.add_nodes_from(undirected.nodes)
        for u, v in undirected.edges:
            g.add_edge(u, v)
            g.add_edge(v, u)
    elif kind == "ring":
        g = nx.DiGraph()
        g.add_nodes_from(range(n))
        for i in range(n):
            g.add_edge(i, (i + 1) % n)
    else:
        raise ValueError("unknown graph kind {!r}".format(kind))
    return g


def edge_rows(g, prefix="r"):
    """(src, dst) string rows for the link relation."""
    return [
        ("{}{}".format(prefix, u), "{}{}".format(prefix, v))
        for u, v in g.edges
    ]


def publish_links(net, g, table="link", prefix="r", ttl=3600.0):
    """Create + populate the DHT link table across the testbed."""
    if not net.catalog.has_table(table):
        net.create_dht_table(
            table, [("src", "STR"), ("dst", "STR")],
            partition_key="src", ttl=ttl,
        )
    addresses = net.addresses()
    for i, row in enumerate(edge_rows(g, prefix)):
        net.publish(addresses[i % len(addresses)], table, row)
    return table


def ground_truth_reachability(g, prefix="r"):
    """All (src, dst) pairs with a directed path of length >= 1.

    Matches SQL transitive-closure semantics: (n, n) is included when n
    sits on a cycle (networkx's ``descendants`` always drops the source,
    so self-reachability needs the SCC/self-loop check).
    """
    pairs = set()
    for node in g.nodes:
        for reachable in nx.descendants(g, node):
            pairs.add((
                "{}{}".format(prefix, node), "{}{}".format(prefix, reachable)
            ))
    for component in nx.strongly_connected_components(g):
        if len(component) > 1:
            for node in component:
                pairs.add(("{}{}".format(prefix, node),) * 2)
    for u, v in g.edges:
        if u == v:
            pairs.add(("{}{}".format(prefix, u),) * 2)
    return pairs
