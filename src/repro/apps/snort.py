"""Network-wide intrusion detection -- the paper's Table 1.

Each node runs Snort locally (we synthesize its alert table); PIER
answers "the top ten intrusion rules across the whole network" with a
GROUP BY over every node's local table, aggregated in-network, plus the
ORDER BY ... LIMIT 10 finishing cut at the query site.
"""

from repro.workloads.snort_rules import SnortWorkload


class SnortApp:
    def __init__(self, net, table="snort_alerts"):
        self.net = net
        self.table = table
        self.workload = SnortWorkload(net, table=table)

    def install(self):
        self.workload.install_all()
        return self

    def top_rules(self, k=10, node=None):
        """Run the Table 1 query; returns EpochResult."""
        return self.net.run_sql(self.workload.top_k_sql(k), node=node)

    def format_table(self, result):
        """Render rows the way the paper prints Table 1."""
        lines = ["{:<6} {:<42} {:>9}".format("Rule", "Rule Description", "Hits")]
        for rule_id, descr, hits in result.rows:
            lines.append("{:<6} {:<42} {:>9,}".format(rule_id, descr, hits))
        return "\n".join(lines)

    def ground_truth(self, k=10):
        return self.workload.ground_truth_top_k(k)
