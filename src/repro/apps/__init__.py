"""The applications the demo paper runs on PIER.

* :mod:`monitoring` -- PlanetLab system monitoring: the continuous
  network-wide SUM of outbound data rates (the paper's Figure 1).
* :mod:`snort` -- network-wide intrusion-detection aggregation: the
  top-ten Snort rules (the paper's Table 1).
* :mod:`filesharing` -- keyword-based file-sharing search over a DHT
  inverted index (reference [3], the hybrid search paper).
* :mod:`topology` -- network topology mapping with recursive queries
  (reference [2]).
"""

from repro.apps.monitoring import MonitoringApp
from repro.apps.snort import SnortApp
from repro.apps.filesharing import FileSharingApp
from repro.apps.topology import TopologyApp

__all__ = ["FileSharingApp", "MonitoringApp", "SnortApp", "TopologyApp"]
