"""Network topology mapping with recursive queries.

The demo cites "Analyzing P2P overlays with recursive queries"
(reference [2]): publish the router/overlay link relation into the
DHT and compute reachability -- the transitive closure -- as a cyclic
PIER dataflow. Each newly discovered (src, dst) pair is deduplicated at
its DHT owner and probes the link table for successors; the query site
declares a fixpoint when no node reports novel tuples.
"""

from repro.workloads import graphs


class TopologyApp:
    def __init__(self, net, table="link"):
        self.net = net
        self.table = table
        self.graph = None

    def publish_graph(self, kind="scale_free", n=24, seed=0, degree=4):
        """Generate and publish a router graph; returns the app."""
        self.graph = graphs.make_graph(kind, n, seed=seed, degree=degree)
        graphs.publish_links(self.net, self.graph, table=self.table)
        self.net.advance(3.0)  # let the puts land
        return self

    def reachability_sql(self):
        return (
            "WITH RECURSIVE reach AS ("
            "    SELECT src, dst FROM {t} "
            "  UNION "
            "    SELECT r.src AS src, l.dst AS dst "
            "    FROM reach AS r, {t} AS l WHERE r.dst = l.src"
            ") SELECT src, dst FROM reach".format(t=self.table)
        )

    def compute_reachability(self, node=None, deadline=60.0):
        """Run the recursive query; returns the set of (src, dst) pairs."""
        result = self.net.run_sql(
            self.reachability_sql(), node=node,
            options={"recursion_deadline": deadline},
            extra_time=5.0,
        )
        return {(src, dst) for src, dst in result.rows}

    def ground_truth(self):
        return graphs.ground_truth_reachability(self.graph)

    def neighbors_within_sql(self, origin, hops):
        """Overlay neighborhood query from ref [2]: who is <= k hops away?

        Expressed as reachability filtered at the query site; the
        recursion itself bounds depth by quiescing.
        """
        return (
            "WITH RECURSIVE reach AS ("
            "    SELECT src, dst FROM {t} WHERE src = '{o}' "
            "  UNION "
            "    SELECT r.src AS src, l.dst AS dst "
            "    FROM reach AS r, {t} AS l WHERE r.dst = l.src"
            ") SELECT src, dst FROM reach".format(t=self.table, o=origin)
        )
