"""PlanetLab system monitoring -- the paper's headline demo.

"Continuous sum of outbound data rates over responding nodes running
PIER on PlanetLab" (Figure 1): every host samples its outbound rate
into a local stream table; one continuous query aggregates the
network-wide SUM and the count of responding nodes, epoch by epoch,
over the in-network aggregation tree. Under churn the responding-node
count dips and recovers -- the behaviour the figure exists to show.
"""

from repro.workloads.generators import StatsWorkload


class MonitoringApp:
    """Wires the rate workload and the Figure 1 query onto a testbed."""

    def __init__(self, net, table="node_stats", sample_period=5.0,
                 window=30.0):
        self.net = net
        self.table = table
        self.sample_period = sample_period
        self.window = window
        self.workload = StatsWorkload(
            net, table=table, period=sample_period, window=2 * window,
        )
        self.series = []  # (epoch_t0, total_rate, responding_count)
        self._handle = None

    def install(self):
        self.workload.install_all()
        return self

    def on_join(self, address):
        """Churn hook: restart the recovered host's sampler."""
        self.workload.on_join(address)

    def figure1_sql(self, every=30.0, lifetime=1800.0):
        return (
            "SELECT SUM(rate_kbps) AS total_rate, COUNT(*) AS samples "
            "FROM {} EVERY {} SECONDS WINDOW {} SECONDS "
            "LIFETIME {} SECONDS".format(
                self.table, every, self.window, lifetime
            )
        )

    def start_query(self, node=None, every=30.0, lifetime=1800.0):
        """Submit the continuous query; results accumulate in .series."""

        def on_epoch(result):
            if result.rows:
                total, samples = result.rows[0]
                # samples counts rows in the window; rows-per-node is
                # window/sample_period, so responding nodes is the ratio.
                per_node = max(1, round(self.window / self.sample_period))
                responding = round(samples / per_node)
            else:
                total, responding = 0.0, 0
            self.series.append((result.t0, total, responding))

        self._handle = self.net.submit_sql(
            self.figure1_sql(every, lifetime), node=node, on_epoch=on_epoch,
        )
        return self._handle

    def stop_query(self):
        if self._handle is not None:
            self._handle.stop()
            self._handle = None

    def run(self, duration, every=30.0, node=None):
        """Convenience: install, query, advance; returns the series."""
        if not self.workload._processes:
            self.install()
        self.net.advance(self.window)  # fill the first window
        self.start_query(node=node, every=every, lifetime=duration)
        self.net.advance(duration + 15.0)
        return self.series
