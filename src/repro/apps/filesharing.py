"""Keyword-based file-sharing search over a DHT inverted index.

The demo cites PIER's file-sharing application (reference [3], "The
Case for a Hybrid P2P Search Infrastructure"): publish each file's
keywords as postings in a DHT relation partitioned on the term, then:

* single-keyword search = one DHT ``get`` (O(log N) hops),
* multi-keyword search = an equi-join of the inverted index with
  itself on file_id, restricted to the two terms -- which PIER executes
  with its distributed join machinery.

That paper's argument -- DHT search wins for *rare* terms, flooding is
acceptable only for popular ones -- is exactly what
``benchmarks/bench_filesharing_search.py`` measures against the
flooding baseline.
"""

from repro.util.zipf import ZipfSampler

# A small vocabulary whose popularity is Zipfian, like query logs.
VOCABULARY = [
    "music", "video", "linux", "windows", "game", "movie", "album",
    "live", "remix", "dataset", "lecture", "paper", "sigmod", "pier",
    "chord", "overlay", "planetlab", "kernel", "compiler", "haskell",
    "fortran", "telescope", "genome", "seismic", "glacier",
]


class FileSharingApp:
    def __init__(self, net, table="inverted", ttl=3600.0):
        self.net = net
        self.table = table
        if not net.catalog.has_table(table):
            net.create_dht_table(
                table,
                [("term", "STR"), ("file_id", "STR"), ("owner", "STR")],
                partition_key="term", ttl=ttl,
            )
        self.corpus = {}  # file_id -> (owner, [terms])

    def publish_corpus(self, files_per_node=20, terms_per_file=3,
                       zipf_exponent=1.1):
        """Give every node a library of files with Zipfian keywords."""
        rng = self.net.rng.fork("files")
        sampler = ZipfSampler(len(VOCABULARY), zipf_exponent, rng)
        for address in self.net.addresses():
            for i in range(files_per_node):
                file_id = "{}/file{}".format(address, i)
                terms = set()
                while len(terms) < terms_per_file:
                    terms.add(VOCABULARY[sampler.sample() - 1])
                self.corpus[file_id] = (address, sorted(terms))
                for term in terms:
                    self.net.publish(
                        address, self.table, (term, file_id, address)
                    )
        return self

    def search_one(self, term, node=None):
        """Single-keyword search: a direct DHT get. Returns file ids."""
        address = node if node is not None else self.net.any_address()
        out = {}
        self.net.node(address).chord.get(
            self.table, term, lambda values: out.update({"v": values})
        )
        self.net.advance(3.0)
        return sorted({row[1] for _iid, row in out.get("v", [])})

    def search_sql(self, terms, node=None):
        """Multi-keyword (AND) search via a distributed self-join."""
        if len(terms) == 1:
            sql = (
                "SELECT file_id, owner FROM {} WHERE term = '{}'".format(
                    self.table, terms[0]
                )
            )
            result = self.net.run_sql(sql, node=node)
            return sorted({row[0] for row in result.rows})
        if len(terms) != 2:
            raise ValueError("search_sql supports 1 or 2 terms")
        sql = (
            "SELECT i1.file_id AS file_id, i1.owner AS owner "
            "FROM {t} AS i1, {t} AS i2 "
            "WHERE i1.file_id = i2.file_id "
            "AND i1.term = '{a}' AND i2.term = '{b}'".format(
                t=self.table, a=terms[0], b=terms[1]
            )
        )
        result = self.net.run_sql(sql, node=node)
        return sorted({row[0] for row in result.rows})

    def ground_truth(self, terms):
        """Files whose keyword set contains all ``terms``."""
        want = set(terms)
        return sorted(
            fid for fid, (_owner, fterms) in self.corpus.items()
            if want.issubset(fterms)
        )

    def term_popularity(self):
        counts = {}
        for _fid, (_owner, terms) in self.corpus.items():
            for term in terms:
                counts[term] = counts.get(term, 0) + 1
        return counts
