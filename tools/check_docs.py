"""Docs gate: intra-repo markdown link check + README doctests.

Two failure modes this catches before merge:

* a markdown file links to a repo path that does not exist (docs rot as
  files move);
* a README code block's shown output drifts from what the code actually
  prints (the examples are doctests and really run).

Usage: ``PYTHONPATH=src python tools/check_docs.py`` from the repo
root. Exit status is the number of failures.
"""

import doctest
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

# [text](target) -- excluding images; anchors and external URLs skipped.
_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)

DOCTEST_FILES = ["README.md"]


def markdown_files():
    skip_parts = {".git", ".claude", "node_modules"}
    for path in sorted(REPO.rglob("*.md")):
        if not skip_parts.intersection(path.relative_to(REPO).parts):
            yield path


def check_links():
    failures = []
    for md in markdown_files():
        text = md.read_text(encoding="utf-8")
        for target in _LINK.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            target_path = target.split("#", 1)[0]
            if not target_path:
                continue
            resolved = (md.parent / target_path).resolve()
            if not resolved.exists():
                failures.append("{}: broken link -> {}".format(
                    md.relative_to(REPO), target))
    return failures


def check_doctests():
    failures = []
    for name in DOCTEST_FILES:
        path = REPO / name
        text = path.read_text(encoding="utf-8")
        blocks = [b for b in _FENCE.findall(text) if ">>>" in b]
        if not blocks:
            failures.append("{}: no doctest-able python blocks".format(name))
            continue
        # Blocks share one namespace, in order, like one long session.
        globs = {}
        runner = doctest.DocTestRunner(verbose=False,
                                       optionflags=doctest.ELLIPSIS)
        parser = doctest.DocTestParser()
        for i, block in enumerate(blocks):
            test = parser.get_doctest(
                block, globs, "{}[block {}]".format(name, i), name, 0
            )
            runner.run(test, clear_globs=False)
            globs = test.globs
        results = runner.summarize(verbose=False)
        if results.failed:
            failures.append("{}: {} doctest example(s) failed".format(
                name, results.failed))
    return failures


def main():
    failures = check_links() + check_doctests()
    for failure in failures:
        print("FAIL:", failure)
    if not failures:
        print("docs ok: links resolve, README examples run")
    return len(failures)


if __name__ == "__main__":
    sys.exit(main())
