"""Benchmark-regression gate: compare results against checked-in baselines.

Every benchmark smoke run writes its headline numbers as JSON under
``benchmarks/results/<name>.json`` (see ``benchmarks/_harness.py``:
``write_metrics``). This tool compares each checked-in baseline in
``benchmarks/baselines/`` against the results file of the same name:

* ``exact`` metrics (parity booleans, counts) must match exactly --
  a parity check that stops holding is a correctness regression, not
  noise;
* ``ratio`` metrics (reduction factors, error magnitudes) must land
  within a relative tolerance band (default +/- 20%) of the recorded
  value, so a real perf regression fails CI while cross-version float
  jitter does not.

A baseline with no matching results file fails the gate (the bench
silently stopped running), as does a results file at a different
scale than its baseline (smoke numbers are only comparable to smoke
baselines).

Usage::

    python tools/check_bench.py             # gate (CI runs this)
    python tools/check_bench.py --record    # (re)write baselines
    python tools/check_bench.py --tolerance 0.25

``--record`` snapshots the current results as the new baselines,
inferring each metric's kind: bools, ints and strings record as
``exact``, floats as ``ratio``. Re-record whenever a bench's headline
legitimately moves (and say why in the commit).
"""

import argparse
import json
import os
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
RESULTS_DIR = REPO / "benchmarks" / "results"
BASELINES_DIR = REPO / "benchmarks" / "baselines"
DEFAULT_TOLERANCE = 0.20


def _rel(path):
    """Repo-relative path for messages; absolute when outside the repo
    (e.g. dirs monkeypatched to a tmp sandbox in tests)."""
    try:
        return path.relative_to(REPO)
    except ValueError:
        return path


def _load(path):
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise SystemExit("check_bench: cannot read {}: {}".format(path, exc))


def _kind_for(value):
    """Baseline kind inferred at record time."""
    if isinstance(value, bool) or isinstance(value, (int, str)):
        return "exact"
    if isinstance(value, float):
        return "ratio"
    raise SystemExit(
        "check_bench: metric value {!r} is not a JSON scalar".format(value)
    )


def record(tolerance):
    BASELINES_DIR.mkdir(parents=True, exist_ok=True)
    results = sorted(RESULTS_DIR.glob("*.json"))
    if not results:
        raise SystemExit(
            "check_bench: no results to record -- run the benchmark "
            "smokes first (benchmarks/bench_*.py --smoke)"
        )
    for path in results:
        payload = _load(path)
        baseline = {
            "bench": payload["bench"],
            "scale": payload.get("scale", "smoke"),
            "tolerance": tolerance,
            "metrics": {
                key: {"kind": _kind_for(value), "value": value}
                for key, value in sorted(payload["metrics"].items())
            },
        }
        out = BASELINES_DIR / path.name
        out.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n",
                       encoding="utf-8")
        print("recorded {} ({} metrics)".format(
            _rel(out), len(baseline["metrics"])))
    return 0


def _check_metric(key, spec, got, tolerance, failures):
    kind = spec["kind"]
    want = spec["value"]
    if got is None:
        failures.append("{}: missing from results".format(key))
        return "MISSING"
    if kind == "exact":
        ok = got == want
        verdict = "ok" if ok else "FAIL"
        if not ok:
            failures.append("{}: expected exactly {!r}, got {!r}".format(
                key, want, got))
        return verdict
    # ratio: relative band around the recorded value; a zero baseline
    # degrades to an absolute band of the tolerance itself.
    span = abs(want) * tolerance if want else tolerance
    ok = abs(got - want) <= span
    if not ok:
        failures.append(
            "{}: {} outside [{:.4f}, {:.4f}] (baseline {} +/- {:.0f}%)"
            .format(key, got, want - span, want + span, want,
                    100 * tolerance)
        )
    return "ok" if ok else "FAIL"


def _band_for(spec, tolerance):
    """Human-readable band column for the drift table."""
    if spec["kind"] == "exact":
        return "exact"
    want = spec["value"]
    span = abs(want) * tolerance if want else tolerance
    return "[{:.4f}, {:.4f}]".format(want - span, want + span)


def _write_step_summary(rows, failures):
    """Append the per-metric drift table to ``$GITHUB_STEP_SUMMARY``.

    GitHub renders the file as markdown on the Actions run page, so a
    failed gate shows *which* metric drifted and by how much without
    digging through the job log. A no-op outside Actions (or when the
    variable is unset), so local runs are unaffected.
    """
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not summary_path:
        return
    lines = ["## Benchmark drift", ""]
    lines.append("| bench | metric | measured | baseline | band | verdict |")
    lines.append("| --- | --- | --- | --- | --- | --- |")
    for bench, metric, got, want, band, verdict in rows:
        mark = {"ok": ":white_check_mark:"}.get(verdict, ":x:")
        lines.append("| {} | {} | {} | {} | {} | {} {} |".format(
            bench, metric, got, want, band, mark, verdict))
    lines.append("")
    if failures:
        lines.append("**check_bench: {} failure(s)** -- re-record with "
                     "`python tools/check_bench.py --record` if "
                     "intentional.".format(len(failures)))
    else:
        lines.append("**check_bench: all baselines hold**")
    lines.append("")
    with open(summary_path, "a", encoding="utf-8") as fh:
        fh.write("\n".join(lines) + "\n")


def check(tolerance_override=None):
    baselines = sorted(BASELINES_DIR.glob("*.json"))
    if not baselines:
        raise SystemExit(
            "check_bench: no baselines under {} -- record them with "
            "--record".format(_rel(BASELINES_DIR))
        )
    failures = []
    rows = []  # (bench, metric, measured, baseline, band, verdict)
    for path in baselines:
        baseline = _load(path)
        name = baseline["bench"]
        tolerance = (tolerance_override
                     if tolerance_override is not None
                     else baseline.get("tolerance", DEFAULT_TOLERANCE))
        result_path = RESULTS_DIR / path.name
        if not result_path.exists():
            failures.append("{}: no results file -- did the bench run?"
                            .format(name))
            print("{:<24} MISSING ({} not written)".format(
                name, _rel(result_path)))
            rows.append((name, "(all)", "-", "-", "-", "NO RESULTS"))
            continue
        results = _load(result_path)
        if results.get("scale") != baseline.get("scale"):
            failures.append(
                "{}: scale mismatch (baseline {}, results {})".format(
                    name, baseline.get("scale"), results.get("scale"))
            )
            rows.append((name, "(all)", str(results.get("scale")),
                         str(baseline.get("scale")), "-", "SCALE MISMATCH"))
            continue
        got_metrics = results.get("metrics", {})
        before = len(failures)
        for key, spec in sorted(baseline["metrics"].items()):
            verdict = _check_metric(key, spec, got_metrics.get(key),
                                    tolerance, failures)
            print("{:<24} {:<32} {:>12} (baseline {}) {}".format(
                name, key, _fmt(got_metrics.get(key)), _fmt(spec["value"]),
                verdict))
            rows.append((name, key, _fmt(got_metrics.get(key)),
                         _fmt(spec["value"]), _band_for(spec, tolerance),
                         verdict))
        if len(failures) == before:
            extra = sorted(set(got_metrics) - set(baseline["metrics"]))
            if extra:
                print("{:<24} note: unbaselined metrics {}".format(
                    name, ", ".join(extra)))
    _write_step_summary(rows, failures)
    if failures:
        print("\ncheck_bench: {} failure(s):".format(len(failures)))
        for failure in failures:
            print("  - " + failure)
        print("\nIf the change is intentional, re-record with "
              "`python tools/check_bench.py --record` and commit the "
              "baselines with an explanation.")
        return 1
    print("\ncheck_bench: all baselines hold")
    return 0


def _fmt(value):
    if value is None:
        return "-"
    if isinstance(value, float):
        return "{:.4f}".format(value)
    return str(value)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--record", action="store_true",
                        help="snapshot current results as the baselines")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="relative band for ratio metrics "
                             "(default: per-baseline, {} when recording)"
                        .format(DEFAULT_TOLERANCE))
    args = parser.parse_args(argv)
    if args.record:
        return record(args.tolerance if args.tolerance is not None
                      else DEFAULT_TOLERANCE)
    return check(args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
