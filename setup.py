"""Setuptools shim.

The offline build environment ships setuptools but not ``wheel``, so
PEP 660 editable installs (which shell out to ``bdist_wheel``) fail.
With this shim and no ``[build-system]`` table in pyproject.toml, pip
falls back to the legacy ``setup.py develop`` editable path, which works
everywhere. All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
