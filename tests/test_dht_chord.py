"""Chord overlay: ring correctness, routing, storage, failure handling."""

from repro.dht.bootstrap import (
    build_chord_ring,
    join_chord_ring,
    owner_of,
    ring_is_consistent,
)
from repro.dht.chord import ChordNode, storage_key
from repro.dht.config import DhtConfig
from repro.sim.clock import SimClock
from repro.sim.latency import ConstantLatency
from repro.sim.network import Network
from repro.util.ids import ID_BITS
from repro.util.rng import SeededRng


def make_ring(n, seed=0, clock=None, settle=10.0):
    clock = clock if clock is not None else SimClock()
    rng = SeededRng(seed, "chordtest")
    net = Network(clock, ConstantLatency(0.02), rng.fork("net"))
    cfg = DhtConfig()
    nodes = [
        ChordNode(net, "n{}".format(i), cfg, rng.fork("c{}".format(i)))
        for i in range(n)
    ]
    build_chord_ring(nodes)
    clock.run_for(settle)
    return clock, net, nodes


class TestRingConstruction:
    def test_oracle_ring_is_consistent(self):
        _clock, _net, nodes = make_ring(32)
        assert ring_is_consistent(nodes)

    def test_single_node_ring(self):
        clock, _net, nodes = make_ring(1)
        assert nodes[0].successor == nodes[0].ref
        found = []
        nodes[0].lookup(storage_key("x", 1), lambda o, h: found.append(o))
        clock.run_for(1)
        assert found == [nodes[0].ref]

    def test_two_node_ring(self):
        clock, _net, nodes = make_ring(2)
        assert nodes[0].successor == nodes[1].ref or nodes[1].successor == nodes[0].ref
        assert ring_is_consistent(nodes)

    def test_protocol_join_converges(self):
        clock = SimClock()
        rng = SeededRng(1, "join")
        net = Network(clock, ConstantLatency(0.02), rng.fork("net"))
        cfg = DhtConfig()
        nodes = [
            ChordNode(net, "j{}".format(i), cfg, rng.fork("j{}".format(i)))
            for i in range(10)
        ]
        join_chord_ring(nodes, clock)
        clock.run_for(60)
        assert ring_is_consistent(nodes)

    def test_predecessors_set(self):
        _clock, _net, nodes = make_ring(16)
        for node in nodes:
            assert node.predecessor is not None


class TestOwnership:
    def test_lookup_agrees_with_oracle(self):
        clock, _net, nodes = make_ring(24)
        answers = {}
        for i in range(40):
            key = storage_key("tbl", i)
            nodes[i % 24].lookup(
                key, lambda o, h, key=key: answers.__setitem__(key, o)
            )
        clock.run_for(10)
        assert len(answers) == 40
        for i in range(40):
            key = storage_key("tbl", i)
            assert answers[key].id == owner_of(nodes, key).id

    def test_owns_partitions_the_ring(self):
        _clock, _net, nodes = make_ring(16)
        for i in range(30):
            key = storage_key("p", i)
            owners = [n for n in nodes if n.owns(key)]
            assert len(owners) == 1

    def test_lookup_hops_logarithmic(self):
        clock, _net, nodes = make_ring(64)
        hops = []
        for i in range(60):
            nodes[i % 64].lookup(storage_key("h", i), lambda o, h: hops.append(h))
        clock.run_for(20)
        assert len(hops) == 60
        # Expected ~log2(64)/2 = 3; cap generously.
        assert sum(hops) / len(hops) < 7


class TestStorage:
    def test_put_get_roundtrip(self):
        clock, _net, nodes = make_ring(16)
        nodes[3].put("t", "key", 1, {"x": 1})
        clock.run_for(2)
        out = []
        nodes[11].get("t", "key", out.append)
        clock.run_for(3)
        assert out == [[(1, {"x": 1})]]

    def test_get_missing_returns_empty(self):
        clock, _net, nodes = make_ring(8)
        out = []
        nodes[0].get("t", "missing", out.append)
        clock.run_for(6)
        assert out == [[]]

    def test_item_stored_at_ring_owner(self):
        clock, _net, nodes = make_ring(16)
        nodes[0].put("t", "k9", 1, "v")
        clock.run_for(2)
        owner = owner_of(nodes, storage_key("t", "k9"))
        assert len(owner.store.get("t", "k9")) == 1

    def test_soft_state_expires(self):
        clock, _net, nodes = make_ring(8)
        nodes[0].put("t", "k", 1, "v", ttl=5)
        clock.run_for(2)
        out = []
        nodes[1].get("t", "k", out.append)
        clock.run_for(2)
        assert out[0] != []
        clock.run_for(10)
        out2 = []
        nodes[1].get("t", "k", out2.append)
        clock.run_for(3)
        assert out2 == [[]]

    def test_renew_keeps_alive(self):
        clock, _net, nodes = make_ring(8)
        nodes[0].put("t", "k", 1, "v", ttl=6)
        clock.run_for(4)
        nodes[0].renew("t", "k", 1, ttl=20)
        clock.run_for(8)
        out = []
        nodes[1].get("t", "k", out.append)
        clock.run_for(3)
        assert out[0] == [(1, "v")]

    def test_lscan_sees_local_fragment_only(self):
        clock, _net, nodes = make_ring(16)
        for i in range(50):
            nodes[i % 16].put("frag", "key{}".format(i), 1, i)
        clock.run_for(3)
        total = sum(len(n.lscan("frag")) for n in nodes)
        assert total == 50

    def test_keys_handed_off_on_join(self):
        clock = SimClock()
        rng = SeededRng(9, "handoff")
        net = Network(clock, ConstantLatency(0.02), rng.fork("net"))
        cfg = DhtConfig()
        nodes = [
            ChordNode(net, "h{}".format(i), cfg, rng.fork("h{}".format(i)))
            for i in range(6)
        ]
        build_chord_ring(nodes[:5])
        clock.run_for(5)
        for i in range(40):
            nodes[0].put("t", "k{}".format(i), 1, i, ttl=300)
        clock.run_for(3)
        # Sixth node joins via the protocol; keys it now owns must move.
        nodes[5].join(nodes[0].address)
        clock.run_for(40)
        out = []
        for i in range(40):
            nodes[2].get("t", "k{}".format(i), lambda v, i=i: out.append((i, v)))
        clock.run_for(8)
        found = sum(1 for _i, v in out if v)
        assert found == 40


class TestFailures:
    def test_successor_failover(self):
        clock, _net, nodes = make_ring(16)
        victim = nodes[4]
        victim.crash()
        clock.run_for(40)
        assert ring_is_consistent(nodes)

    def test_lookups_survive_failures(self):
        clock, _net, nodes = make_ring(32)
        for i in (3, 9, 20):
            nodes[i].crash()
        results = []
        for i in range(30):
            src = nodes[(i * 7) % 32]
            if src.alive:
                src.lookup(storage_key("f", i), lambda o, h: results.append(o))
        clock.run_for(20)
        assert all(o is not None for o in results)
        assert len(results) >= 25

    def test_crash_clears_store(self):
        clock, _net, nodes = make_ring(8)
        nodes[0].put("t", "k", 1, "v")
        clock.run_for(2)
        owner = owner_of(nodes, storage_key("t", "k"))
        owner.crash()
        assert len(owner.store) == 0

    def test_recover_rejoins_ring(self):
        clock, _net, nodes = make_ring(16)
        nodes[7].crash()
        clock.run_for(30)
        nodes[7].recover(nodes[0].address)
        clock.run_for(60)
        assert ring_is_consistent(nodes)

    def test_graceful_leave_hands_off_keys(self):
        clock, _net, nodes = make_ring(8)
        for i in range(20):
            nodes[0].put("t", "k{}".format(i), 1, i, ttl=600)
        clock.run_for(3)
        total_before = sum(len(n.store) for n in nodes)
        leaver = nodes[3]
        leaver.leave()
        clock.run_for(1)
        total_after = sum(len(n.store) for n in nodes if n.alive)
        assert total_after == total_before


class TestBroadcast:
    def test_reaches_every_node_once(self):
        clock, _net, nodes = make_ring(32)
        got = []
        for node in nodes:
            node.on_broadcast(
                lambda payload, origin, depth, node=node: got.append(node.address)
            )
        nodes[5].broadcast({"token": "b1"})
        clock.run_for(5)
        assert sorted(got) == sorted(n.address for n in nodes)
        assert len(got) == len(set(got))

    def test_depth_logarithmic(self):
        clock, _net, nodes = make_ring(64)
        depths = []
        for node in nodes:
            node.on_broadcast(lambda p, o, depth: depths.append(depth))
        nodes[0].broadcast({"token": "b2"})
        clock.run_for(5)
        assert max(depths) <= 2 * (ID_BITS.bit_length() + 7)  # loose; see next
        assert max(depths) <= 12  # log2(64)=6 plus repair slack

    def test_repair_covers_failed_fingers(self):
        clock, _net, nodes = make_ring(48)
        for i in (1, 13, 25, 37):
            nodes[i].crash()
        got = set()
        for node in nodes:
            if node.alive:
                node.on_broadcast(
                    lambda p, o, d, node=node: got.add(node.address)
                )
        nodes[0].broadcast({"token": "b3"})
        clock.run_for(20)
        assert len(got) == 44

    def test_duplicate_tokens_suppressed(self):
        clock, _net, nodes = make_ring(8)
        count = [0]
        nodes[3].on_broadcast(lambda p, o, d: count.__setitem__(0, count[0] + 1))
        nodes[0].broadcast({"token": "same"})
        clock.run_for(3)
        nodes[0].broadcast({"token": "same"})
        clock.run_for(3)
        assert count[0] == 1


class TestUpcalls:
    def test_intercept_can_absorb_and_forward(self):
        clock, _net, nodes = make_ring(16)
        target_key = storage_key("u", "k")
        absorbed = []

        def intercept(node, message, at_owner):
            if at_owner:
                return True
            absorbed.append(node.address)
            message.payload["data"] += 1
            return True  # transformed, keep going

        delivered = []
        for node in nodes:
            node.register_intercept("bump", intercept)
            node.register_delivery("u", lambda p, m: delivered.append(p["data"]))
        origin = nodes[0] if not nodes[0].owns(target_key) else nodes[1]
        origin.route(target_key, {"op": "deliver", "ns": "u", "data": 0},
                     upcall="bump")
        clock.run_for(5)
        assert len(delivered) == 1
        assert delivered[0] == len(absorbed)

    def test_direct_messages(self):
        clock, _net, nodes = make_ring(4)
        seen = []
        nodes[2].on_direct(lambda payload, src: seen.append((payload, src)))
        nodes[0].send_direct(nodes[2].address, {"hello": True})
        clock.run_for(1)
        assert seen == [({"hello": True}, nodes[0].address)]
