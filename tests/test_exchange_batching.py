"""Batched exchange path: equivalence with the unbatched exchange.

The batching layer must be invisible to query semantics: the same
workload run with ``flush_delay = 0`` (one route message per row, the
original behaviour) and with batching enabled has to produce identical
results -- in clean networks, under message loss, and across failures.
What may change is the message count, which is the whole point.
"""

import pytest

from repro.core.engine import EngineConfig
from repro.core.network import PierConfig, PierNetwork

JOIN_SQL = (
    "SELECT r.k AS k, r.v AS rv, s.v AS sv FROM r, s WHERE r.k = s.k"
)


def build_join_net(seed, batched, nodes=16):
    engine = EngineConfig(flush_delay=0.25 if batched else 0.0)
    net = PierNetwork(nodes=nodes, seed=seed, config=PierConfig(engine=engine))
    net.create_local_table("r", [("k", "INT"), ("v", "INT")])
    net.create_local_table("s", [("k", "INT"), ("v", "INT")])
    addresses = net.addresses()
    # Co-keyed rows per sender so batches actually form: each node holds
    # several r-rows for each of a few keys, and one s-row per key.
    for i, address in enumerate(addresses):
        keys = [(i + j) % 8 for j in range(2)]
        net.insert(address, "r",
                   [(k, 10 * i + c) for k in keys for c in range(4)])
        net.insert(address, "s", [((i * 3) % 8, i)])
    return net


def run_join(net):
    before = dict(net.message_counters())
    result = net.run_sql(JOIN_SQL)
    after = net.message_counters()
    deltas = {k: after.get(k, 0) - before.get(k, 0) for k in after}
    return sorted(result.rows), deltas


class TestJoinEquivalence:
    def test_same_rows_and_fewer_messages(self):
        unbatched_rows, unbatched_msgs = run_join(build_join_net(21, False))
        batched_rows, batched_msgs = run_join(build_join_net(21, True))
        assert batched_rows == unbatched_rows
        assert unbatched_rows  # non-trivial workload
        # Same tuples moved, in fewer (batch-bearing) messages.
        assert batched_msgs["exchange_rows"] == unbatched_msgs["exchange_rows"]
        assert batched_msgs.get("exchange_batches", 0) > 0
        assert batched_msgs["exchange_messages"] < unbatched_msgs["exchange_messages"]
        assert batched_msgs["messages_sent"] < unbatched_msgs["messages_sent"]

    @staticmethod
    def _drop_routed(net, loss_rate):
        """Drop a fraction of *routed* messages (the exchange traffic).

        Loss is applied to the layer batching changes -- key-routed
        deliveries, which hop-by-hop acks re-forward -- so both
        configurations must still move every row. Result-return and RPC
        traffic is left alone: it has no retransmission and loses rows
        identically with or without batching.
        """
        original_send = net.net.send
        rng = net.rng.fork("route-loss")

        def lossy_send(src, dst, payload):
            if getattr(payload, "kind", None) == "route":
                if rng.random() < loss_rate:
                    net.net.counters.add("messages_lost")
                    return
            original_send(src, dst, payload)

        net.net.send = lossy_send

    def test_loss_recovery_matches_unbatched(self):
        # Hop-by-hop acks re-forward lost routed messages, so a lost
        # batch is recovered whole, exactly like a lost single row.
        # Loss near an owner can still legitimately land rows on an
        # heir (PIER prefers approximate delivery to a drop), so the
        # contract is: no fabricated rows, near-complete answers, and
        # batching no worse than the unbatched exchange.
        complete, _ = run_join(build_join_net(22, False))
        rows_by_config = []
        total_lost = 0
        for batched in (False, True):
            net = build_join_net(22, batched)
            self._drop_routed(net, 0.02)
            rows, _ = run_join(net)
            total_lost += net.message_counters().get("messages_lost", 0)
            assert set(rows) <= set(complete)  # loss never invents rows
            assert len(rows) >= 0.9 * len(complete)
            rows_by_config.append(rows)
        assert total_lost > 0  # the loss hook actually dropped messages
        # Fewer messages means fewer loss events: batching must never
        # recover *worse* than the per-row exchange on this workload.
        assert len(rows_by_config[1]) >= len(rows_by_config[0])

    def test_same_rows_after_crashes(self):
        results = []
        for batched in (False, True):
            net = build_join_net(23, batched, nodes=20)
            for address in net.addresses()[15:18]:
                net.crash_node(address)
            net.advance(30)  # let the ring heal around the corpses
            rows, _ = run_join(net)
            results.append(rows)
        assert results[0] == results[1]
        assert results[0]

    def test_continuous_aggregate_under_churn_tracks_unbatched(self):
        # Same seed means the same churn schedule in both runs; the
        # only difference is the exchange path. Continuous epochs under
        # live churn may disagree by a straggler where a crash lands
        # mid-transfer, but the batched run has to track the unbatched
        # one epoch for epoch.
        per_config = []
        for batched in (False, True):
            engine = EngineConfig(flush_delay=0.25 if batched else 0.0)
            net = PierNetwork(nodes=16, seed=62, config=PierConfig(engine=engine))
            net.create_local_table("t", [("v", "INT")])

            def install(address, net=net):
                net.insert(address, "t", [(1,)])

            for address in net.addresses():
                install(address)
            site = net.addresses()[0]
            churn = net.start_churn(300.0, 60.0, on_join=install, exclude=[site])
            results = []
            net.submit_sql(
                "SELECT COUNT(*) AS n FROM t EVERY 15 SECONDS "
                "LIFETIME 120 SECONDS",
                node=site, on_epoch=results.append,
            )
            net.advance(140)
            leaves = churn.leaves
            net.stop_churn()
            assert leaves > 0  # churn really happened during the run
            per_config.append(
                [r.rows[0][0] if r.rows else 0 for r in results]
            )
        unbatched, batched = per_config
        assert len(batched) == len(unbatched) >= 6
        for a, b in zip(unbatched, batched):
            assert abs(a - b) <= 2  # within a straggler or two
        # Every epoch still hears from most of the 16 nodes.
        assert all(b >= 10 for b in batched)


class TestAggregationEquivalence:
    @staticmethod
    def _run(batched, tree):
        engine = EngineConfig(flush_delay=0.25 if batched else 0.0)
        net = PierNetwork(nodes=16, seed=31, config=PierConfig(engine=engine))
        net.create_local_table("t", [("g", "INT"), ("v", "INT")])
        for i, address in enumerate(net.addresses()):
            net.insert(address, "t", [(j % 4, i + j) for j in range(6)])
        options = None if tree else {"aggregation_tree": False}
        result = net.run_sql(
            "SELECT g, SUM(v) AS total, COUNT(*) AS n FROM t GROUP BY g",
            options=options,
        )
        return sorted(result.rows)

    def test_tree_aggregation_identical(self):
        assert self._run(True, tree=True) == self._run(False, tree=True)

    def test_rehash_aggregation_identical(self):
        assert self._run(True, tree=False) == self._run(False, tree=False)

    def test_tree_matches_rehash_when_batched(self):
        assert self._run(True, tree=True) == self._run(True, tree=False)


class TestRecursiveEquivalence:
    @staticmethod
    def _run(batched):
        engine = EngineConfig(flush_delay=0.2 if batched else 0.0)
        net = PierNetwork(nodes=12, seed=41, config=PierConfig(engine=engine))
        net.create_local_table("edge", [("src", "INT"), ("dst", "INT")])
        # A chain plus a shortcut: reachability needs several rounds.
        edges = [(i, i + 1) for i in range(8)] + [(0, 5)]
        for i, e in enumerate(edges):
            net.insert(net.addresses()[i % 12], "edge", [e])
        result = net.run_sql(
            "WITH RECURSIVE reach AS ("
            "  SELECT e.src AS src, e.dst AS dst FROM edge AS e"
            "  UNION"
            "  SELECT r.src AS src, e.dst AS dst FROM reach AS r, edge AS e"
            "  WHERE r.dst = e.src"
            ") SELECT src, dst FROM reach",
            options={"recursion_deadline": 30.0},
        )
        return sorted(result.rows)

    def test_recursive_identical(self):
        batched = self._run(True)
        unbatched = self._run(False)
        assert batched == unbatched
        # Transitive closure of the 0->1->...->8 chain; the (0, 5)
        # shortcut adds no pair the chain does not already reach.
        assert len(batched) == 8 * 9 // 2


class TestBatchLimits:
    def test_row_cap_ships_batch_early(self, clock):
        from repro.core.exchange import Exchange

        sent = []

        class StubDht:
            def route(self, key, payload, upcall=None):
                sent.append(payload)

            def set_timer(self, delay, callback, *args):
                return clock.schedule(delay, callback, *args)

            def cancel_timer(self, event):
                event.cancel()

        class StubPlan:
            def consumers_of(self, op_id):
                return [("sink", 0)]

        class StubCtx:
            plan = StubPlan()
            dht = StubDht()

            class engine:
                config = EngineConfig(flush_delay=5.0, max_batch_rows=3)

            def namespace(self, op_id, port):
                return "ns|{}|{}".format(op_id, port)

            def upcall_name(self, op_id, port):
                return "up|{}|{}".format(op_id, port)

        class StubSpec:
            op_id = "x1"
            params = {"mode": "rehash", "key": {"kind": "row"}}

        exchange = Exchange(StubCtx(), StubSpec())
        for i in range(7):
            exchange.push(("same-key",))  # one routing key, seven rows
        # Row cap is 3: two full batches ship immediately, one row waits.
        from repro.core.exchange import payload_rows

        assert [p["op"] for p in sent] == ["deliver_batch", "deliver_batch"]
        assert all(len(payload_rows(p)) == 3 for p in sent)
        clock.run_for(6.0)  # flush window fires for the remainder
        assert sent[-1]["op"] == "deliver"
        assert sent[-1]["data"] == ("same-key",)

    def test_flush_delay_zero_is_unbatched(self, clock):
        from repro.core.exchange import Exchange

        sent = []

        class StubDht:
            def route(self, key, payload, upcall=None):
                sent.append(payload)

            def set_timer(self, delay, callback, *args):  # pragma: no cover
                raise AssertionError("unbatched exchange must not set timers")

        class StubPlan:
            def consumers_of(self, op_id):
                return [("sink", 0)]

        class StubCtx:
            plan = StubPlan()
            dht = StubDht()

            class engine:
                config = EngineConfig(flush_delay=0.0)

            def namespace(self, op_id, port):
                return "ns|{}|{}".format(op_id, port)

            def upcall_name(self, op_id, port):
                return "up|{}|{}".format(op_id, port)

        class StubSpec:
            op_id = "x1"
            params = {"mode": "rehash", "key": {"kind": "row"}}

        exchange = Exchange(StubCtx(), StubSpec())
        for i in range(4):
            exchange.push((i,))
        assert [p["op"] for p in sent] == ["deliver"] * 4


class TestExchangeCounters:
    def test_counted_even_without_byte_accounting(self):
        from repro.sim.network import NetworkConfig

        engine = EngineConfig(flush_delay=0.25)
        config = PierConfig(engine=engine, network=NetworkConfig(count_bytes=False))
        net = PierNetwork(nodes=8, seed=71, config=config)
        net.create_local_table("r", [("k", "INT"), ("v", "INT")])
        net.create_local_table("s", [("k", "INT"), ("v", "INT")])
        for i, address in enumerate(net.addresses()):
            net.insert(address, "r", [(i % 3, c) for c in range(4)])
            net.insert(address, "s", [(i % 3, i)])
        net.run_sql(JOIN_SQL)
        counters = net.message_counters()
        # The amortization metric survives count_bytes=False; only the
        # byte tally is skipped.
        assert counters.get("exchange_messages", 0) > 0
        assert counters.get("exchange_rows", 0) > 0
        assert counters.get("exchange_batches", 0) > 0
        assert "exchange_bytes" not in counters


class TestUndeliveredBuffer:
    @pytest.fixture
    def net(self):
        engine = EngineConfig(undelivered_ttl=5.0, undelivered_cap=10)
        return PierNetwork(nodes=4, seed=51, config=PierConfig(engine=engine))

    def test_early_rows_age_out(self, net):
        engine = net.node(net.any_address()).engine
        ns = "q|ghost#1|0|op3|0"
        engine._on_unclaimed_delivery({"ns": ns, "data": (1,)}, None)
        assert len(engine._undelivered[ns]) == 1
        net.advance(6.0)
        assert ns not in engine._undelivered
        assert ns not in engine._undelivered_expiry

    def test_batch_rows_buffered_and_capped(self, net):
        engine = net.node(net.any_address()).engine
        ns = "q|ghost#2|0|op3|0"
        engine._on_unclaimed_delivery(
            {"ns": ns, "rows": [(i,) for i in range(8)]}, None
        )
        engine._on_unclaimed_delivery(
            {"ns": ns, "rows": [(i,) for i in range(8)]}, None
        )
        # Cap is 10: the second batch only partially fits.
        assert len(engine._undelivered[ns]) == 10

    def test_stop_query_clears_matching_namespaces(self, net):
        engine = net.node(net.any_address()).engine
        engine._on_unclaimed_delivery({"ns": "q|dead#7|0|op1|0", "data": (1,)}, None)
        engine._on_unclaimed_delivery({"ns": "q|live#8|0|op1|0", "data": (2,)}, None)
        engine._stop_query("dead#7")
        assert "q|dead#7|0|op1|0" not in engine._undelivered
        assert "q|live#8|0|op1|0" in engine._undelivered

    def test_registration_still_replays_early_rows(self, net):
        # The TTL must not break the original purpose of the buffer:
        # rows arriving before the plan are handed to the execution.
        engine = net.node(net.any_address()).engine
        ns = "q|soon#1|0|op3|0"
        engine._on_unclaimed_delivery({"ns": ns, "rows": [(1,), (2,)]}, None)

        delivered = []

        class StubExecution:
            def deliver(self, op_id, port, row):
                delivered.append(row)

            def deliver_batch(self, op_id, port, rows):
                delivered.extend(rows)

        engine.register_exchange_input(ns, StubExecution(), "op3", 0)
        assert delivered == [(1,), (2,)]
        assert ns not in engine._undelivered_expiry
        engine.unregister_exchange_input(ns)
