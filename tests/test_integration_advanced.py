"""Advanced integration: multi-way joins, COUNT DISTINCT, loss, facade."""

import pytest

from repro.core.network import PierConfig, PierNetwork
from repro.util.errors import PierError


class TestThreeWayJoin:
    @pytest.fixture
    def net(self):
        n = PierNetwork(nodes=12, seed=700)
        n.create_local_table("a", [("x", "INT"), ("la", "STR")])
        n.create_local_table("b", [("x", "INT"), ("y", "INT")])
        n.create_local_table("c", [("y", "INT"), ("lc", "STR")])
        n.insert("node0", "a", [(1, "a1"), (2, "a2")])
        n.insert("node1", "b", [(1, 10), (2, 20), (3, 30)])
        n.insert("node2", "c", [(10, "c10"), (20, "c20")])
        return n

    def test_left_deep_chain(self, net):
        r = net.run_sql(
            "SELECT a.la AS la, c.lc AS lc FROM a, b, c "
            "WHERE a.x = b.x AND b.y = c.y ORDER BY la"
        )
        assert r.rows == [("a1", "c10"), ("a2", "c20")]

    def test_three_way_with_filter(self, net):
        r = net.run_sql(
            "SELECT a.la AS la FROM a, b, c "
            "WHERE a.x = b.x AND b.y = c.y AND c.lc = 'c20'"
        )
        assert r.rows == [("a2",)]

    def test_three_way_aggregate(self, net):
        r = net.run_sql(
            "SELECT COUNT(*) AS n FROM a, b, c WHERE a.x = b.x AND b.y = c.y"
        )
        assert r.rows == [(2,)]


class TestCountDistinct:
    @pytest.fixture
    def net(self):
        n = PierNetwork(nodes=10, seed=701)
        n.create_local_table("ev", [("user", "STR"), ("page", "STR")])
        rows = [("u1", "home"), ("u1", "home"), ("u2", "home"),
                ("u2", "about"), ("u3", "about"), ("u1", "about")]
        for i, row in enumerate(rows):
            n.insert("node{}".format(i % 10), "ev", [row])
        return n

    def test_global_count_distinct(self, net):
        r = net.run_sql("SELECT COUNT(DISTINCT user) AS users FROM ev")
        assert r.rows == [(3,)]

    def test_grouped_count_distinct(self, net):
        r = net.run_sql(
            "SELECT page, COUNT(DISTINCT user) AS users FROM ev "
            "GROUP BY page ORDER BY page"
        )
        assert r.rows == [("about", 3), ("home", 2)]

    def test_mixed_with_plain_count(self, net):
        r = net.run_sql(
            "SELECT COUNT(DISTINCT user) AS users, COUNT(*) AS events FROM ev"
        )
        assert r.rows == [(3, 6)]

    def test_distinct_outside_count_rejected(self, net):
        from repro.util.errors import SqlError

        with pytest.raises(SqlError):
            net.compile_sql("SELECT SUM(DISTINCT user) AS s FROM ev")


class TestMessageLoss:
    def test_queries_complete_under_loss(self):
        # 2% message loss: hop acks re-forward, rows mostly arrive.
        net = PierNetwork(nodes=10, seed=702, config=PierConfig(loss_rate=0.02))
        net.create_local_table("t", [("v", "INT")])
        for i, address in enumerate(net.addresses()):
            net.insert(address, "t", [(i,)])
        result = net.run_sql("SELECT COUNT(*) AS n FROM t")
        assert result.rows
        assert result.rows[0][0] >= 8  # allow a straggler or two

    def test_loss_counter_populated(self):
        net = PierNetwork(nodes=8, seed=703, config=PierConfig(loss_rate=0.05))
        net.advance(60)
        assert net.message_counters().get("messages_lost", 0) > 0


class TestFacade:
    def test_unknown_node_rejected(self, small_net):
        with pytest.raises(PierError):
            small_net.node("ghost")

    def test_bad_bootstrap_mode_rejected(self):
        with pytest.raises(PierError):
            PierConfig(bootstrap="teleport")

    def test_protocol_bootstrap_builds_working_net(self):
        net = PierNetwork(nodes=6, seed=704,
                          config=PierConfig(bootstrap="protocol"))
        net.create_local_table("t", [("v", "INT")])
        for i, address in enumerate(net.addresses()):
            net.insert(address, "t", [(i,)])
        result = net.run_sql("SELECT SUM(v) AS s FROM t")
        assert result.rows == [(15,)]

    def test_reset_counters(self, small_net):
        small_net.advance(30)
        small_net.reset_counters()
        assert small_net.message_counters() == {}

    def test_live_addresses_follow_crashes(self, small_net):
        victim = small_net.addresses()[2]
        small_net.crash_node(victim)
        assert victim not in small_net.live_addresses()
        small_net.recover_node(victim)
        assert victim in small_net.live_addresses()

    def test_deterministic_given_seed(self):
        def run():
            net = PierNetwork(nodes=8, seed=99)
            net.create_local_table("t", [("v", "FLOAT")])
            for i, address in enumerate(net.addresses()):
                net.insert(address, "t", [(float(i),)])
            result = net.run_sql("SELECT SUM(v) AS s FROM t")
            return (result.rows,
                    net.message_counters().get("messages_sent"))

        assert run() == run()

    def test_run_plan_roundtrip(self, small_net):
        small_net.create_local_table("t", [("v", "INT")])
        small_net.insert(small_net.any_address(), "t", [(5,)])
        plan = small_net.compile_sql("SELECT v FROM t")
        result = small_net.run_plan(plan)
        assert result.rows == [(5,)]


class TestExchangePartitioning:
    def test_rehash_spreads_groups_across_owners(self):
        # Many groups should not all land on one node.
        net = PierNetwork(nodes=16, seed=705)
        net.create_local_table("t", [("g", "INT"), ("v", "INT")])
        for i in range(64):
            net.insert(net.addresses()[i % 16], "t", [(i, 1)])
        result = net.run_sql("SELECT g, SUM(v) AS s FROM t GROUP BY g")
        assert len(result.rows) == 64
        # reporters = distinct group-owner nodes that sent results.
        assert len(result.reporters) >= 8

    def test_same_key_same_owner_across_sides(self):
        # The join correctness guarantee: verified end-to-end by any
        # join, asserted here with adversarial duplicate keys.
        net = PierNetwork(nodes=12, seed=706)
        net.create_local_table("l", [("k", "INT")])
        net.create_local_table("r", [("k", "INT")])
        for i in range(12):
            net.insert(net.addresses()[i], "l", [(7,)])
            net.insert(net.addresses()[(i + 3) % 12], "r", [(7,)])
        result = net.run_sql(
            "SELECT l.k AS k FROM l, r WHERE l.k = r.k"
        )
        assert len(result.rows) == 144  # 12 x 12 pairs, none lost
