"""Recursive queries: transitive closure as cyclic dataflow."""

from repro.core.network import PierNetwork

REACH_SQL = (
    "WITH RECURSIVE reach AS ("
    "  SELECT src, dst FROM link "
    "UNION "
    "  SELECT r.src AS src, l.dst AS dst FROM reach AS r, link AS l "
    "  WHERE r.dst = l.src"
    ") SELECT src, dst FROM reach"
)


def closure(edges):
    """Python ground truth: pairs connected by a path of length >= 1."""
    from collections import defaultdict

    adj = defaultdict(set)
    for s, d in edges:
        adj[s].add(d)
    result = set()
    for start in {s for s, _ in edges}:
        stack = list(adj[start])
        seen = set()
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            result.add((start, cur))
            stack.extend(adj[cur])
    return result


def run_reach(edges, nodes=10, seed=300, deadline=40.0):
    net = PierNetwork(nodes=nodes, seed=seed)
    net.create_dht_table("link", [("src", "STR"), ("dst", "STR")],
                         partition_key="src", ttl=3600)
    for i, edge in enumerate(edges):
        net.publish(net.addresses()[i % nodes], "link", edge)
    net.advance(3)
    result = net.run_sql(REACH_SQL, options={"recursion_deadline": deadline},
                         extra_time=5.0)
    return set(result.rows)


class TestClosure:
    def test_chain(self):
        edges = [("a", "b"), ("b", "c"), ("c", "d")]
        assert run_reach(edges) == closure(edges)

    def test_branching(self):
        edges = [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d"), ("d", "e")]
        assert run_reach(edges) == closure(edges)

    def test_cycle_terminates(self):
        edges = [("a", "b"), ("b", "c"), ("c", "a")]
        got = run_reach(edges)
        assert got == closure(edges)
        assert ("a", "a") in got  # self-reachability through the cycle

    def test_disconnected_components(self):
        edges = [("a", "b"), ("x", "y")]
        assert run_reach(edges) == {("a", "b"), ("x", "y")}

    def test_diamond_no_duplicates(self):
        edges = [("s", "l"), ("s", "r"), ("l", "t"), ("r", "t")]
        net_pairs = run_reach(edges)
        assert net_pairs == closure(edges)

    def test_longer_chain_depth(self):
        edges = [("n{}".format(i), "n{}".format(i + 1)) for i in range(8)]
        got = run_reach(edges, deadline=60.0)
        assert got == closure(edges)
        assert ("n0", "n8") in got  # full depth reached


class TestRecursiveVariants:
    def test_filtered_base(self):
        net = PierNetwork(nodes=8, seed=301)
        net.create_dht_table("link", [("src", "STR"), ("dst", "STR")],
                             partition_key="src", ttl=3600)
        for i, edge in enumerate([("a", "b"), ("b", "c"), ("z", "q")]):
            net.publish(net.addresses()[i % 8], "link", edge)
        net.advance(3)
        sql = (
            "WITH RECURSIVE reach AS ("
            "  SELECT src, dst FROM link WHERE src = 'a' "
            "UNION "
            "  SELECT r.src AS src, l.dst AS dst FROM reach AS r, link AS l "
            "  WHERE r.dst = l.src"
            ") SELECT src, dst FROM reach"
        )
        result = net.run_sql(sql, extra_time=5.0)
        assert set(result.rows) == {("a", "b"), ("a", "c")}

    def test_outer_filter(self):
        net = PierNetwork(nodes=8, seed=302)
        net.create_dht_table("link", [("src", "STR"), ("dst", "STR")],
                             partition_key="src", ttl=3600)
        for i, edge in enumerate([("a", "b"), ("b", "c")]):
            net.publish(net.addresses()[i % 8], "link", edge)
        net.advance(3)
        sql = (
            "WITH RECURSIVE reach AS ("
            "  SELECT src, dst FROM link "
            "UNION "
            "  SELECT r.src AS src, l.dst AS dst FROM reach AS r, link AS l "
            "  WHERE r.dst = l.src"
            ") SELECT src, dst FROM reach WHERE dst = 'c'"
        )
        result = net.run_sql(sql, extra_time=5.0)
        assert set(result.rows) == {("a", "c"), ("b", "c")}

    def test_quiescence_closes_early(self):
        # A tiny graph should finish long before the deadline cap.
        net = PierNetwork(nodes=8, seed=303)
        net.create_dht_table("link", [("src", "STR"), ("dst", "STR")],
                             partition_key="src", ttl=3600)
        net.publish("node0", "link", ("a", "b"))
        net.advance(3)
        handle = net.submit_sql(REACH_SQL, options={"recursion_deadline": 120.0})
        net.advance(30)
        assert handle.result(0) is not None  # closed well before 120s
