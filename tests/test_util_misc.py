"""SeededRng determinism and wire-size accounting."""

from repro.util.errors import (
    CatalogError,
    DhtError,
    PierError,
    PlanError,
    SimulationError,
    SqlError,
)
from repro.util.rng import SeededRng
from repro.util.serde import wire_size


class TestSeededRng:
    def test_same_seed_same_stream(self):
        a = SeededRng(5).random()
        b = SeededRng(5).random()
        assert a == b

    def test_different_seeds_differ(self):
        assert SeededRng(5).random() != SeededRng(6).random()

    def test_forks_are_independent(self):
        root = SeededRng(5)
        churn = root.fork("churn")
        latency = root.fork("latency")
        assert churn.random() != latency.random()

    def test_fork_is_deterministic(self):
        a = SeededRng(5).fork("x").random()
        b = SeededRng(5).fork("x").random()
        assert a == b

    def test_fork_insensitive_to_sibling_draws(self):
        # Drawing more numbers from one stream must not shift another.
        root1 = SeededRng(9)
        sibling = root1.fork("a")
        for _ in range(10):
            sibling.random()
        b1 = root1.fork("b").random()
        b2 = SeededRng(9).fork("b").random()
        assert b1 == b2

    def test_delegation_methods(self):
        rng = SeededRng(1)
        assert 0 <= rng.randint(0, 5) <= 5
        assert rng.choice([1, 2, 3]) in (1, 2, 3)
        assert len(rng.sample(range(10), 3)) == 3
        assert rng.expovariate(1.0) > 0
        assert 0 <= rng.randrange(4) < 4


class TestWireSize:
    def test_scalars(self):
        assert wire_size(None) == 1
        assert wire_size(True) == 1
        assert wire_size(7) == 8
        assert wire_size(3.14) == 8

    def test_strings_count_bytes(self):
        assert wire_size("abc") == 4 + 3
        assert wire_size("é") == 4 + 2  # utf-8

    def test_containers_recurse(self):
        assert wire_size([1, 2]) == 4 + 16
        assert wire_size({"a": 1}) == 4 + (4 + 1) + 8

    def test_object_with_wire_size_hook(self):
        class Sized:
            def wire_size(self):
                return 99

        assert wire_size(Sized()) == 99

    def test_unknown_objects_cost_their_repr(self):
        class Thing:
            def __repr__(self):
                return "Thing()"

        assert wire_size(Thing()) == 4 + len("Thing()")


class TestErrorHierarchy:
    def test_all_derive_from_pier_error(self):
        for cls in (SimulationError, DhtError, CatalogError, SqlError, PlanError):
            assert issubclass(cls, PierError)

    def test_sql_error_carries_position(self):
        err = SqlError("bad token", position=17)
        assert err.position == 17
        assert "17" in str(err)

    def test_sql_error_without_position(self):
        assert SqlError("oops").position is None
