"""Node lifecycle, timers, periodic processes, churn, tracing."""

import pytest

from repro.sim.churn import ChurnConfig, ChurnProcess
from repro.sim.latency import ConstantLatency
from repro.sim.network import Network
from repro.sim.node import SimNode
from repro.sim.processes import PeriodicProcess
from repro.sim.trace import TraceRecorder
from repro.util.rng import SeededRng


class Dummy(SimNode):
    def handle_message(self, src, payload):
        pass


@pytest.fixture
def net(clock):
    return Network(clock, ConstantLatency(0.01))


class TestNodeTimers:
    def test_timer_fires(self, net, clock):
        node = Dummy(net, "a")
        fired = []
        node.set_timer(1.0, fired.append, "x")
        clock.run_until(2)
        assert fired == ["x"]

    def test_timer_cancel(self, net, clock):
        node = Dummy(net, "a")
        fired = []
        timer = node.set_timer(1.0, fired.append, "x")
        node.cancel_timer(timer)
        clock.run_until(2)
        assert fired == []

    def test_crash_cancels_timers(self, net, clock):
        node = Dummy(net, "a")
        fired = []
        node.set_timer(1.0, fired.append, "x")
        node.crash()
        clock.run_until(2)
        assert fired == []

    def test_dead_node_does_not_send(self, net, clock):
        a = Dummy(net, "a")
        Dummy(net, "b")
        a.crash()
        a.send("b", "x")
        clock.run_until(1)
        assert net.counters.get("messages_sent") == 0

    def test_recover_marks_alive(self, net):
        node = Dummy(net, "a")
        node.crash()
        assert not node.alive
        node.recover()
        assert node.alive


class TestPeriodicProcess:
    def test_ticks_at_period(self, clock):
        ticks = []
        p = PeriodicProcess(clock, 2.0, lambda: ticks.append(clock.now))
        p.start()
        clock.run_until(7)
        assert ticks == [2.0, 4.0, 6.0]

    def test_initial_delay(self, clock):
        ticks = []
        p = PeriodicProcess(clock, 2.0, lambda: ticks.append(clock.now),
                            initial_delay=0.5)
        p.start()
        clock.run_until(3)
        assert ticks == [0.5, 2.5]

    def test_stop(self, clock):
        ticks = []
        p = PeriodicProcess(clock, 1.0, lambda: ticks.append(1))
        p.start()
        clock.run_until(2.5)
        p.stop()
        clock.run_until(10)
        assert len(ticks) == 2

    def test_callback_can_stop_itself(self, clock):
        p = PeriodicProcess(clock, 1.0, lambda: p.stop())
        p.start()
        clock.run_until(5)
        assert not p.running

    def test_double_start_is_noop(self, clock):
        ticks = []
        p = PeriodicProcess(clock, 1.0, lambda: ticks.append(1))
        p.start()
        p.start()
        clock.run_until(1.5)
        assert len(ticks) == 1

    def test_jitter_spreads_first_tick(self, clock):
        rng = SeededRng(1)
        ticks = []
        p = PeriodicProcess(clock, 10.0, lambda: ticks.append(clock.now),
                            jitter_rng=rng)
        p.start()
        clock.run_until(16)
        assert len(ticks) == 1
        assert 5.0 <= ticks[0] <= 15.0

    def test_rejects_bad_period(self, clock):
        with pytest.raises(ValueError):
            PeriodicProcess(clock, 0, lambda: None)


class TestChurn:
    def test_alternates_leave_join(self, clock):
        rng = SeededRng(5)
        events = []
        churn = ChurnProcess(
            clock, ChurnConfig(mean_session=10, mean_downtime=5), rng,
            on_leave=lambda a: events.append(("leave", a)),
            on_join=lambda a: events.append(("join", a)),
        )
        churn.manage("a")
        churn.start()
        clock.run_until(200)
        assert churn.leaves > 3
        assert abs(churn.leaves - churn.joins) <= 1
        # Strict alternation per node.
        kinds = [k for k, _ in events]
        for i in range(1, len(kinds)):
            assert kinds[i] != kinds[i - 1]

    def test_stop_halts_events(self, clock):
        rng = SeededRng(5)
        churn = ChurnProcess(
            clock, ChurnConfig(1, 1), rng, lambda a: None, lambda a: None
        )
        churn.manage("a")
        churn.start()
        clock.run_until(10)
        leaves = churn.leaves
        churn.stop()
        clock.run_until(50)
        assert churn.leaves == leaves

    def test_manage_after_start(self, clock):
        rng = SeededRng(6)
        churn = ChurnProcess(
            clock, ChurnConfig(1, 1), rng, lambda a: None, lambda a: None
        )
        churn.start()
        churn.manage("late")
        clock.run_until(20)
        assert churn.leaves > 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ChurnConfig(mean_session=0)


class TestTrace:
    def test_records_with_time(self, clock):
        trace = TraceRecorder(clock)
        clock.schedule(2.0, trace.record, "tick")
        clock.run_until(3)
        assert trace.entries[0]["t"] == 2.0
        assert trace.entries[0]["kind"] == "tick"

    def test_filter_and_count(self, clock):
        trace = TraceRecorder(clock)
        trace.record("a", v=1)
        trace.record("b")
        trace.record("a", v=2)
        assert trace.count("a") == 2
        assert [e["v"] for e in trace.of_kind("a")] == [1, 2]

    def test_disabled_is_noop(self, clock):
        trace = TraceRecorder(clock, enabled=False)
        trace.record("x")
        assert len(trace) == 0

    def test_max_entries_cap(self, clock):
        trace = TraceRecorder(clock, max_entries=2)
        for _ in range(5):
            trace.record("x")
        assert len(trace) == 2
