"""Workload generators: placements, rates, alert calibration, graphs."""

import pytest

from repro.util.rng import SeededRng
from repro.workloads import poisson
from repro.workloads.generators import RateProcess
from repro.workloads.graphs import (
    edge_rows,
    ground_truth_reachability,
    make_graph,
)
from repro.workloads.planetlab import build_planetlab_network, planetlab_placements
from repro.workloads.snort_rules import TABLE1_RULES, TAIL_RULES


class TestPlanetlabPlacements:
    def test_count(self):
        assert len(planetlab_placements(300, seed=1)) == 300

    def test_coordinates_in_unit_square(self):
        for x, y in planetlab_placements(100, seed=2).values():
            assert 0 <= x <= 1 and 0 <= y <= 1

    def test_deterministic(self):
        assert planetlab_placements(50, seed=3) == planetlab_placements(50, seed=3)

    def test_site_clustering(self):
        placements = planetlab_placements(120, seed=4)
        by_site = {}
        for address, (x, y) in placements.items():
            site = address.rsplit("-", 1)[0]
            by_site.setdefault(site, []).append((x, y))
        multi = [pts for pts in by_site.values() if len(pts) > 1]
        assert multi
        for pts in multi:
            xs = [p[0] for p in pts]
            ys = [p[1] for p in pts]
            assert max(xs) - min(xs) < 0.05
            assert max(ys) - min(ys) < 0.05

    def test_network_builder(self):
        net = build_planetlab_network(40, seed=5)
        assert len(net) == 40
        assert all(a.startswith("plab-") for a in net.addresses())


class TestRateProcess:
    def test_nonnegative(self):
        process = RateProcess(SeededRng(1, "r"))
        assert all(process.sample(t * 5.0) >= 0 for t in range(200))

    def test_hosts_differ_in_scale(self):
        bases = [RateProcess(SeededRng(i, "r")).base for i in range(30)]
        assert max(bases) > 10 * min(bases)

    def test_bursts_occur(self):
        process = RateProcess(SeededRng(3, "r"), burst_rate=0.02,
                              burst_multiplier=50.0, noise=0.01)
        samples = [process.sample(t * 5.0) for t in range(400)]
        import statistics

        assert max(samples) > 10 * statistics.median(samples)


class TestPoisson:
    def test_zero_lambda(self):
        assert poisson(SeededRng(1), 0) == 0

    def test_small_lambda_mean(self):
        rng = SeededRng(2)
        samples = [poisson(rng, 3.0) for _ in range(3000)]
        assert abs(sum(samples) / len(samples) - 3.0) < 0.2

    def test_large_lambda_mean(self):
        rng = SeededRng(3)
        samples = [poisson(rng, 500.0) for _ in range(500)]
        mean = sum(samples) / len(samples)
        assert abs(mean - 500) < 10
        assert all(s >= 0 for s in samples)


class TestSnortRules:
    def test_table1_verbatim(self):
        assert TABLE1_RULES[0] == (1322, "BAD-TRAFFIC bad frag bits", 465770)
        assert TABLE1_RULES[-1] == (895, "WEB-CGI redirect access", 7277)
        assert len(TABLE1_RULES) == 10

    def test_counts_strictly_ranked(self):
        counts = [hits for _i, _d, hits in TABLE1_RULES]
        assert counts == sorted(counts, reverse=True)

    def test_tail_below_top10(self):
        top_min = min(hits for _i, _d, hits in TABLE1_RULES)
        assert all(hits < top_min for _i, _d, hits in TAIL_RULES)


class TestGraphs:
    def test_kinds(self):
        for kind in ("random", "scale_free", "ring"):
            g = make_graph(kind, 12, seed=1, degree=4)
            assert g.number_of_nodes() == 12

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_graph("hypercube", 8)

    def test_ring_edges(self):
        g = make_graph("ring", 5)
        assert g.number_of_edges() == 5

    def test_edge_rows_prefixed(self):
        g = make_graph("ring", 3)
        rows = edge_rows(g, prefix="x")
        assert ("x0", "x1") in rows

    def test_ground_truth_ring_includes_self(self):
        g = make_graph("ring", 4)
        truth = ground_truth_reachability(g)
        assert ("r0", "r0") in truth
        assert len(truth) == 16

    def test_ground_truth_chain_excludes_self(self):
        import networkx as nx

        g = nx.DiGraph()
        g.add_edges_from([(0, 1), (1, 2)])
        truth = ground_truth_reachability(g)
        assert truth == {("r0", "r1"), ("r0", "r2"), ("r1", "r2")}
