"""Transport semantics: delivery, loss, dead nodes, accounting."""

import pytest

from repro.sim.latency import ConstantLatency, GeoLatency, UniformLatency
from repro.sim.network import Network, NetworkConfig
from repro.sim.node import SimNode
from repro.util.errors import SimulationError
from repro.util.rng import SeededRng


class Recorder(SimNode):
    def __init__(self, network, address):
        super().__init__(network, address)
        self.received = []

    def handle_message(self, src, payload):
        self.received.append((src, payload, self.clock.now))


@pytest.fixture
def net(clock):
    return Network(clock, ConstantLatency(0.1))


class TestRegistry:
    def test_register_and_lookup(self, net):
        node = Recorder(net, "a")
        assert net.node("a") is node

    def test_duplicate_address_rejected(self, net):
        Recorder(net, "a")
        with pytest.raises(SimulationError):
            Recorder(net, "a")

    def test_live_addresses_tracks_crashes(self, net):
        a = Recorder(net, "a")
        Recorder(net, "b")
        a.crash()
        assert net.live_addresses() == ["b"]


class TestDelivery:
    def test_message_arrives_after_latency(self, net, clock):
        Recorder(net, "a")
        b = Recorder(net, "b")
        net.send("a", "b", {"hello": 1})
        clock.run_until(0.05)
        assert b.received == []
        clock.run_until(0.2)
        assert len(b.received) == 1
        assert b.received[0][2] == pytest.approx(0.1)

    def test_message_to_dead_node_dropped(self, net, clock):
        Recorder(net, "a")
        b = Recorder(net, "b")
        b.crash()
        net.send("a", "b", "x")
        clock.run_until(1)
        assert b.received == []
        assert net.counters.get("messages_to_dead_node") == 1

    def test_message_to_unknown_address_dropped(self, net, clock):
        Recorder(net, "a")
        net.send("a", "ghost", "x")
        clock.run_until(1)
        assert net.counters.get("messages_to_dead_node") == 1

    def test_counters(self, net, clock):
        Recorder(net, "a")
        Recorder(net, "b")
        net.send("a", "b", "x")
        net.send("b", "a", "y")
        clock.run_until(1)
        assert net.counters.get("messages_sent") == 2
        assert net.counters.get("messages_delivered") == 2
        assert net.counters.get("bytes_sent") > 0

    def test_broadcast_local_reaches_all_but_sender(self, net, clock):
        Recorder(net, "a")
        b = Recorder(net, "b")
        c = Recorder(net, "c")
        net.broadcast_local("a", "ping")
        clock.run_until(1)
        assert len(b.received) == 1 and len(c.received) == 1


class TestLoss:
    def test_loss_rate_drops_messages(self, clock):
        rng = SeededRng(3)
        net = Network(clock, ConstantLatency(0.01), rng, NetworkConfig(loss_rate=0.5))
        Recorder(net, "a")
        b = Recorder(net, "b")
        for _ in range(200):
            net.send("a", "b", "x")
        clock.run_until(1)
        assert 40 < len(b.received) < 160
        lost = net.counters.get("messages_lost")
        assert lost == 200 - len(b.received)

    def test_loss_rate_validation(self):
        with pytest.raises(ValueError):
            NetworkConfig(loss_rate=1.0)


class TestLatencyModels:
    def test_constant_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1)

    def test_uniform_bounds(self):
        rng = SeededRng(1)
        model = UniformLatency(0.01, 0.05, rng)
        for _ in range(100):
            assert 0.01 <= model.delay("a", "b") <= 0.05

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            UniformLatency(0.5, 0.1, SeededRng(1))

    def test_geo_close_beats_far(self):
        rng = SeededRng(2)
        model = GeoLatency(rng, jitter_sigma=0.0)
        model.place("near1", 0.1, 0.1)
        model.place("near2", 0.11, 0.1)
        model.place("far", 0.9, 0.9)
        assert model.delay("near1", "near2") < model.delay("near1", "far")

    def test_geo_unplaced_gets_median_path(self):
        rng = SeededRng(2)
        model = GeoLatency(rng, jitter_sigma=0.0)
        assert model.delay("ghost1", "ghost2") > 0

    def test_geo_coordinates_accessor(self):
        model = GeoLatency(SeededRng(2))
        model.place("a", 0.3, 0.4)
        assert model.coordinates("a") == (0.3, 0.4)
        assert model.coordinates("missing") is None
