"""Expression compilation and evaluation semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.db.expressions import (
    BinaryOp,
    FuncCall,
    UnaryOp,
    col,
    conjuncts,
    equi_join_pairs,
    lit,
)
from repro.db.schema import Schema
from repro.db.types import INT, STR
from repro.util.errors import CatalogError, PlanError

SCHEMA = Schema.of(("a", INT), ("b", INT), ("s", STR))


def ev(expr, row):
    return expr.compile(SCHEMA)(row)


class TestBasics:
    def test_column_ref(self):
        assert ev(col("b"), (1, 2, "x")) == 2

    def test_literal(self):
        assert ev(lit(42), (0, 0, "")) == 42

    def test_unknown_column_fails_at_compile(self):
        with pytest.raises(CatalogError):
            col("zzz").compile(SCHEMA)

    def test_arithmetic(self):
        expr = BinaryOp("+", BinaryOp("*", col("a"), lit(10)), col("b"))
        assert ev(expr, (3, 4, "")) == 34

    def test_division_by_zero_is_null(self):
        assert ev(BinaryOp("/", col("a"), lit(0)), (5, 0, "")) is None
        assert ev(BinaryOp("%", col("a"), lit(0)), (5, 0, "")) is None

    def test_comparisons(self):
        assert ev(BinaryOp("<", col("a"), col("b")), (1, 2, "")) is True
        assert ev(BinaryOp(">=", col("a"), col("b")), (1, 2, "")) is False
        assert ev(BinaryOp("!=", col("a"), col("b")), (1, 2, "")) is True

    def test_unknown_operator_rejected(self):
        with pytest.raises(PlanError):
            BinaryOp("**", col("a"), col("b"))
        with pytest.raises(PlanError):
            UnaryOp("~", col("a"))


class TestNullSemantics:
    def test_arith_with_null_is_null(self):
        assert ev(BinaryOp("+", col("a"), lit(None)), (1, 0, "")) is None

    def test_comparison_with_null_is_null(self):
        assert ev(BinaryOp("=", col("a"), lit(None)), (1, 0, "")) is None

    def test_negate_null(self):
        assert ev(UnaryOp("-", lit(None)), (0, 0, "")) is None

    def test_null_comparison_is_falsy_in_filters(self):
        # The Select operator treats None as "drop the row".
        result = ev(BinaryOp(">", lit(None), lit(3)), (0, 0, ""))
        assert not result


class TestBooleans:
    def test_and_or(self):
        t = BinaryOp(">", col("b"), lit(0))
        f = BinaryOp("<", col("b"), lit(0))
        assert ev(BinaryOp("AND", t, t), (0, 5, "")) is True
        assert ev(BinaryOp("AND", t, f), (0, 5, "")) is False
        assert ev(BinaryOp("OR", f, t), (0, 5, "")) is True

    def test_not(self):
        expr = UnaryOp("NOT", BinaryOp("=", col("a"), lit(1)))
        assert ev(expr, (1, 0, "")) is False
        assert ev(expr, (2, 0, "")) is True


class TestFunctions:
    def test_abs(self):
        assert ev(FuncCall("abs", [UnaryOp("-", col("a"))]), (7, 0, "")) == 7

    def test_string_functions(self):
        assert ev(FuncCall("upper", [col("s")]), (0, 0, "hi")) == "HI"
        assert ev(FuncCall("lower", [lit("HI")]), (0, 0, "")) == "hi"
        assert ev(FuncCall("length", [col("s")]), (0, 0, "abcd")) == 4

    def test_string_functions_pass_null(self):
        assert ev(FuncCall("upper", [lit(None)]), (0, 0, "")) is None

    def test_coalesce(self):
        expr = FuncCall("coalesce", [lit(None), col("a"), lit(9)])
        assert ev(expr, (5, 0, "")) == 5

    def test_unknown_function(self):
        with pytest.raises(PlanError):
            FuncCall("frobnicate", [])


class TestAnalysis:
    def test_column_refs_collected(self):
        expr = BinaryOp("AND",
                        BinaryOp("=", col("a"), col("b")),
                        BinaryOp(">", col("a"), lit(1)))
        assert expr.column_refs() == {"a", "b"}

    def test_conjuncts_split(self):
        expr = BinaryOp("AND",
                        BinaryOp("AND", lit(True), lit(False)),
                        lit(True))
        assert len(conjuncts(expr)) == 3

    def test_conjuncts_do_not_split_or(self):
        expr = BinaryOp("OR", lit(True), lit(False))
        assert len(conjuncts(expr)) == 1

    def test_equi_join_pairs_extraction(self):
        left = Schema.of(("x", INT)).qualify("l")
        right = Schema.of(("y", INT)).qualify("r")
        pred = BinaryOp("AND",
                        BinaryOp("=", col("l.x"), col("r.y")),
                        BinaryOp(">", col("l.x"), lit(3)))
        pairs, residual = equi_join_pairs(pred, left, right)
        assert pairs == [("l.x", "r.y")]
        assert residual is not None

    def test_equi_join_pairs_swapped_sides(self):
        left = Schema.of(("x", INT)).qualify("l")
        right = Schema.of(("y", INT)).qualify("r")
        pred = BinaryOp("=", col("r.y"), col("l.x"))
        pairs, residual = equi_join_pairs(pred, left, right)
        assert pairs == [("l.x", "r.y")]
        assert residual is None

    def test_display_round_trips_structure(self):
        expr = BinaryOp("+", col("a"), lit(1))
        assert expr.display() == "(a + 1)"
        assert FuncCall("ABS", [col("a")]).display() == "ABS(a)"
        assert lit("x").display() == "'x'"


class TestPropertyArithmetic:
    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    def test_addition_matches_python(self, x, y):
        expr = BinaryOp("+", col("a"), col("b"))
        assert ev(expr, (x, y, "")) == x + y

    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    def test_comparison_matches_python(self, x, y):
        expr = BinaryOp("<", col("a"), col("b"))
        assert ev(expr, (x, y, "")) == (x < y)

    @given(st.integers(-100, 100))
    def test_double_negation(self, x):
        expr = UnaryOp("-", UnaryOp("-", col("a")))
        assert ev(expr, (x, 0, "")) == x
