"""Aggregate functions: init/add/merge/final algebra.

The key invariant for in-network aggregation: folding values through
any tree of merges must equal folding them sequentially -- otherwise
the aggregation tree would change answers depending on topology.
"""

import pytest
from hypothesis import given, strategies as st

from repro.core.aggregates import AggSpec, aggregate_by_name
from repro.db.expressions import col
from repro.db.schema import Schema
from repro.db.types import FLOAT
from repro.util.errors import PlanError

values = st.lists(st.integers(-1000, 1000), min_size=0, max_size=60)


def fold(agg, items):
    state = agg.init()
    for item in items:
        state = agg.add(state, item)
    return state


class TestIndividualAggregates:
    def test_count_star_counts_everything(self):
        agg = aggregate_by_name("COUNT(*)")
        assert agg.final(fold(agg, [1, None, "x"])) == 3

    def test_count_skips_nulls(self):
        agg = aggregate_by_name("COUNT")
        assert agg.final(fold(agg, [1, None, 2, None])) == 2

    def test_sum_of_nothing_is_null(self):
        agg = aggregate_by_name("SUM")
        assert agg.final(fold(agg, [])) is None
        assert agg.final(fold(agg, [None, None])) is None

    def test_sum(self):
        agg = aggregate_by_name("SUM")
        assert agg.final(fold(agg, [1, 2, None, 3])) == 6

    def test_min_max(self):
        assert aggregate_by_name("MIN").final(
            fold(aggregate_by_name("MIN"), [3, 1, None, 2])) == 1
        assert aggregate_by_name("MAX").final(
            fold(aggregate_by_name("MAX"), [3, 1, None, 2])) == 3

    def test_avg(self):
        agg = aggregate_by_name("AVG")
        assert agg.final(fold(agg, [2, 4, None, 6])) == 4

    def test_avg_of_nothing_is_null(self):
        agg = aggregate_by_name("AVG")
        assert agg.final(fold(agg, [])) is None

    def test_unknown_aggregate(self):
        with pytest.raises(PlanError):
            aggregate_by_name("MEDIAN")

    def test_lookup_case_insensitive(self):
        assert aggregate_by_name("sum") is aggregate_by_name("SUM")


class TestMergeAlgebra:
    @pytest.mark.parametrize("name", ["COUNT(*)", "COUNT", "SUM", "MIN", "MAX", "AVG"])
    @given(data=st.data())
    def test_split_merge_equals_sequential(self, name, data):
        items = data.draw(values)
        split = data.draw(st.integers(0, len(items)))
        agg = aggregate_by_name(name)
        left = fold(agg, items[:split])
        right = fold(agg, items[split:])
        assert agg.final(agg.merge(left, right)) == agg.final(fold(agg, items))

    @pytest.mark.parametrize("name", ["COUNT(*)", "SUM", "MIN", "MAX", "AVG"])
    @given(data=st.data())
    def test_merge_commutative(self, name, data):
        a = data.draw(values)
        b = data.draw(values)
        agg = aggregate_by_name(name)
        sa, sb = fold(agg, a), fold(agg, b)
        assert agg.final(agg.merge(sa, sb)) == agg.final(agg.merge(sb, sa))

    @pytest.mark.parametrize("name", ["COUNT(*)", "SUM", "MIN", "MAX", "AVG"])
    @given(data=st.data())
    def test_merge_with_empty_is_identity(self, name, data):
        items = data.draw(values)
        agg = aggregate_by_name(name)
        state = fold(agg, items)
        empty = agg.init()
        assert agg.final(agg.merge(state, empty)) == agg.final(state)


class TestAggSpec:
    def test_count_with_no_arg_becomes_count_star(self):
        spec = AggSpec("COUNT", None, "n")
        assert spec.agg.name == "COUNT(*)"

    def test_compile_arg(self):
        schema = Schema.of(("v", FLOAT))
        spec = AggSpec("SUM", col("v"), "total")
        assert spec.compile_arg(schema)((3.5,)) == 3.5

    def test_compile_no_arg_returns_none(self):
        spec = AggSpec("COUNT", None, "n")
        assert spec.compile_arg(Schema.of(("v", FLOAT)))((1,)) is None

    def test_repr_readable(self):
        assert "SUM" in repr(AggSpec("SUM", col("v"), "total"))
